#!/usr/bin/env python3
"""Quickstart: retime a small circuit with load-enable registers.

Builds the paper's Fig. 1-style scenario — two registers sharing a load
enable in front of deep logic — and runs multiple-class retiming, which
moves the registers *with* their enable instead of decomposing it.

Run:  python examples/quickstart.py
"""

from repro.logic.ternary import T0
from repro.mcretime import mc_retime
from repro.netlist import Circuit, GateFn, write_blif
from repro.timing import UNIT_DELAY


def build() -> Circuit:
    """Two EN registers feeding a 4-gate chain (period 4 at unit delay)."""
    c = Circuit("quickstart")
    for net in ("clk", "en", "rst", "a", "b"):
        c.add_input(net)
    c.add_register(d="a", q="qa", clk="clk", en="en", ar="rst", aval=T0)
    c.add_register(d="b", q="qb", clk="clk", en="en", ar="rst", aval=T0)
    n1 = c.add_gate(GateFn.AND, ["qa", "qb"]).output
    n2 = c.add_gate(GateFn.XOR, [n1, "qa"]).output
    n3 = c.add_gate(GateFn.OR, [n2, n1]).output
    n4 = c.add_gate(GateFn.NOT, [n3]).output
    c.add_register(d=n4, q="qo", clk="clk", en="en", ar="rst", aval=T0)
    c.add_output("qo")
    return c


def main() -> None:
    circuit = build()
    print("before:")
    print(write_blif(circuit))

    result = mc_retime(circuit, delay_model=UNIT_DELAY)

    print(f"register classes : {result.n_classes}")
    print(f"steps moved      : {result.steps_moved} of {result.steps_possible} possible")
    print(f"clock period     : {result.period_before:.1f} -> {result.period_after:.1f}")
    print(f"registers        : {result.ff_before} -> {result.ff_after}")
    print(
        "justification    : "
        f"{result.stats.local_steps} local, {result.stats.global_steps} global"
    )
    print("\nafter:")
    print(write_blif(result.circuit))


if __name__ == "__main__":
    main()
