#!/usr/bin/env python3
"""Why multiple-class retiming matters: enables vs decomposition.

Builds an enabled pipeline with its registers bunched at the input of a
deep comparator tree, then optimises it two ways:

1. multiple-class retiming (registers move *with* their enables);
2. the classical route — decompose EN into hold muxes, then retime.

Both reach a similar clock period; the decomposed route pays for it
with extra registers and multiplexers (the paper's Fig. 1 effect at
circuit scale).

Run:  python examples/pipeline_enable.py
"""

from repro.flows import baseline_flow, decomposed_enable_flow, retime_flow
from repro.logic.ternary import T0
from repro.netlist import Circuit, GateFn


def build(width: int = 16) -> Circuit:
    """Registered inputs with one shared enable, deep reduction after.

    The reduction rotates lanes between layers so the output really
    depends on every input (a plain balanced tree of 16 inputs would be
    only two 4-LUT levels; the rotation forces a deeper mapped cone).
    """
    c = Circuit("pipeline_enable")
    for net in ("clk", "en", "rst"):
        c.add_input(net)
    lanes = []
    for i in range(width):
        pin = c.add_input(f"d{i}")
        reg = c.add_register(d=pin, clk="clk", en="en", ar="rst", aval=T0)
        lanes.append(reg.q)
    level = lanes
    layer = 0
    while len(level) > 1:
        fn = (GateFn.XOR, GateFn.AND, GateFn.OR)[layer % 3]
        nxt = [
            c.add_gate(fn, [level[j], level[(j + 1) % len(level)]]).output
            for j in range(len(level))
        ]
        # shrink every other layer to keep the cone deep but tapering
        if layer % 2 == 1 or len(nxt) <= 2:
            nxt = nxt[: max(1, len(nxt) // 2)]
        level = nxt
        layer += 1
    out = c.add_register(d=level[0], clk="clk", en="en", ar="rst", aval=T0)
    c.add_output(out.q)
    return c


def main() -> None:
    circuit = build()
    base = baseline_flow(circuit)
    print(f"baseline         : {base.n_ff:3d} FF  {base.n_lut:3d} LUT  "
          f"delay {base.delay:5.1f} ns")

    mc = retime_flow(circuit, mapped=base)
    print(f"mc-retiming      : {mc.n_ff:3d} FF  {mc.n_lut:3d} LUT  "
          f"delay {mc.delay:5.1f} ns   (enables preserved)")

    dec = decomposed_enable_flow(circuit)
    print(f"EN decomposed    : {dec.n_ff:3d} FF  {dec.n_lut:3d} LUT  "
          f"delay {dec.delay:5.1f} ns   (enables as hold muxes)")

    print(
        f"\nmc-retiming reaches {base.delay / mc.delay:.2f}x the original "
        f"speed with {mc.n_ff - base.n_ff:+d} FF and "
        f"{mc.n_lut - base.n_lut:+d} LUT;"
    )
    print(
        f"the decomposed route needs {dec.n_ff - mc.n_ff:+d} FF and "
        f"{dec.n_lut - mc.n_lut:+d} LUT relative to it."
    )


if __name__ == "__main__":
    main()
