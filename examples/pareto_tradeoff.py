#!/usr/bin/env python3
"""Explore the period-vs-registers Pareto frontier of min-area retiming.

The paper's practical pitch is *min-area retiming for a target period*;
a designer usually has slack to trade.  This example maps a generated
design, sweeps min-area retiming across period targets between φ_min and
the original period, and prints the frontier — then exports the fastest
point as structural Verilog.

Run:  python examples/pareto_tradeoff.py [design] [scale]
"""

import sys

from repro.experiments.pareto import pareto_sweep
from repro.flows import baseline_flow
from repro.mcretime import mc_retime
from repro.netlist import write_verilog
from repro.synth import DESIGN_NAMES, build_design
from repro.timing import XC4000E_DELAY


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "C5"
    scale = float(sys.argv[2]) if len(sys.argv) > 2 else 0.5
    if name not in DESIGN_NAMES:
        raise SystemExit(f"unknown design {name}; pick from {DESIGN_NAMES}")

    mapped = baseline_flow(build_design(name, scale).circuit).circuit
    sweep = pareto_sweep(mapped, steps=7)

    print(f"design {name} (scale {scale})")
    print(
        f"original period {sweep.phi_original:.2f} with "
        f"{sweep.registers_original} registers; φ_min = {sweep.phi_min:.2f}\n"
    )
    print("   target   achieved   registers")
    for point in sweep.points:
        print(
            f"  {point.target_period:7.2f}  {point.achieved_period:9.2f}"
            f"  {point.registers:10d}"
        )
    print("\nPareto frontier (non-dominated):")
    for point in sweep.frontier():
        print(
            f"  period {point.achieved_period:7.2f}  "
            f"registers {point.registers}"
        )

    fastest = min(sweep.points, key=lambda p: p.achieved_period)
    print(
        f"\nimplementing the fastest point "
        f"({fastest.achieved_period:.2f}, {fastest.registers} regs)..."
    )
    result = mc_retime(
        mapped, delay_model=XC4000E_DELAY, target_period=fastest.target_period
    )
    text = write_verilog(result.circuit)
    print(f"Verilog netlist: {len(text.splitlines())} lines "
          f"({len(result.circuit.registers)} registers materialised)")


if __name__ == "__main__":
    main()
