#!/usr/bin/env python3
"""Walkthrough of reset-state computation during backward retiming.

Recreates the paper's Fig. 5: registers with synchronous reset values
are moved backward across a NAND, an inverter, and finally an AND gate.
The first two moves justify locally; the third hits a value conflict
and is resolved by a *global* justification over the whole cone, which
also revises a sibling register's value.

Run:  python examples/reset_justify.py
"""

from repro.logic.simulate import SequentialSimulator
from repro.logic.ternary import T0, T1, ternary_char
from repro.mcretime import relocate
from repro.netlist import Circuit, GateFn


def build() -> Circuit:
    c = Circuit("fig5")
    for net in ("clk", "rs", "x1", "x2", "x3"):
        c.add_input(net)
    c.add_gate(GateFn.AND, ["x1", "x2"], "n2", name="v2")
    c.add_gate(GateFn.NAND, ["n2", "x3"], "n3", name="v3")
    c.add_gate(GateFn.NOT, ["n2"], "n4", name="v4")
    c.add_register(d="n3", q="q3", clk="clk", sr="rs", sval=T1, name="r3")
    c.add_register(d="n4", q="q4", clk="clk", sr="rs", sval=T0, name="r4")
    c.add_output("q3")
    c.add_output("q4")
    return c


def main() -> None:
    circuit = build()
    print("moving both output registers backward across v3/v4, then v2")
    print("original reset values: r3 (after NAND) s=1, r4 (after INV) s=0")
    print()

    result = relocate(circuit, {"v2": 1, "v3": 1, "v4": 1})

    print(f"backward steps: {result.stats.backward_steps}")
    print(f"  justified locally : {result.stats.local_steps}")
    print(f"  needed global     : {result.stats.global_steps}")
    print()
    print("final registers (position -> sync reset value):")
    for reg in result.circuit.registers.values():
        print(f"  at net {reg.d!r}: s={ternary_char(reg.sval)}")
    print()

    # demonstrate equivalence: reset both circuits and compare outputs
    sims = [
        SequentialSimulator(c, x_chooser=lambda _n: T0)
        for c in (circuit, result.circuit)
    ]
    for sim in sims:
        sim.step({"rs": T1, "x1": T0, "x2": T0, "x3": T0})
    mismatches = 0
    for step in range(8):
        vec = {
            "rs": T0,
            "x1": T1 if step & 1 else T0,
            "x2": T1 if step & 2 else T0,
            "x3": T1 if step & 4 else T0,
        }
        a = sims[0].step(vec)
        b = sims[1].step(vec)
        left = [a[n] for n in circuit.outputs]
        right = [b[n] for n in result.circuit.outputs]
        status = "ok" if left == right else "MISMATCH"
        if left != right:
            mismatches += 1
        print(
            f"cycle {step}: original={''.join(map(ternary_char, left))} "
            f"retimed={''.join(map(ternary_char, right))}  {status}"
        )
    print(f"\nsequentially equivalent: {mismatches == 0}")


if __name__ == "__main__":
    main()
