#!/usr/bin/env python3
"""Full FPGA synthesis flow on a generated industrial-style design.

Reproduces one row of each paper table for the design ``C5``:
optimise → map to XC4000E 4-LUTs → STA (Table 1), then retime + remap
(Table 2), then the enable-decomposed baseline (Table 3).

Run:  python examples/fpga_flow.py [design] [scale]
"""

import sys

from repro.flows import baseline_flow, decomposed_enable_flow, retime_flow
from repro.synth import DESIGN_NAMES, build_design


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "C5"
    scale = float(sys.argv[2]) if len(sys.argv) > 2 else 1.0
    if name not in DESIGN_NAMES:
        raise SystemExit(f"unknown design {name}; pick from {DESIGN_NAMES}")

    design = build_design(name, scale)
    print(f"design {name} (scale {scale}): {design.circuit!r}")

    base = baseline_flow(design.circuit)
    print(
        f"\n[Table 1] mapped: {base.n_ff} FF, {base.n_lut} LUT, "
        f"delay {base.delay:.1f} ns"
    )

    retimed = retime_flow(design.circuit, mapped=base)
    r = retimed.retime
    print(
        f"[Table 2] mc-retimed: {retimed.n_ff} FF, {retimed.n_lut} LUT, "
        f"delay {retimed.delay:.1f} ns "
        f"(Rlut {retimed.n_lut / base.n_lut:.2f}, "
        f"Rdelay {retimed.delay / base.delay:.2f})"
    )
    print(
        f"          {r.n_classes} classes, steps {r.steps_moved}/"
        f"{r.steps_possible}, {100 * r.stats.local_fraction:.1f}% local "
        f"justification"
    )
    fractions = r.timing_fractions()
    print(
        f"          CPU split: {100 * fractions['basic_retiming']:.0f}% basic "
        f"retiming, {100 * fractions['relocation']:.0f}% relocation, "
        f"{100 * fractions['mc_overhead']:.0f}% mc overhead"
    )

    decomposed = decomposed_enable_flow(design.circuit)
    print(
        f"[Table 3] EN decomposed: {decomposed.n_ff} FF, "
        f"{decomposed.n_lut} LUT, delay {decomposed.delay:.1f} ns "
        f"(Rlut2 {decomposed.n_lut / max(retimed.n_lut, 1):.2f}, "
        f"Rdelay2 {decomposed.delay / retimed.delay:.2f})"
    )


if __name__ == "__main__":
    main()
