"""``mcretime`` — retime netlist files from the command line.

Reads extended BLIF (``.blif``/``.mcblif``) or the structural Verilog
subset (``.v``), runs multiple-class retiming (optionally preceded by
optimisation and LUT mapping), and writes the result back in either
format.

Examples::

    mcretime design.blif -o retimed.blif
    mcretime design.v --map --objective minperiod -o out.v
    mcretime design.blif --target-period 12.5 --report
    mcretime design.blif --check          # validate + stats only
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from ..flows import baseline_flow
from ..mcretime import mc_retime
from ..netlist import (
    Circuit,
    check_circuit,
    circuit_stats,
    read_blif,
    read_verilog,
    write_blif,
    write_verilog,
)
from ..timing import UNIT_DELAY, XC4000E_DELAY, analyze


def load_circuit(path: Path) -> Circuit:
    """Load a netlist by extension (.v → Verilog, else BLIF)."""
    text = path.read_text()
    if path.suffix in (".v", ".sv"):
        return read_verilog(text)
    return read_blif(text, name_hint=path.stem)


def save_circuit(circuit: Circuit, path: Path) -> None:
    """Write a netlist by extension (.v → Verilog, else BLIF)."""
    if path.suffix in (".v", ".sv"):
        path.write_text(write_verilog(circuit))
    else:
        path.write_text(write_blif(circuit))


def _stats_line(circuit: Circuit, delay_model) -> str:
    stats = circuit_stats(circuit)
    delay = analyze(circuit, delay_model).max_delay
    flags = []
    if stats.has_enable:
        flags.append("EN")
    if stats.has_async:
        flags.append("AS/AC")
    flag_text = ",".join(flags) or "plain"
    return (
        f"{stats.n_ff} FF, {len(circuit.gates)} gates "
        f"({flag_text}), delay {delay:.2f}"
    )


def main(argv: list[str] | None = None) -> int:
    """Entry point for the ``mcretime`` console script."""
    parser = argparse.ArgumentParser(
        prog="mcretime", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    parser.add_argument("input", type=Path, help="input netlist (.blif/.v)")
    parser.add_argument("-o", "--output", type=Path, help="output netlist")
    parser.add_argument(
        "--objective", choices=["minarea", "minperiod"], default="minarea"
    )
    parser.add_argument(
        "--target-period", type=float, default=None,
        help="retime for this period instead of the minimum feasible",
    )
    parser.add_argument(
        "--map", action="store_true",
        help="optimise + map to 4-LUTs before retiming (XC4000E flow)",
    )
    parser.add_argument(
        "--delay-model", choices=["unit", "xc4000e"], default=None,
        help="default: xc4000e when --map is given, unit otherwise",
    )
    parser.add_argument(
        "--syntactic-classes", action="store_true",
        help="compare control signals by net name instead of BDD function",
    )
    parser.add_argument(
        "--check", action="store_true",
        help="validate and print stats, don't retime",
    )
    parser.add_argument(
        "--report", action="store_true", help="print the retiming report"
    )
    args = parser.parse_args(argv)

    circuit = load_circuit(args.input)
    check_circuit(circuit)
    model_name = args.delay_model or ("xc4000e" if args.map else "unit")
    model = XC4000E_DELAY if model_name == "xc4000e" else UNIT_DELAY

    print(f"{args.input}: {_stats_line(circuit, model)}")
    if args.check:
        return 0

    if args.map:
        flow = baseline_flow(circuit, model)
        circuit = flow.circuit
        print(f"mapped: {flow.n_lut} LUTs, delay {flow.delay:.2f}")

    result = mc_retime(
        circuit,
        delay_model=model,
        target_period=args.target_period,
        objective=args.objective,
        semantic_classes=not args.syntactic_classes,
    )
    retimed = result.circuit
    check_circuit(retimed)
    print(f"retimed: {_stats_line(retimed, model)}")

    if args.report:
        fractions = result.timing_fractions()
        print(f"  classes          : {result.n_classes}")
        print(
            f"  steps            : {result.steps_moved} moved / "
            f"{result.steps_possible} possible"
        )
        print(
            f"  graph period     : {result.period_before:.2f} -> "
            f"{result.period_after:.2f}"
        )
        print(f"  registers        : {result.ff_before} -> {result.ff_after}")
        print(
            f"  justification    : {result.stats.local_steps} local, "
            f"{result.stats.global_steps} global, "
            f"{result.stats.forward_steps} forward"
        )
        print(
            f"  cpu split        : {100 * fractions['basic_retiming']:.0f}% "
            f"retime / {100 * fractions['relocation']:.0f}% relocate / "
            f"{100 * fractions['mc_overhead']:.0f}% mc overhead"
        )

    if args.output is not None:
        save_circuit(retimed, args.output)
        print(f"wrote {args.output}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
