"""``mcretime`` — retime netlist files from the command line.

Reads extended BLIF (``.blif``/``.mcblif``) or the structural Verilog
subset (``.v``), runs multiple-class retiming (optionally preceded by
optimisation and LUT mapping), and writes the result back in either
format.

Examples::

    mcretime design.blif -o retimed.blif
    mcretime design.v --map --objective minperiod -o out.v
    mcretime design.blif --target-period 12.5 --report
    mcretime design.blif --check          # validate + stats only

Two subcommands run the throughput transforms of :mod:`repro.pipeline`
(see ``docs/PIPELINE.md``) — pipelining (insert K output register
layers, retime to balance) and C-slow (C-way thread interleaving)::

    mcretime pipeline design.blif --stages 3 --report -o out.blif
    mcretime cslow design.blif --factor 3 --verify -o out.blif

Two subcommands expose the batch service layer
(:mod:`repro.service`, see ``docs/SERVICE.md``)::

    mcretime batch designs/ -o retimed/ --workers 4
    mcretime serve --port 8117 --cache-dir ~/.cache/mcretime

``mcretime explain`` answers *why* a retiming result is what it is,
with machine-checkable certificates (see ``docs/EXPLAIN.md``): the
critical cycle pinning the period, the mc-bound / class conflict
clamping a gate, the LP-duality accounting of every register, and a
verified negative-cycle certificate for infeasible targets::

    mcretime explain design.blif --why-period
    mcretime explain design.blif --why-stuck gate_name
    mcretime explain design.blif --why-area --json --out explain.json
    mcretime explain design.blif --target-period 3 --why-infeasible

Distributed tracing & SLOs (see ``docs/OBSERVABILITY.md``): a served
system run with ``--trace-dir`` writes per-process traces that
``mcretime report --stitch`` merges into one wall-clock timeline;
``--critical-path`` attributes request time to queue/intern/solve/
respond; ``mcretime top`` is a live dashboard and ``mcretime slo``
gates rolling-window burn rates::

    mcretime serve --trace-dir traces/ --slo-config slo.json
    mcretime report traces/ --stitch --critical-path --out merged.json
    mcretime top --url http://127.0.0.1:8117
    mcretime slo check --url http://127.0.0.1:8117 --config slo.json

Tracing (see ``docs/OBSERVABILITY.md``): ``--trace out.json`` writes a
Chrome trace_event JSON, ``--log-json run.jsonl`` a structured run log,
``-v`` prints the span summary tree to stderr; ``mcretime report``
renders a saved trace back into that tree::

    mcretime design.blif --trace out.json --log-json run.jsonl -v
    mcretime report run.jsonl

Profiling & the run ledger (same doc): ``--profile out.json`` samples
the run into speedscope flame data, ``--ledger runs.jsonl`` appends a
schema-validated run record; ``mcretime obs diff/check`` compare
ledgers and gate on perf regressions::

    mcretime design.blif --profile flame.json --ledger runs.jsonl
    mcretime obs diff old_runs.jsonl new_runs.jsonl
    mcretime obs check --baseline baseline.jsonl runs.jsonl

Verification (see ``docs/VERIFICATION.md``): ``--verify`` sequentially
checks every transformed netlist against its original with the
bit-parallel coverage-directed checker and fails the run on a
mismatch; ``mcretime fuzz`` differential-fuzzes the whole pipeline::

    mcretime design.blif --map --verify -o out.blif
    mcretime fuzz --rounds 50
    mcretime fuzz --mutate --time-budget 60
"""

from __future__ import annotations

import argparse
import contextlib
import json
import os
import sys
import time
from pathlib import Path

from .. import obs
from ..flows import baseline_flow, cslow_flow, pipeline_flow, retime_flow
from ..mcretime import mc_retime
from ..netlist import (
    Circuit,
    NetlistError,
    check_circuit,
    circuit_stats,
    class_histogram,
    format_class_histogram,
    read_blif,
    read_verilog,
    write_blif,
    write_verilog,
)
from ..pipeline import PipelineError, cslow_retime, pipeline_retime
from ..retime.constraints import InfeasibleConstraints, InfeasibleError
from ..timing import UNIT_DELAY, XC4000E_DELAY, analyze
from ..verify import (
    VerificationError,
    check_cslow,
    check_pipeline,
    check_sequential,
)

#: netlist suffixes ``mcretime batch`` picks up when given a directory
BATCH_SUFFIXES = (".blif", ".mcblif", ".v", ".sv")


def load_circuit(path: Path) -> Circuit:
    """Load a netlist by extension (.v → Verilog, else BLIF)."""
    text = path.read_text()
    if path.suffix in (".v", ".sv"):
        return read_verilog(text)
    return read_blif(text, name_hint=path.stem)


def save_circuit(circuit: Circuit, path: Path) -> None:
    """Write a netlist by extension (.v → Verilog, else BLIF)."""
    if path.suffix in (".v", ".sv"):
        path.write_text(write_verilog(circuit))
    else:
        path.write_text(write_blif(circuit))


def _no_tracing():
    return contextlib.nullcontext()


def _fail(message: str) -> int:
    print(f"mcretime: error: {message}", file=sys.stderr)
    return 1


def _stats_line(circuit: Circuit, delay_model) -> str:
    stats = circuit_stats(circuit)
    delay = analyze(circuit, delay_model).max_delay
    flags = []
    if stats.has_enable:
        flags.append("EN")
    if stats.has_async:
        flags.append("AS/AC")
    flag_text = ",".join(flags) or "plain"
    return (
        f"{stats.n_ff} FF, {len(circuit.gates)} gates "
        f"({flag_text}), delay {delay:.2f}"
    )


def main(argv: list[str] | None = None) -> int:
    """Entry point for the ``mcretime`` console script."""
    argv = list(sys.argv[1:] if argv is None else argv)
    if argv and argv[0] == "serve":
        return _serve_main(argv[1:])
    if argv and argv[0] == "batch":
        return _batch_main(argv[1:])
    if argv and argv[0] == "report":
        return _report_main(argv[1:])
    if argv and argv[0] == "obs":
        return _obs_main(argv[1:])
    if argv and argv[0] == "slo":
        return _slo_main(argv[1:])
    if argv and argv[0] == "top":
        return _top_main(argv[1:])
    if argv and argv[0] == "fuzz":
        return _fuzz_main(argv[1:])
    if argv and argv[0] == "eco":
        return _eco_main(argv[1:])
    if argv and argv[0] == "explain":
        return _explain_main(argv[1:])
    if argv and argv[0] in ("pipeline", "cslow"):
        return _transform_main(argv[0], argv[1:])
    return _retime_main(argv)


# ---------------------------------------------------------------------------
# single-file retiming (the classic CLI)
# ---------------------------------------------------------------------------


def _retime_main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="mcretime", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    parser.add_argument("input", type=Path, help="input netlist (.blif/.v)")
    parser.add_argument("-o", "--output", type=Path, help="output netlist")
    parser.add_argument(
        "--objective", choices=["minarea", "minperiod"], default="minarea"
    )
    parser.add_argument(
        "--target-period", type=float, default=None,
        help="retime for this period instead of the minimum feasible",
    )
    parser.add_argument(
        "--map", action="store_true",
        help="optimise + map to 4-LUTs before retiming (XC4000E flow)",
    )
    parser.add_argument(
        "--delay-model", choices=["unit", "xc4000e"], default=None,
        help="default: xc4000e when --map is given, unit otherwise",
    )
    parser.add_argument(
        "--syntactic-classes", action="store_true",
        help="compare control signals by net name instead of BDD function",
    )
    parser.add_argument(
        "--check", action="store_true",
        help="validate and print stats, don't retime",
    )
    parser.add_argument(
        "--report", action="store_true", help="print the retiming report"
    )
    parser.add_argument(
        "--verify", action="store_true",
        help="sequentially check the result against the input "
        "(coverage-directed bit-parallel refinement check); "
        "a mismatch fails the run with a shrunk counterexample",
    )
    parser.add_argument(
        "--verify-cycles", type=int, default=64, metavar="N",
        help="cycles per verification lane (default 64)",
    )
    parser.add_argument(
        "--trace", type=Path, default=None, metavar="OUT.json",
        help="write a Chrome trace_event JSON (open in Perfetto)",
    )
    parser.add_argument(
        "--log-json", type=Path, default=None, metavar="RUN.jsonl",
        help="write a structured JSONL run log (one event per line)",
    )
    parser.add_argument(
        "-v", "--verbose", action="store_true",
        help="print the trace summary tree to stderr after the run",
    )
    parser.add_argument(
        "--profile", type=Path, default=None, metavar="OUT.json",
        help="sample the run with the built-in profiler and write flame "
        "data (speedscope JSON; .txt/.collapsed for collapsed stacks)",
    )
    parser.add_argument(
        "--profile-interval", type=float, default=0.005, metavar="SECONDS",
        help="sampling interval for --profile (default 5ms)",
    )
    parser.add_argument(
        "--ledger", type=Path, default=None, metavar="RUNS.jsonl",
        help="append one run-ledger record (fingerprint, config, span "
        "self-times, counters, result metrics) to this JSONL file",
    )
    args = parser.parse_args(argv)

    try:
        circuit = load_circuit(args.input)
        check_circuit(circuit)
    except OSError as exc:
        return _fail(f"cannot read {args.input}: {exc.strerror or exc}")
    except NetlistError as exc:
        return _fail(f"{args.input}: {exc}")
    model_name = args.delay_model or ("xc4000e" if args.map else "unit")
    model = XC4000E_DELAY if model_name == "xc4000e" else UNIT_DELAY

    print(f"{args.input}: {_stats_line(circuit, model)}")
    if args.check:
        return 0

    # CLI flags take precedence; the REPRO_TRACE* env vars fill gaps so
    # wrappers can trace without threading flags through their scripts
    trace = args.trace or os.environ.get("REPRO_TRACE") or None
    log_json = args.log_json or os.environ.get("REPRO_TRACE_LOG") or None
    verbose = args.verbose or bool(os.environ.get("REPRO_TRACE_SUMMARY"))
    profile = args.profile or os.environ.get("REPRO_PROFILE") or None
    ledger = args.ledger or os.environ.get("REPRO_LEDGER") or None
    observing = trace or log_json or verbose or profile or ledger

    accepted = True
    verify_check = None
    try:
        with obs.session(
            trace=trace,
            jsonl=log_json,
            summary=verbose,
            meta={
                "input": str(args.input),
                "objective": args.objective,
                "flow": "retime" if args.map else "mcretime",
                "delay_model": model_name,
                "target_period": args.target_period,
            },
            profile=profile,
            profile_interval=args.profile_interval,
            ledger=ledger,
            ledger_kind="cli.retime",
            fingerprint=obs.design_fingerprint(circuit) if ledger else None,
        ) if observing else _no_tracing():
            if args.map:
                # the paper's Table-2 script: optimise + map, retime on
                # the mapped netlist, remap, and keep the better netlist
                # under STA; --verify gates both transform legs
                flow = baseline_flow(
                    circuit, model,
                    verify=args.verify, verify_cycles=args.verify_cycles,
                )
                print(f"mapped: {flow.n_lut} LUTs, delay {flow.delay:.2f}")
                final = retime_flow(
                    circuit,
                    model,
                    objective=args.objective,
                    mapped=flow,
                    target_period=args.target_period,
                    semantic_classes=not args.syntactic_classes,
                    verify=args.verify,
                    verify_cycles=args.verify_cycles,
                )
                result = final.retime
                retimed = final.circuit
                accepted = final.accepted
                verify_check = final.verify or flow.verify
            else:
                result = mc_retime(
                    circuit,
                    delay_model=model,
                    target_period=args.target_period,
                    objective=args.objective,
                    semantic_classes=not args.syntactic_classes,
                )
                retimed = result.circuit
                if args.verify:
                    verify_check = check_sequential(
                        circuit, retimed, cycles=args.verify_cycles
                    )
                    if not verify_check.equivalent:
                        raise VerificationError(verify_check)
            check_circuit(retimed)
            if obs.enabled():
                stats = circuit_stats(retimed)
                obs.annotate(
                    period_before=result.period_before,
                    period_after=result.period_after,
                    ff_before=result.ff_before,
                    ff_after=result.ff_after,
                    n_classes=result.n_classes,
                    n_lut=stats.n_lut,
                    n_gates=len(retimed.gates),
                    delay=analyze(retimed, model).max_delay,
                    accepted=accepted,
                )
    except InfeasibleError as exc:
        # InfeasibleConstraints carries a verified negative-cycle
        # certificate; its one-line summary names the cycle
        detail = (
            exc.summary() if isinstance(exc, InfeasibleConstraints)
            else str(exc)
        )
        return _fail(detail + " (run `mcretime explain --why-infeasible`)")
    except VerificationError as exc:
        return _fail(str(exc))
    if trace:
        print(f"wrote trace to {trace}", file=sys.stderr)
    if log_json:
        print(f"wrote run log to {log_json}", file=sys.stderr)
    if profile:
        print(f"wrote profile to {profile}", file=sys.stderr)
    if ledger:
        print(f"appended run record to {ledger}", file=sys.stderr)
    print(f"retimed: {_stats_line(retimed, model)}")
    if verify_check is not None:
        print(
            f"verified: {verify_check.cycles} cycles x "
            f"{verify_check.lanes} lanes, refinement holds"
        )
    if not accepted:
        print(
            "  (retiming rejected: STA delay regressed on the retimed "
            "netlist; keeping the pre-retiming mapping)"
        )

    if args.report:
        fractions = result.timing_fractions()
        if not accepted:
            print(
                "  retiming REJECTED — the numbers below describe the "
                "discarded attempt; the kept netlist is the baseline"
            )
        print(f"  classes          : {result.n_classes}")
        print(
            f"  steps            : {result.steps_moved} moved / "
            f"{result.steps_possible} possible"
        )
        print(
            f"  graph period     : {result.period_before:.2f} -> "
            f"{result.period_after:.2f}"
        )
        print(f"  registers        : {result.ff_before} -> {result.ff_after}")
        print(
            f"  justification    : {result.stats.local_steps} local, "
            f"{result.stats.global_steps} global, "
            f"{result.stats.forward_steps} forward"
        )
        print(
            f"  cpu split        : {100 * fractions['basic_retiming']:.0f}% "
            f"retime / {100 * fractions['relocation']:.0f}% relocate / "
            f"{100 * fractions['mc_overhead']:.0f}% mc overhead"
        )

    if args.output is not None:
        save_circuit(retimed, args.output)
        print(f"wrote {args.output}")
    return 0


# ---------------------------------------------------------------------------
# incremental (ECO) retiming (docs/ECO.md)
# ---------------------------------------------------------------------------


def _eco_main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="mcretime eco",
        description=(
            "Incrementally retime an edited design against a base "
            "netlist: the solver prefix and solve cache of the base are "
            "reused when the edit allows it, and the result is "
            "bit-identical to a cold retime of the edited design "
            "(docs/ECO.md)."
        ),
    )
    parser.add_argument(
        "input", type=Path, nargs="?",
        help="edited netlist (.blif/.v); omit when --edits is given",
    )
    parser.add_argument(
        "--base", type=Path, required=True, metavar="BASE",
        help="base netlist the edit is diffed against",
    )
    parser.add_argument(
        "--edits", type=Path, default=None, metavar="SCRIPT.json",
        help="JSON edit script applied to the base instead of an "
        "edited netlist (list of op dicts, see docs/ECO.md)",
    )
    parser.add_argument("-o", "--output", type=Path, help="output netlist")
    parser.add_argument(
        "--objective", choices=["minarea", "minperiod"], default="minarea"
    )
    parser.add_argument(
        "--target-period", type=float, default=None,
        help="retime for this period instead of the minimum feasible",
    )
    parser.add_argument(
        "--delay-model", choices=["unit", "xc4000e"], default="unit"
    )
    parser.add_argument(
        "--syntactic-classes", action="store_true",
        help="compare control signals by net name instead of BDD function",
    )
    parser.add_argument(
        "--dirty-threshold", type=float, default=None, metavar="FRACTION",
        help="fall back to a cold solve when the edit touches more than "
        "this fraction of cells (default: the kernel refresh fraction)",
    )
    parser.add_argument(
        "--force-cold", action="store_true",
        help="skip the incremental path (differential debugging)",
    )
    parser.add_argument(
        "--report", action="store_true", help="print the ECO plan report"
    )
    args = parser.parse_args(argv)

    if (args.input is None) == (args.edits is None):
        return _fail("give exactly one of: an edited netlist, or --edits")

    from ..eco import EcoState, eco_retime

    try:
        base = load_circuit(args.base)
        check_circuit(base)
    except OSError as exc:
        return _fail(f"cannot read {args.base}: {exc.strerror or exc}")
    except NetlistError as exc:
        return _fail(f"{args.base}: {exc}")

    if args.edits is not None:
        try:
            script = json.loads(args.edits.read_text())
        except OSError as exc:
            return _fail(f"cannot read {args.edits}: {exc.strerror or exc}")
        except json.JSONDecodeError as exc:
            return _fail(f"{args.edits}: {exc}")
        if not isinstance(script, list):
            return _fail(f"{args.edits}: expected a JSON list of edit ops")
        edit = script
    else:
        try:
            edit = load_circuit(args.input)
            check_circuit(edit)
        except OSError as exc:
            return _fail(f"cannot read {args.input}: {exc.strerror or exc}")
        except NetlistError as exc:
            return _fail(f"{args.input}: {exc}")

    model = XC4000E_DELAY if args.delay_model == "xc4000e" else UNIT_DELAY
    state = EcoState(
        base,
        delay_model=model,
        semantic_classes=not args.syntactic_classes,
    )
    kwargs = {}
    if args.dirty_threshold is not None:
        kwargs["dirty_threshold"] = args.dirty_threshold
    try:
        eco = eco_retime(
            state,
            edit,
            target_period=args.target_period,
            objective=args.objective,
            force_cold=args.force_cold,
            **kwargs,
        )
    except (ValueError, KeyError) as exc:
        return _fail(f"bad edit script: {exc}")
    result = eco.result
    check_circuit(result.circuit)

    plan_text = eco.plan
    if eco.fallback_reason:
        plan_text += f" ({eco.fallback_reason})"
    print(
        f"eco: plan={plan_text} dirty={eco.dirty_fraction:.3f} "
        f"patched={eco.patched_entries}"
    )
    print(f"retimed: {_stats_line(result.circuit, model)}")
    if args.report:
        diff = eco.diff
        print(f"  plan             : {plan_text}")
        if diff is not None:
            print(
                f"  diff             : +{len(diff.added_gates)} "
                f"-{len(diff.removed_gates)} gates, "
                f"{len(diff.retyped_gates)} retyped, "
                f"{len(diff.reset_changed)} resets, "
                f"{len(diff.control_changed)} control"
            )
        print(f"  dirty fraction   : {eco.dirty_fraction:.3f}")
        print(f"  classes          : {result.n_classes}")
        print(
            f"  graph period     : {result.period_before:.2f} -> "
            f"{result.period_after:.2f}"
        )
        print(f"  registers        : {result.ff_before} -> {result.ff_after}")

    if args.output is not None:
        save_circuit(result.circuit, args.output)
        print(f"wrote {args.output}")
    return 0


# ---------------------------------------------------------------------------
# explain mode: certificate-backed "why" reports (docs/EXPLAIN.md)
# ---------------------------------------------------------------------------


def _explain_main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="mcretime explain",
        description=(
            "Explain a retiming result with machine-checkable "
            "certificates (docs/EXPLAIN.md): the critical path and "
            "critical cycle pinning the period, the mc-bound or class "
            "conflict clamping each gate, the LP-duality accounting of "
            "every register, and a verified negative-cycle certificate "
            "when the target period is infeasible.  Every certificate "
            "is re-validated arithmetically before it is printed."
        ),
    )
    parser.add_argument("input", type=Path, help="input netlist (.blif/.v)")
    parser.add_argument(
        "--objective", choices=["minarea", "minperiod"], default="minarea"
    )
    parser.add_argument(
        "--target-period", type=float, default=None,
        help="explain retiming for this period instead of the minimum",
    )
    parser.add_argument(
        "--map", action="store_true",
        help="optimise + map to 4-LUTs first and explain the mapped "
        "retiming (XC4000E flow)",
    )
    parser.add_argument(
        "--delay-model", choices=["unit", "xc4000e"], default=None,
        help="default: xc4000e when --map is given, unit otherwise",
    )
    parser.add_argument(
        "--syntactic-classes", action="store_true",
        help="compare control signals by net name instead of BDD function",
    )
    parser.add_argument(
        "--why-period", action="store_true",
        help="only the period sections: critical-path witness + "
        "negative-cycle lower bound",
    )
    parser.add_argument(
        "--why-area", action="store_true",
        help="only the min-area attribution (LP duality, binding "
        "constraints, per-vertex charges)",
    )
    parser.add_argument(
        "--why-stuck", default=None, metavar="GATE",
        help="explain why GATE's lag is clamped (mc-bound blocker, "
        "class conflict, or tight constraint chain)",
    )
    parser.add_argument(
        "--why-infeasible", action="store_true",
        help="with --target-period: expect infeasibility and print the "
        "verified negative-cycle certificate (exit 0); without it an "
        "infeasible target is an error (exit 1)",
    )
    parser.add_argument(
        "--json", action="store_true",
        help="emit the full explanation as canonical JSON instead of text",
    )
    parser.add_argument(
        "--out", type=Path, default=None,
        help="also write the explanation (JSON) to this file",
    )
    args = parser.parse_args(argv)

    from ..obs import explain as obs_explain

    try:
        circuit = load_circuit(args.input)
        check_circuit(circuit)
    except OSError as exc:
        return _fail(f"cannot read {args.input}: {exc.strerror or exc}")
    except NetlistError as exc:
        return _fail(f"{args.input}: {exc}")
    model_name = args.delay_model or ("xc4000e" if args.map else "unit")
    model = XC4000E_DELAY if model_name == "xc4000e" else UNIT_DELAY

    sections: set[str] = set()
    gate = args.why_stuck
    if args.why_period:
        sections.add("why-period")
    if args.why_area:
        sections.add("why-area")
    if gate is not None:
        sections.update(("why-stuck", "lags"))

    try:
        if args.map:
            flow = retime_flow(
                circuit,
                model,
                objective=args.objective,
                target_period=args.target_period,
                semantic_classes=not args.syntactic_classes,
                explain=True,
            )
            explanation = flow.explain
        else:
            result = mc_retime(
                circuit,
                delay_model=model,
                target_period=args.target_period,
                objective=args.objective,
                semantic_classes=not args.syntactic_classes,
                explain=True,
            )
            explanation = result.explanation
    except InfeasibleConstraints as exc:
        payload = obs_explain.infeasible_payload(exc)
        text = (
            obs_explain.to_json(payload) if args.json
            else obs_explain.render_infeasible(payload)
        )
        print(text)
        if args.out is not None:
            args.out.write_text(obs_explain.to_json(payload) + "\n")
            print(f"wrote {args.out}", file=sys.stderr)
        if not payload["valid"]:
            return _fail("infeasibility certificate failed validation")
        return 0 if args.why_infeasible else 1
    except InfeasibleError as exc:
        return _fail(str(exc))

    if args.why_infeasible:
        return _fail(
            f"--why-infeasible: period "
            f"{explanation['period'] if args.target_period is None else args.target_period} "
            "is feasible (nothing to certify)"
        )
    if args.json:
        print(obs_explain.to_json(explanation))
    else:
        print(
            obs_explain.render_explanation(
                explanation,
                sections=tuple(sections) if sections else None,
                gate=gate,
            )
        )
    if args.out is not None:
        args.out.write_text(obs_explain.to_json(explanation) + "\n")
        print(f"wrote {args.out}", file=sys.stderr)
    if not explanation["valid"]:
        return _fail(
            f"{len(explanation['errors'])} certificate(s) failed validation"
        )
    return 0


# ---------------------------------------------------------------------------
# throughput transforms: pipelining and C-slow (docs/PIPELINE.md)
# ---------------------------------------------------------------------------


def _transform_main(kind: str, argv: list[str]) -> int:
    is_pipe = kind == "pipeline"
    parser = argparse.ArgumentParser(
        prog=f"mcretime {kind}",
        description=(
            "Insert K output register layers and retime to balance them "
            "(latency for clock speed)."
            if is_pipe
            else "C-slow: replicate every register C times (folding "
            "EN/SR/AR per class into the D path) and retime, producing "
            "a C-way thread-interleaved machine."
        ),
    )
    parser.add_argument("input", type=Path, help="input netlist (.blif/.v)")
    parser.add_argument("-o", "--output", type=Path, help="output netlist")
    if is_pipe:
        parser.add_argument(
            "--stages", type=int, default=1, metavar="K",
            help="register layers to insert (default 1; 0 = plain retime)",
        )
    else:
        parser.add_argument(
            "--factor", type=int, default=2, metavar="C",
            help="slowdown factor / thread count (default 2; 1 = plain "
            "retime)",
        )
    parser.add_argument(
        "--objective", choices=["minarea", "minperiod"], default="minperiod",
        help="retiming objective (default minperiod: balancing the new "
        "registers is the point)",
    )
    parser.add_argument(
        "--target-period", type=float, default=None,
        help="retime for this period instead of the minimum feasible",
    )
    parser.add_argument(
        "--map", action="store_true",
        help="run the mapped XC4000E flow (optimise + map first, remap "
        "after) instead of the unit-delay engine transform",
    )
    parser.add_argument(
        "--delay-model", choices=["unit", "xc4000e"], default=None,
        help="default: xc4000e when --map is given, unit otherwise",
    )
    parser.add_argument(
        "--syntactic-classes", action="store_true",
        help="compare control signals by net name instead of BDD function",
    )
    parser.add_argument(
        "--report", action="store_true",
        help="print the retiming engine report",
    )
    parser.add_argument(
        "--verify", action="store_true",
        help="check the result against the input with the "
        + (
            "latency-shifted refinement check"
            if is_pipe
            else "thread-interleaving refinement check"
        )
        + "; a mismatch fails the run",
    )
    parser.add_argument(
        "--verify-cycles", type=int, default=48 if is_pipe else 32,
        metavar="N",
        help="cycles (pipeline) / superperiods (cslow) to compare "
        f"(default {48 if is_pipe else 32})",
    )
    parser.add_argument(
        "--trace", type=Path, default=None, metavar="OUT.json",
        help="write a Chrome trace_event JSON (open in Perfetto)",
    )
    parser.add_argument(
        "--log-json", type=Path, default=None, metavar="RUN.jsonl",
        help="write a structured JSONL run log (one event per line)",
    )
    parser.add_argument(
        "-v", "--verbose", action="store_true",
        help="print the trace summary tree to stderr after the run",
    )
    parser.add_argument(
        "--profile", type=Path, default=None, metavar="OUT.json",
        help="sample the run with the built-in profiler (speedscope JSON)",
    )
    parser.add_argument(
        "--profile-interval", type=float, default=0.005, metavar="SECONDS",
        help="sampling interval for --profile (default 5ms)",
    )
    parser.add_argument(
        "--ledger", type=Path, default=None, metavar="RUNS.jsonl",
        help="append one run-ledger record to this JSONL file",
    )
    args = parser.parse_args(argv)
    amount = args.stages if is_pipe else args.factor

    try:
        circuit = load_circuit(args.input)
        check_circuit(circuit)
    except OSError as exc:
        return _fail(f"cannot read {args.input}: {exc.strerror or exc}")
    except NetlistError as exc:
        return _fail(f"{args.input}: {exc}")
    model_name = args.delay_model or ("xc4000e" if args.map else "unit")
    model = XC4000E_DELAY if model_name == "xc4000e" else UNIT_DELAY

    print(f"{args.input}: {_stats_line(circuit, model)}")
    print(f"  classes: {format_class_histogram(class_histogram(circuit))}")

    trace = args.trace or os.environ.get("REPRO_TRACE") or None
    log_json = args.log_json or os.environ.get("REPRO_TRACE_LOG") or None
    verbose = args.verbose or bool(os.environ.get("REPRO_TRACE_SUMMARY"))
    profile = args.profile or os.environ.get("REPRO_PROFILE") or None
    ledger = args.ledger or os.environ.get("REPRO_LEDGER") or None
    observing = trace or log_json or verbose or profile or ledger

    verify_check = None
    try:
        with obs.session(
            trace=trace,
            jsonl=log_json,
            summary=verbose,
            meta={
                "input": str(args.input),
                "transform": kind,
                ("stages" if is_pipe else "factor"): amount,
                "objective": args.objective,
                "flow": "retime" if args.map else "mcretime",
                "delay_model": model_name,
                "target_period": args.target_period,
            },
            profile=profile,
            profile_interval=args.profile_interval,
            ledger=ledger,
            ledger_kind=f"cli.{kind}",
            fingerprint=obs.design_fingerprint(circuit) if ledger else None,
        ) if observing else _no_tracing():
            if args.map:
                flow_fn = pipeline_flow if is_pipe else cslow_flow
                flow = flow_fn(
                    circuit,
                    amount,
                    model,
                    objective=args.objective,
                    target_period=args.target_period,
                    semantic_classes=not args.syntactic_classes,
                    verify=args.verify,
                    verify_cycles=args.verify_cycles,
                )
                out, retime = flow.circuit, flow.retime
                report = flow.transform
                verify_check = flow.verify
            elif is_pipe:
                res = pipeline_retime(
                    circuit,
                    amount,
                    model,
                    objective=args.objective,
                    target_period=args.target_period,
                    semantic_classes=not args.syntactic_classes,
                )
                out, retime = res.circuit, res.retime
                report = {
                    "kind": "pipeline",
                    "stages": res.stages,
                    "registers_inserted": res.registers_inserted,
                    "period_before": res.period_before,
                    "period_after": res.period_after,
                    "lower_bound": res.lower_bound,
                    "balance_slack": res.balance_slack,
                    "speedup": res.speedup,
                    "classes_before": res.classes_before,
                    "classes_after": res.classes_after,
                }
            else:
                res = cslow_retime(
                    circuit,
                    amount,
                    model,
                    objective=args.objective,
                    target_period=args.target_period,
                    semantic_classes=not args.syntactic_classes,
                )
                out, retime = res.circuit, res.retime
                report = {
                    "kind": "cslow",
                    "factor": res.factor,
                    "registers_replicated": res.registers_replicated,
                    "enables_folded": res.enables_folded,
                    "sync_resets_folded": res.sync_resets_folded,
                    "async_resets_folded": res.async_resets_folded,
                    "period_before": res.period_before,
                    "period_after": res.period_after,
                    "thread_period": res.thread_period,
                    "throughput_gain": res.throughput_gain,
                    "classes_before": res.classes_before,
                    "classes_after": res.classes_after,
                }
            if args.verify and not args.map:
                if is_pipe:
                    verify_check = check_pipeline(
                        circuit, out, shift=amount,
                        cycles=args.verify_cycles,
                    )
                else:
                    verify_check = check_cslow(
                        circuit, out, amount, cycles=args.verify_cycles
                    )
                if not verify_check.equivalent:
                    raise VerificationError(verify_check)
            check_circuit(out)
            if obs.enabled():
                numeric = {
                    k: v for k, v in report.items()
                    if isinstance(v, (int, float)) and not isinstance(v, bool)
                }
                obs.annotate(
                    ff_before=len(circuit.registers),
                    ff_after=len(out.registers),
                    n_gates=len(out.gates),
                    **numeric,
                )
    except PipelineError as exc:
        return _fail(str(exc))
    except InfeasibleError as exc:
        detail = (
            exc.summary() if isinstance(exc, InfeasibleConstraints)
            else str(exc)
        )
        return _fail(detail)
    except VerificationError as exc:
        return _fail(str(exc))
    if trace:
        print(f"wrote trace to {trace}", file=sys.stderr)
    if log_json:
        print(f"wrote run log to {log_json}", file=sys.stderr)
    if profile:
        print(f"wrote profile to {profile}", file=sys.stderr)
    if ledger:
        print(f"appended run record to {ledger}", file=sys.stderr)

    if is_pipe:
        print(
            f"pipelined: period {report['period_before']:.2f} -> "
            f"{report['period_after']:.2f} "
            f"(lower bound {report['lower_bound']:.2f}, "
            f"slack {report['balance_slack']:.2f}, "
            f"speedup {report['speedup']:.2f}x)"
        )
        print(
            f"  inserted {report['registers_inserted']} registers "
            f"({report['stages']} layers); "
            f"FF {len(circuit.registers)} -> {len(out.registers)}"
        )
    else:
        print(
            f"C-slowed: period {report['period_before']:.2f} -> "
            f"{report['period_after']:.2f} "
            f"(thread period {report['thread_period']:.2f}, "
            f"throughput gain {report['throughput_gain']:.2f}x)"
        )
        print(
            f"  replicated {report['registers_replicated']} registers; "
            f"folded {report['enables_folded']} EN / "
            f"{report['sync_resets_folded']} SR / "
            f"{report['async_resets_folded']} AR; "
            f"FF {len(circuit.registers)} -> {len(out.registers)}"
        )
    print(
        f"  classes: {format_class_histogram(report['classes_before'])} "
        f"-> {format_class_histogram(report['classes_after'])}"
    )
    if verify_check is not None:
        print(f"verified: {verify_check.reason}")

    if args.report:
        print(f"  classes          : {retime.n_classes}")
        print(
            f"  steps            : {retime.steps_moved} moved / "
            f"{retime.steps_possible} possible"
        )
        print(
            f"  graph period     : {retime.period_before:.2f} -> "
            f"{retime.period_after:.2f}"
        )
        print(f"  registers        : {retime.ff_before} -> {retime.ff_after}")

    if args.output is not None:
        save_circuit(out, args.output)
        print(f"wrote {args.output}")
    return 0


# ---------------------------------------------------------------------------
# batch mode: fan a directory of netlists across the worker pool
# ---------------------------------------------------------------------------


def _collect_inputs(paths: list[Path]) -> list[Path]:
    files: list[Path] = []
    for path in paths:
        if path.is_dir():
            files.extend(
                p for p in sorted(path.iterdir())
                if p.suffix in BATCH_SUFFIXES and p.is_file()
            )
        else:
            files.append(path)
    return files


def _batch_main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="mcretime batch",
        description=(
            "Retime every netlist in the given files/directories through "
            "the concurrent worker pool, with result caching."
        ),
    )
    parser.add_argument(
        "inputs", type=Path, nargs="+",
        help="netlist files and/or directories to scan for "
        + "/".join(BATCH_SUFFIXES),
    )
    parser.add_argument(
        "-o", "--output-dir", type=Path, default=None,
        help="directory for retimed netlists (default: <input>/retimed)",
    )
    parser.add_argument("--workers", type=int, default=None)
    parser.add_argument(
        "--objective", choices=["minarea", "minperiod"], default="minarea"
    )
    parser.add_argument(
        "--map", action="store_true",
        help="run the full optimise+map+retime+remap flow per design",
    )
    parser.add_argument(
        "--delay-model", choices=["unit", "xc4000e"], default=None
    )
    parser.add_argument("--target-period", type=float, default=None)
    parser.add_argument("--syntactic-classes", action="store_true")
    parser.add_argument(
        "--verify", action="store_true",
        help="sequentially verify each result against its input; "
        "a mismatch fails that job (no retry)",
    )
    parser.add_argument("--verify-cycles", type=int, default=64, metavar="N")
    parser.add_argument(
        "--cache-dir", type=Path, default=None,
        help="persistent result cache (reruns of unchanged designs are free)",
    )
    parser.add_argument("--timeout", type=float, default=600.0)
    parser.add_argument("--retries", type=int, default=2)
    parser.add_argument(
        "--metrics-out", type=Path, default=None,
        help="write Prometheus metrics text here after the run",
    )
    parser.add_argument(
        "--trace-dir", type=Path, default=None,
        help="write one JSONL trace per job here (trace id = job key); "
        "render with `mcretime report <dir>/<id>.jsonl`",
    )
    args = parser.parse_args(argv)

    from ..service import RetimeJob, RetimeService

    files = _collect_inputs(args.inputs)
    if not files:
        return _fail("no netlists found (looked for "
                     + "/".join(BATCH_SUFFIXES) + ")")
    out_dir = args.output_dir
    if out_dir is None:
        base = args.inputs[0] if args.inputs[0].is_dir() else Path.cwd()
        out_dir = base / "retimed"
    out_dir.mkdir(parents=True, exist_ok=True)

    jobs, job_files = [], []
    for path in files:
        try:
            job = RetimeJob.from_file(
                path,
                flow="retime" if args.map else "mcretime",
                objective=args.objective,
                delay_model=args.delay_model,
                target_period=args.target_period,
                semantic_classes=not args.syntactic_classes,
                verify=args.verify,
                verify_cycles=args.verify_cycles,
            )
            job.canonical_key  # parse early: reject bad inputs up front
        except OSError as exc:
            return _fail(f"cannot read {path}: {exc.strerror or exc}")
        except NetlistError as exc:
            return _fail(f"{path}: {exc}")
        jobs.append(job)
        job_files.append(path)

    service = RetimeService(
        workers=args.workers,
        cache_dir=args.cache_dir,
        job_timeout=args.timeout,
        max_retries=args.retries,
        trace_dir=args.trace_dir,
    )
    t0 = time.perf_counter()
    failures = 0
    try:
        results = service.batch(jobs)
        for path, result in zip(job_files, results):
            if result.ok:
                out_path = out_dir / path.name
                out_path.write_text(result.output)
                tag = " [cached]" if result.cached else ""
                tries = (
                    f" after {result.attempts} attempts"
                    if result.attempts > 1 else ""
                )
                print(f"{path.name}: done{tag}{tries} -> {out_path}")
            else:
                failures += 1
                print(
                    f"{path.name}: FAILED ({result.error.type}: "
                    f"{result.error.message})"
                )
        elapsed = time.perf_counter() - t0
        print(
            f"\n{len(jobs)} jobs in {elapsed:.2f}s "
            f"({len(jobs) / max(elapsed, 1e-9):.2f} jobs/s, "
            f"{service.pool.workers} workers), "
            f"cache hit rate {100 * service.cache_hit_rate():.0f}%, "
            f"{failures} failed"
        )
        if args.metrics_out is not None:
            args.metrics_out.write_text(service.metrics.render())
            print(f"wrote metrics to {args.metrics_out}")
    finally:
        service.close()
    return 1 if failures else 0


# ---------------------------------------------------------------------------
# fuzz mode: differential fuzzing of the whole pipeline
# ---------------------------------------------------------------------------


def _fuzz_main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="mcretime fuzz",
        description=(
            "Differential-fuzz the retiming pipeline: random multi-class "
            "designs through prepare+map+mc_retime, every result "
            "refinement-checked with the sequential checker.  --mutate "
            "instead corrupts correct results with known-bad register "
            "moves and demands the checker kill every oracle-confirmed "
            "bad mutant."
        ),
    )
    parser.add_argument("--rounds", type=int, default=20)
    parser.add_argument(
        "--seed", type=int, default=0, help="base seed (round i uses seed+i)"
    )
    parser.add_argument(
        "--cycles", type=int, default=48, help="cycles per checker lane"
    )
    parser.add_argument(
        "--mutate", action="store_true",
        help="mutation mode: fault-inject retimed results, check kill rate",
    )
    parser.add_argument(
        "--time-budget", type=float, default=None, metavar="SECONDS",
        help="stop starting new rounds after this much wall-clock time",
    )
    parser.add_argument(
        "-q", "--quiet", action="store_true",
        help="only print the final summary",
    )
    args = parser.parse_args(argv)

    from ..verify import fuzz_run

    def on_case(case):
        if args.quiet:
            return
        if case.ok:
            tag = f" [{case.mutation}]" if case.mutation else ""
            print(f"  seed {case.seed}: ok{tag}")
        else:
            detail = case.error or (case.check and case.check.reason)
            tag = f" [{case.mutation}]" if case.mutation else ""
            print(f"  seed {case.seed}: FAIL{tag} — {detail}")

    report = fuzz_run(
        rounds=args.rounds,
        seed=args.seed,
        cycles=args.cycles,
        mutate=args.mutate,
        time_budget=args.time_budget,
        on_case=on_case,
    )
    print(f"fuzz: {report.summary()}")
    if args.mutate and report.confirmed:
        print(f"kill rate: {100 * report.kill_rate:.0f}%")
    if not report.ok:
        for case in report.failures:
            detail = case.error or (case.check and case.check.reason)
            print(f"  FAILED seed {case.seed}: {detail}", file=sys.stderr)
        return 1
    return 0


# ---------------------------------------------------------------------------
# report mode: render saved traces into the text summary tree
# ---------------------------------------------------------------------------


def _report_main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="mcretime report",
        description=(
            "Render a saved trace (JSONL run log or Chrome trace JSON, "
            "from --trace/--log-json/REPRO_TRACE*) as a text summary "
            "tree: per-span totals, self times, counters, and gauges."
        ),
    )
    parser.add_argument(
        "trace", type=Path,
        help="trace file: a .jsonl run log or a Chrome trace_event JSON "
        "(with --stitch/--critical-path: a service trace DIRECTORY)",
    )
    parser.add_argument(
        "--top", type=int, default=5,
        help="how many spans to list in the hot-spans section",
    )
    parser.add_argument(
        "--max-depth", type=int, default=6,
        help="maximum span-tree depth to print",
    )
    parser.add_argument(
        "--validate", action="store_true",
        help="check the file against the trace schema and exit",
    )
    parser.add_argument(
        "--stitch", action="store_true",
        help="treat the positional path as a service trace directory and "
        "merge each request's front-end + worker JSONL traces into one "
        "wall-clock-anchored timeline (write Chrome JSON with --out)",
    )
    parser.add_argument(
        "--critical-path", action="store_true",
        help="over stitched traces: attribute each request's wall time to "
        "queue / intern+attach / solve / respond and print the table",
    )
    parser.add_argument(
        "--job", default=None, metavar="ID",
        help="with --stitch/--critical-path: only this job id (or its "
        "16-char prefix)",
    )
    parser.add_argument(
        "--out", type=Path, default=None,
        help="with --stitch: write the merged Chrome trace_event JSON here",
    )
    parser.add_argument(
        "--json", action="store_true",
        help="with --critical-path: emit the per-request attribution as "
        "JSON (requests + sum) instead of the text table",
    )
    args = parser.parse_args(argv)

    if args.stitch or args.critical_path:
        return _report_stitched(args)

    try:
        if args.validate:
            head = args.trace.read_text()[:200].strip()
            if '"traceEvents"' in head:
                errors = obs.chrome_trace_errors(args.trace)
            else:
                errors = obs.jsonl_errors(args.trace)
            if errors:
                # every violation, not just the first — and a non-zero
                # exit so CI steps actually gate on the schema
                for error in errors:
                    print(f"mcretime: error: {error}", file=sys.stderr)
                print(
                    f"{args.trace}: INVALID ({len(errors)} "
                    f"error{'s' if len(errors) != 1 else ''})",
                    file=sys.stderr,
                )
                return 1
            print(f"{args.trace}: OK")
            return 0
        events = obs.load_events(args.trace)
        print(obs.render_summary(events, top=args.top, max_depth=args.max_depth))
    except OSError as exc:
        return _fail(f"cannot read {args.trace}: {exc.strerror or exc}")
    except (ValueError, KeyError) as exc:
        return _fail(f"{args.trace}: {exc}")
    return 0


def _report_stitched(args) -> int:
    """``mcretime report --stitch / --critical-path`` over a trace dir."""
    if not args.trace.is_dir():
        return _fail(
            f"{args.trace}: --stitch/--critical-path expect a service "
            "trace directory (the service's trace_dir)"
        )
    stitched = obs.stitch_dir(args.trace, job=args.job)
    stitched = {key: events for key, events in stitched.items() if events}
    if not stitched:
        return _fail(f"{args.trace}: no traces found")
    if args.stitch:
        print(
            f"stitched {len(stitched)} request(s) from {args.trace} "
            "(coverage = request wall time accounted by child spans):"
        )
        worst = 1.0
        for key, events in stitched.items():
            for line in obs.request_timelines(events):
                worst = min(worst, line["coverage"])
                print(
                    f"  {key:<18} {line['duration'] * 1e3:8.1f}ms  "
                    f"coverage {line['coverage'] * 100:5.1f}%  "
                    f"({line['children']} child span(s))"
                )
        if args.out is not None:
            obs.write_chrome(stitched, args.out)
            print(f"wrote merged Chrome trace: {args.out}")
        if worst < 0.9:
            print(
                "mcretime report: WARNING: a request's timeline covers "
                f"only {worst * 100:.1f}% of its wall time",
                file=sys.stderr,
            )
    if args.critical_path:
        analysis = obs.critical_path(stitched)
        if args.json:
            print(json.dumps(analysis, indent=2, sort_keys=True))
        else:
            print(obs.render_critical_path(analysis))
    return 0


# ---------------------------------------------------------------------------
# obs mode: the run-ledger perf sentinel
# ---------------------------------------------------------------------------


def _obs_main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="mcretime obs",
        description=(
            "Compare run-ledger files (see docs/OBSERVABILITY.md): "
            "`diff` prints per-span deltas between two ledgers; `check` "
            "gates a ledger against a baseline and exits non-zero on a "
            "perf regression (the CI perf-sentinel contract)."
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def _common(p):
        p.add_argument(
            "--threshold", type=float, default=None,
            help="regression ratio (default 1.5 absolute, 1.8 relative)",
        )
        p.add_argument(
            "--min-seconds", type=float, default=0.005,
            help="absolute noise floor in seconds (default 5ms)",
        )
        p.add_argument(
            "--window", type=int, default=5,
            help="median-of-k window over the newest runs per group",
        )
        p.add_argument(
            "--mode", choices=["absolute", "relative"], default="absolute",
            help="absolute seconds (same machine) or share-of-run "
            "(portable across machine speeds)",
        )
        p.add_argument(
            "--top", type=int, default=0,
            help="only print the N largest deltas (default: all)",
        )

    p_diff = sub.add_parser(
        "diff", help="per-span deltas between two ledger files"
    )
    p_diff.add_argument("baseline", type=Path)
    p_diff.add_argument("current", type=Path)
    _common(p_diff)

    p_check = sub.add_parser(
        "check", help="gate a ledger against a baseline (exit 1 on regression)"
    )
    p_check.add_argument(
        "current", type=Path, nargs="?", default=None,
        help="ledger under test (default: the baseline itself — a "
        "self-check that always passes unless --inject-slowdown is set)",
    )
    p_check.add_argument(
        "--baseline", type=Path, required=True,
        help="the committed baseline ledger to compare against",
    )
    p_check.add_argument(
        "--inject-slowdown", type=float, default=None, metavar="FACTOR",
        help="multiply every current span time by FACTOR before comparing "
        "(CI smoke hook: proves the gate fires on a synthetic slowdown)",
    )
    _common(p_check)

    args = parser.parse_args(argv)
    from ..obs import sentinel

    threshold = args.threshold
    if threshold is None:
        threshold = 1.5 if args.mode == "absolute" else 1.8

    try:
        if args.command == "diff":
            report = sentinel.diff(
                sentinel.load_records(args.baseline),
                sentinel.load_records(args.current),
                threshold=threshold,
                min_seconds=args.min_seconds,
                window=args.window,
                mode=args.mode,
            )
        else:
            current = args.current or args.baseline
            report = sentinel.check(
                args.baseline,
                current,
                threshold=threshold,
                min_seconds=args.min_seconds,
                window=args.window,
                mode=args.mode,
                inject_slowdown=args.inject_slowdown,
            )
    except OSError as exc:
        return _fail(f"cannot read ledger: {exc.strerror or exc}")
    except ValueError as exc:
        return _fail(str(exc))

    print(report.render(top=args.top))
    if not report.deltas and not report.unmatched:
        return _fail("no comparable records (empty or disjoint ledgers)")
    if not report.ok:
        print(
            f"mcretime obs: {len(report.regressions)} span(s) regressed "
            f"beyond {threshold:.2f}x",
            file=sys.stderr,
        )
        return 1
    return 0


# ---------------------------------------------------------------------------
# slo mode: service-level-objective burn rates
# ---------------------------------------------------------------------------


def _slo_main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="mcretime slo",
        description=(
            "Service-level objectives (see docs/OBSERVABILITY.md): `show` "
            "prints the rolling-window burn rates of a live server; "
            "`check` gates them (or a run ledger) against an SLO config "
            "and exits non-zero when any objective is burning."
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def _common(p):
        p.add_argument(
            "--url", default=None, metavar="URL",
            help="base URL of a live mcretime service (GET /slo)",
        )
        p.add_argument(
            "--ledger", type=Path, default=None,
            help="offline mode: replay service.job records from this run "
            "ledger instead of querying a server",
        )
        p.add_argument(
            "--config", type=Path, default=None,
            help="SLO config JSON (window_seconds / latency_p95_seconds / "
            "error_rate / shed_rate); defaults to the server's own config",
        )

    p_show = sub.add_parser("show", help="print current burn rates")
    _common(p_show)
    p_check = sub.add_parser(
        "check", help="gate burn rates against the config (exit 1 on burn)"
    )
    _common(p_check)
    p_check.add_argument(
        "--inject-latency", type=float, default=None, metavar="FACTOR",
        help="multiply the observed p95 by FACTOR before judging "
        "(CI smoke hook: proves the gate fires on a degraded service)",
    )
    args = parser.parse_args(argv)

    if (args.url is None) == (args.ledger is None):
        return _fail("exactly one of --url / --ledger is required")
    config = None
    if args.config is not None:
        try:
            config = obs.SLOConfig.load(args.config)
        except (OSError, ValueError, TypeError) as exc:
            return _fail(f"cannot load SLO config {args.config}: {exc}")

    inject = getattr(args, "inject_latency", None)
    if args.ledger is not None:
        from ..obs import sentinel

        if config is None:
            return _fail("--ledger mode requires --config")
        try:
            records = sentinel.load_records(args.ledger)
        except OSError as exc:
            return _fail(f"cannot read {args.ledger}: {exc.strerror or exc}")
        ok, messages, status = obs.check_records(
            records, config, inject_latency=inject
        )
    else:
        from ..service import RetimeClient, ServiceError

        try:
            with RetimeClient(args.url, timeout=30.0) as client:
                status = client.slo()
        except (ServiceError, OSError, ValueError) as exc:
            return _fail(f"cannot query {args.url}: {exc}")
        if config is not None:
            status = obs.reevaluate(status, config)
        ok, messages = obs.evaluate(status, inject_latency=inject)

    print(obs.render_status(status))
    if args.command == "show":
        return 0
    for message in messages:
        print(message)
    if not ok:
        print("mcretime slo: SLO check FAILED", file=sys.stderr)
        return 1
    print("mcretime slo: all objectives within budget")
    return 0


# ---------------------------------------------------------------------------
# top mode: live terminal dashboard over a running service
# ---------------------------------------------------------------------------


def _top_main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="mcretime top",
        description=(
            "Live terminal dashboard over a running mcretime service: "
            "queue depth, per-shard utilization, throughput, p95 latency, "
            "and SLO burn rates, refreshed in place (Ctrl-C to quit)."
        ),
    )
    parser.add_argument(
        "--url", default="http://127.0.0.1:8117",
        help="base URL of the service (default %(default)s)",
    )
    parser.add_argument(
        "--interval", type=float, default=2.0,
        help="refresh interval in seconds (default %(default)s)",
    )
    parser.add_argument(
        "--once", action="store_true",
        help="render a single frame and exit (no screen clearing; for "
        "CI logs and piping)",
    )
    args = parser.parse_args(argv)

    from ..service import RetimeClient, ServiceError
    from .top import render_frame

    with RetimeClient(args.url, timeout=10.0) as client:
        while True:
            try:
                frame = render_frame(client, args.url)
            except (ServiceError, OSError, ValueError) as exc:
                return _fail(f"cannot query {args.url}: {exc}")
            if args.once:
                print(frame)
                return 0
            # ANSI home+clear keeps the frame in place without flicker
            sys.stdout.write("\x1b[H\x1b[2J" + frame + "\n")
            sys.stdout.flush()
            try:
                time.sleep(max(0.2, args.interval))
            except KeyboardInterrupt:
                return 0


# ---------------------------------------------------------------------------
# serve mode: the HTTP JSON API
# ---------------------------------------------------------------------------


def _serve_main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="mcretime serve",
        description="Serve retiming over HTTP (POST /retime, GET /jobs/<id>, "
        "GET /healthz, GET /metrics, GET /slo, GET /trace/<id>, GET /runs, "
        "GET /debug/profile).",
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=8117)
    parser.add_argument("--workers", type=int, default=None)
    parser.add_argument("--cache-dir", type=Path, default=None)
    parser.add_argument("--cache-memory", type=int, default=128)
    parser.add_argument("--timeout", type=float, default=600.0)
    parser.add_argument("--retries", type=int, default=2)
    parser.add_argument(
        "--ledger", type=Path, default=None,
        help="append one run-ledger record per executed job here "
        "(served back by GET /runs)",
    )
    parser.add_argument(
        "--max-pending", type=int, default=None, metavar="N",
        help="bound the admission queue at N in-flight jobs; beyond it "
        "POST /retime sheds load with 429 + Retry-After "
        "(default: unbounded)",
    )
    parser.add_argument(
        "--no-scaleout", action="store_true",
        help="disable shared-memory design interning and ship full "
        "netlists to workers (legacy dispatch path)",
    )
    parser.add_argument(
        "--preload", type=Path, action="append", default=[],
        metavar="NETLIST",
        help="intern this design before the pool forks so workers "
        "inherit it copy-on-write (repeatable)",
    )
    parser.add_argument(
        "--trace-dir", type=Path, default=None, metavar="DIR",
        help="distributed tracing: workers write per-job JSONL traces "
        "here and the front-end writes one request log per job; stitch "
        "them with `mcretime report --stitch DIR` and query live via "
        "GET /trace/<id>",
    )
    parser.add_argument(
        "--slo-config", type=Path, default=None, metavar="JSON",
        help="SLO config JSON backing GET /slo and `mcretime slo check` "
        "(default: built-in targets)",
    )
    parser.add_argument(
        "--start-method", choices=["fork", "spawn", "forkserver"],
        default=None,
        help="multiprocessing start method for pool workers "
        "(default: platform default)",
    )
    parser.add_argument(
        "--no-telemetry", action="store_true",
        help="disable the worker→supervisor telemetry bus (live traces "
        "of in-flight jobs and bus metrics)",
    )
    args = parser.parse_args(argv)

    from ..service import RetimeService, serve_forever

    service = RetimeService(
        workers=args.workers,
        cache_dir=args.cache_dir,
        cache_memory=args.cache_memory,
        job_timeout=args.timeout,
        max_retries=args.retries,
        ledger=args.ledger,
        max_pending=args.max_pending,
        scaleout=False if args.no_scaleout else None,
        preload=args.preload or None,
        trace_dir=args.trace_dir,
        slo=args.slo_config,
        telemetry=not args.no_telemetry,
        start_method=args.start_method,
    )
    print(
        f"mcretime service on http://{args.host}:{args.port} "
        f"({service.pool.workers} workers"
        + (", scale-out" if service.scaleout else ", legacy dispatch")
        + (f", max-pending {args.max_pending}" if args.max_pending else "")
        + (f", cache {args.cache_dir}" if args.cache_dir else "")
        + (f", ledger {args.ledger}" if args.ledger else "")
        + (f", traces {args.trace_dir}" if args.trace_dir else "")
        + (f", slo {args.slo_config}" if args.slo_config else "")
        + ")"
    )
    serve_forever(service, host=args.host, port=args.port)
    return 0


if __name__ == "__main__":
    sys.exit(main())
