"""``mcretime top`` — live terminal dashboard over a running service.

One frame per refresh, built from three endpoints of the service under
observation: ``GET /healthz`` (worker/job counts), ``GET /metrics``
(queue depth, per-shard utilization and backlog, cumulative counters),
and ``GET /slo`` (rolling-window throughput, p95 latency, and burn
rates from :mod:`repro.obs.slo`).

Keys shown per frame (see docs/OBSERVABILITY.md):

* ``queue``   — jobs admitted but not yet dispatched (+ the bound);
* ``shards``  — one bar per shard slot: utilization since start, queue
  backlog, ``*`` when currently busy is implied by utilization;
* ``thruput`` — completed requests per second over the SLO window;
* ``p95``     — end-to-end request latency p95 over the SLO window;
* ``slo``     — per-objective burn rates (>1.0 = burning);
* ``totals``  — cumulative submitted/completed/failed/shed/stolen.

The module is import-light: everything works against the parsed
Prometheus text, so it runs on the same stdlib-only footing as the
client.
"""

from __future__ import annotations

from typing import Any

__all__ = ["parse_metrics", "render_frame"]


def parse_metrics(text: str) -> dict[str, dict[tuple, float]]:
    """Parse Prometheus exposition text into ``{name: {labels: value}}``.

    Labels are normalised to a sorted ``((key, value), ...)`` tuple.
    Exemplar suffixes (`` # {...} v``) and comment lines are ignored —
    this is a dashboard's reader, not a full OpenMetrics parser.
    """
    out: dict[str, dict[tuple, float]] = {}
    for line in text.splitlines():
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        line = line.split(" # ", 1)[0].strip()  # drop exemplar suffix
        try:
            series, value_text = line.rsplit(" ", 1)
            value = float(value_text)
        except ValueError:
            continue
        if "{" in series:
            name, _, label_text = series.partition("{")
            label_text = label_text.rstrip("}")
            labels = []
            for part in label_text.split(","):
                if not part:
                    continue
                key, _, raw = part.partition("=")
                labels.append((key.strip(), raw.strip().strip('"')))
            key_tuple = tuple(sorted(labels))
        else:
            name, key_tuple = series, ()
        out.setdefault(name, {})[key_tuple] = value
    return out


def _series_value(
    metrics: dict, name: str, default: float = 0.0, **labels: str
) -> float:
    wanted = tuple(sorted((k, str(v)) for k, v in labels.items()))
    return metrics.get(name, {}).get(wanted, default)


def _series_total(metrics: dict, name: str) -> float:
    return sum(metrics.get(name, {}).values())


def _bar(fraction: float, width: int = 20) -> str:
    filled = int(round(max(0.0, min(1.0, fraction)) * width))
    return "#" * filled + "." * (width - filled)


def render_frame(client: Any, url: str) -> str:
    """One dashboard frame for the service behind *client*."""
    health = client.healthz()
    slo = client.slo()
    metrics = parse_metrics(client.metrics_text())

    observed = slo.get("observed", {})
    jobs = health.get("jobs", {})
    depth = health.get("queue_depth", 0)
    max_pending = _series_value(metrics, "repro_pool_max_pending", 0.0)
    uptime = _series_value(metrics, "repro_process_uptime_seconds")

    lines = [
        f"mcretime top — {url}  "
        f"(workers {health.get('workers', '?')}, "
        f"{'scale-out' if health.get('scaleout') else 'legacy dispatch'}, "
        f"up {uptime:.0f}s)",
        "",
        f"queue   : {depth} pending"
        + (f" / {int(max_pending)} max" if max_pending else "")
        + f"   running {jobs.get('running', 0)}  "
        f"retrying {jobs.get('retrying', 0)}",
        f"thruput : {observed.get('throughput_per_second', 0.0):.3f} req/s "
        f"over the {slo.get('window_seconds', 0):.0f}s window",
        f"p95     : {observed.get('latency_p95_seconds', 0.0) * 1e3:.1f}ms "
        f"end-to-end ({observed.get('completed', 0)} completed)",
        "",
        "shards  : util (since start)        depth",
    ]
    shard_util = metrics.get("repro_shard_utilization", {})
    for key in sorted(shard_util):
        slot = dict(key).get("shard", "?")
        util = shard_util[key]
        backlog = _series_value(
            metrics, "repro_shard_queue_depth", shard=str(slot)
        )
        lines.append(
            f"  [{slot:>2}]  {_bar(util)} {util * 100:5.1f}%   {int(backlog)}"
        )
    if not shard_util:
        lines.append("  (no shard metrics exposed)")

    lines.append("")
    lines.append("slo     : burn rates (>1.0 = burning)")
    for objective in slo.get("slos", ()):
        lines.append(
            f"  {'ok ' if objective['ok'] else 'BURN'} "
            f"{objective['name']:<22} "
            f"{objective['burn_rate']:6.2f}  "
            f"(observed {objective['observed']:.4g} / "
            f"target {objective['target']:.4g})"
        )

    bus_events = _series_total(metrics, "repro_bus_events_total")
    bus_live = _series_value(metrics, "repro_bus_live_traces")
    if bus_events:
        lines.append("")
        lines.append(
            f"bus     : {int(bus_events)} events drained, "
            f"{int(bus_live)} live trace(s)"
        )

    lines.append("")
    lines.append(
        "totals  : "
        f"submitted {int(_series_total(metrics, 'repro_jobs_submitted_total'))}  "
        f"completed {int(_series_total(metrics, 'repro_jobs_completed_total'))}  "
        f"failed {int(_series_total(metrics, 'repro_jobs_failed_total'))}  "
        f"shed {int(_series_total(metrics, 'repro_jobs_shed_total'))}  "
        f"stolen {int(_series_total(metrics, 'repro_jobs_stolen_total'))}  "
        f"cache-hit {health.get('cache_hit_rate', 0.0) * 100:.1f}%"
    )
    return "\n".join(lines)
