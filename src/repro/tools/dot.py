"""GraphViz DOT export for circuits and retiming graphs (debug aid)."""

from __future__ import annotations

import io
from typing import TextIO

from ..graph.retiming_graph import RetimingGraph
from ..logic.ternary import ternary_char
from ..netlist import Circuit
from ..netlist.signals import is_const

_KIND_STYLE = {
    "gate": 'shape=box',
    "input": 'shape=invtriangle, style=filled, fillcolor="#cce5ff"',
    "output": 'shape=triangle, style=filled, fillcolor="#ffe0cc"',
    "host": 'shape=doublecircle, style=filled, fillcolor="#eeeeee"',
    "ctrl": 'shape=triangle, style=filled, fillcolor="#f5ccff"',
    "sep": 'shape=point, width=0.15',
    "mirror": 'shape=diamond, style=dashed',
}


def graph_to_dot(
    graph: RetimingGraph,
    r: dict[str, int] | None = None,
    stream: TextIO | None = None,
) -> str:
    """Render a retiming graph; edge labels show (retimed) weights and
    register class sequences, vertex labels show delay and lag."""
    out = io.StringIO()
    out.write(f'digraph "{graph.name}" {{\n  rankdir=LR;\n')
    for vertex in graph.vertices.values():
        style = _KIND_STYLE.get(vertex.kind, "shape=box")
        label = vertex.name
        if vertex.delay:
            label += f"\\nd={vertex.delay:g}"
        if r and r.get(vertex.name):
            label += f"\\nr={r[vertex.name]}"
        out.write(f'  "{vertex.name}" [label="{label}", {style}];\n')
    for edge in graph.iter_edges():
        w = edge.w + (r or {}).get(edge.v, 0) - (r or {}).get(edge.u, 0)
        label = str(w) if w else ""
        if edge.regs:
            classes = ",".join(f"C{reg.cls}" for reg in edge.regs)
            label += f" [{classes}]"
        attrs = f'label="{label}"'
        if w:
            attrs += ", penwidth=2"
        out.write(f'  "{edge.u}" -> "{edge.v}" [{attrs}];\n')
    out.write("}\n")
    text = out.getvalue()
    if stream is not None:
        stream.write(text)
    return text


def circuit_to_dot(circuit: Circuit, stream: TextIO | None = None) -> str:
    """Render a circuit netlist; registers are rectangles annotated with
    their control pins and reset values."""
    out = io.StringIO()
    out.write(f'digraph "{circuit.name}" {{\n  rankdir=LR;\n')
    for net in circuit.inputs:
        out.write(f'  "{net}" [shape=invtriangle, label="{net}"];\n')
    for gate in circuit.gates.values():
        out.write(
            f'  "{gate.name}" [shape=box, label="{gate.name}\\n'
            f'{gate.fn.value}"];\n'
        )
    for reg in circuit.registers.values():
        pins = []
        if reg.en is not None:
            pins.append("EN")
        if reg.sr is not None:
            pins.append(f"SR={ternary_char(reg.sval)}")
        if reg.ar is not None:
            pins.append(f"AR={ternary_char(reg.aval)}")
        label = reg.name + ("\\n" + " ".join(pins) if pins else "")
        out.write(
            f'  "{reg.name}" [shape=box, style="rounded,filled", '
            f'fillcolor="#ccffcc", label="{label}"];\n'
        )

    def source_of(net: str) -> str | None:
        drv = circuit.driver(net)
        if drv is None or drv[0] == "const":
            return None
        return drv[1] if drv[0] != "input" else net

    for gate in circuit.gates.values():
        for net in gate.inputs:
            src = source_of(net)
            if src is not None:
                out.write(f'  "{src}" -> "{gate.name}";\n')
    for reg in circuit.registers.values():
        src = source_of(reg.d)
        if src is not None:
            out.write(f'  "{src}" -> "{reg.name}";\n')
        for pin, net in (("en", reg.en), ("sr", reg.sr), ("ar", reg.ar)):
            if net is None or is_const(net):
                continue
            src = source_of(net)
            if src is not None:
                out.write(
                    f'  "{src}" -> "{reg.name}" '
                    f'[style=dashed, label="{pin}"];\n'
                )
    for index, net in enumerate(circuit.outputs):
        port = f"out{index}"
        out.write(f'  "{port}" [shape=triangle, label="{net}"];\n')
        src = source_of(net)
        if src is not None:
            out.write(f'  "{src}" -> "{port}";\n')
    out.write("}\n")
    text = out.getvalue()
    if stream is not None:
        stream.write(text)
    return text
