"""Command-line tools and export utilities."""

from .dot import circuit_to_dot, graph_to_dot

__all__ = ["circuit_to_dot", "graph_to_dot"]
