"""Xilinx XC4000E architecture model (paper Sec. 6 target).

The relevant architectural facts (from the 1996 Programmable Logic Data
Book, mirrored by the paper's experimental setup):

* each CLB offers 4-input function generators — we model plain 4-LUTs;
* every CLB flip-flop has a clock enable (EN) and an asynchronous set
  *or* reset, but **no synchronous set/clear** — so SS/SC pins must be
  decomposed into logic before mapping (exactly what the paper does);
* delays come from :class:`repro.timing.delay_models.XC4000EDelayModel`.

:func:`prepare` performs the architecture legalisation;
:func:`check_mapped` verifies a netlist is implementable.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..netlist import Circuit, GateFn
from ..timing.delay_models import XC4000E_DELAY, XC4000EDelayModel
from .decompose import decompose_sync_resets


class ArchitectureError(Exception):
    """Raised when a netlist cannot be implemented on the target."""


@dataclass(frozen=True)
class XC4000E:
    """Architecture capability record."""

    lut_inputs: int = 4
    ff_has_enable: bool = True
    ff_has_async: bool = True
    ff_has_sync: bool = False
    delay_model: XC4000EDelayModel = XC4000E_DELAY

    def prepare(self, circuit: Circuit) -> int:
        """Legalise registers in place (decompose SS/SC); returns #hit."""
        return decompose_sync_resets(circuit)

    def check_mapped(self, circuit: Circuit) -> None:
        """Raise :class:`ArchitectureError` on unimplementable cells."""
        for gate in circuit.gates.values():
            if gate.fn is GateFn.CARRY:
                continue  # dedicated carry-chain resource
            if gate.fn is not GateFn.LUT:
                raise ArchitectureError(
                    f"gate {gate.name!r} is not a LUT (run map_luts)"
                )
            if gate.n_inputs > self.lut_inputs:
                raise ArchitectureError(
                    f"LUT {gate.name!r} has {gate.n_inputs} inputs "
                    f"(max {self.lut_inputs})"
                )
        for reg in circuit.registers.values():
            if reg.has_sync_reset and not self.ff_has_sync:
                raise ArchitectureError(
                    f"register {reg.name!r} uses a synchronous set/clear"
                )
            if reg.has_enable and not self.ff_has_enable:
                raise ArchitectureError(
                    f"register {reg.name!r} uses a clock enable"
                )
            if reg.has_async_reset and not self.ff_has_async:
                raise ArchitectureError(
                    f"register {reg.name!r} uses an async set/clear"
                )


#: Shared architecture instance.
XC4000E_ARCH = XC4000E()
