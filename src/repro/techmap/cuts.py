"""K-feasible cut enumeration with priority pruning.

Classic technology-mapping machinery: for every gate (in topological
order) compute a bounded list of *cuts* — sets of nets that completely
cover a cone feeding the gate with at most K leaves.  Cut lists are
merged pairwise from the fanins (run :func:`~repro.techmap.decompose.
decompose_to_two_input` first so merges stay quadratic) and pruned to
the best few by (depth, size): the priority-cuts heuristic.

Depth bookkeeping follows the standard recurrence: the depth of a cut
is ``1 + max(best_depth(leaf))``, where a leaf's best depth is the
depth of its own best cut (0 for primary inputs / register outputs).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..netlist import Circuit, GateFn
from ..netlist.signals import is_const


@dataclass(frozen=True)
class Cut:
    """One cut: leaf nets plus its mapped depth."""

    leaves: frozenset[str]
    depth: int


@dataclass
class CutDatabase:
    """Per-net cut lists plus the chosen best cut."""

    cuts: dict[str, list[Cut]]
    best: dict[str, Cut]
    k: int

    def depth_of(self, net: str) -> int:
        """Mapped depth of a net (leaves are 0)."""
        cut = self.best.get(net)
        return 0 if cut is None else cut.depth


def enumerate_cuts(
    circuit: Circuit, k: int = 4, priority: int = 8, mode: str = "depth"
) -> CutDatabase:
    """Enumerate priority cuts for every gate output net.

    Leaves are primary inputs, register outputs and any net not driven
    by a gate.  Constant nets never appear as leaves (fold them with the
    optimizer first; stray ones are ignored, which keeps the cut a
    superset cover — safe, mildly pessimistic on LUT inputs).

    ``mode`` selects the best-cut criterion:

    * ``"depth"`` — minimum mapped depth, ties by cut size (the paper's
      "minimal area for best delay" script);
    * ``"area"`` — minimum *area flow* (estimated LUTs per output,
      sharing-aware via fanout division), ties by depth — the classic
      area-oriented objective for the plain "minimal area" script.
    """
    if mode not in ("depth", "area"):
        raise ValueError(f"unknown mapping mode {mode!r}")
    cuts: dict[str, list[Cut]] = {}
    best: dict[str, Cut] = {}
    area_flow: dict[str, float] = {}
    fanout = (
        {net: max(1, len(circuit.readers(net))) for net in circuit.nets()}
        if mode == "area"
        else {}
    )

    def best_depth(net: str) -> int:
        chosen = best.get(net)
        return 0 if chosen is None else chosen.depth

    def flow_of(leaves: frozenset[str]) -> float:
        total = 1.0
        for leaf in leaves:
            total += area_flow.get(leaf, 0.0) / fanout.get(leaf, 1)
        return total

    carry_outputs: set[str] = set()
    for gate in circuit.topo_gates():
        if gate.fn is GateFn.CARRY:
            # architectural primitive: kept as-is; its output is a hard
            # boundary for covering, like a register output, and it adds
            # (almost) no LUT depth of its own
            depth = max(
                (best_depth(n) for n in gate.inputs if not is_const(n)),
                default=0,
            )
            cut = Cut(frozenset((gate.output,)), depth)
            cuts[gate.output] = [cut]
            best[gate.output] = cut
            carry_outputs.add(gate.output)
            if mode == "area":
                area_flow[gate.output] = 0.0
            continue
        fanin_options: list[list[frozenset[str]]] = []
        for net in gate.inputs:
            if is_const(net):
                continue
            options = [frozenset((net,))]
            if circuit.driver_gate(net) is not None and net not in carry_outputs:
                options.extend(c.leaves for c in cuts.get(net, ()))
            fanin_options.append(options)

        merged: set[frozenset[str]] = {frozenset()}
        for options in fanin_options:
            next_level: set[frozenset[str]] = set()
            for acc in merged:
                for option in options:
                    combo = acc | option
                    if len(combo) <= k:
                        next_level.add(combo)
            merged = next_level
            if not merged:
                break

        candidates = [
            Cut(leaves, 1 + max((best_depth(n) for n in leaves), default=0))
            for leaves in merged
        ]
        if not candidates:
            candidates = [Cut(frozenset(), 1)]
        if mode == "area":
            candidates.sort(
                key=lambda c: (
                    flow_of(c.leaves),
                    c.depth,
                    len(c.leaves),
                    sorted(c.leaves),
                )
            )
        else:
            candidates.sort(
                key=lambda c: (c.depth, len(c.leaves), sorted(c.leaves))
            )
        pruned: list[Cut] = []
        for cand in candidates:
            if any(
                p.leaves <= cand.leaves and p.depth <= cand.depth
                for p in pruned
            ):
                continue
            pruned.append(cand)
            if len(pruned) >= priority:
                break
        cuts[gate.output] = pruned
        best[gate.output] = pruned[0]
        if mode == "area":
            area_flow[gate.output] = flow_of(pruned[0].leaves)
    return CutDatabase(cuts, best, k)
