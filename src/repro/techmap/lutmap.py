"""Depth-oriented K-LUT technology mapping.

Pipeline: optimise → decompose to 2-input gates → enumerate priority
cuts → cover from the required nets (primary outputs and every register
pin) choosing each net's best cut → emit one LUT per chosen cut with
the cone's composed truth table.

Covered nets keep their names, so register connections (including
control pins) survive mapping untouched — important because register
classification compares control *functions* and the functions are
preserved exactly.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..netlist import Circuit, GateFn
from ..netlist.signals import is_const
from ..opt.passes import optimize
from .cuts import Cut, CutDatabase, enumerate_cuts
from .decompose import decompose_to_two_input


@dataclass
class MapResult:
    """Outcome of a mapping run."""

    circuit: Circuit
    n_luts: int
    depth: int


def cone_truth_table(
    circuit: Circuit,
    root: str,
    leaves: list[str],
    topo_index: dict[str, int] | None = None,
) -> int:
    """Truth table of net *root* as a function of *leaves*.

    Brute-force over the ≤ 2^K leaf assignments, evaluating the cone
    gate by gate — exact and simple (K ≤ 4 post-mapping ⇒ ≤ 16 sweeps).
    A precomputed gate-name→topological-index map avoids re-sorting the
    whole netlist per cone.
    """
    from ..netlist.signals import const_value

    if topo_index is None:
        topo_index = {g.name: i for i, g in enumerate(circuit.topo_gates())}
    leaf_set = set(leaves)
    cone: list = []
    seen: set[str] = set()
    stack = [root]
    while stack:
        net = stack.pop()
        if net in leaf_set or net in seen:
            continue
        seen.add(net)
        gate = circuit.driver_gate(net)
        if gate is not None:
            cone.append(gate)
            stack.extend(gate.inputs)
    cone.sort(key=lambda g: topo_index[g.name])
    table = 0
    for assignment in range(1 << len(leaves)):
        values = {
            leaf: (assignment >> i) & 1 for i, leaf in enumerate(leaves)
        }
        for gate in cone:
            ins = []
            for net in gate.inputs:
                if is_const(net):
                    ins.append(const_value(net))
                else:
                    ins.append(values.get(net, 0))
            values[gate.output] = gate.eval_binary(ins)
        if values.get(root, 0):
            table |= 1 << assignment
    return table


def _required_nets(circuit: Circuit) -> list[str]:
    required: dict[str, None] = {}
    for net in circuit.outputs:
        required.setdefault(net)
    for reg in circuit.registers.values():
        for net in (reg.d, reg.en, reg.sr, reg.ar):
            if net is not None and not is_const(net):
                required.setdefault(net)
    return list(required)


def cover(circuit: Circuit, db: CutDatabase) -> Circuit:
    """Select best cuts from the required nets; emit the LUT netlist.

    Hardwired carry cells are copied through verbatim; their inputs
    become covering roots of their own."""
    mapped = Circuit(circuit.name)
    for net in circuit.inputs:
        mapped.add_input(net)

    carry_by_output = {
        g.output: g for g in circuit.gates.values() if g.fn is GateFn.CARRY
    }
    chosen: dict[str, Cut] = {}
    carries: dict[str, None] = {}
    work = [
        net for net in _required_nets(circuit)
        if circuit.driver_gate(net) is not None
    ]
    while work:
        net = work.pop()
        if net in chosen or net in carries:
            continue
        carry = carry_by_output.get(net)
        if carry is not None:
            carries[net] = None
            for pin in sorted(set(carry.inputs)):
                if circuit.driver_gate(pin) is not None:
                    work.append(pin)
            continue
        cut = db.best.get(net)
        if cut is None:  # undriven or sequential leaf
            continue
        chosen[net] = cut
        # sorted: frozenset iteration order is hash-seed dependent and
        # would make gate creation order (hence names) irreproducible
        for leaf in sorted(cut.leaves):
            if circuit.driver_gate(leaf) is not None and leaf not in chosen:
                work.append(leaf)

    topo_index = {g.name: i for i, g in enumerate(circuit.topo_gates())}
    for net in carries:
        carry = carry_by_output[net]
        mapped.add_gate(GateFn.CARRY, list(carry.inputs), net, name=None)
    for net, cut in chosen.items():
        leaves = sorted(cut.leaves)
        table = cone_truth_table(circuit, net, leaves, topo_index)
        mapped.add_gate(GateFn.LUT, leaves, net, name=None, table=table)

    for reg in circuit.registers.values():
        mapped.add_register(
            d=reg.d,
            q=reg.q,
            clk=reg.clk,
            name=reg.name,
            en=reg.en,
            sr=reg.sr,
            ar=reg.ar,
            sval=reg.sval,
            aval=reg.aval,
        )
    for net in circuit.outputs:
        mapped.add_output(net)
    return mapped


def map_luts(
    circuit: Circuit,
    k: int = 4,
    priority: int = 8,
    optimise: bool = True,
    mode: str = "depth",
) -> MapResult:
    """Full mapping pipeline on a clone of *circuit*.

    ``mode="depth"`` minimises mapped depth (ties by area) — the
    paper's minimal-area-for-best-delay setup; ``mode="area"`` selects
    cuts by area flow for the plain minimal-area script.
    """
    work = circuit.clone()
    if optimise:
        optimize(work)
    decompose_to_two_input(work)
    if optimise:
        optimize(work)
    db = enumerate_cuts(work, k=k, priority=priority, mode=mode)
    mapped = cover(work, db)
    depth = max(
        (db.depth_of(net) for net in _required_nets(work)), default=0
    )
    return MapResult(mapped, n_luts=len(mapped.gates), depth=depth)
