"""FPGA technology mapping substrate (XC4000E-flavoured)."""

from .cuts import Cut, CutDatabase, enumerate_cuts
from .decompose import (
    decompose_enables,
    decompose_sync_resets,
    decompose_to_two_input,
)
from .lutmap import MapResult, cone_truth_table, map_luts
from .remap import remap
from .xc4000e import ArchitectureError, XC4000E, XC4000E_ARCH

__all__ = [
    "ArchitectureError",
    "Cut",
    "CutDatabase",
    "MapResult",
    "XC4000E",
    "XC4000E_ARCH",
    "cone_truth_table",
    "decompose_enables",
    "decompose_sync_resets",
    "decompose_to_two_input",
    "enumerate_cuts",
    "map_luts",
    "remap",
]
