"""Post-retiming remapping (the paper's ``remap`` command).

Retiming a mapped netlist leaves the combinational structure sliced at
the old register positions; remapping re-covers it so LUT count and
depth recover.  Our remap re-runs the optimizer and the LUT mapper on
the (already LUT-level) netlist and — like production flows — keeps
whichever netlist is better under the delay model, so the command never
degrades a design.

Two lessons encoded here: the re-cover needs a wider priority-cut list
(the Shannon decomposition of existing LUTs creates many similar cuts
and a narrow list prunes the depth-optimal covers), and even then the
re-cover can duplicate shared logic, so the keep-better guard matters.
"""

from __future__ import annotations

from ..netlist import Circuit
from ..timing.delay_models import DelayModel, XC4000E_DELAY
from ..timing.sta import analyze
from .cuts import enumerate_cuts
from .lutmap import MapResult, map_luts


def remap(
    circuit: Circuit,
    k: int = 4,
    priority: int = 16,
    delay_model: DelayModel = XC4000E_DELAY,
    keep_better: bool = True,
) -> MapResult:
    """Re-cover a mapped netlist into K-LUTs, keeping the better result.

    "Better" means strictly smaller STA delay, or equal delay with fewer
    LUTs.  With ``keep_better=False`` the re-covered netlist is returned
    unconditionally.
    """
    result = map_luts(circuit, k=k, priority=priority, optimise=True)
    if not keep_better:
        return result
    before = analyze(circuit, delay_model).max_delay
    after = analyze(result.circuit, delay_model).max_delay
    eps = 1e-9
    if after < before - eps or (
        abs(after - before) <= eps and result.n_luts < len(circuit.gates)
    ):
        return result
    db = enumerate_cuts(circuit, k=k, priority=1)
    depth = max((db.depth_of(g.output) for g in circuit.gates.values()), default=0)
    return MapResult(circuit.clone(), n_luts=len(circuit.gates), depth=depth)
