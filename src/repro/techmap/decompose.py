"""Structural decomposition passes.

Three jobs:

* :func:`decompose_sync_resets` — XC4000E flip-flops have no synchronous
  set/clear, so SS/SC pins are decomposed into logic ahead of the D pin
  (exactly what the paper does: "all such inputs inferred by the HDL
  analyzer are decomposed into additional logic before the optimization
  and mapping").
* :func:`decompose_enables` — turns the EN pin into a D-side multiplexer
  with a Q feedback (paper Fig. 1c).  Used by the Table 3 baseline
  experiment, where load enables are *not* preserved for retiming.
* :func:`decompose_to_two_input` — splits wide gates into trees of
  2-input gates so cut enumeration stays cheap.
"""

from __future__ import annotations

from ..logic.ternary import T1, TX
from ..netlist import Circuit, GateFn
from ..netlist.cells import Gate


def decompose_sync_resets(circuit: Circuit) -> int:
    """Rewrite SS/SC pins as logic in front of D; returns #registers hit.

    Semantics preserved: ``if sr: Q <= sval elif en: Q <= D`` becomes
    ``en' = en OR sr`` and ``d' = sr ? sval : d``.  A don't-care sval is
    materialised as a clear (0).
    """
    count = 0
    for reg in list(circuit.registers.values()):
        if not reg.has_sync_reset:
            if reg.sr is not None:
                reg.sr = None  # constant-0 reset pin: just drop it
            continue
        sr = reg.sr
        sval = reg.sval
        if sval == T1:
            new_d = circuit.add_gate(GateFn.OR, [reg.d, sr]).output
        else:  # clear for 0 and for don't-care
            inv = circuit.add_gate(GateFn.NOT, [sr]).output
            new_d = circuit.add_gate(GateFn.AND, [reg.d, inv]).output
        reg.d = new_d
        if reg.has_enable:
            reg.en = circuit.add_gate(GateFn.OR, [reg.en, sr]).output
        reg.sr = None
        reg.sval = TX
        count += 1
    return count


def decompose_enables(circuit: Circuit) -> int:
    """Rewrite EN pins as a D-side hold multiplexer (paper Fig. 1c)."""
    count = 0
    for reg in list(circuit.registers.values()):
        if not reg.has_enable:
            if reg.en is not None:
                reg.en = None  # constant-1 enable: drop the pin
            continue
        mux = circuit.add_gate(GateFn.MUX, [reg.en, reg.q, reg.d])
        reg.d = mux.output
        reg.en = None
        count += 1
    return count


def _balanced_tree(
    circuit: Circuit, fn: GateFn, nets: list[str]
) -> str:
    if len(nets) == 1:
        return nets[0]
    mid = len(nets) // 2
    left = _balanced_tree(circuit, fn, nets[:mid])
    right = _balanced_tree(circuit, fn, nets[mid:])
    return circuit.add_gate(fn, [left, right]).output


_TREE_FAMILIES = {
    GateFn.AND: (GateFn.AND, False),
    GateFn.NAND: (GateFn.AND, True),
    GateFn.OR: (GateFn.OR, False),
    GateFn.NOR: (GateFn.OR, True),
    GateFn.XOR: (GateFn.XOR, False),
    GateFn.XNOR: (GateFn.XOR, True),
}


def _shannon(circuit: Circuit, gate: Gate) -> str:
    """Recursive Shannon decomposition of a wide LUT into 2-input gates.

    Splits on the highest pin: ``f = s ? f1 : f0`` built from AND/OR/NOT.
    """
    n = gate.n_inputs
    table = gate.truth_table()
    return _shannon_rec(circuit, table, list(gate.inputs))


def _shannon_rec(circuit: Circuit, table: int, inputs: list[str]) -> str:
    n = len(inputs)
    if n == 0:
        from ..netlist.signals import const_net

        return const_net(table & 1)
    if n <= 2:
        gate = circuit.add_gate(GateFn.LUT, inputs, table=table)
        return gate.output
    half = 1 << (n - 1)
    mask = (1 << half) - 1
    sel = inputs[-1]
    low = _shannon_rec(circuit, table & mask, inputs[:-1])
    high = _shannon_rec(circuit, (table >> half) & mask, inputs[:-1])
    if low == high:
        return low
    nsel = circuit.add_gate(GateFn.NOT, [sel]).output
    a = circuit.add_gate(GateFn.AND, [nsel, low]).output
    b = circuit.add_gate(GateFn.AND, [sel, high]).output
    return circuit.add_gate(GateFn.OR, [a, b]).output


def decompose_to_two_input(circuit: Circuit) -> int:
    """Split every gate with more than 2 inputs; returns #gates split.

    Hardwired carry cells are architectural primitives and are kept
    whole (the mapper preserves them too)."""
    count = 0
    for gate in list(circuit.gates.values()):
        if gate.n_inputs <= 2 or gate.fn is GateFn.CARRY:
            continue
        family = _TREE_FAMILIES.get(gate.fn)
        if family is not None:
            fn, invert = family
            result = _balanced_tree(circuit, fn, list(gate.inputs))
            if invert:
                result = circuit.add_gate(GateFn.NOT, [result]).output
        else:
            result = _shannon(circuit, gate)
        out = gate.output
        circuit.remove_gate(gate.name)
        circuit.replace_net(out, result)
        count += 1
    return count
