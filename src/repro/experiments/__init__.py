"""Regenerators for the paper's tables and figures.

Import submodules directly (``from repro.experiments import table1``);
the CLI entry point is ``repro.experiments.runner:main``
(``mcretime-tables`` when installed).
"""

from . import ablations, figures, pareto, scaling, table1, table2, table3

__all__ = ["ablations", "figures", "pareto", "scaling", "table1", "table2", "table3"]
