"""Command-line regeneration of every table and figure.

Usage (installed as ``mcretime-tables``)::

    mcretime-tables                 # all tables + figures, full scale
    mcretime-tables --scale 0.3     # quick pass on shrunken designs
    mcretime-tables --only table2   # one artefact
    mcretime-tables --designs C1,C2
    mcretime-tables --workers 4     # fan designs across a worker pool

With ``--workers N`` (N > 1) the per-design flows for Tables 1–3 are
submitted as jobs to the :mod:`repro.service` pool instead of running
serially, so the paper sweep parallelises across cores; rows are
rebuilt from the job metrics and print identically to the serial path.

Prints the same rows the paper reports; see EXPERIMENTS.md for the
paper-vs-measured record.
"""

from __future__ import annotations

import argparse
import sys
import time

from ..mcretime.report import format_table
from . import figures, pareto, scaling, table1, table2, table3


def _render_table1(rows):
    print("\n== Table 1: circuit characteristics ==")
    data = [r.as_dict() for r in rows]
    data.append(table1.totals(rows).as_dict())
    print(format_table(data))


def _render_table2(rows):
    print("\n== Table 2: multiple-class retiming results ==")
    data = [r.as_dict() for r in rows]
    data.append(table2.totals(rows))
    print(format_table(data, floatfmt=".2f"))
    local = min((r.local_fraction for r in rows), default=1.0)
    basic = sum(r.basic_fraction * r.cpu_seconds for r in rows)
    reloc = sum(r.relocate_fraction * r.cpu_seconds for r in rows)
    over = sum(r.overhead_fraction * r.cpu_seconds for r in rows)
    total = max(sum(r.cpu_seconds for r in rows), 1e-9)
    print(
        f"\nSec. 6 prose: local justification fraction >= "
        f"{100 * local:.1f}% (paper: >99%)"
    )
    print(
        f"CPU split: basic retiming {100 * basic / total:.0f}% / "
        f"relocation {100 * reloc / total:.0f}% / mc overhead "
        f"{100 * over / total:.0f}%  (paper: 90/7/3)"
    )
    print(f"total retime CPU: {total:.1f}s (paper: <60s/design on a 1999 CPU)")


def _render_table3(rows):
    print("\n== Table 3: retiming without load enables ==")
    data = [r.as_dict() for r in rows]
    data.append(table3.totals(rows))
    print(format_table(data, floatfmt=".2f"))


def _print_table1(scale: float, names: list[str] | None):
    rows, flows = table1.run(scale, names)
    _render_table1(rows)
    return rows, flows


def _print_table2(scale, names, baselines):
    rows, flows = table2.run(scale, names, baselines)
    _render_table2(rows)
    return rows


def _print_table3(scale, names, t1_rows, t2_rows):
    rows = table3.run(scale, names, t1_rows, t2_rows)
    _render_table3(rows)
    return rows


# ---------------------------------------------------------------------------
# parallel sweep through the service pool
# ---------------------------------------------------------------------------


def parallel_tables(
    scale: float,
    names: list[str] | None,
    workers: int,
    want_t3: bool = True,
):
    """Regenerate the Table 1–3 rows with per-design jobs on the pool.

    Each design becomes one ``flow="retime"`` job (whose metrics carry
    both the Table 1 baseline and the Table 2 retiming numbers) plus,
    when *want_t3*, one ``flow="decomposed_enable"`` job.  Returns
    ``(t1_rows, t2_rows, t3_rows)`` — ``t3_rows`` is ``None`` unless
    requested.
    """
    from ..netlist import write_blif
    from ..service import RetimeJob, RetimeService
    from ..synth import DESIGN_NAMES, build_design

    names = list(names or DESIGN_NAMES)
    texts = {
        name: write_blif(build_design(name, scale).circuit) for name in names
    }
    jobs = [
        RetimeJob(
            netlist=texts[name], name=name, flow="retime",
            delay_model="xc4000e",
        )
        for name in names
    ]
    if want_t3:
        jobs.extend(
            RetimeJob(
                netlist=texts[name], name=name, flow="decomposed_enable",
                delay_model="xc4000e",
            )
            for name in names
        )

    service = RetimeService(workers=workers)
    try:
        results = service.batch(jobs)
    finally:
        service.close()
    for job, result in zip(jobs, results):
        if not result.ok:
            raise RuntimeError(
                f"design {job.name} ({job.flow}) failed: "
                f"{result.error.type}: {result.error.message}"
            )

    t1_rows, t2_rows = [], []
    for name, result in zip(names, results):
        base = result.metrics["baseline"]
        final = result.metrics["final"]
        rt = result.metrics["retime"]
        t1_rows.append(
            table1.Table1Row(
                name=name,
                has_async=base["has_async"],
                has_enable=base["has_enable"],
                n_ff=base["n_ff"],
                n_lut=base["n_lut"],
                delay=base["delay"],
            )
        )
        t2_rows.append(
            table2.Table2Row(
                name=name,
                n_classes=rt["n_classes"],
                steps_moved=rt["steps_moved"],
                steps_possible=rt["steps_possible"],
                n_ff=final["n_ff"],
                n_lut=final["n_lut"],
                delay=final["delay"],
                rlut=final["n_lut"] / max(base["n_lut"], 1),
                rdelay=final["delay"] / max(base["delay"], 1e-9),
                local_fraction=rt["local_fraction"],
                basic_fraction=rt["basic_fraction"],
                relocate_fraction=rt["relocate_fraction"],
                overhead_fraction=rt["overhead_fraction"],
                cpu_seconds=rt["cpu_seconds"],
            )
        )

    t3_rows = None
    if want_t3:
        t3_rows = []
        by_name1 = {r.name: r for r in t1_rows}
        by_name2 = {r.name: r for r in t2_rows}
        for name, result in zip(names, results[len(names):]):
            final = result.metrics["final"]
            t1_row, t2_row = by_name1[name], by_name2[name]
            t3_rows.append(
                table3.Table3Row(
                    name=name,
                    n_ff=final["n_ff"],
                    n_lut=final["n_lut"],
                    delay=final["delay"],
                    rlut1=final["n_lut"] / max(t1_row.n_lut, 1),
                    rdelay1=final["delay"] / max(t1_row.delay, 1e-9),
                    rlut2=final["n_lut"] / max(t2_row.n_lut, 1),
                    rdelay2=final["delay"] / max(t2_row.delay, 1e-9),
                )
            )
    return t1_rows, t2_rows, t3_rows


def _print_pareto(scale: float, names: list[str] | None):
    from ..flows import baseline_flow
    from ..synth import build_design

    for name in names or ["C5"]:
        mapped = baseline_flow(build_design(name, scale).circuit).circuit
        sweep = pareto.pareto_sweep(mapped)
        print(f"\n== Pareto sweep: {name} (period vs registers) ==")
        print(
            f"  original: period {sweep.phi_original:.2f}, "
            f"{sweep.registers_original} registers; φ_min {sweep.phi_min:.2f}"
        )
        for point in sweep.points:
            print(
                f"  target {point.target_period:7.2f} -> achieved "
                f"{point.achieved_period:7.2f} with {point.registers} registers"
            )


def _print_figures():
    f1 = figures.figure1()
    print("\n== Figure 1: enable registers, mc-step vs decomposition ==")
    print(f"  original:            {f1.original_ff} FF, {f1.original_gates} gates")
    print(f"  b) mc forward step:  {f1.mc_ff} FF, {f1.mc_gates} gates")
    print(
        f"  c) EN decomposed:    {f1.decomposed_ff} FF, "
        f"{f1.decomposed_gates} gates"
    )
    print(
        f"  d) c) retimed:       {f1.retimed_decomposed_ff} FF, "
        f"{f1.retimed_decomposed_gates} gates"
    )
    print(
        f"  mc advantage: {f1.mc_advantage_ff} registers and "
        f"{f1.mc_advantage_gates} gates (paper: 2 registers, 2 muxes)"
    )

    f4 = figures.figure4()
    print("\n== Figure 4: multiple-class register sharing ==")
    print(f"  naive shared count:     {f4.naive_count} (paper: 2)")
    print(f"  true multi-class cost:  {f4.true_count} (paper: 3)")
    print(f"  corrected model count:  {f4.corrected_count} (paper: 3)")
    print(f"  separation vertices:    {f4.separations}")

    f5 = figures.figure5()
    print("\n== Figure 5: local conflict, global justification ==")
    print(f"  local steps:  {f5.local_steps}")
    print(f"  global steps: {f5.global_steps} (the v2 conflict)")
    print(f"  final reset values by position: {f5.final_values}")
    print(f"  sequentially equivalent after reset: {f5.equivalent}")


def main(argv: list[str] | None = None) -> int:
    """Entry point for ``mcretime-tables``."""
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=float, default=1.0)
    parser.add_argument(
        "--only",
        choices=[
            "table1", "table2", "table3", "figures", "pareto",
            "scaling", "all",
        ],
        default="all",
    )
    parser.add_argument(
        "--designs",
        type=str,
        default=None,
        help="comma-separated subset, e.g. C1,C2,C5",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=1,
        help="run the per-design table flows on a service worker pool "
        "(>1 enables the parallel path)",
    )
    args = parser.parse_args(argv)
    names = args.designs.split(",") if args.designs else None

    t_start = time.perf_counter()
    table_artefacts = ("table1", "table2", "table3", "all")
    if args.workers > 1 and args.only in table_artefacts:
        want_t3 = args.only in ("table3", "all")
        t1_rows, t2_rows, t3_rows = parallel_tables(
            args.scale, names, args.workers, want_t3
        )
        if args.only in ("table1", "all"):
            _render_table1(t1_rows)
        if args.only in ("table2", "all"):
            _render_table2(t2_rows)
        if args.only in ("table3", "all"):
            _render_table3(t3_rows)
    else:
        if args.only in ("table1", "all"):
            t1_rows, flows = _print_table1(args.scale, names)
        else:
            t1_rows, flows = (None, None)
        if args.only in ("table2", "all"):
            if flows is None:
                t1_rows, flows = table1.run(args.scale, names)
            t2_rows = _print_table2(args.scale, names, flows)
        else:
            t2_rows = None
        if args.only in ("table3", "all"):
            _print_table3(args.scale, names, t1_rows, t2_rows)
    if args.only in ("figures", "all"):
        _print_figures()
    if args.only == "pareto":
        _print_pareto(args.scale, names)
    if args.only == "scaling":
        for name in names or ["C6"]:
            print(f"\n== Scaling study: {name} ==")
            points = scaling.scaling_study(
                name, scales=(0.1, 0.25, 0.5, args.scale)
            )
            print(scaling.format_study(points))
    print(f"\n(total wall time {time.perf_counter() - t_start:.1f}s)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
