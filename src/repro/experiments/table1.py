"""Table 1: circuit characteristics after optimisation and mapping.

Columns mirror the paper: Name, AS/AC, EN, #FF, #LUT, Delay, plus a
Totals row.  Delay is our STA over the XC4000E delay model (standing in
for Xilinx post-P&R timing; see DESIGN.md substitutions).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..flows import FlowResult, baseline_flow
from ..synth import DESIGN_NAMES, build_design
from ..timing import XC4000E_DELAY


@dataclass
class Table1Row:
    """One design's characteristics."""

    name: str
    has_async: bool
    has_enable: bool
    n_ff: int
    n_lut: int
    delay: float

    def as_dict(self) -> dict[str, object]:
        return {
            "Name": self.name,
            "AS/AC": "y" if self.has_async else "",
            "EN": "y" if self.has_enable else "",
            "#FF": self.n_ff,
            "#LUT": self.n_lut,
            "Delay": self.delay,
        }


def run_design(name: str, scale: float = 1.0) -> tuple[Table1Row, FlowResult]:
    """Baseline flow for one design; returns the row and the artifacts."""
    design = build_design(name, scale)
    flow = baseline_flow(design.circuit, XC4000E_DELAY)
    row = Table1Row(
        name=name,
        has_async=flow.has_async,
        has_enable=flow.has_enable,
        n_ff=flow.n_ff,
        n_lut=flow.n_lut,
        delay=flow.delay,
    )
    return row, flow


def run(
    scale: float = 1.0, names: list[str] | None = None
) -> tuple[list[Table1Row], dict[str, FlowResult]]:
    """Regenerate Table 1; returns rows plus the mapped designs (which
    Table 2/3 reuse so all three tables describe the same netlists)."""
    rows: list[Table1Row] = []
    flows: dict[str, FlowResult] = {}
    for name in names or DESIGN_NAMES:
        row, flow = run_design(name, scale)
        rows.append(row)
        flows[name] = flow
    return rows, flows


def totals(rows: list[Table1Row]) -> Table1Row:
    """The paper's Totals row (delay column is summed, as in the paper)."""
    return Table1Row(
        name="Totals",
        has_async=any(r.has_async for r in rows),
        has_enable=any(r.has_enable for r in rows),
        n_ff=sum(r.n_ff for r in rows),
        n_lut=sum(r.n_lut for r in rows),
        delay=sum(r.delay for r in rows),
    )
