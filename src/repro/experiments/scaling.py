"""Runtime scaling of the mc-retiming engine (the Sec. 6 efficiency claim).

The paper's headline efficiency numbers — every design retimed within
60 s, with ≈3 % of the time spent on the multiple-class machinery — are
an asymptotic claim as much as a constant-factor one.  This study runs
one design at a ladder of scales and reports, per scale, the phase
breakdown and the LUT count, so the growth curves of the basic engine
vs the mc bookkeeping can be compared directly.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from ..flows import baseline_flow
from ..synth import build_design
from ..timing import XC4000E_DELAY


@dataclass(frozen=True)
class ScalePoint:
    """One scale's measurements."""

    scale: float
    n_luts: int
    n_ff: int
    retime_seconds: float
    #: wall-clock split per engine phase
    build_s: float
    bounds_s: float
    sharing_s: float
    minperiod_s: float
    minarea_s: float
    relocate_s: float

    @property
    def mc_overhead_fraction(self) -> float:
        """Share of runtime in the mc-specific phases (paper: ~3 %)."""
        total = max(self.retime_seconds, 1e-9)
        return (self.build_s + self.bounds_s + self.sharing_s) / total


def scaling_study(
    name: str = "C6", scales: tuple[float, ...] = (0.1, 0.2, 0.4, 0.7, 1.0)
) -> list[ScalePoint]:
    """Measure the retiming engine across design scales."""
    from ..mcretime import mc_retime

    points = []
    for scale in scales:
        design = build_design(name, scale)
        base = baseline_flow(design.circuit)
        t0 = time.perf_counter()
        result = mc_retime(base.circuit, delay_model=XC4000E_DELAY)
        elapsed = time.perf_counter() - t0
        t = result.timings
        points.append(
            ScalePoint(
                scale=scale,
                n_luts=base.n_lut,
                n_ff=base.n_ff,
                retime_seconds=elapsed,
                build_s=t.get("build", 0.0),
                bounds_s=t.get("bounds", 0.0),
                sharing_s=t.get("sharing", 0.0),
                minperiod_s=t.get("minperiod", 0.0),
                minarea_s=t.get("minarea", 0.0),
                relocate_s=t.get("relocate", 0.0),
            )
        )
    return points


def format_study(points: list[ScalePoint]) -> str:
    """Render the study as a fixed-width table."""
    lines = [
        "scale   #LUT   #FF   retime(s)   mc-overhead   minperiod   minarea",
        "-----   ----   ---   ---------   -----------   ---------   -------",
    ]
    for p in points:
        lines.append(
            f"{p.scale:5.2f}  {p.n_luts:5d}  {p.n_ff:4d}   "
            f"{p.retime_seconds:9.2f}   {100 * p.mc_overhead_fraction:10.1f}%"
            f"   {p.minperiod_s:9.2f}   {p.minarea_s:7.2f}"
        )
    return "\n".join(lines)
