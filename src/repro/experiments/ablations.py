"""Ablation studies for the design choices DESIGN.md calls out.

Four questions, each isolating one mechanism of the paper:

* :func:`classification_ablation` — Def. 1 demands *logical* signal
  equivalence; how much freedom does BDD-based classification buy over
  comparing control nets by name?
* :func:`bounds_ablation` — what would plain Leiserson–Saxe retiming do
  without the class constraints?  (It finds a "better" period but its
  solution violates class legality — unimplementable moves.)
* :func:`sharing_ablation` — how far does the naive sharing cost model
  under-count multi-class registers, and what does the separation-vertex
  repair report instead?
* :func:`constraints_ablation` — lazy period-constraint generation vs
  the dense W/D constraint set (count + wall time), the efficiency
  argument of Sec. 5.1 / [16, 12, 11].
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from ..graph import build_mcgraph
from ..graph.mcgraph import backward_layer_class, forward_layer_class
from ..mcretime import Classifier, apply_sharing_transform, compute_bounds
from ..retime import (
    dense_period_system,
    min_area,
    min_period,
    min_period_dense,
    shared_register_count,
)
from ..netlist import Circuit
from ..timing import XC4000E_DELAY


@dataclass
class ClassificationAblation:
    """Semantic vs syntactic classification on one design."""

    semantic_classes: int
    syntactic_classes: int
    semantic_steps_possible: int
    syntactic_steps_possible: int

    @property
    def extra_freedom(self) -> int:
        """Additional valid mc-steps unlocked by semantic equivalence."""
        return self.semantic_steps_possible - self.syntactic_steps_possible


def classification_ablation(circuit: Circuit) -> ClassificationAblation:
    """Compare the two classifiers on a mapped circuit."""
    results = {}
    for semantic in (True, False):
        classifier = Classifier(circuit, semantic=semantic)
        build = build_mcgraph(circuit, XC4000E_DELAY, classifier.classify)
        bounds = compute_bounds(build.graph)
        results[semantic] = (classifier.n_classes, bounds.steps_possible)
    return ClassificationAblation(
        semantic_classes=results[True][0],
        syntactic_classes=results[False][0],
        semantic_steps_possible=results[True][1],
        syntactic_steps_possible=results[False][1],
    )


@dataclass
class BoundsAblation:
    """Retiming with vs without the class constraints."""

    phi_with_bounds: float
    phi_without_bounds: float
    #: vertices whose unconstrained lag falls outside the class bounds —
    #: moves a real circuit cannot implement
    illegal_vertices: int

    @property
    def speed_illusion(self) -> float:
        """Apparent (but unimplementable) extra speed-up."""
        if self.phi_with_bounds <= 0:
            return 0.0
        return 1.0 - self.phi_without_bounds / self.phi_with_bounds


def bounds_ablation(circuit: Circuit) -> BoundsAblation:
    """Quantify what ignoring register classes would pretend to gain."""
    classifier = Classifier(circuit)
    build = build_mcgraph(circuit, XC4000E_DELAY, classifier.classify)
    bounds = compute_bounds(build.graph)
    transform = apply_sharing_transform(
        build.graph, bounds.bounds, bounds.backward_graph
    )
    constrained = min_period(transform.graph, transform.bounds)
    unconstrained = min_period(build.graph, bounds=None)
    illegal = 0
    for name, (lo, hi) in bounds.bounds.items():
        r = unconstrained.r.get(name, 0)
        if r < lo or r > hi:
            illegal += 1
    return BoundsAblation(
        phi_with_bounds=constrained.phi,
        phi_without_bounds=unconstrained.phi,
        illegal_vertices=illegal,
    )


@dataclass
class SharingAblation:
    """Min-area register estimates with and without separation vertices."""

    naive_registers: int
    corrected_registers: int
    separations: int

    @property
    def undercount(self) -> int:
        return self.corrected_registers - self.naive_registers


def sharing_ablation(circuit: Circuit) -> SharingAblation:
    """Solve min-area at φ_min with and without the Sec. 4.2 repair."""
    classifier = Classifier(circuit)
    build = build_mcgraph(circuit, XC4000E_DELAY, classifier.classify)
    bounds = compute_bounds(build.graph)
    transform = apply_sharing_transform(
        build.graph, bounds.bounds, bounds.backward_graph
    )
    phi = min_period(transform.graph, transform.bounds).phi
    naive = min_area(build.graph, phi, bounds.bounds)
    corrected = min_area(transform.graph, phi, transform.bounds)
    return SharingAblation(
        naive_registers=naive.registers,
        corrected_registers=corrected.registers,
        separations=len(transform.separations),
    )


@dataclass
class ConstraintsAblation:
    """Lazy vs dense period-constraint generation."""

    lazy_constraints: int
    dense_constraints: int
    lazy_seconds: float
    dense_seconds: float
    phi_lazy: float
    phi_dense: float


def constraints_ablation(circuit: Circuit) -> ConstraintsAblation:
    """Count constraints and time for both formulation styles."""
    classifier = Classifier(circuit)
    build = build_mcgraph(circuit, XC4000E_DELAY, classifier.classify)
    bounds = compute_bounds(build.graph)
    transform = apply_sharing_transform(
        build.graph, bounds.bounds, bounds.backward_graph
    )
    graph, b = transform.graph, transform.bounds

    t0 = time.perf_counter()
    lazy = min_period(graph, b)
    lazy_seconds = time.perf_counter() - t0
    area = min_area(graph, lazy.phi, b)

    t0 = time.perf_counter()
    dense = min_period_dense(graph, b)
    dense_system = dense_period_system(graph, dense.phi, b)
    dense_seconds = time.perf_counter() - t0

    return ConstraintsAblation(
        lazy_constraints=area.constraints,
        dense_constraints=len(dense_system),
        lazy_seconds=lazy_seconds,
        dense_seconds=dense_seconds,
        phi_lazy=lazy.phi,
        phi_dense=dense.phi,
    )
