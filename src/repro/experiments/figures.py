"""Quantitative reproductions of the paper's illustrative figures.

* Figure 1 — the area cost of retiming enable registers with and
  without multiple-class support (circuits a/b vs c/d).
* Figure 4 — the register-sharing under-estimate and its repair with
  separation vertices (naive count 2, true cost 3, corrected model 3).
* Figure 5 — a local justification conflict resolved by global (cone)
  justification.

Figures 2 and 3 are definitional (graph construction and step
semantics) and are covered by unit tests instead of experiments.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..graph import HOST, RegInstance, RetimingGraph
from ..logic.ternary import T0, T1
from ..mcretime import apply_sharing_transform, relocate
from ..netlist import Circuit, GateFn, circuit_stats
from ..retime import shared_register_count
from ..techmap import decompose_enables


# --------------------------------------------------------------------- #
# Figure 1


@dataclass
class Figure1Result:
    """Cell counts of the four circuits of paper Fig. 1."""

    original_ff: int
    original_gates: int
    mc_ff: int  # circuit b): forward mc-step with the enables
    mc_gates: int
    decomposed_ff: int  # circuit c): enables as hold muxes
    decomposed_gates: int
    retimed_decomposed_ff: int  # circuit d): c) retimed forward
    retimed_decomposed_gates: int

    @property
    def mc_advantage_ff(self) -> int:
        """Registers saved by the mc step vs decompose-then-retime."""
        return self.retimed_decomposed_ff - self.mc_ff

    @property
    def mc_advantage_gates(self) -> int:
        """Gates (muxes) saved by the mc step."""
        return self.retimed_decomposed_gates - self.mc_gates


def _fig1_circuit() -> Circuit:
    c = Circuit("fig1")
    for net in ("clk", "en", "x1", "x2"):
        c.add_input(net)
    c.add_register(d="x1", q="q1", clk="clk", en="en", name="r1")
    c.add_register(d="x2", q="q2", clk="clk", en="en", name="r2")
    c.add_gate(GateFn.AND, ["q1", "q2"], "y", name="g")
    c.add_output("y")
    return c


def figure1() -> Figure1Result:
    """Reproduce the Fig. 1 comparison."""
    original = _fig1_circuit()

    # circuit b): one valid forward mc-step at the AND gate
    mc = relocate(original, {"g": -1}).circuit

    # circuit c): decompose the enables into hold muxes
    decomposed = original.clone()
    decompose_enables(decomposed)

    # circuit d): retime the simple registers forward across the gate.
    # After decomposition each register's D is a mux, so the forward
    # step moves the registers across the AND gate only (the muxes stay
    # behind, plus a new hold path is still required at the output).
    retimed = relocate(decomposed, {"g": -1}).circuit

    return Figure1Result(
        original_ff=len(original.registers),
        original_gates=len(original.gates),
        mc_ff=len(mc.registers),
        mc_gates=len(mc.gates),
        decomposed_ff=len(decomposed.registers),
        decomposed_gates=len(decomposed.gates),
        retimed_decomposed_ff=len(retimed.registers),
        retimed_decomposed_gates=len(retimed.gates),
    )


# --------------------------------------------------------------------- #
# Figure 4


@dataclass
class Figure4Result:
    """Register counting under the three sharing models."""

    #: Leiserson–Saxe count on the raw mc-graph (under-estimate)
    naive_count: int
    #: true multi-class hardware cost
    true_count: int
    #: count after the separation-vertex transform (Eq. 3)
    corrected_count: int
    #: how many separation vertices were inserted
    separations: int


def _fig4_graph() -> tuple[RetimingGraph, dict]:
    g = RetimingGraph("fig4")
    g.add_host()
    g.add_vertex("u", 1.0)
    g.add_vertex("v1", 1.0)
    g.add_vertex("v2", 1.0)
    g.add_vertex("o1", 0.0, "output")
    g.add_vertex("o2", 0.0, "output")
    g.add_edge(HOST, "u", 0)
    g.add_edge("u", "v1", 2, [RegInstance(1), RegInstance(1)])
    g.add_edge("u", "v2", 2, [RegInstance(1), RegInstance(2)])
    g.add_edge("v1", "o1", 0, [])
    g.add_edge("v2", "o2", 0, [])
    g.add_edge("o1", HOST, 0)
    g.add_edge("o2", HOST, 0)
    return g, {"u": (0, 0), "v1": (0, 0), "v2": (0, 0)}


def _true_multiclass_count(g: RetimingGraph, vertex: str) -> int:
    """Layer-by-layer count with per-class sharing (exact)."""
    total = 0
    sequences = [list(e.regs or []) for e in g.out_edges(vertex)]
    depth = max((len(s) for s in sequences), default=0)
    for layer in range(depth):
        classes = {s[layer].cls for s in sequences if len(s) > layer}
        total += len(classes)
    return total


def figure4() -> Figure4Result:
    """Reproduce the Fig. 4 sharing-model comparison."""
    g, bounds = _fig4_graph()
    naive = shared_register_count(g)
    true_count = _true_multiclass_count(g, "u")
    transform = apply_sharing_transform(g, bounds, g.copy())
    corrected = shared_register_count(transform.graph)
    return Figure4Result(
        naive_count=naive,
        true_count=true_count,
        corrected_count=corrected,
        separations=len(transform.separations),
    )


# --------------------------------------------------------------------- #
# Figure 5


@dataclass
class Figure5Result:
    """Justification statistics of the Fig. 5 scenario."""

    local_steps: int
    global_steps: int
    #: reset values of the registers at their final positions (by D net)
    final_values: dict[str, int]
    equivalent: bool


def _fig5_circuit() -> Circuit:
    c = Circuit("fig5")
    for net in ("clk", "rs", "x1", "x2", "x3"):
        c.add_input(net)
    c.add_gate(GateFn.AND, ["x1", "x2"], "n2", name="v2")
    c.add_gate(GateFn.NAND, ["n2", "x3"], "n3", name="v3")
    c.add_gate(GateFn.NOT, ["n2"], "n4", name="v4")
    c.add_register(d="n3", q="q3", clk="clk", sr="rs", sval=T1, name="r3")
    c.add_register(d="n4", q="q4", clk="clk", sr="rs", sval=T0, name="r4")
    c.add_output("q3")
    c.add_output("q4")
    return c


def figure5() -> Figure5Result:
    """Reproduce the Fig. 5 local-conflict / global-justification run."""
    from ..logic.simulate import SequentialSimulator
    from ..logic.ternary import T0 as _T0, T1 as _T1

    original = _fig5_circuit()
    result = relocate(original, {"v2": 1, "v3": 1, "v4": 1})
    values = {
        reg.d: reg.sval for reg in result.circuit.registers.values()
    }

    # cycle-accurate check: reset both circuits, compare outputs
    sims = [
        SequentialSimulator(c, x_chooser=lambda _n: _T0)
        for c in (original, result.circuit)
    ]
    for sim in sims:
        sim.step({"rs": _T1, "x1": _T0, "x2": _T0, "x3": _T0})
    equivalent = True
    for step in range(16):
        vec = {
            "rs": _T0,
            "x1": _T1 if step & 1 else _T0,
            "x2": _T1 if step & 2 else _T0,
            "x3": _T1 if step & 4 else _T0,
        }
        outs = [sim.step(vec) for sim in sims]
        seq = [
            [outs[i][n] for n in c.outputs]
            for i, c in enumerate((original, result.circuit))
        ]
        if seq[0] != seq[1]:
            equivalent = False
    return Figure5Result(
        local_steps=result.stats.local_steps,
        global_steps=result.stats.global_steps,
        final_values=values,
        equivalent=equivalent,
    )
