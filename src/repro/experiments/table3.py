"""Table 3: retiming results *without* using load-enable inputs.

A command decomposing every register's EN pin into a D-side hold
multiplexer is prepended to the script (paper Sec. 6, second
experiment); retiming then runs on the decomposed design.  Columns:
Name, #FF, #LUT, Delay, Rlut1/Rdelay1 (vs Table 1 — the unretimed
original) and Rlut2/Rdelay2 (vs Table 2 — mc-retiming with enables).

The paper's headline: decomposing enables yields circuits 21 % faster
than the originals but with 17 % more registers and 10 % more LUTs,
while mc-retiming with enables preserved achieves 22 % faster with only
10 % more registers and 3 % *fewer* LUTs.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..flows import FlowResult, decomposed_enable_flow
from ..synth import build_design
from ..timing import XC4000E_DELAY
from . import table1, table2


@dataclass
class Table3Row:
    """One design's EN-decomposed retiming results."""

    name: str
    n_ff: int
    n_lut: int
    delay: float
    rlut1: float
    rdelay1: float
    rlut2: float
    rdelay2: float

    def as_dict(self) -> dict[str, object]:
        return {
            "Name": self.name,
            "#FF": self.n_ff,
            "#LUT": self.n_lut,
            "Delay": self.delay,
            "Rlut1": self.rlut1,
            "Rdelay1": self.rdelay1,
            "Rlut2": self.rlut2,
            "Rdelay2": self.rdelay2,
        }


def run_design(
    name: str,
    t1_row: table1.Table1Row,
    t2_row: table2.Table2Row,
    scale: float = 1.0,
) -> Table3Row:
    """EN-decomposed retime flow for one design."""
    design = build_design(name, scale)
    flow = decomposed_enable_flow(design.circuit, XC4000E_DELAY)
    return Table3Row(
        name=name,
        n_ff=flow.n_ff,
        n_lut=flow.n_lut,
        delay=flow.delay,
        rlut1=flow.n_lut / max(t1_row.n_lut, 1),
        rdelay1=flow.delay / max(t1_row.delay, 1e-9),
        rlut2=flow.n_lut / max(t2_row.n_lut, 1),
        rdelay2=flow.delay / max(t2_row.delay, 1e-9),
    )


def run(
    scale: float = 1.0,
    names: list[str] | None = None,
    t1_rows: list[table1.Table1Row] | None = None,
    t2_rows: list[table2.Table2Row] | None = None,
) -> list[Table3Row]:
    """Regenerate Table 3 (recomputing Tables 1/2 if not supplied)."""
    if t1_rows is None or t2_rows is None:
        t2_rows, flows = table2.run(scale, names)
        t1_rows = [
            table1.Table1Row(
                name=n,
                has_async=f.has_async,
                has_enable=f.has_enable,
                n_ff=f.n_ff,
                n_lut=f.n_lut,
                delay=f.delay,
            )
            for n, f in flows.items()
            if names is None or n in names
        ]
    by_name1 = {r.name: r for r in t1_rows}
    by_name2 = {r.name: r for r in t2_rows}
    rows = []
    for name in by_name2:
        rows.append(run_design(name, by_name1[name], by_name2[name], scale))
    return rows


def totals(rows: list[Table3Row]) -> dict[str, object]:
    """Aggregate Totals row (ratio columns are recomputed from sums)."""
    n_lut = sum(r.n_lut for r in rows)
    delay = sum(r.delay for r in rows)
    lut1 = sum(r.n_lut / max(r.rlut1, 1e-9) for r in rows)
    d1 = sum(r.delay / max(r.rdelay1, 1e-9) for r in rows)
    lut2 = sum(r.n_lut / max(r.rlut2, 1e-9) for r in rows)
    d2 = sum(r.delay / max(r.rdelay2, 1e-9) for r in rows)
    return {
        "Name": "Totals",
        "#FF": sum(r.n_ff for r in rows),
        "#LUT": n_lut,
        "Delay": delay,
        "Rlut1": n_lut / max(lut1, 1e-9),
        "Rdelay1": delay / max(d1, 1e-9),
        "Rlut2": n_lut / max(lut2, 1e-9),
        "Rdelay2": delay / max(d2, 1e-9),
    }
