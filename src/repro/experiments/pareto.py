"""Period-vs-registers trade-off sweep (min-area retiming's raison d'être).

The paper notes min-area retiming "is of most practical interest": a
designer rarely wants the absolute minimum period, but the cheapest
register placement for a chosen target.  This sweep solves min-area for
a ladder of target periods between φ_min and the original period,
exposing the Pareto frontier a designer would pick from.

The engine's bounds/sharing machinery is computed once and reused for
every target, mirroring how an interactive tool would batch the sweep.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..graph.build import build_mcgraph
from ..mcretime import Classifier, apply_sharing_transform, compute_bounds
from ..netlist import Circuit
from ..retime import min_area, min_period
from ..timing.delay_models import DelayModel, XC4000E_DELAY


@dataclass(frozen=True)
class ParetoPoint:
    """One sweep point."""

    target_period: float
    achieved_period: float
    registers: int


@dataclass
class ParetoResult:
    """The swept frontier."""

    points: list[ParetoPoint]
    phi_min: float
    phi_original: float
    registers_original: int

    def frontier(self) -> list[ParetoPoint]:
        """Non-dominated subset, fastest first."""
        best: list[ParetoPoint] = []
        for point in sorted(self.points, key=lambda p: p.achieved_period):
            if not best or point.registers < best[-1].registers:
                best.append(point)
        return best


def pareto_sweep(
    circuit: Circuit,
    steps: int = 6,
    delay_model: DelayModel = XC4000E_DELAY,
) -> ParetoResult:
    """Sweep min-area retiming across *steps* period targets."""
    classifier = Classifier(circuit)
    build = build_mcgraph(circuit, delay_model, classifier.classify)
    bounds = compute_bounds(build.graph)
    transform = apply_sharing_transform(
        build.graph, bounds.bounds, bounds.backward_graph
    )
    graph, class_bounds = transform.graph, transform.bounds

    from ..retime.feas import clock_period

    phi_original = clock_period(graph)
    mp = min_period(graph, class_bounds)
    phi_min = mp.phi

    targets: list[float] = []
    if steps < 2 or phi_original <= phi_min + 1e-9:
        targets = [phi_min]
    else:
        span = phi_original - phi_min
        targets = [
            phi_min + span * i / (steps - 1) for i in range(steps)
        ]
    points = []
    for target in targets:
        area = min_area(graph, target, class_bounds)
        points.append(
            ParetoPoint(
                target_period=target,
                achieved_period=area.period,
                registers=area.registers,
            )
        )
    baseline = min_area(graph, phi_original, class_bounds)
    return ParetoResult(
        points=points,
        phi_min=phi_min,
        phi_original=phi_original,
        registers_original=baseline.registers_before,
    )
