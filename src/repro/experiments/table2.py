"""Table 2: multiple-class retiming results.

Columns mirror the paper: Name, #Class, #Step (moved / possible), #FF,
#LUT, Delay, Rlut, Rdelay (ratios against Table 1), plus the Sec. 6
prose statistics: the per-phase CPU split (the paper reports ≈90 %
basic retiming / 7 % relocation / 3 % mc-graph bookkeeping) and the
fraction of backward justifications resolved locally (paper: >99 %).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..flows import FlowResult, retime_flow
from ..timing import XC4000E_DELAY
from . import table1


@dataclass
class Table2Row:
    """One design's retiming results."""

    name: str
    n_classes: int
    steps_moved: int
    steps_possible: int
    n_ff: int
    n_lut: int
    delay: float
    rlut: float
    rdelay: float
    #: Sec. 6 prose statistics
    local_fraction: float
    basic_fraction: float
    relocate_fraction: float
    overhead_fraction: float
    cpu_seconds: float

    def as_dict(self) -> dict[str, object]:
        return {
            "Name": self.name,
            "#Class": self.n_classes,
            "#Step": f"{self.steps_moved}/{self.steps_possible}",
            "#FF": self.n_ff,
            "#LUT": self.n_lut,
            "Delay": self.delay,
            "Rlut": self.rlut,
            "Rdelay": self.rdelay,
        }


def run_design(
    name: str, baseline: tuple[table1.Table1Row, FlowResult], scale: float = 1.0
) -> Table2Row:
    """Retime one already-mapped design and build its Table 2 row."""
    t1_row, base_flow = baseline
    flow = retime_flow(
        base_flow.circuit, XC4000E_DELAY, mapped=_as_mapped(base_flow)
    )
    result = flow.retime
    fractions = result.timing_fractions()
    return Table2Row(
        name=name,
        n_classes=result.n_classes,
        steps_moved=result.steps_moved,
        steps_possible=result.steps_possible,
        n_ff=flow.n_ff,
        n_lut=flow.n_lut,
        delay=flow.delay,
        rlut=flow.n_lut / max(t1_row.n_lut, 1),
        rdelay=flow.delay / max(t1_row.delay, 1e-9),
        local_fraction=result.stats.local_fraction,
        basic_fraction=fractions["basic_retiming"],
        relocate_fraction=fractions["relocation"],
        overhead_fraction=fractions["mc_overhead"],
        cpu_seconds=sum(result.timings.values()),
    )


def _as_mapped(flow: FlowResult) -> FlowResult:
    """Reuse a Table-1 flow result as the mapped starting point."""
    return flow


def run(
    scale: float = 1.0,
    names: list[str] | None = None,
    baselines: dict[str, FlowResult] | None = None,
) -> tuple[list[Table2Row], dict[str, FlowResult]]:
    """Regenerate Table 2 (and Table 1 internally if not provided)."""
    if baselines is None:
        t1_rows, flows = table1.run(scale, names)
    else:
        flows = baselines
        t1_rows = [
            table1.Table1Row(
                name=n,
                has_async=f.has_async,
                has_enable=f.has_enable,
                n_ff=f.n_ff,
                n_lut=f.n_lut,
                delay=f.delay,
            )
            for n, f in baselines.items()
            if names is None or n in names
        ]
    rows = []
    for t1_row in t1_rows:
        rows.append(
            run_design(t1_row.name, (t1_row, flows[t1_row.name]), scale)
        )
    return rows, flows


def totals(rows: list[Table2Row]) -> dict[str, object]:
    """The paper's Total row plus the aggregated prose statistics."""
    n_lut = sum(r.n_lut for r in rows)
    delay = sum(r.delay for r in rows)
    backward_weight = sum(
        r.steps_moved for r in rows
    )  # weight CPU stats by activity
    return {
        "Name": "Total",
        "#Class": "",
        "#Step": "",
        "#FF": sum(r.n_ff for r in rows),
        "#LUT": n_lut,
        "Delay": delay,
        "Rlut": (
            n_lut / max(sum(r.n_lut / max(r.rlut, 1e-9) for r in rows), 1e-9)
        ),
        "Rdelay": (
            delay
            / max(sum(r.delay / max(r.rdelay, 1e-9) for r in rows), 1e-9)
        ),
    }
