"""Telemetry bus: workers stream span/counter deltas to the supervisor.

The JSONL trace files are the durable record, but they only become
readable after a job finishes and flushes.  The bus is the *live* path:
each worker process holds one end of a multiprocessing queue
(installed by the pool at worker startup via :func:`set_worker_queue`),
and a per-job :class:`BusSink` rides alongside the JSONL sink,
forwarding a bounded, filtered stream of events as they close.  On the
supervisor side a :class:`TelemetryBus` drains the queue on a daemon
thread into per-trace ring buffers and aggregate metrics — powering
``GET /trace/<job>`` for in-flight jobs, the live ``/metrics``
aggregation, and the ``mcretime top`` dashboard.

The filtering matters for the <5% throughput gate: only spans that are
either shallow (depth <= 1 — the phase-level story) or slower than
~1ms cross the process boundary, batched 32 at a time, with a hard cap
per job.  Micro-spans stay in the JSONL file where they belong.
"""

from __future__ import annotations

import threading
from collections import deque
from typing import Any

__all__ = [
    "BusSink",
    "TelemetryBus",
    "job_sink",
    "set_worker_queue",
]

#: spans shorter than this (seconds) and deeper than _MAX_DEPTH are not
#: forwarded over the bus
_MIN_DUR = 1e-3
_MAX_DEPTH = 1
#: flush a batch once it reaches this many events
_BATCH = 32
#: hard cap on events forwarded per job (meta/end always get through)
_MAX_EVENTS = 512

# queue end installed in each worker process by pool._worker_main
_WORKER_QUEUE: Any = None


def set_worker_queue(queue: Any) -> None:
    """Install this process's bus queue (called once per worker)."""
    global _WORKER_QUEUE
    _WORKER_QUEUE = queue


def job_sink(trace_id: str) -> "BusSink | None":
    """A per-job bus sink, or ``None`` when no bus is attached."""
    if _WORKER_QUEUE is None:
        return None
    return BusSink(_WORKER_QUEUE, trace_id)


class BusSink:
    """Tracer sink that forwards filtered event batches over a queue.

    Messages are ``(pid, trace_id, [events])`` tuples.  Queue puts are
    best-effort: a dead supervisor must never take a worker down with
    it, so failures disable the sink for the rest of the job.
    """

    def __init__(self, queue: Any, trace_id: str) -> None:
        import os

        self._queue = queue
        self._trace_id = trace_id
        self._pid = os.getpid()
        self._batch: list[dict[str, Any]] = []
        self._sent = 0
        self._dead = False

    def event(self, event: dict[str, Any]) -> None:
        kind = event.get("type")
        if kind == "span":
            if self._sent >= _MAX_EVENTS:
                return
            if (
                event.get("depth", 0) > _MAX_DEPTH
                and event.get("dur", 0.0) < _MIN_DUR
            ):
                return
        elif kind not in ("meta", "end"):
            # per-call counter/gauge events stay in the JSONL file; the
            # end record carries their aggregates, which is all the
            # live dashboard needs
            return
        self._batch.append(event)
        self._sent += 1
        if len(self._batch) >= _BATCH or kind == "end":
            self._flush()

    def _flush(self) -> None:
        if self._dead or not self._batch:
            self._batch = []
            return
        try:
            self._queue.put((self._pid, self._trace_id, self._batch))
        except Exception:
            self._dead = True
        self._batch = []

    def close(self, tracer: Any = None) -> None:
        self._flush()


class TelemetryBus:
    """Supervisor-side drain: per-trace ring buffers + aggregate metrics.

    ``attach(queue)`` starts a daemon thread that drains worker
    messages until a ``None`` sentinel arrives (sent by the pool at
    shutdown).  Live trace buffers are bounded deques so a pathological
    job cannot grow supervisor memory without limit.
    """

    def __init__(self, metrics: Any = None, *, buffer_events: int = 2048) -> None:
        self._buffer_events = buffer_events
        self._traces: dict[str, deque] = {}
        self._lock = threading.Lock()
        self._thread: threading.Thread | None = None
        self._queue: Any = None
        self._events_total = (
            metrics.counter(
                "repro_bus_events_total",
                "Telemetry-bus events drained from workers.",
            )
            if metrics is not None
            else None
        )
        self._live_traces = (
            metrics.gauge(
                "repro_bus_live_traces",
                "Traces currently buffered on the telemetry bus.",
            )
            if metrics is not None
            else None
        )

    # -- lifecycle ---------------------------------------------------------

    def attach(self, queue: Any) -> None:
        self._queue = queue
        self._thread = threading.Thread(
            target=self._drain, name="repro-telemetry-bus", daemon=True
        )
        self._thread.start()

    def close(self) -> None:
        if self._queue is not None:
            try:
                self._queue.put(None)
            except Exception:
                pass
        if self._thread is not None:
            self._thread.join(timeout=2.0)
            self._thread = None

    def _drain(self) -> None:
        while True:
            try:
                message = self._queue.get()
            except (EOFError, OSError):
                return
            if message is None:
                return
            try:
                pid, trace_id, events = message
            except (TypeError, ValueError):
                continue
            self._ingest(pid, trace_id, events)

    # -- ingestion and queries --------------------------------------------

    def _ingest(
        self, pid: int, trace_id: str, events: list[dict[str, Any]]
    ) -> None:
        key = str(trace_id)[:16]
        with self._lock:
            buffer = self._traces.get(key)
            if buffer is None:
                buffer = self._traces[key] = deque(maxlen=self._buffer_events)
            buffer.extend(events)
            live = len(self._traces)
        if self._events_total is not None:
            for event in events:
                self._events_total.inc(
                    type=str(event.get("type", "unknown"))
                )
        if self._live_traces is not None:
            self._live_traces.set(float(live))

    def trace(self, job: str) -> list[dict[str, Any]]:
        """Buffered events for a job id (or its 16-char prefix)."""
        key = str(job)[:16]
        with self._lock:
            buffer = self._traces.get(key)
            return list(buffer) if buffer is not None else []

    def traces(self) -> list[str]:
        with self._lock:
            return sorted(self._traces)

    def forget(self, job: str) -> None:
        """Drop a finished job's buffer (files are the durable record)."""
        with self._lock:
            self._traces.pop(str(job)[:16], None)
        if self._live_traces is not None:
            with self._lock:
                live = len(self._traces)
            self._live_traces.set(float(live))
