"""Declarative service-level objectives with rolling-window burn rates.

An SLO config names targets for the served retiming system::

    {
      "window_seconds": 300,
      "latency_p95_seconds": 2.0,
      "error_rate": 0.02,
      "shed_rate": 0.10
    }

The :class:`SLOEngine` ingests one sample per request outcome
(completed, failed, shed) into time-stamped rolling windows and reports
**burn rates** — observed value over target.  A burn rate of 1.0 means
the service is consuming its error budget exactly as fast as the SLO
allows; above 1.0 the objective is being violated right now.  The
engine backs ``GET /slo`` on the live server and ``mcretime slo check``
in CI, and :func:`evaluate` is the shared pass/fail policy: every
objective's burn rate must stay <= 1.0.

``check_records`` is the offline mode: it replays ``service.job`` run
ledger records (the same ledger the perf sentinel consumes) through an
engine, so the SLO gate can run after the fact against CI artifacts.
Like the sentinel, it supports ``--inject-latency`` — multiplying
observed latencies to prove the gate actually fails when the service
degrades.
"""

from __future__ import annotations

import json
import math
import time
from collections import deque
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterable

__all__ = [
    "SLOConfig",
    "SLOEngine",
    "check_records",
    "evaluate",
    "reevaluate",
    "render_status",
]


@dataclass(frozen=True)
class SLOConfig:
    """Targets for the served system; ``None`` disables an objective."""

    window_seconds: float = 300.0
    latency_p95_seconds: float | None = 2.0
    error_rate: float | None = 0.02
    shed_rate: float | None = 0.10

    @classmethod
    def from_dict(cls, raw: dict[str, Any]) -> "SLOConfig":
        known = {
            "window_seconds",
            "latency_p95_seconds",
            "error_rate",
            "shed_rate",
        }
        unknown = set(raw) - known
        if unknown:
            raise ValueError(
                f"unknown SLO config key(s): {', '.join(sorted(unknown))}"
            )
        return cls(**{k: raw[k] for k in known & set(raw)})

    @classmethod
    def load(cls, path: str | Path) -> "SLOConfig":
        return cls.from_dict(json.loads(Path(path).read_text()))

    def to_dict(self) -> dict[str, Any]:
        return {
            "window_seconds": self.window_seconds,
            "latency_p95_seconds": self.latency_p95_seconds,
            "error_rate": self.error_rate,
            "shed_rate": self.shed_rate,
        }


def _percentile(values: list[float], p: float) -> float:
    if not values:
        return 0.0
    ordered = sorted(values)
    rank = p / 100.0 * (len(ordered) - 1)
    lo = math.floor(rank)
    hi = math.ceil(rank)
    if lo == hi:
        return ordered[lo]
    frac = rank - lo
    return ordered[lo] * (1.0 - frac) + ordered[hi] * frac


@dataclass
class SLOEngine:
    """Rolling-window SLO evaluation over per-request samples.

    Thread-safety note: samples arrive from the pool's drain thread
    while ``status()`` is read from the asyncio front-end; deque
    appends and the pruning loop are atomic enough under the GIL that
    no explicit lock is needed for these monotone structures.
    """

    config: SLOConfig = field(default_factory=SLOConfig)
    clock: Any = time.time
    # (timestamp, latency_seconds) for completed requests
    _latencies: deque = field(default_factory=deque)
    # (timestamp, ok) for accepted requests (completed or failed)
    _outcomes: deque = field(default_factory=deque)
    # (timestamp, shed) for all arrivals (admitted or 429'd)
    _arrivals: deque = field(default_factory=deque)

    def observe(
        self, latency_seconds: float, *, ok: bool = True, ts: float | None = None
    ) -> None:
        """Record a request that was admitted and reached a terminal state."""
        now = self.clock() if ts is None else ts
        if ok:
            self._latencies.append((now, latency_seconds))
        self._outcomes.append((now, ok))
        self._arrivals.append((now, False))

    def observe_shed(self, ts: float | None = None) -> None:
        """Record a request rejected at admission (HTTP 429)."""
        now = self.clock() if ts is None else ts
        self._arrivals.append((now, True))

    def _prune(self, now: float) -> None:
        horizon = now - self.config.window_seconds
        for window in (self._latencies, self._outcomes, self._arrivals):
            while window and window[0][0] < horizon:
                window.popleft()

    def status(self, *, now: float | None = None) -> dict[str, Any]:
        """Observed values, burn rates, and per-objective verdicts."""
        now = self.clock() if now is None else now
        self._prune(now)
        latencies = [v for _, v in self._latencies]
        outcomes = [ok for _, ok in self._outcomes]
        arrivals = [shed for _, shed in self._arrivals]
        p95 = _percentile(latencies, 95.0)
        error_rate = (
            outcomes.count(False) / len(outcomes) if outcomes else 0.0
        )
        shed_rate = (
            arrivals.count(True) / len(arrivals) if arrivals else 0.0
        )
        window = self.config.window_seconds
        observed = {
            "latency_p95_seconds": p95,
            "error_rate": error_rate,
            "shed_rate": shed_rate,
            "throughput_per_second": len(outcomes) / window if window else 0.0,
            "requests": len(arrivals),
            "completed": len(latencies),
        }
        slos = []
        for name, target in (
            ("latency_p95_seconds", self.config.latency_p95_seconds),
            ("error_rate", self.config.error_rate),
            ("shed_rate", self.config.shed_rate),
        ):
            if target is None:
                continue
            value = observed[name]
            burn = value / target if target > 0 else (math.inf if value else 0.0)
            slos.append(
                {
                    "name": name,
                    "target": target,
                    "observed": value,
                    "burn_rate": burn,
                    "ok": burn <= 1.0,
                }
            )
        return {
            "config": self.config.to_dict(),
            "window_seconds": window,
            "observed": observed,
            "slos": slos,
            "ok": all(s["ok"] for s in slos),
        }


def reevaluate(status: dict[str, Any], config: SLOConfig) -> dict[str, Any]:
    """Re-judge a status dict's observed values against *config*.

    ``mcretime slo check --url … --config …`` gates a live server
    against a *committed* config, which may differ from the targets the
    server was started with — only the observed window values are
    reused.
    """
    observed = dict(status.get("observed", {}))
    slos = []
    for name, target in (
        ("latency_p95_seconds", config.latency_p95_seconds),
        ("error_rate", config.error_rate),
        ("shed_rate", config.shed_rate),
    ):
        if target is None:
            continue
        value = float(observed.get(name, 0.0))
        burn = value / target if target > 0 else (math.inf if value else 0.0)
        slos.append(
            {
                "name": name,
                "target": target,
                "observed": value,
                "burn_rate": burn,
                "ok": burn <= 1.0,
            }
        )
    return {
        "config": config.to_dict(),
        "window_seconds": status.get(
            "window_seconds", config.window_seconds
        ),
        "observed": observed,
        "slos": slos,
        "ok": all(s["ok"] for s in slos),
    }


def evaluate(
    status: dict[str, Any], *, inject_latency: float | None = None
) -> tuple[bool, list[str]]:
    """Pass/fail an SLO status dict; returns ``(ok, messages)``.

    *inject_latency* multiplies the observed p95 before judging — the
    self-test hook (mirroring the sentinel's ``--inject-slowdown``)
    that proves a degraded service actually fails the gate.
    """
    messages: list[str] = []
    ok = True
    for slo in status.get("slos", ()):
        observed = slo["observed"]
        burn = slo["burn_rate"]
        if inject_latency and slo["name"] == "latency_p95_seconds":
            observed = observed * inject_latency
            burn = observed / slo["target"] if slo["target"] > 0 else math.inf
        passed = burn <= 1.0
        ok = ok and passed
        messages.append(
            f"{'PASS' if passed else 'FAIL'} {slo['name']}: "
            f"observed {observed:.4g} vs target {slo['target']:.4g} "
            f"(burn rate {burn:.2f})"
        )
    if not status.get("slos"):
        messages.append("PASS (no objectives configured)")
    return ok, messages


def render_status(status: dict[str, Any]) -> str:
    """Human-readable block for ``mcretime slo show``."""
    observed = status.get("observed", {})
    lines = [
        f"window     : {status.get('window_seconds', 0):.0f}s "
        f"({observed.get('requests', 0)} request(s), "
        f"{observed.get('completed', 0)} completed)",
        f"throughput : {observed.get('throughput_per_second', 0.0):.3f} req/s",
    ]
    for slo in status.get("slos", ()):
        lines.append(
            f"{'ok ' if slo['ok'] else 'BURN'} {slo['name']:<22} "
            f"observed {slo['observed']:.4g}  target {slo['target']:.4g}  "
            f"burn {slo['burn_rate']:.2f}"
        )
    lines.append(f"overall    : {'ok' if status.get('ok') else 'VIOLATED'}")
    return "\n".join(lines)


def check_records(
    records: Iterable[dict[str, Any]],
    config: SLOConfig,
    *,
    inject_latency: float | None = None,
) -> tuple[bool, list[str], dict[str, Any]]:
    """Replay ``service.job`` ledger records through an SLO engine.

    Timestamps are synthesised so every record lands inside one
    window — the offline gate judges the whole run, not just its tail.
    """
    engine = SLOEngine(config=config, clock=lambda: 0.0)
    n = 0
    for record in records:
        if record.get("kind") != "service.job":
            continue
        metrics = record.get("metrics", {})
        elapsed = metrics.get("elapsed")
        if elapsed is None:
            continue
        status_text = str(record.get("status", "done"))
        if status_text == "shed":
            engine.observe_shed(ts=0.0)
        else:
            engine.observe(
                float(elapsed), ok=status_text not in ("failed", "error"),
                ts=0.0,
            )
        n += 1
    status = engine.status(now=0.0)
    ok, messages = evaluate(status, inject_latency=inject_latency)
    if n == 0:
        ok = False
        messages.append("FAIL no service.job records found in ledger")
    return ok, messages, status
