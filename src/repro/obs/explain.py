"""Certificate-backed explanations for retiming results.

Every solver in the pipeline is naturally self-explaining: the binding
period is witnessed by a maximal register-free path, minimality by a
negative cycle at any smaller period, per-gate clamps by the mc-bound
machinery's own step-validity predicate, and every register of min-area
cost by LP duality on the min-cost-flow solution.  This module extracts
those facts as **machine-checkable certificates** and renders them as
human explanations (``mcretime explain``):

* **why-period** — the critical-path witness (gate chain whose delays
  re-sum bit-exactly to the achieved period over zero-register retimed
  edges) plus, when the period was minimised, a negative-cycle
  certificate at the next-lower candidate period: the gate cycle whose
  register count cannot separate its register-free segments, reported
  with its delay/registers ratio.
* **why-stuck** — per-gate bound attribution: which mc-bound
  (``r_min^mc`` / ``r_max^mc``) clamps the gate and the concrete
  blocker behind it (incompatible register-class pair on named edges,
  empty register layer, separation-vertex cap, conflict clamp).
* **why-area** — min-area attribution from the min-cost-flow dual:
  per-vertex cost coefficients and lags, flow-carrying (binding)
  constraints, separation/mirror charges, and the strong-duality
  identity ``registers == primal == dual`` re-checked arithmetically.
* **lags** — the tight-constraint predecessor chain through the host
  explaining each vertex's lag (telescoping sums re-validated).
* **why-infeasible** — :class:`repro.retime.constraints.
  InfeasibleConstraints` carries a verified negative-cycle certificate;
  :func:`infeasible_payload` turns it into the same JSON shape.

All extraction is post-hoc: nothing here runs unless an explanation was
requested, so the solving hot paths pay nothing when explain is off
(gated by ``benchmarks/bench_obs.py --check-explain``).  Because every
certificate is re-validated independently of the solver that produced
it (:func:`validate_explanation`), the layer doubles as a correctness
oracle over the compiled kernels.

See docs/EXPLAIN.md for worked examples.
"""

from __future__ import annotations

import json
from typing import Any

SCHEMA = "repro.explain/1"

__all__ = [
    "SCHEMA",
    "area_attribution",
    "build_explanation",
    "critical_path_witness",
    "infeasible_payload",
    "lag_parents",
    "period_lower_bound",
    "render_explanation",
    "stuck_attribution",
    "summary_metrics",
    "validate_explanation",
]

#: Same float slack as the retiming engines.
_EPS = 1e-9


# ---------------------------------------------------------------------------
# why-period: witness + lower bound
# ---------------------------------------------------------------------------


def critical_path_witness(graph, r: dict[str, int]) -> dict[str, Any]:
    """The critical-path certificate: achieved period, witnessed.

    Walks the Δ-sweep predecessor chain from the maximal vertex and
    re-sums the gate delays in chain order — the same left-fold the
    sweep itself performs, so the sum reproduces the achieved period
    **bit-exactly**.  Every consecutive edge must carry zero registers
    under *r* (recorded for independent re-validation).
    """
    from ..retime.feas import compute_delta

    sweep = compute_delta(graph, r)
    period = sweep.period
    end = next(v for v in sweep.delta if sweep.delta[v] == period)
    path = []
    node: str | None = end
    while node is not None:
        path.append(node)
        node = sweep.pred.get(node)
    path.reverse()
    delays = [graph.vertices[v].delay for v in path]
    acc = 0.0
    for d in delays:
        acc += d
    edges = []
    for u, v in zip(path, path[1:]):
        w = min(
            graph.retimed_weight(e, r)
            for e in graph.out_edges(u)
            if e.v == v
        )
        edges.append({"u": u, "v": v, "w_retimed": w})
    return {
        "kind": "critical_path",
        "period": period,
        "path": path,
        "delays": delays,
        "sum": acc,
        "edges": edges,
    }


def _lazy_period_probe(graph, bounds, phi):
    """Dict-engine lazy feasibility at *phi*, capturing per-constraint
    gate paths.  Returns ``(system, feasible, paths)`` where *paths*
    maps each generated period constraint's (u, v) pair to the
    register-free gate path that produced it."""
    from ..graph.retiming_graph import HOST
    from ..retime.feas import compute_delta
    from ..retime.minperiod import EPS, MAX_LAZY_ROUNDS, base_system

    system = base_system(graph, bounds)
    paths: dict[tuple[str, str], list[str]] = {}
    for _ in range(MAX_LAZY_ROUNDS):
        r = system.solve()
        if r is None:
            return system, False, paths
        shift = r.get(HOST, 0)
        if shift:
            r = {v: val - shift for v, val in r.items()}
        sweep = compute_delta(graph, r)
        added = False
        for v, dv in sweep.delta.items():
            if dv <= phi + EPS:
                continue
            if graph.vertices[v].kind == "mirror":
                continue
            u = sweep.trace_start(v)
            bound = r.get(u, 0) - r.get(v, 0) - 1
            if system.add(u, v, bound, tag="period"):
                added = True
                chain = [v]
                node = v
                while sweep.pred.get(node) is not None:
                    node = sweep.pred[node]
                    chain.append(node)
                chain.reverse()
                paths[(u, v)] = chain
        if not added:
            return system, True, paths
    raise RuntimeError("lazy period-constraint generation did not converge")


def _compose_cycle(cycle, paths):
    """Expand a negative cycle's constraints into a gate cycle.

    Circuit constraints contribute their edge (bound registers); period
    constraints contribute their captured register-free path (bound + 1
    registers, the path's original weight).  Returns ``(gates,
    registers)`` or None when the cycle runs through pin/class arcs
    (those name an mc-bound clamp instead of a pure gate cycle).
    """
    gates: list[str] = []
    registers = 0
    for c in cycle:
        if c["tag"] == "circuit":
            seg = [c["u"], c["v"]]
            registers += c["bound"]
        elif c["tag"] == "period":
            seg = paths.get((c["u"], c["v"])) or [c["u"], c["v"]]
            registers += c["bound"] + 1
        else:
            return None
        if gates and gates[-1] == seg[0]:
            gates.extend(seg[1:])
        else:
            gates.extend(seg)
    if len(gates) > 1 and gates[0] == gates[-1]:
        gates.pop()
    return gates, registers


def period_lower_bound(graph, bounds, period: float) -> dict[str, Any] | None:
    """Minimality certificate: a negative cycle at the next-lower period.

    Probes feasibility just below the achieved period (half a unit for
    integral delays, a relative epsilon otherwise) and extracts the
    negative cycle proving no retiming can beat it.  When the cycle is
    pure circuit+period it is expanded into the witnessing gate cycle
    with its delay/registers ratio — the classic ``ceil(D/W)`` bound.
    Returns None when the probe is still feasible (period not proven
    minimal at this granularity — e.g. a float-delay search that
    converged within its epsilon, or a caller-supplied target period).
    """
    integral = period == int(period) and all(
        v.delay == int(v.delay) for v in graph.vertices.values()
    )
    probe = period - 0.5 if integral else period - max(period * 1e-6, 1e-6)
    if probe < 0:
        return None
    system, feasible, paths = _lazy_period_probe(graph, bounds, probe)
    if feasible:
        return None
    cycle = system.negative_cycle()
    if cycle is None:
        return None
    constraints = [
        {"u": c.u, "v": c.v, "bound": c.bound, "tag": c.tag} for c in cycle
    ]
    cert: dict[str, Any] = {
        "kind": "negative_cycle",
        "probe_period": probe,
        "sum": sum(c["bound"] for c in constraints),
        "constraints": constraints,
        "paths": {
            f"{u}->{v}": chain
            for (u, v), chain in paths.items()
            if any(c["u"] == u and c["v"] == v for c in constraints)
        },
    }
    composed = _compose_cycle(constraints, paths)
    if composed is not None:
        gates, registers = composed
        delay = 0.0
        for g in gates:
            delay += graph.vertices[g].delay
        cert["cycle_gates"] = gates
        cert["registers"] = registers
        cert["delay"] = delay
        if registers > 0:
            cert["ratio"] = delay / registers
            if integral:
                ceil = -(-int(round(delay)) // registers)
                cert["ratio_ceil"] = ceil
                cert["ratio_matches_period"] = float(ceil) == period
    else:
        tags = sorted({c["tag"] for c in constraints} - {"circuit", "period"})
        cert["bound_tags"] = tags  # mc-bound / pin arcs participate
    return cert


# ---------------------------------------------------------------------------
# lags: tight-chain attribution
# ---------------------------------------------------------------------------


def lag_parents(system, r: dict[str, int]) -> dict[str, Any]:
    """Tight-constraint predecessor chains through the host.

    A constraint ``r(u) − r(v) ≤ b`` is *tight* when equality holds;
    chaining tight constraints from the host explains each reachable
    vertex's lag as a telescoping sum of named bounds.  Vertices not
    reachable through tight arcs have lags pinned by the objective, not
    by any constraint chain — they are reported absent.
    """
    from ..graph.retiming_graph import HOST

    by_source: dict[str, list] = {}
    for c in system:
        by_source.setdefault(c.v, []).append(c)
    parents: dict[str, dict[str, Any]] = {}
    frontier = [HOST]
    visited = {HOST}
    while frontier:
        v = frontier.pop()
        rv = r.get(v, 0)
        for c in by_source.get(v, ()):
            if c.u in visited:
                continue
            if r.get(c.u, 0) - rv == c.bound:
                visited.add(c.u)
                parents[c.u] = {
                    "u": c.u,
                    "v": c.v,
                    "bound": c.bound,
                    "tag": c.tag,
                }
                frontier.append(c.u)
    return {"host": HOST, "parents": parents}


def lag_chain(lags: dict[str, Any], gate: str) -> list[dict[str, Any]]:
    """Reconstruct the tight chain host → *gate* from a parents map."""
    chain = []
    node = gate
    parents = lags.get("parents", {})
    seen = set()
    while node in parents and node not in seen:
        seen.add(node)
        chain.append(parents[node])
        node = parents[node]["v"]
    return chain


# ---------------------------------------------------------------------------
# why-stuck: bound attribution
# ---------------------------------------------------------------------------


def stuck_attribution(
    work_graph,
    bounds_result,
    transform,
    work_bounds: dict[str, tuple[int, int]],
    r: dict[str, int],
) -> dict[str, Any]:
    """Name the concrete blocker for every gate clamped at an mc-bound.

    For a gate sitting at ``r_max^mc`` the backward-step validity
    predicate is probed on the *maximally backward-retimed* graph — the
    exact state in which the bounds pass stopped moving it — so the
    reason (incompatible class pair, empty layer, no fanout) is the real
    one, not a reconstruction; symmetrically ``r_min^mc`` probes the
    forward graph.  Engine clamps below the mc-bound (justification
    conflicts, relocation deadlocks) and separation-vertex caps (Eq. 3)
    are reported as such.
    """
    from ..graph.mcgraph import backward_block_reason, forward_block_reason

    seps = {s.sep: s for s in transform.separations} if transform else {}
    entries: dict[str, dict[str, Any]] = {}
    for v in sorted(work_bounds):
        lo, hi = work_bounds[v]
        rv = r.get(v, 0)
        vertex = work_graph.vertices.get(v)
        kind = vertex.kind if vertex is not None else "unknown"
        binding: list[str] = []
        reasons: list[dict[str, Any]] = []
        if rv >= hi:
            binding.append("r_max^mc")
            reasons.append(_bound_reason(
                v, hi, kind, seps, bounds_result, "backward",
                backward_block_reason,
            ))
        if rv <= lo:
            binding.append("r_min^mc")
            reasons.append(_bound_reason(
                v, lo, kind, seps, bounds_result, "forward",
                forward_block_reason,
            ))
        if not binding:
            continue
        entries[v] = {
            "r": rv,
            "r_min": lo,
            "r_max": hi,
            "kind": kind,
            "binding": binding,
            "reasons": reasons,
        }
    return entries


def _bound_reason(v, bound, kind, seps, bounds_result, direction, probe):
    if kind == "sep":
        s = seps.get(v)
        reason: dict[str, Any] = {
            "direction": direction,
            "reason": "separation_bound",
        }
        if s is not None:
            reason.update(
                edge=f"{s.u}->{s.v}",
                non_sharable=s.tail_regs,
                detail=(
                    "Eq. 3 cap: moving further would pull non-sharable "
                    "registers across the class cutline"
                ),
            )
        return reason
    mc_lo, mc_hi = bounds_result.bounds.get(v, (0, 0))
    mc_bound = mc_hi if direction == "backward" else mc_lo
    if (direction == "backward" and bound < mc_hi) or (
        direction == "forward" and bound > mc_lo
    ):
        return {
            "direction": direction,
            "reason": "conflict_clamp",
            "mc_bound": mc_bound,
            "clamped_to": bound,
            "detail": (
                "engine clamped below the mc-bound after a justification "
                "conflict or relocation deadlock"
            ),
        }
    graph = (
        bounds_result.backward_graph
        if direction == "backward"
        else bounds_result.forward_graph
    )
    if v not in graph.vertices:
        return {"direction": direction, "reason": "unknown_vertex"}
    reason = probe(graph, v)
    if reason is None:
        # the maximal pass stopped at the per-vertex cap, not a blocker
        return {"direction": direction, "reason": "exploration_cap"}
    return reason


# ---------------------------------------------------------------------------
# why-area: LP dual attribution
# ---------------------------------------------------------------------------


def area_attribution(
    work_graph,
    phi: float,
    bounds: dict[str, tuple[int, int]] | None,
    expected_r: dict[str, int] | None = None,
) -> dict[str, Any]:
    """Min-area attribution from the min-cost-flow dual.

    Re-runs the (deterministic) dict-engine lazy LP at *phi* capturing
    the final flow network, then reads off: per-vertex cost coefficients
    and their objective contributions, the flow-carrying (binding)
    constraints with their tags, mirror/separation charges, and the
    strong-duality identity ``registers == constant + Σc·r ==
    constant − Σb·flow`` which the validator re-checks arithmetically.
    ``reproduced`` records that the re-run's solution matches the
    engine's (bit-identity between the capture and the served result).
    """
    from ..retime.minarea import _lazy_lp_rounds
    from ..retime.minperiod import base_system
    from ..retime.sharing_model import build_sharing_model, shared_register_count

    model = build_sharing_model(work_graph)
    system = base_system(model.graph, bounds)
    capture: dict[str, Any] = {}
    best, rounds = _lazy_lp_rounds(
        work_graph, model.graph, system, model, phi, capture=capture
    )
    flow = capture["flow"]
    full_r = capture["full_r"]
    real_r = {v: best.get(v, 0) for v in work_graph.vertices}
    registers = shared_register_count(work_graph, real_r)
    tags = {(c.u, c.v): c.tag for c in system}
    binding = [
        {
            "u": a.u,
            "v": a.v,
            "bound": a.cost,
            "flow": a.flow,
            "tag": tags.get((a.u, a.v), ""),
        }
        for a in flow.arcs()
        if a.flow
    ]
    dual_sum = sum(a.flow * a.cost for a in flow.arcs())
    primal_sum = sum(c * full_r.get(v, 0) for v, c in model.cost.items())
    contributions = {
        v: {"cost": c, "r": full_r.get(v, 0), "term": c * full_r.get(v, 0)}
        for v, c in sorted(model.cost.items())
    }
    charges = []
    for v, c in sorted(model.cost.items()):
        vertex = model.graph.vertices.get(v)
        kind = vertex.kind if vertex is not None else "unknown"
        if kind in ("sep", "mirror"):
            charges.append(
                {"vertex": v, "kind": kind, "cost": c, "r": full_r.get(v, 0)}
            )
    return {
        "kind": "area_lp_duality",
        "phi": phi,
        "registers": registers,
        "registers_before": shared_register_count(work_graph),
        "constant": model.constant,
        "primal": model.constant + primal_sum,
        "dual": model.constant - dual_sum,
        "costs": {v: c for v, c in sorted(model.cost.items())},
        "full_r": {v: full_r.get(v, 0) for v in sorted(model.cost)},
        "binding": binding,
        "contributions": contributions,
        "charges": charges,
        "rounds": rounds,
        "reproduced": expected_r is None or real_r == expected_r,
    }


# ---------------------------------------------------------------------------
# assembly + validation
# ---------------------------------------------------------------------------


def build_explanation(
    work_graph,
    bounds_result,
    transform,
    work_bounds: dict[str, tuple[int, int]],
    r: dict[str, int],
    phi: float,
    objective: str,
    target_period: float | None = None,
    design: str = "",
) -> dict[str, Any]:
    """Assemble the full explanation for a solved retiming.

    Called post-hoc by :func:`repro.mcretime.mc_retime` when
    ``explain=True`` — every section is extracted from the already-
    solved state (plus deterministic re-solves on the exceptional
    explain path), never from instrumentation inside the hot loops.
    The result is JSON-ready and self-validating: ``checks`` /
    ``valid`` record the outcome of :func:`validate_explanation` run at
    build time.
    """
    witness = critical_path_witness(work_graph, r)
    period = witness["period"]
    minimal = target_period is None
    lower = period_lower_bound(work_graph, work_bounds, period) if minimal else None
    system, feasible, _paths = _lazy_period_probe(work_graph, work_bounds, phi)
    lags = lag_parents(system, r) if feasible else {"host": "", "parents": {}}
    stuck = stuck_attribution(
        work_graph, bounds_result, transform, work_bounds, r
    )
    area = (
        area_attribution(work_graph, phi, work_bounds, expected_r=r)
        if objective == "minarea"
        else None
    )
    explanation: dict[str, Any] = {
        "schema": SCHEMA,
        "design": design or work_graph.name,
        "objective": objective,
        "target_period": target_period,
        "phi": phi,
        "period": period,
        "minimal": minimal,
        "minimal_proven": lower is not None,
        "r": {v: r.get(v, 0) for v in sorted(work_graph.vertices)},
        "bounds": {v: list(b) for v, b in sorted(work_bounds.items())},
        "why_period": {"witness": witness, "lower_bound": lower},
        "why_stuck": stuck,
        "lags": lags,
        "why_area": area,
    }
    errors = validate_explanation(work_graph, explanation, bounds_result)
    explanation["certificates"] = certificate_count(explanation)
    explanation["errors"] = errors
    explanation["valid"] = not errors
    return explanation


def certificate_count(explanation: dict[str, Any]) -> int:
    """Number of independently checkable certificates attached."""
    n = 0
    wp = explanation.get("why_period") or {}
    if wp.get("witness"):
        n += 1
    if wp.get("lower_bound"):
        n += 1
    n += len(explanation.get("why_stuck") or ())
    if (explanation.get("lags") or {}).get("parents"):
        n += 1
    if explanation.get("why_area"):
        n += 1
    return n


def validate_explanation(
    work_graph, explanation: dict[str, Any], bounds_result=None
) -> list[str]:
    """Re-check every certificate independently of the solvers.

    Pure arithmetic over the graph and the explanation's own data:
    witness delays re-sum bit-exactly to the period over zero-register
    edges; the negative cycle chains and sums below zero, its gate
    cycle's ``delay/registers`` ratio lower-bounds the period (and
    reproduces it exactly when claimed); tight chains telescope to each
    vertex's lag; the area identity ``registers == primal == dual``
    holds.  Returns a list of error strings — empty means every
    certificate validates.
    """
    errors: list[str] = []
    r = explanation.get("r", {})
    period = explanation.get("period")

    witness = (explanation.get("why_period") or {}).get("witness")
    if witness:
        path = witness["path"]
        if not path:
            errors.append("witness: empty path")
        else:
            acc = 0.0
            for v in path:
                if v not in work_graph.vertices:
                    errors.append(f"witness: unknown vertex {v!r}")
                    break
                acc += work_graph.vertices[v].delay
            else:
                if acc != witness["sum"] or acc != period:
                    errors.append(
                        f"witness: delays sum to {acc}, certificate says "
                        f"{witness['sum']}, period {period}"
                    )
                for u, v in zip(path, path[1:]):
                    w = min(
                        (
                            work_graph.retimed_weight(e, r)
                            for e in work_graph.out_edges(u)
                            if e.v == v
                        ),
                        default=None,
                    )
                    if w != 0:
                        errors.append(
                            f"witness: edge {u}->{v} retimed weight {w} != 0"
                        )

    lower = (explanation.get("why_period") or {}).get("lower_bound")
    if lower:
        cons = lower["constraints"]
        total = sum(c["bound"] for c in cons)
        if total != lower["sum"] or total >= 0:
            errors.append(f"lower_bound: cycle sums to {total}, not negative")
        for i, c in enumerate(cons):
            nxt = cons[(i + 1) % len(cons)]
            if c["v"] != nxt["u"]:
                errors.append("lower_bound: constraint cycle does not chain")
                break
        for key, chain in (lower.get("paths") or {}).items():
            d = sum(work_graph.vertices[g].delay for g in chain if g in work_graph.vertices)
            if d <= lower["probe_period"] + _EPS:
                errors.append(
                    f"lower_bound: path {key} delay {d} does not exceed "
                    f"probe period {lower['probe_period']}"
                )
        if "cycle_gates" in lower:
            d = 0.0
            for g in lower["cycle_gates"]:
                d += work_graph.vertices[g].delay
            if d != lower["delay"]:
                errors.append("lower_bound: cycle delay mismatch")
            w = lower["registers"]
            if w > 0 and period is not None and period + _EPS < d / w:
                errors.append(
                    f"lower_bound: ratio {d / w} exceeds achieved period"
                )
            if lower.get("ratio_matches_period") and float(
                lower["ratio_ceil"]
            ) != period:
                errors.append(
                    "lower_bound: claimed ceil(D/W) == period does not hold"
                )

    lags = explanation.get("lags") or {}
    host = lags.get("host")
    for v, parent in (lags.get("parents") or {}).items():
        if parent["u"] != v:
            errors.append(f"lags: parent arc for {v!r} names {parent['u']!r}")
            continue
        chain = lag_chain(lags, v)
        if not chain or chain[-1]["v"] != host:
            errors.append(f"lags: chain for {v!r} does not reach the host")
            continue
        total = 0
        ok = True
        for c in chain:
            if r.get(c["u"], 0) - r.get(c["v"], 0) != c["bound"]:
                errors.append(f"lags: arc {c['u']}->{c['v']} is not tight")
                ok = False
                break
            total += c["bound"]
        if ok and total != r.get(v, 0) - r.get(host, 0):
            errors.append(
                f"lags: chain for {v!r} telescopes to {total}, lag is "
                f"{r.get(v, 0)}"
            )

    for v, entry in (explanation.get("why_stuck") or {}).items():
        lo, hi = entry["r_min"], entry["r_max"]
        rv = entry["r"]
        if r.get(v, 0) != rv or not (lo <= rv <= hi):
            errors.append(f"why_stuck: {v!r} lag {rv} outside [{lo}, {hi}]")
        if not entry["reasons"]:
            errors.append(f"why_stuck: {v!r} clamped without a reason")
        for reason in entry["reasons"]:
            if reason.get("reason") == "class_mismatch":
                classes = {e["cls"] for e in reason.get("edges", ())}
                if len(classes) < 2:
                    errors.append(
                        f"why_stuck: {v!r} class_mismatch names one class"
                    )
        if bounds_result is not None and entry["kind"] not in ("sep",):
            mc = bounds_result.bounds.get(v)
            if mc is not None and not (mc[0] <= lo and hi <= mc[1]):
                errors.append(
                    f"why_stuck: {v!r} bounds [{lo}, {hi}] outside mc "
                    f"bounds {mc}"
                )

    area = explanation.get("why_area")
    if area:
        from ..retime.sharing_model import shared_register_count

        real_r = {v: r.get(v, 0) for v in work_graph.vertices}
        registers = shared_register_count(work_graph, real_r)
        if registers != area["registers"]:
            errors.append(
                f"why_area: shared register count {registers} != "
                f"certificate {area['registers']}"
            )
        primal = area["constant"] + sum(
            c * area["full_r"].get(v, 0) for v, c in area["costs"].items()
        )
        dual = area["constant"] - sum(
            b["flow"] * b["bound"] for b in area["binding"]
        )
        if primal != area["primal"] or dual != area["dual"]:
            errors.append("why_area: primal/dual recomputation mismatch")
        if not (area["registers"] == primal == dual):
            errors.append(
                f"why_area: duality identity fails (registers "
                f"{area['registers']}, primal {primal}, dual {dual})"
            )
        if not area.get("reproduced", True):
            errors.append("why_area: re-solve did not reproduce the result")

    return errors


def infeasible_payload(err) -> dict[str, Any]:
    """JSON payload for an :class:`InfeasibleConstraints` error."""
    cert = err.certificate()
    cons = cert["constraints"]
    chained = all(
        cons[i]["v"] == cons[(i + 1) % len(cons)]["u"] for i in range(len(cons))
    ) if cons else False
    valid = bool(cons) and cert["sum"] < 0 and chained
    return {
        "schema": SCHEMA,
        "kind": "infeasible",
        "message": str(err),
        "summary": err.summary(),
        "certificate": cert,
        "valid": valid,
        "errors": [] if valid else ["negative-cycle certificate invalid"],
    }


def summary_metrics(explanation: dict[str, Any]) -> dict[str, Any]:
    """Flat, diffable summary for the run ledger / service metrics."""
    wp = explanation.get("why_period") or {}
    witness = wp.get("witness") or {}
    lower = wp.get("lower_bound") or {}
    return {
        "certificates": explanation.get("certificates", 0),
        "valid": bool(explanation.get("valid")),
        "period": explanation.get("period"),
        "minimal_proven": bool(explanation.get("minimal_proven")),
        "witness_gates": len(witness.get("path", ())),
        "cycle_registers": lower.get("registers"),
        "stuck_gates": len(explanation.get("why_stuck") or ()),
        "binding_constraints": len(
            (explanation.get("why_area") or {}).get("binding", ())
        ),
    }


# ---------------------------------------------------------------------------
# rendering
# ---------------------------------------------------------------------------


def render_explanation(
    explanation: dict[str, Any],
    sections: tuple[str, ...] | None = None,
    gate: str | None = None,
    max_items: int = 8,
) -> str:
    """Human-readable tree for ``mcretime explain`` (text mode).

    *sections* restricts output (names: ``why-period``, ``why-stuck``,
    ``why-area``, ``lags``); *gate* focuses why-stuck/lags on one gate.
    """
    if explanation.get("kind") == "infeasible":
        return render_infeasible(explanation)
    want = set(sections) if sections else None

    def on(name: str) -> bool:
        return want is None or name in want

    lines = [
        f"explain {explanation.get('design', '?')} "
        f"(objective {explanation.get('objective')}, "
        f"period {_fmt(explanation.get('period'))})"
    ]
    if on("why-period"):
        lines += _render_period(explanation, max_items)
    if on("why-stuck"):
        lines += _render_stuck(explanation, gate, max_items)
    if on("lags"):
        lines += _render_lags(explanation, gate, max_items)
    if on("why-area") and explanation.get("why_area"):
        lines += _render_area(explanation, max_items)
    errors = explanation.get("errors") or []
    n = explanation.get("certificates", 0)
    verdict = "all valid" if not errors else f"{len(errors)} FAILED"
    lines.append(f"certificates: {n} ({verdict})")
    for e in errors:
        lines.append(f"  ! {e}")
    return "\n".join(lines)


def render_infeasible(payload: dict[str, Any]) -> str:
    """Text rendering of an infeasibility certificate."""
    cert = payload["certificate"]
    cons = cert["constraints"]
    lines = [payload["summary"]]
    for c in cons:
        tag = c["tag"] or "untagged"
        lines.append(
            f"  {c['u']} -> {c['v']}  r({c['u']}) - r({c['v']}) <= "
            f"{c['bound']}  [{tag}]"
        )
    lines.append(
        f"  sum of bounds = {cert['sum']} < 0  "
        f"[{'verified' if payload['valid'] else 'INVALID'}]"
    )
    return "\n".join(lines)


def _fmt(value) -> str:
    if isinstance(value, float) and value == int(value):
        return str(int(value))
    return str(value)


def _render_period(explanation, max_items):
    wp = explanation.get("why_period") or {}
    witness = wp.get("witness")
    lines = ["why-period:"]
    if witness:
        path = witness["path"]
        shown = " -> ".join(
            f"{v}({_fmt(d)})" for v, d in list(zip(path, witness["delays"]))[:max_items]
        )
        more = f" ... +{len(path) - max_items}" if len(path) > max_items else ""
        ok = witness["sum"] == explanation.get("period")
        lines.append(
            f"  witness: {len(path)}-gate register-free critical path, "
            f"delay {_fmt(witness['sum'])} "
            f"{'== achieved period [OK]' if ok else '!= period [FAIL]'}"
        )
        lines.append(f"    {shown}{more}")
    lower = wp.get("lower_bound")
    if lower:
        lines.append(
            f"  lower bound: period {_fmt(lower['probe_period'])} infeasible "
            f"— {len(lower['constraints'])}-constraint negative cycle "
            f"(sum {lower['sum']})"
        )
        if "cycle_gates" in lower:
            gates = lower["cycle_gates"]
            shown = " -> ".join(gates[:max_items])
            more = f" ... +{len(gates) - max_items}" if len(gates) > max_items else ""
            note = ""
            if "ratio" in lower:
                note = (
                    f"  D/W = {_fmt(lower['delay'])}/{lower['registers']} "
                    f"= {lower['ratio']:.4g}"
                )
                if lower.get("ratio_matches_period"):
                    note += f", ceil = {lower['ratio_ceil']} == period [OK]"
            lines.append(f"    cycle: {shown}{more}{note}")
        elif lower.get("bound_tags"):
            lines.append(
                "    cycle runs through "
                + ", ".join(lower["bound_tags"])
                + " constraints (mc-bound clamp participates)"
            )
    elif explanation.get("minimal"):
        lines.append(
            "  lower bound: not proven at this granularity "
            "(float-delay search epsilon)"
        )
    else:
        lines.append(
            "  lower bound: n/a (caller-supplied target period, "
            "minimality not claimed)"
        )
    return lines


def _render_stuck(explanation, gate, max_items):
    stuck = explanation.get("why_stuck") or {}
    if gate is not None:
        entry = stuck.get(gate)
        if entry is None:
            bounds = (explanation.get("bounds") or {}).get(gate)
            if bounds is None:
                return [
                    f"why-stuck {gate}: not a movable vertex "
                    "(pinned to the host, or not in this design)"
                ]
            return [
                f"why-stuck {gate}: not clamped — lag "
                f"{explanation['r'].get(gate, 0)} strictly inside "
                f"bounds [{bounds[0]}, {bounds[1]}]"
            ]
        return [f"why-stuck {gate}:"] + _stuck_lines(gate, entry)
    interesting = {
        v: e for v, e in stuck.items()
        if e["kind"] != "sep" and (e["r_max"] != 0 or e["r_min"] != 0 or e["r"] != 0)
    } or stuck
    lines = [f"why-stuck: {len(stuck)} clamped vertices"]
    for v in list(sorted(interesting))[:max_items]:
        lines += _stuck_lines(v, stuck[v])
    if len(interesting) > max_items:
        lines.append(f"  ... +{len(interesting) - max_items} more")
    return lines


def _stuck_lines(v, entry):
    lines = [
        f"  {v}: r={entry['r']} in [{entry['r_min']}, {entry['r_max']}] "
        f"binds {', '.join(entry['binding'])}"
    ]
    for reason in entry["reasons"]:
        kind = reason.get("reason")
        if kind == "class_mismatch":
            pair = reason.get("edges", [])
            desc = " vs ".join(
                f"{e['edge']} class {e['cls']}" for e in pair
            )
            lines.append(f"    {reason['direction']}: class mismatch — {desc}")
        elif kind == "empty_layer":
            lines.append(
                f"    {reason['direction']}: no register layer on "
                f"{reason.get('edge')}"
            )
        elif kind == "conflict_clamp":
            lines.append(
                f"    {reason['direction']}: clamped to "
                f"{reason.get('clamped_to')} (mc bound "
                f"{reason.get('mc_bound')}) by a justification conflict"
            )
        elif kind == "separation_bound":
            lines.append(
                f"    {reason['direction']}: separation vertex cap "
                f"(Eq. 3) on {reason.get('edge', '?')}"
            )
        else:
            lines.append(f"    {reason.get('direction', '?')}: {kind}")
    return lines


def _render_lags(explanation, gate, max_items):
    lags = explanation.get("lags") or {}
    parents = lags.get("parents") or {}
    if gate is not None:
        chain = lag_chain(lags, gate)
        if not chain:
            return [
                f"lag {gate}: r={explanation['r'].get(gate, 0)} — no tight "
                "chain (lag chosen by the objective, not forced)"
            ]
        lines = [f"lag {gate}: r={explanation['r'].get(gate, 0)} forced by:"]
        for c in chain:
            lines.append(
                f"    r({c['u']}) = r({c['v']}) + {c['bound']}  [{c['tag']}]"
            )
        return lines
    nonzero = [v for v in sorted(parents) if explanation["r"].get(v, 0)]
    return [
        f"lags: {len(parents)} vertices have tight constraint chains "
        f"({len(nonzero)} with non-zero lag)"
    ]


def _render_area(explanation, max_items):
    area = explanation["why_area"]
    ok = area["registers"] == area["primal"] == area["dual"]
    lines = [
        "why-area:",
        f"  registers {area['registers']} = primal {area['primal']} = "
        f"dual {area['dual']} "
        f"{'(strong duality holds) [OK]' if ok else '[FAIL]'}",
    ]
    tags: dict[str, int] = {}
    for b in area["binding"]:
        tags[b["tag"] or "untagged"] = tags.get(b["tag"] or "untagged", 0) + 1
    lines.append(
        f"  binding constraints: {len(area['binding'])} flow-carrying arcs ("
        + ", ".join(f"{t} x{n}" for t, n in sorted(tags.items()))
        + ")"
    )
    top = sorted(
        area["contributions"].items(),
        key=lambda kv: abs(kv[1]["term"]),
        reverse=True,
    )[:max_items]
    shown = ", ".join(
        f"{v}({kv['term']:+d})" for v, kv in top if kv["term"]
    )
    if shown:
        lines.append(f"  top charges: {shown}")
    if area["charges"]:
        lines.append(
            f"  class-conflict charges: {len(area['charges'])} "
            "separation/mirror vertices carry cost"
        )
    return lines


def to_json(explanation: dict[str, Any]) -> str:
    """Canonical JSON rendering (sorted keys, stable across runs)."""
    return json.dumps(explanation, indent=2, sort_keys=True, default=str)
