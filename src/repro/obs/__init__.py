"""``repro.obs`` — zero-dependency tracing for the retiming pipeline.

Hierarchical spans, monotonic counters, and gauges over the whole
stack (engine phases, FEAS passes, Bellman–Ford rounds, binary-search
probes, min-cost-flow augmentations, STA dirty regions, service cache
hits), exported through pluggable sinks:

* Chrome ``trace_event`` JSON (open in Perfetto / ``chrome://tracing``),
* structured JSONL run logs (one event per line, streamed),
* a human-readable text summary tree (``mcretime report``).

Instrumented code uses the module-level helpers::

    from repro import obs

    with obs.span("minperiod.feas", probe=phi):
        ...
    obs.count("bf.rounds", rounds)
    obs.gauge("sta.dirty_gates", evaluated)

When no tracer is installed (the default) ``span`` returns a shared
no-op singleton and ``count``/``gauge`` return immediately — the
disabled path costs one global load per call site and is gated at <3 %
overhead on the kernel loops by ``benchmarks/bench_obs.py``.

Enable tracing with :func:`session` (what the CLI's ``--trace`` /
``--log-json`` / ``-v`` flags use), the ``REPRO_TRACE*`` environment
variables (:func:`configure_from_env`), or :func:`start`/:func:`stop`
directly.  Worker processes use :func:`job_trace`, keyed by the job's
canonical key so a trace id survives the process boundary.

Environment variables
---------------------
``REPRO_TRACE``          write a Chrome trace_event JSON to this path.
``REPRO_TRACE_LOG``      write a JSONL run log to this path.
``REPRO_TRACE_SUMMARY``  print the text summary tree to stderr at exit.
``REPRO_TRACE_DIR``      (workers) write one JSONL per job under this dir.
``REPRO_TRACE_SPANS``    (workers) trace in-memory only, so span totals
                         and counters ride back in ``metrics["obs"]``.

See ``docs/OBSERVABILITY.md`` for the span/counter taxonomy.
"""

from __future__ import annotations

import contextlib
import os
import sys
from pathlib import Path
from typing import Any

from .report import (
    cpu_split,
    load_events,
    render_summary,
    validate_chrome_trace,
    validate_jsonl,
)
from .sinks import ChromeTraceSink, JsonlSink, MemorySink
from .tracer import (
    NULL_SPAN,
    Span,
    StageClock,
    Stopwatch,
    Tracer,
    count,
    current,
    enabled,
    finalize_total,
    gauge,
    span,
    start,
    stop,
    timed,
)

__all__ = [
    "NULL_SPAN",
    "ChromeTraceSink",
    "JsonlSink",
    "MemorySink",
    "Span",
    "StageClock",
    "Stopwatch",
    "Tracer",
    "configure_from_env",
    "count",
    "cpu_split",
    "current",
    "enabled",
    "finalize_total",
    "gauge",
    "job_trace",
    "load_events",
    "render_summary",
    "session",
    "span",
    "start",
    "stop",
    "timed",
    "validate_chrome_trace",
    "validate_jsonl",
]


@contextlib.contextmanager
def session(
    trace: str | Path | None = None,
    jsonl: str | Path | None = None,
    summary: bool = False,
    trace_id: str | None = None,
    meta: dict[str, Any] | None = None,
):
    """Trace a block of work, wiring up the requested sinks.

    Yields the installed :class:`Tracer` (or None when an outer tracer
    is already active — nested sessions join the enclosing trace rather
    than shadowing it).  On exit the tracer is finalised, sinks are
    closed, and the summary tree is printed to stderr if requested.
    """
    if current() is not None:
        yield None
        return
    sinks: list[Any] = []
    if trace:
        sinks.append(ChromeTraceSink(trace))
    if jsonl:
        sinks.append(JsonlSink(jsonl))
    tracer = start(trace_id=trace_id, sinks=tuple(sinks), meta=meta)
    try:
        yield tracer
    finally:
        stop()
        if summary:
            print(tracer.summary(), file=sys.stderr)


@contextlib.contextmanager
def configure_from_env(environ: dict[str, str] | None = None):
    """A :func:`session` configured from the ``REPRO_TRACE*`` env vars.

    Yields None without tracing when none of the variables are set, so
    callers can wrap unconditionally.
    """
    env = os.environ if environ is None else environ
    trace = env.get("REPRO_TRACE") or None
    jsonl = env.get("REPRO_TRACE_LOG") or None
    summary = bool(env.get("REPRO_TRACE_SUMMARY"))
    if not (trace or jsonl or summary):
        yield None
        return
    with session(trace=trace, jsonl=jsonl, summary=summary) as tracer:
        yield tracer


@contextlib.contextmanager
def job_trace(job_id: str, environ: dict[str, str] | None = None):
    """Per-job tracing inside service worker processes.

    The pool propagates ``REPRO_TRACE_DIR`` / ``REPRO_TRACE_SPANS``
    into workers; this starts a fresh tracer whose trace id **is** the
    job's canonical key, so the trace written in the worker and the
    metrics observed in the service process correlate.  Yields None
    (without touching the active tracer) when an outer tracer is
    already running or neither variable is set.
    """
    if current() is not None:
        yield None
        return
    env = os.environ if environ is None else environ
    trace_dir = env.get("REPRO_TRACE_DIR") or None
    spans_only = bool(env.get("REPRO_TRACE_SPANS"))
    if not (trace_dir or spans_only):
        yield None
        return
    sinks: list[Any] = []
    if trace_dir:
        sinks.append(JsonlSink(Path(trace_dir) / f"{job_id[:16]}.jsonl"))
    tracer = start(trace_id=job_id, sinks=tuple(sinks), meta={"job": job_id[:16]})
    try:
        yield tracer
    finally:
        stop()
