"""``repro.obs`` — zero-dependency tracing for the retiming pipeline.

Hierarchical spans, monotonic counters, and gauges over the whole
stack (engine phases, FEAS passes, Bellman–Ford rounds, binary-search
probes, min-cost-flow augmentations, STA dirty regions, service cache
hits), exported through pluggable sinks:

* Chrome ``trace_event`` JSON (open in Perfetto / ``chrome://tracing``),
* structured JSONL run logs (one event per line, streamed),
* a human-readable text summary tree (``mcretime report``).

Instrumented code uses the module-level helpers::

    from repro import obs

    with obs.span("minperiod.feas", probe=phi):
        ...
    obs.count("bf.rounds", rounds)
    obs.gauge("sta.dirty_gates", evaluated)

When no tracer is installed (the default) ``span`` returns a shared
no-op singleton and ``count``/``gauge`` return immediately — the
disabled path costs one global load per call site and is gated at <3 %
overhead on the kernel loops by ``benchmarks/bench_obs.py``.

Enable tracing with :func:`session` (what the CLI's ``--trace`` /
``--log-json`` / ``-v`` flags use), the ``REPRO_TRACE*`` environment
variables (:func:`configure_from_env`), or :func:`start`/:func:`stop`
directly.  Worker processes use :func:`job_trace`, keyed by the job's
canonical key so a trace id survives the process boundary.

Environment variables
---------------------
``REPRO_TRACE``          write a Chrome trace_event JSON to this path.
``REPRO_TRACE_LOG``      write a JSONL run log to this path.
``REPRO_TRACE_SUMMARY``  print the text summary tree to stderr at exit.
``REPRO_TRACE_DIR``      (workers) write one JSONL per job under this dir.
``REPRO_TRACE_SPANS``    (workers) trace in-memory only, so span totals
                         and counters ride back in ``metrics["obs"]``.
``REPRO_PROFILE``        run the sampling profiler; write flame data here.
``REPRO_LEDGER``         append one run-ledger record to this JSONL file.
``REPRO_LEDGER_KIND``    the ``kind`` tag of that record (default ``run``).

See ``docs/OBSERVABILITY.md`` for the span/counter taxonomy, the
run-ledger schema, and the ``mcretime obs`` sentinel commands.
"""

from __future__ import annotations

import contextlib
import os
import sys
from pathlib import Path
from typing import Any

from .ledger import (
    RunLedger,
    build_record,
    design_fingerprint,
    environment,
    record_errors,
    record_from_tracer,
    validate_record,
)
from .bus import BusSink, TelemetryBus, job_sink, set_worker_queue
from .explain import (
    build_explanation,
    infeasible_payload,
    render_explanation,
    summary_metrics as explain_summary,
    validate_explanation,
)
from .profile import Profile, SamplingProfiler, profile_block
from .report import (
    chrome_trace_errors,
    cpu_split,
    jsonl_errors,
    load_events,
    render_summary,
    validate_chrome_trace,
    validate_jsonl,
)
from .sinks import ChromeTraceSink, JsonlSink, MemorySink
from .slo import (
    SLOConfig,
    SLOEngine,
    check_records,
    evaluate,
    reevaluate,
    render_status,
)
from .stitch import (
    critical_path,
    render_critical_path,
    request_timelines,
    stitch_dir,
    stitch_events,
    write_chrome,
    write_jsonl,
)
from .tracer import (
    NULL_SPAN,
    Span,
    StageClock,
    Stopwatch,
    Tracer,
    annotate,
    count,
    current,
    enabled,
    finalize_total,
    gauge,
    span,
    start,
    stop,
    timed,
)

__all__ = [
    "NULL_SPAN",
    "BusSink",
    "ChromeTraceSink",
    "JsonlSink",
    "MemorySink",
    "Profile",
    "RunLedger",
    "SLOConfig",
    "SLOEngine",
    "SamplingProfiler",
    "Span",
    "StageClock",
    "Stopwatch",
    "TelemetryBus",
    "Tracer",
    "annotate",
    "build_explanation",
    "build_record",
    "check_records",
    "chrome_trace_errors",
    "configure_from_env",
    "count",
    "cpu_split",
    "critical_path",
    "current",
    "design_fingerprint",
    "enabled",
    "environment",
    "evaluate",
    "explain_summary",
    "finalize_total",
    "gauge",
    "infeasible_payload",
    "job_sink",
    "job_trace",
    "jsonl_errors",
    "load_events",
    "profile_block",
    "record_errors",
    "record_from_tracer",
    "reevaluate",
    "render_critical_path",
    "render_explanation",
    "render_status",
    "render_summary",
    "request_timelines",
    "session",
    "set_worker_queue",
    "span",
    "start",
    "stitch_dir",
    "stitch_events",
    "stop",
    "timed",
    "validate_chrome_trace",
    "validate_explanation",
    "validate_jsonl",
    "validate_record",
    "write_chrome",
    "write_jsonl",
]


@contextlib.contextmanager
def session(
    trace: str | Path | None = None,
    jsonl: str | Path | None = None,
    summary: bool = False,
    trace_id: str | None = None,
    meta: dict[str, Any] | None = None,
    profile: str | Path | None = None,
    profile_interval: float = 0.005,
    ledger: str | Path | None = None,
    ledger_kind: str = "run",
    fingerprint: str | None = None,
):
    """Trace a block of work, wiring up the requested sinks.

    Yields the installed :class:`Tracer` (or None when an outer tracer
    is already active — nested sessions join the enclosing trace rather
    than shadowing it).  On exit the tracer is finalised, sinks are
    closed, and the summary tree is printed to stderr if requested.

    ``profile=`` additionally runs the sampling profiler over the block
    and writes the flame data to the given path on exit (speedscope
    JSON, or collapsed stacks for ``.txt``/``.collapsed``).  ``ledger=``
    appends one schema-validated run record to the given JSONL ledger
    (fingerprint/config/span self-times/counters/result metrics — see
    :mod:`repro.obs.ledger`); attach result metrics from inside the
    block with :func:`annotate`.
    """
    if current() is not None:
        yield None
        return
    sinks: list[Any] = []
    if trace:
        sinks.append(ChromeTraceSink(trace))
    if jsonl:
        sinks.append(JsonlSink(jsonl))
    tracer = start(trace_id=trace_id, sinks=tuple(sinks), meta=meta)
    profiler = (
        SamplingProfiler(interval=profile_interval).start() if profile else None
    )
    try:
        yield tracer
    finally:
        if profiler is not None:
            profiler.stop().write(profile)
        stop()
        if ledger:
            RunLedger(ledger).append(
                record_from_tracer(
                    tracer,
                    ledger_kind,
                    fingerprint=fingerprint,
                    config=dict(tracer.meta),
                    metrics=dict(tracer.results),
                )
            )
        if summary:
            print(tracer.summary(), file=sys.stderr)


@contextlib.contextmanager
def configure_from_env(environ: dict[str, str] | None = None):
    """A :func:`session` configured from the ``REPRO_TRACE*`` env vars.

    Yields None without tracing when none of the variables are set, so
    callers can wrap unconditionally.
    """
    env = os.environ if environ is None else environ
    trace = env.get("REPRO_TRACE") or None
    jsonl = env.get("REPRO_TRACE_LOG") or None
    summary = bool(env.get("REPRO_TRACE_SUMMARY"))
    profile = env.get("REPRO_PROFILE") or None
    ledger = env.get("REPRO_LEDGER") or None
    if not (trace or jsonl or summary or profile or ledger):
        yield None
        return
    with session(
        trace=trace,
        jsonl=jsonl,
        summary=summary,
        profile=profile,
        ledger=ledger,
        ledger_kind=env.get("REPRO_LEDGER_KIND", "run"),
    ) as tracer:
        yield tracer


@contextlib.contextmanager
def job_trace(
    job_id: str,
    environ: dict[str, str] | None = None,
    parent: dict[str, Any] | None = None,
):
    """Per-job tracing inside service worker processes.

    The pool propagates ``REPRO_TRACE_DIR`` / ``REPRO_TRACE_SPANS``
    into workers; this starts a fresh tracer whose trace id **is** the
    job's canonical key, so the trace written in the worker and the
    metrics observed in the service process correlate.  Yields None
    (without touching the active tracer) when an outer tracer is
    already running or neither variable is set.

    *parent* is the propagated trace context minted by the front-end
    (``{"trace_id", "parent_span", "parent_pid"}``): its span/pid stamp
    is recorded in the worker's meta event so ``repro.obs.stitch`` can
    re-parent this process's root spans under the request span that
    dispatched the job.  When a telemetry-bus queue is installed
    (:func:`set_worker_queue`), a :class:`BusSink` streams span deltas
    to the supervisor alongside the JSONL file.
    """
    if current() is not None:
        yield None
        return
    env = os.environ if environ is None else environ
    trace_dir = env.get("REPRO_TRACE_DIR") or None
    spans_only = bool(env.get("REPRO_TRACE_SPANS"))
    if not (trace_dir or spans_only):
        yield None
        return
    sinks: list[Any] = []
    if trace_dir:
        sinks.append(JsonlSink(Path(trace_dir) / f"{job_id[:16]}.jsonl"))
    bus = job_sink(job_id)
    if bus is not None:
        sinks.append(bus)
    meta: dict[str, Any] = {"job": job_id[:16], "role": "worker"}
    if parent:
        meta["parent_span"] = parent.get("parent_span")
        meta["parent_pid"] = parent.get("parent_pid")
    tracer = start(trace_id=job_id, sinks=tuple(sinks), meta=meta)
    try:
        yield tracer
    finally:
        stop()
