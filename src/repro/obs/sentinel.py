"""The perf-regression sentinel: compare run-ledger records and gate.

``mcretime obs diff`` and ``mcretime obs check`` (and the CI
``perf-sentinel`` job behind them) compare :mod:`repro.obs.ledger`
records with **noise-robust** statistics:

* records are grouped by ``(kind, fingerprint)`` and, within a group,
  per-span medians are taken over the newest *k* records
  (median-of-k), so one noisy run cannot flip the verdict;
* comparisons are **per-span relative deltas** with an absolute noise
  floor — a span must be both ``threshold``× slower *and* slower by at
  least ``min_seconds`` to count, so microsecond-scale spans (pure
  timer noise) never gate;
* ``mode="relative"`` compares each span's *share of the group total*
  instead of absolute seconds.  Shares are stable across machine
  speeds (a uniformly slower CI box scales every span alike), which is
  what lets CI check against a committed baseline ledger recorded on a
  different machine.

:func:`check` returns a :class:`SentinelReport`; the CLI exits
non-zero when ``report.regressions`` is non-empty.
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Iterable

from .ledger import RunLedger

__all__ = [
    "Delta",
    "SentinelReport",
    "check",
    "diff",
    "group_medians",
    "load_records",
]

#: default regression threshold: a span must be this many times slower
DEFAULT_THRESHOLD = 1.5

#: absolute noise floor in seconds — deltas under this never gate
DEFAULT_MIN_SECONDS = 0.005

#: in relative mode, spans below this share of the run are not gated
DEFAULT_MIN_SHARE = 0.02

#: median-of-k window: newest k records per (kind, fingerprint) group
DEFAULT_WINDOW = 5


@dataclass
class Delta:
    """One compared span within one record group."""

    group: str
    span: str
    baseline: float
    current: float
    #: current / baseline (or share ratio in relative mode)
    ratio: float
    regressed: bool
    mode: str = "absolute"
    #: median invocation counts (``span_counts``); None on old records
    baseline_count: float | None = None
    current_count: float | None = None

    def describe(self) -> str:
        unit = "s" if self.mode == "absolute" else " share"
        flag = "  REGRESSED" if self.regressed else ""
        counts = ""
        if self.baseline_count is not None or self.current_count is not None:
            fmt = lambda c: "?" if c is None else f"{c:.0f}"  # noqa: E731
            counts = (
                f"  [x{fmt(self.baseline_count)}"
                f"->x{fmt(self.current_count)}]"
            )
        return (
            f"{self.group:<28} {self.span:<28} "
            f"{self.baseline:10.4f}{unit} -> {self.current:10.4f}{unit} "
            f"({self.ratio:5.2f}x){counts}{flag}"
        )


@dataclass
class SentinelReport:
    """The outcome of one diff/check: every delta plus the verdict."""

    deltas: list[Delta] = field(default_factory=list)
    #: (kind, fingerprint) groups present only on one side
    unmatched: list[str] = field(default_factory=list)
    mode: str = "absolute"
    threshold: float = DEFAULT_THRESHOLD

    @property
    def regressions(self) -> list[Delta]:
        return [d for d in self.deltas if d.regressed]

    @property
    def ok(self) -> bool:
        return not self.regressions

    def render(self, top: int = 0) -> str:
        lines = [
            f"sentinel ({self.mode} mode, threshold {self.threshold:.2f}x): "
            f"{len(self.deltas)} spans compared across "
            f"{len({d.group for d in self.deltas})} groups, "
            f"{len(self.regressions)} regressed"
        ]
        shown = sorted(self.deltas, key=lambda d: -d.ratio)
        if top > 0:
            shown = shown[:top]
        lines.extend("  " + d.describe() for d in shown)
        for name in self.unmatched:
            lines.append(f"  {name:<28} (only on one side; not compared)")
        return "\n".join(lines)


# ---------------------------------------------------------------------------
# aggregation
# ---------------------------------------------------------------------------


def load_records(path: str | Path) -> list[dict[str, Any]]:
    """Load one ledger file tolerantly (corrupt lines skipped)."""
    return RunLedger(path).load()


def _group_key(record: dict[str, Any]) -> str:
    fp = record.get("fingerprint") or ""
    return f"{record['kind']}:{fp[:12]}" if fp else record["kind"]


def _span_values(record: dict[str, Any]) -> dict[str, float]:
    """The timing map a record is gated on (self-times preferred)."""
    return record.get("self_times") or record.get("spans") or {}


def _span_counts(record: dict[str, Any]) -> dict[str, float]:
    """The per-span invocation counts (empty on pre-``span_counts`` records)."""
    return record.get("span_counts") or {}


def group_medians(
    records: Iterable[dict[str, Any]],
    window: int = DEFAULT_WINDOW,
    *,
    values: Callable[[dict[str, Any]], dict[str, float]] | None = None,
) -> dict[str, dict[str, float]]:
    """Per-group, per-span **median-of-k** seconds over the newest runs.

    Groups are ``kind:fingerprint`` strings; within each group only the
    newest ``window`` records contribute, and each span's value is the
    median over the records that carry that span.  ``values`` selects
    the per-record map to aggregate (timings by default; pass a
    ``span_counts`` extractor to get invocation-count medians instead).
    """
    extract = values or _span_values
    grouped: dict[str, list[dict[str, Any]]] = {}
    for record in records:
        grouped.setdefault(_group_key(record), []).append(record)
    out: dict[str, dict[str, float]] = {}
    for group, runs in grouped.items():
        runs = sorted(runs, key=lambda r: r.get("ts", 0.0))[-window:]
        samples: dict[str, list[float]] = {}
        for run in runs:
            for span, seconds in extract(run).items():
                samples.setdefault(span, []).append(float(seconds))
        out[group] = {
            span: statistics.median(values)
            for span, values in samples.items()
        }
    return out


# ---------------------------------------------------------------------------
# comparison
# ---------------------------------------------------------------------------


def _shares(spans: dict[str, float]) -> dict[str, float]:
    total = sum(v for v in spans.values() if v > 0) or 1.0
    return {span: max(v, 0.0) / total for span, v in spans.items()}


def diff(
    baseline: Iterable[dict[str, Any]],
    current: Iterable[dict[str, Any]],
    *,
    threshold: float = DEFAULT_THRESHOLD,
    min_seconds: float = DEFAULT_MIN_SECONDS,
    min_share: float = DEFAULT_MIN_SHARE,
    window: int = DEFAULT_WINDOW,
    mode: str = "absolute",
) -> SentinelReport:
    """Compare two record sets span by span; see the module docstring."""
    if mode not in ("absolute", "relative"):
        raise ValueError(f"unknown mode {mode!r}")
    baseline = list(baseline)
    current = list(current)
    base = group_medians(baseline, window)
    cur = group_medians(current, window)
    base_counts = group_medians(baseline, window, values=_span_counts)
    cur_counts = group_medians(current, window, values=_span_counts)
    report = SentinelReport(mode=mode, threshold=threshold)
    for group in sorted(set(base) | set(cur)):
        if group not in base or group not in cur:
            report.unmatched.append(group)
            continue
        b_spans, c_spans = base[group], cur[group]
        b_counts = base_counts.get(group, {})
        c_counts = cur_counts.get(group, {})
        if mode == "relative":
            b_cmp, c_cmp = _shares(b_spans), _shares(c_spans)
        else:
            b_cmp, c_cmp = b_spans, c_spans
        for span in sorted(set(b_cmp) & set(c_cmp)):
            b, c = b_cmp[span], c_cmp[span]
            if b <= 0.0:
                continue
            ratio = c / b
            if mode == "relative":
                # gate on share growth, ignoring tiny slices
                regressed = (
                    ratio > threshold
                    and c >= min_share
                    and c_spans.get(span, 0.0) >= min_seconds
                )
            else:
                regressed = ratio > threshold and (c - b) >= min_seconds
            report.deltas.append(
                Delta(
                    group=group,
                    span=span,
                    baseline=b,
                    current=c,
                    ratio=ratio,
                    regressed=regressed,
                    mode=mode,
                    baseline_count=b_counts.get(span),
                    current_count=c_counts.get(span),
                )
            )
    return report


def check(
    baseline_path: str | Path,
    current_path: str | Path,
    *,
    threshold: float = DEFAULT_THRESHOLD,
    min_seconds: float = DEFAULT_MIN_SECONDS,
    min_share: float = DEFAULT_MIN_SHARE,
    window: int = DEFAULT_WINDOW,
    mode: str = "absolute",
    inject_slowdown: float | None = None,
) -> SentinelReport:
    """Gate *current_path* against *baseline_path* (both ledger files).

    ``inject_slowdown`` multiplies every current span time by the given
    factor before comparing — the CI smoke-test hook proving the gate
    actually fires on a 2× slowdown.
    """
    baseline = load_records(baseline_path)
    current = load_records(current_path)
    if inject_slowdown is not None:
        for record in current:
            for field_name in ("spans", "self_times"):
                values = record.get(field_name)
                if values:
                    record[field_name] = {
                        k: v * inject_slowdown for k, v in values.items()
                    }
    return diff(
        baseline,
        current,
        threshold=threshold,
        min_seconds=min_seconds,
        min_share=min_share,
        window=window,
        mode=mode,
    )
