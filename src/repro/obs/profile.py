"""Zero-dependency sampling profiler for the retiming pipeline.

A background thread wakes on a deterministic interval, snapshots
``sys._current_frames()``, and records the Python call stack of the
profiled thread(s).  Samples are **span-aware**: when a tracer is
active, each sample is bucketed under the innermost open
:func:`repro.obs.span` on the sampled thread (via
:meth:`Tracer.active_span_name`), so a flame view answers "where inside
``minperiod.feas`` does the time actually go?" — the question span
totals alone cannot.

Exports:

* **collapsed stacks** (``frame;frame;frame count`` per line) — feed
  to any FlameGraph-style tool or diff textually;
* **speedscope JSON** — drop the file on https://www.speedscope.app
  for an interactive flame/sandwich view.

The profiler costs nothing when not started (there is no
instrumentation — it reads interpreter state from outside), so the
``bench_obs`` disabled-overhead gate is unaffected.  Sampling is
cooperative with the GIL: the sampler sees frames only between
bytecodes, which is exactly the resolution a Python-level profile
needs.

Usage::

    from repro.obs import SamplingProfiler

    with SamplingProfiler(interval=0.005) as prof:
        run_workload()
    prof.profile().write_speedscope("run.speedscope.json")

or through :func:`repro.obs.session`\\ ``(profile="run.speedscope.json")``,
``mcretime --profile``, or ``GET /debug/profile?seconds=N`` on the
service server.
"""

from __future__ import annotations

import json
import sys
import threading
import time
from pathlib import Path
from typing import Any

from . import tracer as _tracer

__all__ = ["Profile", "SamplingProfiler", "profile_block"]

#: default sampling interval in seconds (200 Hz)
DEFAULT_INTERVAL = 0.005

#: frames from these files are the profiler/tracing machinery itself and
#: are pruned from recorded stacks
_SELF_FILES = (__file__,)


def _frame_stack(frame) -> tuple[tuple[str, str, int], ...]:
    """The root-first stack of *frame* as (function, file, firstlineno)."""
    frames: list[tuple[str, str, int]] = []
    while frame is not None:
        code = frame.f_code
        if code.co_filename not in _SELF_FILES:
            frames.append((code.co_name, code.co_filename, code.co_firstlineno))
        frame = frame.f_back
    frames.reverse()
    return tuple(frames)


def _frame_label(entry: tuple[str, str, int]) -> str:
    name, filename, lineno = entry
    stem = Path(filename).stem
    return f"{stem}.{name}"


class Profile:
    """An immutable set of aggregated samples with export methods."""

    def __init__(
        self,
        samples: dict[tuple[str | None, tuple], int],
        interval: float,
        duration: float,
        ticks: int,
    ) -> None:
        #: (span name or None, root-first frame tuple) -> sample count
        self.samples = dict(samples)
        self.interval = interval
        self.duration = duration
        #: sampler wake-ups (>= sum of sample counts when threads idle)
        self.ticks = ticks

    @property
    def n_samples(self) -> int:
        return sum(self.samples.values())

    def by_span(self) -> dict[str, int]:
        """Sample counts bucketed by innermost active span."""
        out: dict[str, int] = {}
        for (span, _stack), n in self.samples.items():
            key = span or "(no span)"
            out[key] = out.get(key, 0) + n
        return out

    def by_function(self) -> dict[str, int]:
        """Leaf-frame sample counts (the classic "top" view)."""
        out: dict[str, int] = {}
        for (_span, stack), n in self.samples.items():
            if stack:
                leaf = _frame_label(stack[-1])
                out[leaf] = out.get(leaf, 0) + n
        return out

    def functions_seen(self) -> set[str]:
        """Every ``module.function`` label appearing in any sample."""
        seen: set[str] = set()
        for (_span, stack), _n in self.samples.items():
            seen.update(_frame_label(f) for f in stack)
        return seen

    # -- exports --------------------------------------------------------

    def collapsed(self, spans: bool = True) -> str:
        """Collapsed-stack text: ``frame;frame;frame count`` per line.

        With ``spans=True`` the innermost span name is prepended as a
        synthetic root frame (``span:minperiod.feas``), so span
        attribution survives into flamegraph tooling.
        """
        lines: list[str] = []
        for (span, stack), n in sorted(
            self.samples.items(), key=lambda kv: (-kv[1], str(kv[0]))
        ):
            frames = [_frame_label(f) for f in stack] or ["(idle)"]
            if spans and span:
                frames.insert(0, f"span:{span}")
            lines.append(";".join(frames) + f" {n}")
        return "\n".join(lines) + ("\n" if lines else "")

    def speedscope(self, name: str = "mcretime profile") -> dict[str, Any]:
        """The speedscope file-format document (``"sampled"`` profile)."""
        frame_index: dict[tuple[str, str, int], int] = {}
        frames: list[dict[str, Any]] = []
        span_index: dict[str, int] = {}

        def index_of(entry: tuple[str, str, int]) -> int:
            idx = frame_index.get(entry)
            if idx is None:
                idx = frame_index[entry] = len(frames)
                frames.append(
                    {
                        "name": _frame_label(entry),
                        "file": entry[1],
                        "line": entry[2],
                    }
                )
            return idx

        def span_frame(span: str) -> int:
            idx = span_index.get(span)
            if idx is None:
                idx = span_index[span] = len(frames)
                frames.append({"name": f"span:{span}"})
            return idx

        samples: list[list[int]] = []
        weights: list[float] = []
        for (span, stack), n in sorted(
            self.samples.items(), key=lambda kv: str(kv[0])
        ):
            indices = [index_of(f) for f in stack]
            if span:
                indices.insert(0, span_frame(span))
            samples.append(indices)
            weights.append(n * self.interval)
        end_value = sum(weights)
        return {
            "$schema": "https://www.speedscope.app/file-format-schema.json",
            "shared": {"frames": frames},
            "profiles": [
                {
                    "type": "sampled",
                    "name": name,
                    "unit": "seconds",
                    "startValue": 0,
                    "endValue": end_value,
                    "samples": samples,
                    "weights": weights,
                }
            ],
            "exporter": "repro.obs.profile",
            "name": name,
        }

    def write_collapsed(self, path: str | Path) -> Path:
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(self.collapsed())
        return path

    def write_speedscope(
        self, path: str | Path, name: str = "mcretime profile"
    ) -> Path:
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(self.speedscope(name)) + "\n")
        return path

    def write(self, path: str | Path) -> Path:
        """Write by extension: ``.txt``/``.collapsed`` → collapsed stacks,
        anything else → speedscope JSON."""
        path = Path(path)
        if path.suffix in (".txt", ".collapsed", ".folded"):
            return self.write_collapsed(path)
        return self.write_speedscope(path)


class SamplingProfiler:
    """Background-thread stack sampler over ``sys._current_frames``.

    By default profiles the thread that constructed it; pass
    ``all_threads=True`` (the ``/debug/profile`` endpoint does) to
    sample every live thread except the sampler itself.
    """

    def __init__(
        self,
        interval: float = DEFAULT_INTERVAL,
        all_threads: bool = False,
    ) -> None:
        if interval <= 0:
            raise ValueError(f"interval must be positive, got {interval!r}")
        self.interval = interval
        self.all_threads = all_threads
        self._target_tid = threading.get_ident()
        self._samples: dict[tuple[str | None, tuple], int] = {}
        self._ticks = 0
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None
        self._t0 = 0.0
        self._duration = 0.0

    # -- lifecycle ------------------------------------------------------

    def start(self) -> "SamplingProfiler":
        if self._thread is not None:
            raise RuntimeError("profiler already started")
        self._stop.clear()
        self._t0 = time.perf_counter()
        self._thread = threading.Thread(
            target=self._run, name="repro-obs-sampler", daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> Profile:
        thread = self._thread
        if thread is not None:
            self._stop.set()
            thread.join()
            self._thread = None
            self._duration = time.perf_counter() - self._t0
        return self.profile()

    def __enter__(self) -> "SamplingProfiler":
        return self.start()

    def __exit__(self, *exc: object) -> bool:
        self.stop()
        return False

    def profile(self) -> Profile:
        return Profile(
            self._samples, self.interval, self._duration, self._ticks
        )

    # -- the sampler loop ----------------------------------------------

    def _run(self) -> None:
        sampler_tid = threading.get_ident()
        wait = self._stop.wait
        interval = self.interval
        while not wait(interval):
            self._ticks += 1
            frames = sys._current_frames()
            tracer = _tracer.current()
            for tid, frame in frames.items():
                if tid == sampler_tid:
                    continue
                if not self.all_threads and tid != self._target_tid:
                    continue
                stack = _frame_stack(frame)
                if not stack:
                    continue
                span = (
                    tracer.active_span_name(tid) if tracer is not None else None
                )
                key = (span, stack)
                self._samples[key] = self._samples.get(key, 0) + 1


def profile_block(seconds: float, interval: float = DEFAULT_INTERVAL) -> Profile:
    """Profile every thread in this process for *seconds* (blocking).

    The ``GET /debug/profile?seconds=N`` endpoint: the caller's thread
    sleeps while the sampler records everyone else.
    """
    prof = SamplingProfiler(interval=interval, all_threads=True)
    prof.start()
    time.sleep(max(0.0, seconds))
    return prof.stop()
