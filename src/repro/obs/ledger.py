"""The run ledger: one schema-validated JSONL record per traced run.

Every BENCH harness, traced CLI run, and service job appends one
record to a ledger file, so performance accumulates a *trajectory*
instead of one-shot ``BENCH_*.json`` snapshots.  A record carries:

* ``fingerprint`` — the canonical design fingerprint (the same
  canonicalise-and-hash the service job key uses: parse the netlist,
  re-emit canonical BLIF, SHA-256), so runs of the same design
  correlate across whitespace/format variants;
* ``config`` — the execution options that shaped the run;
* ``spans`` / ``self_times`` / ``span_counts`` — per-span wall-clock
  totals, self-times, and invocation counts (from
  :meth:`Tracer.span_totals` / :meth:`Tracer.span_self_totals` /
  :meth:`Tracer.span_counts`);
* ``counters`` — the algorithm counters (FEAS passes, BF rounds, …);
* ``metrics`` — result numbers (period, register count, LUT area, …);
* ``env`` — python version, platform, git sha, kernels on/off.

The file format is append-only JSONL: crash-safe (valid up to the last
complete line) and diff-able.  :class:`RunLedger` is the loader with
**corrupted-line tolerance** (a torn tail line or hand-edited garbage
is skipped and counted, not fatal) and a rotation API so long-running
services bound their ledger size.  ``mcretime obs diff/check``
(:mod:`repro.obs.sentinel`) consume these records.
"""

from __future__ import annotations

import hashlib
import json
import os
import platform
import subprocess
import sys
import time
from pathlib import Path
from typing import Any, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .tracer import Tracer

__all__ = [
    "RunLedger",
    "SCHEMA",
    "build_record",
    "design_fingerprint",
    "environment",
    "record_errors",
    "record_from_tracer",
    "validate_record",
]

#: the record schema identifier; bump on incompatible changes
SCHEMA = "repro.run/1"

#: required top-level fields and their types
_REQUIRED: dict[str, type | tuple[type, ...]] = {
    "schema": str,
    "ts": (int, float),
    "run_id": str,
    "kind": str,
}

#: optional dict-valued fields whose values must be numbers
_NUMERIC_MAPS = ("spans", "self_times", "span_counts", "counters")

_git_sha_cache: str | None = None


def _git_sha() -> str:
    """Best-effort short git sha of the working tree (cached)."""
    global _git_sha_cache
    if _git_sha_cache is None:
        sha = os.environ.get("REPRO_GIT_SHA")
        if not sha:
            try:
                sha = subprocess.run(
                    ["git", "rev-parse", "--short", "HEAD"],
                    capture_output=True,
                    text=True,
                    timeout=5,
                    check=False,
                ).stdout.strip()
            except (OSError, subprocess.SubprocessError):
                sha = ""
        _git_sha_cache = sha or "unknown"
    return _git_sha_cache


def environment() -> dict[str, str | bool]:
    """The environment block every record carries."""
    from .. import kernels

    return {
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "platform": sys.platform,
        "git_sha": _git_sha(),
        "kernels": kernels.kernels_enabled(),
    }


def design_fingerprint(circuit) -> str:
    """Canonical content fingerprint of a circuit (SHA-256 hex).

    The same canonicalisation as :attr:`RetimeJob.canonical_key`'s
    netlist half: re-emit as canonical BLIF and hash, so the
    fingerprint is invariant under whitespace, comments, and source
    format.  (Job keys additionally hash the execution options; a
    ledger record keeps those separate under ``config``.)
    """
    from ..netlist import write_blif

    return hashlib.sha256(write_blif(circuit).encode()).hexdigest()


# ---------------------------------------------------------------------------
# records
# ---------------------------------------------------------------------------


def build_record(
    *,
    kind: str,
    run_id: str,
    fingerprint: str | None = None,
    config: dict[str, Any] | None = None,
    spans: dict[str, float] | None = None,
    self_times: dict[str, float] | None = None,
    span_counts: dict[str, int] | None = None,
    counters: dict[str, float] | None = None,
    metrics: dict[str, Any] | None = None,
    ts: float | None = None,
) -> dict[str, Any]:
    """Assemble (and validate) one ledger record."""
    record: dict[str, Any] = {
        "schema": SCHEMA,
        "ts": time.time() if ts is None else ts,
        "run_id": run_id,
        "kind": kind,
        "fingerprint": fingerprint,
        "config": dict(config or {}),
        "spans": dict(spans or {}),
        "self_times": dict(self_times or {}),
        "span_counts": dict(span_counts or {}),
        "counters": dict(counters or {}),
        "metrics": dict(metrics or {}),
        "env": environment(),
    }
    validate_record(record)
    return record


def record_from_tracer(
    tracer: "Tracer",
    kind: str,
    *,
    fingerprint: str | None = None,
    config: dict[str, Any] | None = None,
    metrics: dict[str, Any] | None = None,
) -> dict[str, Any]:
    """A ledger record for one finished traced run."""
    return build_record(
        kind=kind,
        run_id=tracer.trace_id,
        fingerprint=fingerprint,
        config=config,
        spans=tracer.span_totals(),
        self_times=tracer.span_self_totals(),
        span_counts=tracer.span_counts(),
        counters=dict(tracer.counters),
        metrics=metrics,
    )


def record_errors(record: Any) -> list[str]:
    """Every schema violation in *record* (empty list = valid)."""
    if not isinstance(record, dict):
        return [f"record is not an object (got {type(record).__name__})"]
    errors: list[str] = []
    for field, types in _REQUIRED.items():
        if field not in record:
            errors.append(f"missing required field {field!r}")
        elif not isinstance(record[field], types):
            errors.append(
                f"field {field!r} must be {types}, "
                f"got {type(record[field]).__name__}"
            )
    if record.get("schema") not in (None, SCHEMA):
        errors.append(
            f"unknown schema {record['schema']!r} (expected {SCHEMA!r})"
        )
    fp = record.get("fingerprint")
    if fp is not None and not isinstance(fp, str):
        errors.append("field 'fingerprint' must be a string or null")
    for field in ("config", "metrics", "env"):
        if field in record and not isinstance(record[field], dict):
            errors.append(f"field {field!r} must be an object")
    for field in _NUMERIC_MAPS:
        value = record.get(field)
        if value is None:
            continue
        if not isinstance(value, dict):
            errors.append(f"field {field!r} must be an object")
            continue
        for key, num in value.items():
            if not isinstance(key, str) or isinstance(
                num, bool
            ) or not isinstance(num, (int, float)):
                errors.append(
                    f"{field}[{key!r}] must map a string to a number"
                )
                break
    return errors


def validate_record(record: Any) -> dict[str, Any]:
    """Raise ``ValueError`` on the first invalid aspect; returns *record*."""
    errors = record_errors(record)
    if errors:
        raise ValueError("invalid ledger record: " + "; ".join(errors))
    return record


# ---------------------------------------------------------------------------
# the ledger file
# ---------------------------------------------------------------------------


class RunLedger:
    """Append/load/rotate a JSONL run ledger.

    ``max_records`` (optional) auto-rotates on append once the file
    grows past it, keeping the newest ``max_records`` lines in place
    and moving the overflow to ``<path>.1`` (one generation).
    """

    def __init__(
        self, path: str | Path, max_records: int | None = None
    ) -> None:
        self.path = Path(path)
        if max_records is not None and max_records < 1:
            raise ValueError("max_records must be >= 1")
        self.max_records = max_records
        #: malformed lines skipped by the last :meth:`load`
        self.skipped = 0

    def append(self, record: dict[str, Any]) -> dict[str, Any]:
        """Validate and append one record (auto-rotating if configured)."""
        validate_record(record)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        with self.path.open("a") as fh:
            fh.write(json.dumps(record, sort_keys=True) + "\n")
        if self.max_records is not None:
            if self._count_lines() > self.max_records:
                self.rotate(keep=self.max_records)
        return record

    def _count_lines(self) -> int:
        try:
            with self.path.open() as fh:
                return sum(1 for line in fh if line.strip())
        except OSError:
            return 0

    def load(self, strict: bool = False) -> list[dict[str, Any]]:
        """Every valid record in the ledger, oldest first.

        Malformed lines (torn tail writes, hand-edited garbage) are
        skipped and counted in :attr:`skipped` unless ``strict=True``,
        in which case the first one raises ``ValueError``.
        """
        self.skipped = 0
        records: list[dict[str, Any]] = []
        if not self.path.exists():
            return records
        for lineno, line in enumerate(
            self.path.read_text().splitlines(), 1
        ):
            if not line.strip():
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as exc:
                if strict:
                    raise ValueError(
                        f"{self.path}:{lineno}: invalid JSON: {exc}"
                    ) from exc
                self.skipped += 1
                continue
            errors = record_errors(record)
            if errors:
                if strict:
                    raise ValueError(
                        f"{self.path}:{lineno}: " + "; ".join(errors)
                    )
                self.skipped += 1
                continue
            records.append(record)
        return records

    def tail(self, n: int = 20) -> list[dict[str, Any]]:
        """The newest *n* valid records, oldest first."""
        records = self.load()
        return records[-n:] if n > 0 else []

    def rotate(self, keep: int) -> int:
        """Keep the newest *keep* records; move the rest to ``<path>.1``.

        Returns how many records were rotated out.  The overflow
        generation is overwritten (one generation of history), matching
        classic ``logrotate``-style single-backup behaviour.
        """
        if keep < 0:
            raise ValueError("keep must be >= 0")
        if not self.path.exists():
            return 0
        lines = [
            line
            for line in self.path.read_text().splitlines()
            if line.strip()
        ]
        if len(lines) <= keep:
            return 0
        overflow = lines[: len(lines) - keep]
        kept = lines[len(lines) - keep:]
        backup = self.path.with_name(self.path.name + ".1")
        backup.write_text("\n".join(overflow) + "\n")
        self.path.write_text(
            ("\n".join(kept) + "\n") if kept else ""
        )
        return len(overflow)
