"""Trace sinks: Chrome ``trace_event`` JSON and structured JSONL.

Sinks receive every event as it is recorded (``event``) and get one
``close(tracer)`` call when the tracer shuts down.  Two file formats
ship:

* :class:`JsonlSink` — one JSON object per line, streamed as events
  happen (crash-safe; the file is valid up to the last complete line).
  Line framing: the first line is the ``meta`` record, the last a
  cumulative ``end`` record with counter/gauge/span aggregates.
* :class:`ChromeTraceSink` — the Chrome ``trace_event`` format
  (``{"traceEvents": [...]}``) loadable in Perfetto or
  ``chrome://tracing``: spans become complete (``"ph": "X"``) events
  with microsecond timestamps, counters become ``"ph": "C"`` counter
  tracks.  Buffered and written at close (the format is one JSON
  document).

:class:`MemorySink` retains raw events for tests and in-process
consumers.  Anything implementing ``event``/``close`` can be added to
``Tracer.sinks`` — the tracer never looks inside its sinks.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, TextIO

__all__ = ["ChromeTraceSink", "JsonlSink", "MemorySink"]


class MemorySink:
    """Retain every event in a list (testing / in-process analysis)."""

    def __init__(self) -> None:
        self.events: list[dict[str, Any]] = []
        self.closed = False

    def event(self, event: dict[str, Any]) -> None:
        self.events.append(event)

    def close(self, tracer) -> None:
        self.closed = True


class JsonlSink:
    """Stream events to a file, one JSON object per line."""

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        self._fh: TextIO | None = None

    def _handle(self) -> TextIO:
        if self._fh is None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._fh = self.path.open("w")
        return self._fh

    def event(self, event: dict[str, Any]) -> None:
        self._handle().write(json.dumps(event, sort_keys=True) + "\n")

    def close(self, tracer) -> None:
        if self._fh is not None:
            self._fh.flush()
            self._fh.close()
            self._fh = None


class ChromeTraceSink:
    """Buffer events and write a Chrome ``trace_event`` JSON document."""

    def __init__(self, path: str | Path, process_name: str = "mcretime") -> None:
        self.path = Path(path)
        self.process_name = process_name
        self._events: list[dict[str, Any]] = []
        self._pid: int | None = None

    def event(self, event: dict[str, Any]) -> None:
        kind = event.get("type")
        pid = event.get("pid", 0)
        if self._pid is None:
            self._pid = pid
        if kind == "span":
            out = {
                "name": event["name"],
                "cat": event["name"].split(".", 1)[0],
                "ph": "X",
                "ts": event["ts"] * 1e6,
                "dur": event["dur"] * 1e6,
                "pid": pid,
                "tid": event.get("tid", 0),
            }
            args = dict(event.get("args", {}))
            for name, value in event.get("counters", {}).items():
                args[f"counter:{name}"] = value
            if args:
                out["args"] = args
            self._events.append(out)
        elif kind == "counter":
            self._events.append(
                {
                    "name": event["name"],
                    "ph": "C",
                    "ts": event["ts"] * 1e6,
                    "pid": pid,
                    "tid": 0,
                    "args": {"value": event["value"]},
                }
            )

    def close(self, tracer) -> None:
        pid = self._pid if self._pid is not None else 0
        metadata = [
            {
                "name": "process_name",
                "ph": "M",
                "pid": pid,
                "tid": 0,
                "args": {"name": self.process_name},
            }
        ]
        doc = {
            "traceEvents": metadata + self._events,
            "displayTimeUnit": "ms",
            "otherData": {
                "trace_id": tracer.trace_id,
                "counters": dict(tracer.counters),
                "gauges": {k: dict(v) for k, v in tracer.gauges.items()},
            },
        }
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self.path.write_text(json.dumps(doc) + "\n")
