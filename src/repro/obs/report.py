"""Render and validate saved traces: the text summary tree.

Consumes either a live tracer's event list, a JSONL run log, or a
Chrome ``trace_event`` JSON file, and renders the human-readable
summary: the span tree with per-node call counts / total / self time
and percentage of the run, the Sec. 6 CPU-split line (derived from the
``engine.*`` phase spans exactly like
:meth:`repro.mcretime.MCRetimeResult.timing_fractions`), the top spans
by self-time, and the iteration counters.  This is what ``mcretime
report`` and the CLI's ``-v`` summary print, so the paper's CPU-split
table can be regenerated from any archived run.

Also home to the schema validators the CI ``obs-smoke`` step and the
tests use: :func:`validate_jsonl` and :func:`validate_chrome_trace`.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

__all__ = [
    "chrome_trace_errors",
    "cpu_split",
    "jsonl_errors",
    "load_events",
    "render_summary",
    "span_totals",
    "validate_chrome_trace",
    "validate_jsonl",
]


# ---------------------------------------------------------------------------
# loading
# ---------------------------------------------------------------------------


def load_events(path: str | Path) -> list[dict[str, Any]]:
    """Load trace events from a JSONL run log or a Chrome trace JSON.

    JSONL files load as-is (one event per line).  Chrome traces are
    mapped back to the internal event model (``X`` events become span
    events with second-denominated ``ts``/``dur``; the ``otherData``
    aggregates become an ``end`` event) so one renderer serves both.
    """
    path = Path(path)
    text = path.read_text()
    stripped = text.lstrip()
    if stripped.startswith("{") and '"traceEvents"' in stripped[:200]:
        return _events_from_chrome(json.loads(text))
    events = []
    for line in text.splitlines():
        line = line.strip()
        if line:
            events.append(json.loads(line))
    return events


def _events_from_chrome(doc: dict[str, Any]) -> list[dict[str, Any]]:
    events: list[dict[str, Any]] = [{"type": "meta"}]
    next_id = 0
    # Chrome X events carry no parent links; reconstruct nesting from
    # containment per (pid, tid), processing in start order
    spans = [e for e in doc.get("traceEvents", []) if e.get("ph") == "X"]
    spans.sort(key=lambda e: (e.get("pid", 0), e.get("tid", 0), e["ts"], -e["dur"]))
    open_stack: dict[tuple, list[tuple[float, int]]] = {}
    for ev in spans:
        key = (ev.get("pid", 0), ev.get("tid", 0))
        stack = open_stack.setdefault(key, [])
        start, end = ev["ts"], ev["ts"] + ev["dur"]
        while stack and stack[-1][0] <= start:
            stack.pop()
        next_id += 1
        parent = stack[-1][1] if stack else 0
        args = {
            k: v
            for k, v in ev.get("args", {}).items()
            if not k.startswith("counter:")
        }
        out = {
            "type": "span",
            "name": ev["name"],
            "id": next_id,
            "parent": parent,
            "depth": len(stack),
            "ts": start / 1e6,
            "dur": ev["dur"] / 1e6,
            "pid": ev.get("pid", 0),
            "tid": ev.get("tid", 0),
        }
        if args:
            out["args"] = args
        events.append(out)
        stack.append((end, next_id))
    other = doc.get("otherData", {})
    events.append(
        {
            "type": "end",
            "trace_id": other.get("trace_id", ""),
            "counters": other.get("counters", {}),
            "gauges": other.get("gauges", {}),
        }
    )
    return events


# ---------------------------------------------------------------------------
# aggregation
# ---------------------------------------------------------------------------


def span_totals(events: list[dict[str, Any]]) -> dict[str, float]:
    """Per-name span duration totals, summed in event (file) order."""
    totals: dict[str, float] = {}
    for event in events:
        if event.get("type") == "span":
            name = event["name"]
            totals[name] = totals.get(name, 0.0) + event["dur"]
    return totals


def counters(events: list[dict[str, Any]]) -> dict[str, float]:
    """Final counter values (prefers the ``end`` record when present)."""
    out: dict[str, float] = {}
    for event in events:
        kind = event.get("type")
        if kind == "counter":
            out[event["name"]] = event["value"]
        elif kind == "end" and event.get("counters"):
            out.update(event["counters"])
    return out


def cpu_split(totals: dict[str, float]) -> dict[str, float] | None:
    """The paper's Sec. 6 CPU split from ``engine.*`` span totals.

    Mirrors :meth:`MCRetimeResult.timing_fractions`: basic retiming =
    minperiod + minarea, mc overhead = build + bounds + sharing,
    relocation = relocate.  Returns None when no engine spans exist.
    """
    phases = {
        name.split(".", 1)[1]: total
        for name, total in totals.items()
        if name.startswith("engine.")
    }
    if not phases:
        return None
    total = sum(phases.values()) or 1.0
    basic = phases.get("minperiod", 0.0) + phases.get("minarea", 0.0)
    overhead = (
        phases.get("build", 0.0)
        + phases.get("bounds", 0.0)
        + phases.get("sharing", 0.0)
    )
    return {
        "basic_retiming": basic / total,
        "relocation": phases.get("relocate", 0.0) / total,
        "mc_overhead": overhead / total,
    }


class _Node:
    __slots__ = ("name", "count", "total", "self_time", "children")

    def __init__(self, name: str) -> None:
        self.name = name
        self.count = 0
        self.total = 0.0
        self.self_time = 0.0
        self.children: dict[str, _Node] = {}


def _build_tree(events: list[dict[str, Any]]) -> _Node:
    """Aggregate span events into a name-path tree."""
    spans = [e for e in events if e.get("type") == "span"]
    by_id = {e["id"]: e for e in spans}
    child_time: dict[int, float] = {}
    for e in spans:
        parent = e.get("parent", 0)
        if parent:
            child_time[parent] = child_time.get(parent, 0.0) + e["dur"]

    def path(e: dict[str, Any]) -> tuple[str, ...]:
        names: list[str] = []
        node = e
        while node is not None:
            names.append(node["name"])
            node = by_id.get(node.get("parent", 0))
        return tuple(reversed(names))

    root = _Node("")
    for e in spans:
        node = root
        for name in path(e):
            node = node.children.setdefault(name, _Node(name))
        node.count += 1
        node.total += e["dur"]
        node.self_time += e.get("self", e["dur"] - child_time.get(e["id"], 0.0))
    return root


# ---------------------------------------------------------------------------
# rendering
# ---------------------------------------------------------------------------


def _fmt_seconds(s: float) -> str:
    if s >= 1.0:
        return f"{s:8.3f}s"
    return f"{s * 1e3:7.2f}ms"


def render_summary(
    events: list[dict[str, Any]], top: int = 5, max_depth: int = 6
) -> str:
    """The text summary tree for a list of trace events."""
    meta = next((e for e in events if e.get("type") == "meta"), {})
    end = next((e for e in events if e.get("type") == "end"), {})
    totals = span_totals(events)
    root = _build_tree(events)
    run_total = sum(n.total for n in root.children.values()) or 1.0

    lines: list[str] = []
    trace_id = end.get("trace_id") or meta.get("trace_id") or "?"
    n_spans = sum(1 for e in events if e.get("type") == "span")
    lines.append(
        f"trace {str(trace_id)[:16]} — {n_spans} spans, "
        f"{run_total:.3f}s total"
    )

    split = cpu_split(totals)
    if split is not None:
        lines.append(
            "cpu split        : "
            f"{100 * split['basic_retiming']:.0f}% basic retiming / "
            f"{100 * split['relocation']:.0f}% relocation / "
            f"{100 * split['mc_overhead']:.0f}% mc overhead"
        )

    lines.append("")
    lines.append("span tree (count, total, self, % of run):")

    def walk(node: _Node, depth: int) -> None:
        if depth > max_depth:
            return
        for child in sorted(
            node.children.values(), key=lambda n: n.total, reverse=True
        ):
            pct = 100.0 * child.total / run_total
            lines.append(
                f"  {'  ' * depth}{child.name:<{max(30 - 2 * depth, 8)}} "
                f"x{child.count:<5d} {_fmt_seconds(child.total)} "
                f"{_fmt_seconds(child.self_time)}  {pct:5.1f}%"
            )
            walk(child, depth + 1)

    walk(root, 0)

    # top spans by aggregate self-time (flattened over the tree)
    flat: dict[str, float] = {}

    def collect(node: _Node) -> None:
        for child in node.children.values():
            flat[child.name] = flat.get(child.name, 0.0) + child.self_time
            collect(child)

    collect(root)
    if flat and top > 0:
        # aggregate count/total alongside self-time for the table
        agg: dict[str, tuple[int, float]] = {}

        def tally(node: _Node) -> None:
            for child in node.children.values():
                count, total = agg.get(child.name, (0, 0.0))
                agg[child.name] = (count + child.count, total + child.total)
                tally(child)

        tally(root)
        lines.append("")
        lines.append(f"top {top} spans by self-time:")
        lines.append(
            f"  {'span':<30} {'count':>6} {'total':>9} "
            f"{'self':>9} {'self %':>7}"
        )
        ranked = sorted(flat.items(), key=lambda kv: kv[1], reverse=True)
        for name, self_time in ranked[:top]:
            count, total = agg.get(name, (0, 0.0))
            lines.append(
                f"  {name:<30} {count:>6d} {_fmt_seconds(total)} "
                f"{_fmt_seconds(self_time)} {100.0 * self_time / run_total:6.1f}%"
            )

    counts = counters(events)
    if counts:
        lines.append("")
        lines.append("counters:")
        for name in sorted(counts):
            value = counts[name]
            rendered = f"{value:g}" if value != int(value) else f"{int(value)}"
            lines.append(f"  {name:<30} {rendered}")

    gauges = end.get("gauges") or {}
    if gauges:
        lines.append("")
        lines.append("gauges (count / min / max / last):")
        for name in sorted(gauges):
            g = gauges[name]
            lines.append(
                f"  {name:<30} x{int(g.get('count', 0))} "
                f"min={g.get('min', 0):g} max={g.get('max', 0):g} "
                f"last={g.get('last', 0):g}"
            )
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# schema validation (CI obs-smoke + tests)
# ---------------------------------------------------------------------------

_EVENT_TYPES = {"meta", "span", "counter", "gauge", "end"}


def jsonl_errors(path: str | Path) -> list[str]:
    """Every schema violation in a JSONL run log (empty list = valid).

    Checks the line-per-event framing and the per-type required fields.
    Unlike :func:`validate_jsonl` (which raises on the *first*
    violation), this collects all of them so ``mcretime report
    --validate`` can list everything wrong with a file at once.
    """
    path = Path(path)
    errors: list[str] = []
    events: list[dict[str, Any]] = []
    for lineno, line in enumerate(path.read_text().splitlines(), 1):
        if not line.strip():
            errors.append(f"{path}:{lineno}: blank line inside JSONL log")
            continue
        try:
            event = json.loads(line)
        except json.JSONDecodeError as exc:
            errors.append(f"{path}:{lineno}: invalid JSON: {exc}")
            continue
        if not isinstance(event, dict):
            errors.append(f"{path}:{lineno}: event is not an object")
            continue
        kind = event.get("type")
        if kind not in _EVENT_TYPES:
            errors.append(f"{path}:{lineno}: unknown event type {kind!r}")
            continue
        if kind == "span":
            for field in ("name", "id", "parent", "ts", "dur", "pid", "tid"):
                if field not in event:
                    errors.append(
                        f"{path}:{lineno}: span event missing {field!r}"
                    )
            if event.get("dur", 0) < 0:
                errors.append(f"{path}:{lineno}: negative span duration")
            if isinstance(event.get("ts"), (int, float)) and event["ts"] < 0:
                # cross-process stitched traces must rebase+clamp onto
                # the common wall-clock origin; a negative start means
                # the skew correction was skipped
                errors.append(f"{path}:{lineno}: negative span start")
        elif kind in ("counter", "gauge"):
            for field in ("name", "value", "ts"):
                if field not in event:
                    errors.append(
                        f"{path}:{lineno}: {kind} event missing {field!r}"
                    )
        events.append(event)
    if not events or events[0].get("type") != "meta":
        errors.append(f"{path}: first event must be the meta record")
    if not events or events[-1].get("type") != "end":
        errors.append(f"{path}: last event must be the end record")
    return errors


def validate_jsonl(path: str | Path) -> list[dict[str, Any]]:
    """Validate a JSONL run log; returns its events.

    Raises ``ValueError`` with the first violation (line-numbered);
    use :func:`jsonl_errors` to collect every violation instead.
    """
    errors = jsonl_errors(path)
    if errors:
        raise ValueError(errors[0])
    return load_events(path)


def chrome_trace_errors(path: str | Path) -> list[str]:
    """Every schema violation in a Chrome trace JSON (empty = valid).

    Checks what Perfetto / ``chrome://tracing`` require of the JSON
    object format: a ``traceEvents`` array whose entries carry ``ph``,
    ``name``, ``pid`` and a numeric ``ts``, with ``X`` events also
    carrying a non-negative numeric ``dur``.
    """
    path = Path(path)
    try:
        doc = json.loads(path.read_text())
    except json.JSONDecodeError as exc:
        return [f"{path}: invalid JSON: {exc}"]
    errors: list[str] = []
    if not isinstance(doc, dict) or "traceEvents" not in doc:
        return [f"{path}: not a trace_event JSON object"]
    events = doc["traceEvents"]
    if not isinstance(events, list) or not events:
        return [f"{path}: traceEvents must be a non-empty array"]
    for i, event in enumerate(events):
        if not isinstance(event, dict):
            errors.append(f"{path}: traceEvents[{i}] is not an object")
            continue
        for field in ("ph", "name", "pid"):
            if field not in event:
                errors.append(f"{path}: traceEvents[{i}] missing {field!r}")
        if event.get("ph") in ("X", "C", "B", "E") and not isinstance(
            event.get("ts"), (int, float)
        ):
            errors.append(f"{path}: traceEvents[{i}] missing numeric 'ts'")
        if event.get("ph") == "X":
            dur = event.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                errors.append(
                    f"{path}: traceEvents[{i}] X event needs non-negative 'dur'"
                )
    return errors


def validate_chrome_trace(path: str | Path) -> dict[str, Any]:
    """Validate a Chrome ``trace_event`` JSON file; returns the document.

    Raises ``ValueError`` with the first violation; use
    :func:`chrome_trace_errors` to collect every violation instead.
    """
    errors = chrome_trace_errors(path)
    if errors:
        raise ValueError(errors[0])
    return json.loads(Path(path).read_text())
