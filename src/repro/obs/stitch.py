"""Stitch per-process traces into one wall-clock-anchored timeline.

The service writes one JSONL trace per process per request: the
front-end's synthetic *request log* (``<job>.req.jsonl`` — admission,
queue wait, dispatch window) and the worker's span trace
(``<job>.jsonl`` — resolve/attach, solve, respond).  Each file's event
timestamps are ``time.perf_counter`` offsets from that process's own
tracer anchor, so **they are not comparable across pids**: two
processes' ``perf_counter`` clocks have arbitrary (and arbitrarily
large) relative offsets.

What *is* comparable is each tracer's ``wall0`` anchor — the
``time.time()`` reading taken at the same instant as the
``perf_counter`` anchor and recorded in the meta event as
``wall_time``.  The stitcher rebases every event onto a common origin::

    ts' = (wall_time_of_its_process - min_wall_time) + ts

clamping so no span renders with a negative start or duration (wall
clocks on one machine agree to well under a millisecond, but NTP slews
and float rounding can still push a rebased timestamp fractionally
below zero).

Cross-process *structure* comes from trace-context propagation: the
front-end mints ``{"trace_id", "parent_span", "parent_pid"}`` at
admission, the pool carries it with the dispatch, and the worker stamps
``parent_span``/``parent_pid`` into its meta record.  At stitch time
every worker root span is re-parented under the request span it served,
so the merged timeline is one tree per request spanning both processes.

The stitched output is a valid JSONL trace (synthetic stitched meta
first, per-process meta/end records preserved as interior events, one
merged end record last) and exports to Chrome ``trace_event`` JSON with
one named process track per pid.

The critical-path analyzer (:func:`critical_path`) attributes each
request's wall time to **queue / intern+attach / solve / respond** —
the per-phase breakdown ``mcretime report --critical-path`` prints.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Iterable

__all__ = [
    "critical_path",
    "render_critical_path",
    "request_timelines",
    "stitch_dir",
    "stitch_events",
    "stitched_chrome_doc",
    "trace_groups",
    "write_chrome",
    "write_jsonl",
]

#: suffix of the front-end's per-request trace file (the worker's file
#: is ``<job>.jsonl``)
REQUEST_SUFFIX = ".req.jsonl"


# ---------------------------------------------------------------------------
# loading and grouping
# ---------------------------------------------------------------------------


def _load_jsonl(path: Path) -> list[dict[str, Any]]:
    events: list[dict[str, Any]] = []
    for line in path.read_text().splitlines():
        line = line.strip()
        if not line:
            continue
        try:
            events.append(json.loads(line))
        except json.JSONDecodeError:
            # a live query can race a worker mid-write; drop the
            # partial trailing line rather than failing the whole trace
            continue
    return events


def trace_groups(trace_dir: str | Path) -> dict[str, list[Path]]:
    """Group a trace directory's JSONL files by request (job prefix).

    ``<job>.req.jsonl`` and ``<job>.jsonl`` stitch together; files that
    only exist on one side (a shed request has no worker trace, a
    legacy worker trace has no request log) still form a group of one.
    """
    groups: dict[str, list[Path]] = {}
    for path in sorted(Path(trace_dir).glob("*.jsonl")):
        name = path.name
        if name.endswith(REQUEST_SUFFIX):
            key = name[: -len(REQUEST_SUFFIX)]
        else:
            key = path.stem
        groups.setdefault(key, []).append(path)
    return groups


# ---------------------------------------------------------------------------
# stitching
# ---------------------------------------------------------------------------


def stitch_events(
    sources: Iterable[str | Path | list[dict[str, Any]]],
) -> list[dict[str, Any]]:
    """Merge per-process traces into one wall-clock-anchored event list.

    *sources* are JSONL paths (or pre-loaded event lists).  Every
    event's ``ts`` is rebased onto the earliest ``wall_time`` anchor
    across the sources and clamped non-negative; span ids are remapped
    to be globally unique; worker root spans are re-parented under the
    span named by their meta record's ``parent_span``/``parent_pid``
    stamp.  Returns internal-model events: a synthetic stitched meta
    record first, the per-process meta/end records and rebased
    span/counter/gauge events in timestamp order, and one merged end
    record last.
    """
    procs: list[dict[str, Any]] = []
    for source in sources:
        events = (
            list(source)
            if isinstance(source, list)
            else _load_jsonl(Path(source))
        )
        if not events:
            continue
        meta = next(
            (e for e in events if e.get("type") == "meta"), {}
        )
        procs.append(
            {
                "events": events,
                "meta": meta,
                "pid": meta.get("pid", 0),
                "wall0": float(meta.get("wall_time", 0.0)),
                "trace_id": meta.get("trace_id", ""),
            }
        )
    if not procs:
        return []
    origin = min(p["wall0"] for p in procs)

    # first pass: assign a contiguous id offset per source so remapped
    # span ids never collide, and index (pid, local id) -> global id so
    # cross-process parent stamps can be resolved in the second pass
    offset = 0
    global_id: dict[tuple[int, int], int] = {}
    for proc in procs:
        proc["offset"] = offset
        local_max = 0
        for event in proc["events"]:
            if event.get("type") == "span":
                local_id = int(event["id"])
                local_max = max(local_max, local_id)
                global_id[(proc["pid"], local_id)] = local_id + offset
        offset += local_max

    merged: list[dict[str, Any]] = []
    ends: list[dict[str, Any]] = []
    counters: dict[str, float] = {}
    for proc in procs:
        base = max(0.0, proc["wall0"] - origin)
        shift = proc["offset"]
        meta = proc["meta"]
        # the cross-process parent stamp: re-parent this process's root
        # spans under the minting process's span
        parent_span = meta.get("parent_span")
        parent_pid = meta.get("parent_pid")
        cross_parent = (
            global_id.get((parent_pid, parent_span))
            if parent_span and parent_pid is not None
            else None
        )
        for event in proc["events"]:
            kind = event.get("type")
            out = dict(event)
            if kind == "meta":
                merged.append(out)
                continue
            # rebase onto the common origin; clamp so no event renders
            # with a negative start (satellite: cross-process skew fix)
            out["ts"] = max(0.0, base + float(event.get("ts", 0.0)))
            if kind == "end":
                for name, value in (event.get("counters") or {}).items():
                    counters[name] = counters.get(name, 0.0) + value
                ends.append(out)
                continue
            if kind == "span":
                out["dur"] = max(0.0, float(event.get("dur", 0.0)))
                out["id"] = int(event["id"]) + shift
                parent = int(event.get("parent", 0))
                if parent > 0:
                    out["parent"] = parent + shift
                elif cross_parent is not None:
                    out["parent"] = cross_parent
                    out["stitched_parent"] = True
            merged.append(out)

    metas = [e for e in merged if e.get("type") == "meta"]
    body = [e for e in merged if e.get("type") != "meta"]
    body.sort(key=lambda e: e.get("ts", 0.0))
    # re-parenting moves whole subtrees under new parents, so recompute
    # every span's self time against its (possibly new) children
    child_dur: dict[int, float] = {}
    for event in body:
        if event.get("type") == "span":
            parent = int(event.get("parent", 0))
            child_dur[parent] = child_dur.get(parent, 0.0) + event["dur"]
    for event in body:
        if event.get("type") == "span":
            event["self"] = max(
                0.0, event["dur"] - child_dur.get(event["id"], 0.0)
            )
    trace_ids = sorted({p["trace_id"] for p in procs if p["trace_id"]})
    head = {
        "type": "meta",
        "trace_id": trace_ids[0] if len(trace_ids) == 1 else "stitched",
        "pid": procs[0]["pid"],
        "wall_time": origin,
        "stitched": True,
        "processes": [
            {"pid": p["pid"], "wall_time": p["wall0"], "trace_id": p["trace_id"]}
            for p in procs
        ],
    }
    tail = {
        "type": "end",
        "trace_id": head["trace_id"],
        "ts": max(
            [e.get("ts", 0.0) + e.get("dur", 0.0) for e in body] or [0.0]
        ),
        "counters": counters,
        "gauges": {},
        "spans": _span_totals(body),
        "pid": procs[0]["pid"],
        "stitched": True,
    }
    return [head, *metas, *[e for e in body if e.get("type") != "end"],
            *ends, tail]


def _span_totals(events: list[dict[str, Any]]) -> dict[str, float]:
    totals: dict[str, float] = {}
    for event in events:
        if event.get("type") == "span":
            name = event["name"]
            totals[name] = totals.get(name, 0.0) + event["dur"]
    return totals


def stitch_dir(
    trace_dir: str | Path, job: str | None = None
) -> dict[str, list[dict[str, Any]]]:
    """Stitch every request group in *trace_dir*.

    Returns ``{job_prefix: stitched events}``.  *job* (a job id or its
    16-char prefix) restricts stitching to one request.
    """
    groups = trace_groups(trace_dir)
    if job is not None:
        key = job[:16]
        groups = {k: v for k, v in groups.items() if k == key}
    return {key: stitch_events(paths) for key, paths in sorted(groups.items())}


# ---------------------------------------------------------------------------
# export
# ---------------------------------------------------------------------------


def stitched_chrome_doc(
    stitched: dict[str, list[dict[str, Any]]]
) -> dict[str, Any]:
    """One Chrome ``trace_event`` document over stitched request groups.

    Each pid gets a named process track (``frontend``/``worker``, from
    the per-process meta records), so Perfetto renders the front-end
    and every worker as separate rows on one shared wall-clock axis.
    """
    trace_events: list[dict[str, Any]] = []
    roles: dict[int, str] = {}
    counters: dict[str, float] = {}
    trace_ids: list[str] = []
    for key, events in stitched.items():
        for event in events:
            kind = event.get("type")
            if kind == "meta" and "pid" in event and not event.get("stitched"):
                roles.setdefault(
                    event["pid"], str(event.get("role", "process"))
                )
            elif kind == "span":
                out = {
                    "name": event["name"],
                    "cat": event["name"].split(".", 1)[0],
                    "ph": "X",
                    "ts": event["ts"] * 1e6,
                    "dur": event["dur"] * 1e6,
                    "pid": event.get("pid", 0),
                    "tid": event.get("tid", 0),
                }
                args = dict(event.get("args", {}))
                args.setdefault("job", key)
                out["args"] = args
                trace_events.append(out)
            elif kind == "end" and event.get("stitched"):
                trace_ids.append(str(event.get("trace_id", "")))
                for name, value in (event.get("counters") or {}).items():
                    counters[name] = counters.get(name, 0.0) + value
    metadata = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": pid,
            "tid": 0,
            "args": {"name": f"{role} ({pid})"},
        }
        for pid, role in sorted(roles.items())
    ]
    return {
        "traceEvents": metadata + trace_events,
        "displayTimeUnit": "ms",
        "otherData": {
            "stitched": True,
            "requests": len(stitched),
            "trace_ids": trace_ids,
            "counters": counters,
        },
    }


def write_chrome(
    stitched: dict[str, list[dict[str, Any]]], path: str | Path
) -> None:
    """Write the merged Chrome trace for stitched request groups."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(stitched_chrome_doc(stitched)) + "\n")


def write_jsonl(events: list[dict[str, Any]], path: str | Path) -> None:
    """Write stitched events back out as a (multi-process) JSONL trace."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w") as fh:
        for event in events:
            fh.write(json.dumps(event, sort_keys=True) + "\n")


# ---------------------------------------------------------------------------
# per-request timelines and the critical path
# ---------------------------------------------------------------------------


def _interval_union(intervals: list[tuple[float, float]]) -> float:
    """Total length covered by a set of (start, end) intervals."""
    if not intervals:
        return 0.0
    intervals.sort()
    covered = 0.0
    cur_start, cur_end = intervals[0]
    for start, end in intervals[1:]:
        if start > cur_end:
            covered += cur_end - cur_start
            cur_start, cur_end = start, end
        else:
            cur_end = max(cur_end, end)
    return covered + (cur_end - cur_start)


def request_timelines(
    events: list[dict[str, Any]]
) -> list[dict[str, Any]]:
    """Per-request coverage summaries for one stitched event list.

    For every root span named ``request`` the summary reports its
    start/duration and **coverage**: the fraction of the request's wall
    time accounted for by its child spans (clipped to the request
    window, overlap-deduplicated).  The acceptance bar for the tracing
    plane is coverage >= 0.9 — anything lower means a phase of the
    request's life is invisible to the timeline.
    """
    spans = [e for e in events if e.get("type") == "span"]
    children: dict[int, list[dict[str, Any]]] = {}
    for span in spans:
        children.setdefault(int(span.get("parent", 0)), []).append(span)
    out: list[dict[str, Any]] = []
    for root in spans:
        if root["name"] != "request":
            continue
        r0 = root["ts"]
        r1 = r0 + root["dur"]
        intervals: list[tuple[float, float]] = []
        for child in children.get(root["id"], ()):  # direct children only
            c0 = max(r0, child["ts"])
            c1 = min(r1, child["ts"] + child["dur"])
            if c1 > c0:
                intervals.append((c0, c1))
        covered = _interval_union(intervals)
        job = (root.get("args") or {}).get("job", "")
        out.append(
            {
                "job": job,
                "start": r0,
                "duration": root["dur"],
                "coverage": covered / root["dur"] if root["dur"] > 0 else 1.0,
                "children": len(children.get(root["id"], ())),
            }
        )
    return out


#: span names attributed to the intern+attach phase (worker-side design
#: resolution: shm attach, unpack, parse, kernel seeding)
_INTERN_SPANS = ("worker.resolve", "service.intern.attach", "service.intern")


def critical_path(
    stitched: dict[str, list[dict[str, Any]]]
) -> dict[str, Any]:
    """Attribute each request's wall time to queue/intern/solve/respond.

    Phases, per request:

    * **queue** — the admission-queue wait (``request.queue``);
    * **intern** — worker-side design resolution: shm attach + parse
      (``worker.resolve`` and the ``service.intern*`` spans under it);
    * **solve** — the flow execution proper (``job.execute``);
    * **respond** — everything else: dispatch transit, result
      serialisation and shipping, front-end bookkeeping (the remainder
      of the ``request`` span).

    Returns per-request rows plus the sum over the run — the table that
    turns "the pool only scaled 1.03x" into "83% of request wall time
    is queue wait, solve is 9%".
    """
    rows: list[dict[str, Any]] = []
    for key, events in sorted(stitched.items()):
        spans = [e for e in events if e.get("type") == "span"]
        roots = [s for s in spans if s["name"] == "request"]
        if not roots:
            continue
        total = sum(s["dur"] for s in roots)
        queue = sum(s["dur"] for s in spans if s["name"] == "request.queue")
        # the intern spans nest (worker.resolve wraps service.intern.attach);
        # count only the outermost to avoid double-attribution
        intern_spans = [s for s in spans if s["name"] in _INTERN_SPANS]
        intern_ids = {s["id"] for s in intern_spans}
        intern = sum(
            s["dur"]
            for s in intern_spans
            if int(s.get("parent", 0)) not in intern_ids
        )
        solve = sum(s["dur"] for s in spans if s["name"] == "job.execute")
        respond = max(0.0, total - queue - intern - solve)
        rows.append(
            {
                "job": key,
                "total": total,
                "queue": queue,
                "intern": intern,
                "solve": solve,
                "respond": respond,
            }
        )
    summed = {
        phase: sum(r[phase] for r in rows)
        for phase in ("total", "queue", "intern", "solve", "respond")
    }
    return {"requests": rows, "sum": summed}


def render_critical_path(analysis: dict[str, Any]) -> str:
    """The text table ``mcretime report --critical-path`` prints."""
    rows = analysis["requests"]
    summed = analysis["sum"]
    lines = [
        f"critical path over {len(rows)} request(s) "
        "(queue / intern+attach / solve / respond):",
        f"  {'request':<18} {'total':>9} {'queue':>9} {'intern':>9} "
        f"{'solve':>9} {'respond':>9}",
    ]

    def fmt(seconds: float) -> str:
        return f"{seconds * 1e3:8.1f}ms"

    for row in rows:
        lines.append(
            f"  {row['job']:<18} {fmt(row['total'])} {fmt(row['queue'])} "
            f"{fmt(row['intern'])} {fmt(row['solve'])} {fmt(row['respond'])}"
        )
    total = summed["total"] or 1.0
    lines.append(
        f"  {'SUM':<18} {fmt(summed['total'])} {fmt(summed['queue'])} "
        f"{fmt(summed['intern'])} {fmt(summed['solve'])} "
        f"{fmt(summed['respond'])}"
    )
    lines.append(
        "  share of wall time : "
        + " / ".join(
            f"{phase} {100.0 * summed[phase] / total:.0f}%"
            for phase in ("queue", "intern", "solve", "respond")
        )
    )
    return "\n".join(lines)
