"""The tracing core: hierarchical spans, counters, gauges.

One :class:`Tracer` records one run.  Instrumented code never talks to
a tracer directly — it calls the module-level helpers in
:mod:`repro.obs` (``span`` / ``timed`` / ``count`` / ``gauge``), which
dispatch to the installed tracer or, when tracing is disabled, to
shared no-op singletons.  The disabled path is therefore a single
global load plus an identity check per call site, cheap enough to leave
in the retiming hot loops permanently (``benchmarks/bench_obs.py``
gates the overhead at <3 % on the kernel loops).

Span model
----------
Spans are hierarchical per thread: ``span("minperiod.feas", probe=x)``
nests under whatever span is open on the calling thread.  A span's
recorded event carries its wall-clock offset and duration **in
seconds** (raw ``time.perf_counter`` differences, so downstream
consumers can reproduce the engine's ``timings`` dicts bit-exactly),
its depth, its parent's span id, and any keyword arguments.  Counters
incremented while a span is open are additionally attributed to that
span, so the summary tree can show per-phase iteration counts.

``timed`` is the variant the engine and flow layers use for their
``timings`` dicts: it measures wall-clock even when tracing is
disabled (returning a plain stopwatch), so ``MCRetimeResult.timings``
and ``FlowResult.timings`` are *derived from spans* whether or not a
sink is attached.
"""

from __future__ import annotations

import os
import threading
import time
import uuid
from typing import Any, Callable

__all__ = [
    "NULL_SPAN",
    "Span",
    "StageClock",
    "Stopwatch",
    "Tracer",
    "annotate",
    "count",
    "current",
    "enabled",
    "finalize_total",
    "gauge",
    "span",
    "start",
    "stop",
    "timed",
]

#: the installed tracer, or None when tracing is disabled
_ACTIVE: "Tracer | None" = None

_perf_counter = time.perf_counter


class _NullSpan:
    """Shared do-nothing span returned by ``span()`` when disabled."""

    __slots__ = ()
    duration = 0.0

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc: object) -> bool:
        return False

    def set(self, **args: Any) -> "_NullSpan":
        return self


#: the no-op singleton — identity-testable (``span() is NULL_SPAN``)
NULL_SPAN = _NullSpan()


class Stopwatch:
    """Measures wall-clock like a span but records nothing.

    ``timed()`` returns one of these when tracing is disabled so the
    engine's ``timings`` bookkeeping works identically either way.
    """

    __slots__ = ("duration", "_t0")

    def __init__(self) -> None:
        self.duration = 0.0

    def __enter__(self) -> "Stopwatch":
        self._t0 = _perf_counter()
        return self

    def __exit__(self, *exc: object) -> bool:
        self.duration = _perf_counter() - self._t0
        return False

    def set(self, **args: Any) -> "Stopwatch":
        return self


class Span:
    """One live span; becomes an event dict when it closes."""

    __slots__ = (
        "tracer",
        "name",
        "args",
        "span_id",
        "parent_id",
        "depth",
        "tid",
        "duration",
        "counters",
        "_t0",
        "_child_time",
    )

    def __init__(
        self,
        tracer: "Tracer",
        name: str,
        args: dict[str, Any],
        span_id: int,
        parent_id: int,
        depth: int,
        tid: int,
    ) -> None:
        self.tracer = tracer
        self.name = name
        self.args = args
        self.span_id = span_id
        self.parent_id = parent_id
        self.depth = depth
        self.tid = tid
        self.duration = 0.0
        #: counters incremented while this span was innermost
        self.counters: dict[str, float] = {}
        self._child_time = 0.0

    def set(self, **args: Any) -> "Span":
        """Attach extra arguments to the span (chainable)."""
        self.args.update(args)
        return self

    def __enter__(self) -> "Span":
        self._t0 = _perf_counter()
        return self

    def __exit__(self, *exc: object) -> bool:
        t1 = _perf_counter()
        self.duration = t1 - self._t0
        self.tracer._close_span(self, self._t0, exc[0] is not None)
        return False


class Tracer:
    """Collects span/counter/gauge events for one traced run."""

    def __init__(
        self,
        trace_id: str | None = None,
        sinks: tuple = (),
        meta: dict[str, Any] | None = None,
    ) -> None:
        self.trace_id = trace_id or uuid.uuid4().hex
        self.sinks = list(sinks)
        self.pid = os.getpid()
        #: perf_counter anchor; event timestamps are offsets from this
        self.t0 = _perf_counter()
        #: wall-clock anchor (for cross-process alignment in reports)
        self.wall0 = time.time()
        self.events: list[dict[str, Any]] = []
        self.counters: dict[str, float] = {}
        self.gauges: dict[str, dict[str, float]] = {}
        #: result annotations (period, register count, …) attached via
        #: :func:`annotate`; the run-ledger record carries them as
        #: ``metrics``
        self.results: dict[str, Any] = {}
        self.meta = dict(meta or {})
        self._lock = threading.Lock()
        self._tls = threading.local()
        #: tid -> that thread's live span stack (the same list object the
        #: thread itself mutates).  Read lock-free by the sampling
        #: profiler to attribute a sample to the innermost open span;
        #: a torn read costs one mis-bucketed sample, never a crash.
        self._thread_stacks: dict[int, list[Span]] = {}
        self._next_id = 0
        self._closed = False
        head = {
            "type": "meta",
            "trace_id": self.trace_id,
            "pid": self.pid,
            "wall_time": self.wall0,
            **self.meta,
        }
        self.events.append(head)
        self._emit(head)

    # -- span plumbing --------------------------------------------------

    def _stack(self) -> list[Span]:
        stack = getattr(self._tls, "stack", None)
        if stack is None:
            stack = self._tls.stack = []
            self._thread_stacks[threading.get_ident()] = stack
        return stack

    def active_span_name(self, tid: int) -> str | None:
        """Innermost open span name on thread *tid* (profiler hook)."""
        stack = self._thread_stacks.get(tid)
        if stack:
            try:
                return stack[-1].name
            except IndexError:  # raced with the pop — sample as unattributed
                return None
        return None

    def span(self, name: str, **args: Any) -> Span:
        """Open a hierarchical span (use as a context manager)."""
        stack = self._stack()
        parent = stack[-1] if stack else None
        with self._lock:
            span_id = self._next_id = self._next_id + 1
        sp = Span(
            self,
            name,
            args,
            span_id,
            parent.span_id if parent is not None else 0,
            len(stack),
            threading.get_ident(),
        )
        stack.append(sp)
        return sp

    def _close_span(self, sp: Span, t0: float, errored: bool) -> None:
        stack = self._stack()
        # exception safety: pop through any abandoned inner spans too
        while stack and stack[-1] is not sp:
            stack.pop()
        if stack:
            stack.pop()
        if stack:
            stack[-1]._child_time += sp.duration
        event: dict[str, Any] = {
            "type": "span",
            "name": sp.name,
            "id": sp.span_id,
            "parent": sp.parent_id,
            "depth": sp.depth,
            "ts": t0 - self.t0,
            "dur": sp.duration,
            "self": sp.duration - sp._child_time,
            "pid": self.pid,
            "tid": sp.tid,
        }
        if sp.args:
            event["args"] = sp.args
        if sp.counters:
            event["counters"] = sp.counters
        if errored:
            event["error"] = True
        with self._lock:
            self.events.append(event)
        self._emit(event)

    # -- counters and gauges --------------------------------------------

    def count(self, name: str, value: float = 1) -> None:
        """Increment a monotonic counter (attributed to the open span)."""
        with self._lock:
            total = self.counters.get(name, 0) + value
            self.counters[name] = total
        stack = getattr(self._tls, "stack", None)
        if stack:
            sp = stack[-1]
            sp.counters[name] = sp.counters.get(name, 0) + value
        event = {
            "type": "counter",
            "name": name,
            "value": total,
            "ts": _perf_counter() - self.t0,
            "pid": self.pid,
        }
        with self._lock:
            self.events.append(event)
        self._emit(event)

    def annotate(self, **results: Any) -> None:
        """Attach result metrics to the run (ledger ``metrics`` block)."""
        with self._lock:
            self.results.update(results)

    def gauge(self, name: str, value: float) -> None:
        """Record an instantaneous measurement (dirty-region size, φ…)."""
        with self._lock:
            stat = self.gauges.get(name)
            if stat is None:
                stat = self.gauges[name] = {
                    "count": 0,
                    "sum": 0.0,
                    "min": value,
                    "max": value,
                    "last": value,
                }
            stat["count"] += 1
            stat["sum"] += value
            stat["min"] = min(stat["min"], value)
            stat["max"] = max(stat["max"], value)
            stat["last"] = value
        event = {
            "type": "gauge",
            "name": name,
            "value": value,
            "ts": _perf_counter() - self.t0,
            "pid": self.pid,
        }
        with self._lock:
            self.events.append(event)
        self._emit(event)

    # -- lifecycle ------------------------------------------------------

    def _emit(self, event: dict[str, Any]) -> None:
        for sink in self.sinks:
            sink.event(event)

    def close(self) -> None:
        """Finalise: emit the end event and close every sink."""
        if self._closed:
            return
        self._closed = True
        end = {
            "type": "end",
            "trace_id": self.trace_id,
            "ts": _perf_counter() - self.t0,
            "counters": dict(self.counters),
            "gauges": {k: dict(v) for k, v in self.gauges.items()},
            "spans": self.span_totals(),
            "pid": self.pid,
        }
        with self._lock:
            self.events.append(end)
        self._emit(end)
        for sink in self.sinks:
            sink.close(self)

    # -- aggregation ----------------------------------------------------

    def span_totals(self) -> dict[str, float]:
        """Total duration per span name, summed in event order.

        The per-name sums accumulate left-to-right exactly like the
        engine's ``timings[phase] += duration`` loop, so totals match
        the timings dicts bit-for-bit.
        """
        totals: dict[str, float] = {}
        for event in self.events:
            if event.get("type") == "span":
                name = event["name"]
                totals[name] = totals.get(name, 0.0) + event["dur"]
        return totals

    def span_self_totals(self) -> dict[str, float]:
        """Total *self* time (duration minus child spans) per span name."""
        totals: dict[str, float] = {}
        for event in self.events:
            if event.get("type") == "span":
                name = event["name"]
                totals[name] = totals.get(name, 0.0) + event.get(
                    "self", event["dur"]
                )
        return totals

    def span_counts(self) -> dict[str, int]:
        """Number of completed spans per span name.

        Alongside :meth:`span_totals` this turns a total into a rate:
        1000 calls of 1ms and one 1s call total the same but mean very
        different things for an optimiser.
        """
        counts: dict[str, int] = {}
        for event in self.events:
            if event.get("type") == "span":
                name = event["name"]
                counts[name] = counts.get(name, 0) + 1
        return counts

    def snapshot(self) -> dict[str, Any]:
        """JSON-safe aggregate used to ship results across processes."""
        return {
            "trace_id": self.trace_id,
            "spans": self.span_totals(),
            "self_times": self.span_self_totals(),
            "span_counts": self.span_counts(),
            "counters": dict(self.counters),
            "gauges": {k: dict(v) for k, v in self.gauges.items()},
        }

    def summary(self) -> str:
        """The human-readable text summary tree for this trace."""
        from .report import render_summary

        return render_summary(self.events)


# ---------------------------------------------------------------------------
# module-level dispatch (the instrumentation API)
# ---------------------------------------------------------------------------


def enabled() -> bool:
    """Whether a tracer is installed (cheap; safe to call in loops)."""
    return _ACTIVE is not None


def current() -> Tracer | None:
    """The installed tracer, if any."""
    return _ACTIVE


def start(
    trace_id: str | None = None,
    sinks: tuple = (),
    meta: dict[str, Any] | None = None,
) -> Tracer:
    """Install a new tracer as the process-wide active tracer."""
    global _ACTIVE
    tracer = Tracer(trace_id=trace_id, sinks=sinks, meta=meta)
    _ACTIVE = tracer
    return tracer


def stop() -> Tracer | None:
    """Uninstall and finalise the active tracer; returns it."""
    global _ACTIVE
    tracer = _ACTIVE
    _ACTIVE = None
    if tracer is not None:
        tracer.close()
    return tracer


def span(name: str, **args: Any):
    """Open a span under the active tracer, or the no-op singleton."""
    tracer = _ACTIVE
    if tracer is None:
        return NULL_SPAN
    return tracer.span(name, **args)


def timed(name: str, **args: Any):
    """A span that measures wall-clock even when tracing is disabled.

    Use where the duration feeds a ``timings`` dict; the measurement is
    identical with and without an installed tracer.
    """
    tracer = _ACTIVE
    if tracer is None:
        return Stopwatch()
    return tracer.span(name, **args)


def count(name: str, value: float = 1) -> None:
    """Increment a counter on the active tracer (no-op when disabled)."""
    tracer = _ACTIVE
    if tracer is not None:
        tracer.count(name, value)


def gauge(name: str, value: float) -> None:
    """Record a gauge sample on the active tracer (no-op when disabled)."""
    tracer = _ACTIVE
    if tracer is not None:
        tracer.gauge(name, value)


def annotate(**results: Any) -> None:
    """Attach result metrics to the active run (no-op when disabled)."""
    tracer = _ACTIVE
    if tracer is not None:
        tracer.annotate(**results)


# ---------------------------------------------------------------------------
# timings-dict helpers (shared by flows and the engine)
# ---------------------------------------------------------------------------


def finalize_total(timings: dict[str, float]) -> dict[str, float]:
    """Set ``timings["total"]`` to the sum of the stage entries."""
    timings["total"] = sum(v for k, v in timings.items() if k != "total")
    return timings


class StageClock:
    """Collects named stage durations from timed spans.

    The flow layer's replacement for hand-rolled ``perf_counter``
    bookkeeping: each :meth:`stage` opens a (always-measuring) span and
    accumulates its duration under the stage key; :meth:`done` seals
    ``timings["total"] = sum(stages)`` — semantics identical to the old
    ``_total()`` helper.
    """

    def __init__(self, seed: dict[str, float] | None = None) -> None:
        self.timings: dict[str, float] = {
            k: v for k, v in (seed or {}).items() if k != "total"
        }

    def stage(self, key: str, span_name: str | None = None, **args: Any):
        """Context manager timing one stage (accumulates on re-entry)."""
        return _Stage(self, key, span_name or key, args)

    def done(self) -> dict[str, float]:
        return finalize_total(self.timings)


class _Stage:
    __slots__ = ("clock", "key", "span_name", "args", "_sp")

    def __init__(
        self, clock: StageClock, key: str, span_name: str, args: dict
    ) -> None:
        self.clock = clock
        self.key = key
        self.span_name = span_name
        self.args = args

    def __enter__(self):
        self._sp = timed(self.span_name, **self.args)
        return self._sp.__enter__()

    def __exit__(self, *exc: object) -> bool:
        self._sp.__exit__(*exc)
        timings = self.clock.timings
        timings[self.key] = timings.get(self.key, 0.0) + self._sp.duration
        return False
