"""Engine-level pipelining and C-slow retiming.

:func:`pipeline_retime` and :func:`cslow_retime` pair one netlist
transform from :mod:`repro.pipeline.transform` with a multiple-class
retiming pass that redistributes the inserted registers, and report the
throughput economics:

* pipelining — achieved period vs. the ``P0 / (K+1)`` lower bound a
  K-stage pipeline could reach if the logic sliced perfectly (the
  remainder is ``balance_slack``, also published as the
  ``pipeline.balance_slack`` gauge);
* C-slow — the aggregate throughput gain ``P0 / P1`` (one thread-step
  completes per clock) and the per-thread cost: effective period
  ``C * P1`` and C-fold latency.

Both are non-destructive and degenerate exactly to ``mc_retime`` at
``stages=0`` / ``factor=1`` (same arguments, byte-identical output
netlist) so the trivial configurations cannot drift from the plain
engine.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .. import obs
from ..mcretime import MCRetimeResult, mc_retime
from ..netlist import Circuit
from ..netlist.stats import class_histogram
from ..obs import StageClock
from ..timing import UNIT_DELAY, analyze
from ..timing.delay_models import DelayModel
from .transform import cslow_transform, insert_pipeline_layers


@dataclass
class PipelineResult:
    """Outcome of :func:`pipeline_retime`."""

    circuit: Circuit
    stages: int
    retime: MCRetimeResult
    registers_inserted: int
    #: STA period of the input / output netlists
    period_before: float
    period_after: float
    #: ``period_before / (stages + 1)`` — the perfect-balance bound
    lower_bound: float
    #: ``period_after - lower_bound``
    balance_slack: float
    ff_before: int
    ff_after: int
    #: register-class composition before/after (shape label -> count)
    classes_before: dict[str, int] = field(default_factory=dict)
    classes_after: dict[str, int] = field(default_factory=dict)
    timings: dict[str, float] = field(default_factory=dict)

    @property
    def speedup(self) -> float:
        return self.period_before / max(self.period_after, 1e-12)


@dataclass
class CSlowResult:
    """Outcome of :func:`cslow_retime`."""

    circuit: Circuit
    factor: int
    retime: MCRetimeResult
    #: replica registers added / EN, SR, AR decompositions performed
    registers_replicated: int
    enables_folded: int
    sync_resets_folded: int
    async_resets_folded: int
    #: STA period of the input / output netlists (clock rate)
    period_before: float
    period_after: float
    #: per-thread effective period: ``factor * period_after``
    thread_period: float
    ff_before: int
    ff_after: int
    classes_before: dict[str, int] = field(default_factory=dict)
    classes_after: dict[str, int] = field(default_factory=dict)
    timings: dict[str, float] = field(default_factory=dict)

    @property
    def throughput_gain(self) -> float:
        """Aggregate throughput multiplier: thread-steps per second of
        the C-slowed machine over the original (``P0 / P1``)."""
        return self.period_before / max(self.period_after, 1e-12)

    @property
    def thread_slowdown(self) -> float:
        """Per-thread latency multiplier (``C * P1 / P0``)."""
        return self.thread_period / max(self.period_before, 1e-12)


def pipeline_retime(
    circuit: Circuit,
    stages: int,
    delay_model: DelayModel = UNIT_DELAY,
    objective: str = "minperiod",
    target_period: float | None = None,
    semantic_classes: bool = True,
    explain: bool = False,
) -> PipelineResult:
    """Insert *stages* output register layers, then mc-retime to
    balance them (``objective="minperiod"`` by default — balancing is
    the point of pipelining).  ``stages=0`` runs ``mc_retime`` on the
    input directly.  ``explain=True`` attaches the retiming engine's
    certificate-backed explanation under ``result.retime.explanation``
    (the explanation covers the post-transform work graph)."""
    clock = StageClock()
    period_before = analyze(circuit, delay_model).max_delay
    ff_before = len(circuit.registers)
    classes_before = class_histogram(circuit)
    if stages == 0:
        work, inserted = circuit, 0
    else:
        with clock.stage("insert", "pipeline.transform", stages=stages):
            work, inserted = insert_pipeline_layers(circuit, stages)
    with clock.stage("retime", "pipeline.retime", stages=stages):
        result = mc_retime(
            work,
            delay_model=delay_model,
            target_period=target_period,
            objective=objective,
            semantic_classes=semantic_classes,
            explain=explain,
        )
    period_after = analyze(result.circuit, delay_model).max_delay
    lower_bound = period_before / (stages + 1)
    balance_slack = period_after - lower_bound
    obs.gauge("pipeline.balance_slack", balance_slack)
    return PipelineResult(
        circuit=result.circuit,
        stages=stages,
        retime=result,
        registers_inserted=inserted,
        period_before=period_before,
        period_after=period_after,
        lower_bound=lower_bound,
        balance_slack=balance_slack,
        ff_before=ff_before,
        ff_after=len(result.circuit.registers),
        classes_before=classes_before,
        classes_after=class_histogram(result.circuit),
        timings=clock.done(),
    )


def cslow_retime(
    circuit: Circuit,
    factor: int,
    delay_model: DelayModel = UNIT_DELAY,
    objective: str = "minperiod",
    target_period: float | None = None,
    semantic_classes: bool = True,
    explain: bool = False,
) -> CSlowResult:
    """C-slow by *factor*, then mc-retime to spread the replica chains
    through the logic.  ``factor=1`` runs ``mc_retime`` on the input
    directly.  ``explain=True`` rides through to the engine; see
    :func:`pipeline_retime`."""
    clock = StageClock()
    period_before = analyze(circuit, delay_model).max_delay
    ff_before = len(circuit.registers)
    classes_before = class_histogram(circuit)
    if factor == 1:
        work = circuit
        counts = {
            "registers_replicated": 0,
            "enables_folded": 0,
            "sync_resets_folded": 0,
            "async_resets_folded": 0,
        }
    else:
        with clock.stage("replicate", "cslow.transform", factor=factor):
            work, counts = cslow_transform(circuit, factor)
    with clock.stage("retime", "cslow.retime", factor=factor):
        result = mc_retime(
            work,
            delay_model=delay_model,
            target_period=target_period,
            objective=objective,
            semantic_classes=semantic_classes,
            explain=explain,
        )
    period_after = analyze(result.circuit, delay_model).max_delay
    return CSlowResult(
        circuit=result.circuit,
        factor=factor,
        retime=result,
        registers_replicated=counts["registers_replicated"],
        enables_folded=counts["enables_folded"],
        sync_resets_folded=counts["sync_resets_folded"],
        async_resets_folded=counts["async_resets_folded"],
        period_before=period_before,
        period_after=period_after,
        thread_period=factor * period_after,
        ff_before=ff_before,
        ff_after=len(result.circuit.registers),
        classes_before=classes_before,
        classes_after=class_histogram(result.circuit),
        timings=clock.done(),
    )
