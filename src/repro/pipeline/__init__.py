"""Throughput transforms built on multiple-class retiming.

Pipelining (insert K output register layers, retime to balance) and
C-slow (replicate every register C times for C-way thread interleaving,
retime to spread the chains).  See ``docs/PIPELINE.md`` for the
per-register-class legality argument and the verification strategy.
"""

from .engine import CSlowResult, PipelineResult, cslow_retime, pipeline_retime
from .transform import PipelineError, cslow_transform, insert_pipeline_layers

__all__ = [
    "CSlowResult",
    "PipelineError",
    "PipelineResult",
    "cslow_retime",
    "cslow_transform",
    "insert_pipeline_layers",
    "pipeline_retime",
]
