"""Netlist-level throughput transforms: pipelining and C-slow.

Both transforms *add* registers in positions that are trivially correct
and leave the hard work — balancing them across the combinational
logic — to the multiple-class retiming engine.  That division of labour
is the point: the transforms only need a sound insertion site, and
mc-retiming (which already understands EN/SR/AR classes) does the
legality-preserving redistribution.

Pipelining
----------
:func:`insert_pipeline_layers` appends *K* plain register layers to the
primary-output edges (the host vertex's input edges in the retiming
graph).  A pure output delay is universally sound, feedback or not:
the new machine computes ``y'(t) = y(t - K)``.  Inserting on the PI
edges instead would feed *stale inputs* into live state and is **not**
behaviour-preserving for sequential circuits, so we never do it.
Min-period retiming then pulls the new registers backward through the
output cones, turning latency into clock speed.

C-slow
------
:func:`cslow_transform` replaces every register with a chain of *C*
always-shifting replicas, producing a machine that interleaves *C*
independent threads of the original computation (thread ``k`` occupies
global cycles ``t ≡ k (mod C)``).  Register classes make this legal
per-thread only with care:

* **EN** — a load enable must *not* be copied onto the replicas: an
  enable observed low for one superperiod would freeze the whole chain
  and misalign every other thread's state.  Instead the enable becomes
  a D-side recirculation mux ``D' = MUX(en, q, D)`` over the *whole*
  chain, so a stalled thread's value travels the full C replicas and
  returns to that same thread — exactly the original hold semantics,
  including the X-enable rule (hold is only certain where ``D == Q``).
* **SR** — likewise folded into D-side logic (``OR`` for ``sval=1``,
  ``AND NOT`` otherwise; an X ``sval`` is refined to 0), so each
  thread's synchronous reset lands in its own slot.
* **AR** (+ ``aval``) — also folded into the D path, outermost (the
  class model's priority is AR over SR over EN).  This is exact here
  because the engine's register semantics (paper Fig. 2a, and both
  simulators) sample AR at the clock edge: AR is a highest-priority
  synchronous load of ``aval``, so ``D' = ar ? aval : …`` commutes with
  replication just like SR.  Keeping AR on the replicas instead — the
  "broadcast reset" reading of a level-sensitive AR — is *not*
  per-thread exact: the first edge of an assertion superperiod forces
  every replica at once, so threads ``k >= 1`` observe downstream
  D-values computed from post-reset state one thread-cycle early, and
  that skew propagates register-by-register indefinitely.  Folding
  keeps every thread's reset in its own slot, gate-driven (derived)
  AR nets included.

Every control class therefore decomposes to D-side logic and the
replicas are plain registers — maximum freedom for the retiming engine,
with the class semantics preserved per thread by construction.

Both transforms are non-destructive (they clone their input) and emit
``pipeline.*`` / ``cslow.*`` observability spans and counters.
"""

from __future__ import annotations

from .. import obs
from ..logic.ternary import T1
from ..netlist import Circuit, GateFn


class PipelineError(Exception):
    """A transform's legality preconditions do not hold."""


def _single_clock(circuit: Circuit, what: str) -> str | None:
    clocks = circuit.clock_nets()
    if len(clocks) > 1:
        raise PipelineError(
            f"{what} requires a single clock domain; "
            f"found {len(clocks)}: {clocks}"
        )
    return clocks[0] if clocks else None


def insert_pipeline_layers(
    circuit: Circuit, stages: int, clk: str | None = None
) -> tuple[Circuit, int]:
    """Append *stages* plain register layers to every primary output.

    Returns ``(pipelined clone, registers inserted)``.  Outputs that
    share a driver net share one chain.  ``stages=0`` returns a plain
    clone (byte-identical netlist).  The inserted registers are plain
    (no EN/SR/AR): they carry no architectural state, and keeping them
    classless gives retiming maximum freedom to move them.
    """
    if stages < 0:
        raise PipelineError(f"stage count must be >= 0, got {stages}")
    work = circuit.clone()
    if stages == 0 or not work.outputs:
        return work, 0
    if clk is None:
        clk = _single_clock(work, "pipelining")
        if clk is None:
            clk = "clk" if "clk" in work.inputs else work.add_input("clk")
    inserted = 0
    with obs.span("pipeline.insert", stages=stages):
        chain_end: dict[str, str] = {}
        for net in dict.fromkeys(work.outputs):
            prev = net
            for _ in range(stages):
                prev = work.add_register(
                    prev, clk=clk, name=work.namer.fresh("pipe")
                ).q
                inserted += 1
            chain_end[net] = prev
        work.outputs = [chain_end[net] for net in work.outputs]
        work._invalidate()
    obs.count("pipeline.layers_inserted", stages)
    obs.count("pipeline.registers_inserted", inserted)
    return work, inserted


def cslow_transform(
    circuit: Circuit, factor: int
) -> tuple[Circuit, dict[str, int]]:
    """Replace every register with a chain of *factor* plain replicas.

    Returns ``(C-slowed clone, counts)`` where ``counts`` reports
    ``registers_replicated`` (new registers added) and
    ``enables_folded`` / ``sync_resets_folded`` / ``async_resets_folded``
    (per-class D-side decompositions performed; see the module
    docstring for why every control must move to the D side).
    ``factor=1`` returns a plain clone.
    """
    if factor < 1:
        raise PipelineError(f"slowdown factor must be >= 1, got {factor}")
    work = circuit.clone()
    counts = {
        "registers_replicated": 0,
        "enables_folded": 0,
        "sync_resets_folded": 0,
        "async_resets_folded": 0,
    }
    if factor == 1:
        return work, counts
    _single_clock(work, "C-slow")
    with obs.span("cslow.replicate", factor=factor):
        for reg in list(work.registers.values()):
            d = reg.d
            if reg.has_enable:
                # recirculate the *chain end* so a stalled thread's value
                # traverses all C replicas back to its own slot
                d = work.add_gate(GateFn.MUX, [reg.en, reg.q, d]).output
                counts["enables_folded"] += 1
            if reg.has_sync_reset:
                if reg.sval == T1:
                    d = work.add_gate(GateFn.OR, [d, reg.sr]).output
                else:  # sval 0, or X refined to 0
                    inv = work.add_gate(GateFn.NOT, [reg.sr]).output
                    d = work.add_gate(GateFn.AND, [d, inv]).output
                counts["sync_resets_folded"] += 1
            if reg.has_async_reset:
                # outermost: AR wins over SR and EN
                if reg.aval == T1:
                    d = work.add_gate(GateFn.OR, [d, reg.ar]).output
                else:  # aval 0, or X refined to 0
                    inv = work.add_gate(GateFn.NOT, [reg.ar]).output
                    d = work.add_gate(GateFn.AND, [d, inv]).output
                counts["async_resets_folded"] += 1
            clk, q, name = reg.clk, reg.q, reg.name
            work.remove_register(name)
            prev = d
            for _ in range(factor - 1):
                prev = work.add_register(prev, clk=clk).q
                counts["registers_replicated"] += 1
            work.add_register(prev, q=q, name=name, clk=clk)
    obs.count("cslow.registers_replicated", counts["registers_replicated"])
    obs.count("cslow.enables_folded", counts["enables_folded"])
    obs.count("cslow.sync_resets_folded", counts["sync_resets_folded"])
    obs.count("cslow.async_resets_folded", counts["async_resets_folded"])
    return work, counts
