"""Consistent-hash sharding of the content-addressed job keyspace.

The pool assigns every job a *home shard* by hashing its shard key
(the design fingerprint, so all jobs touching one design land on the
worker that already holds its parsed circuit and interned CSR arrays)
onto a ring of virtual nodes.  Consistent hashing keeps the mapping
stable as the shard count changes: growing from N to N+1 shards moves
only ~1/(N+1) of the keyspace, so warm per-worker design caches
survive a resize instead of being reshuffled wholesale.

Shards are *slots*, not processes: a crashed worker is respawned into
the same slot, so its keyspace ownership (and the affinity of retried
jobs) is unaffected by churn.
"""

from __future__ import annotations

import hashlib
from bisect import bisect_right

#: virtual nodes per shard — enough to keep the keyspace split within
#: a few percent of uniform at small shard counts
DEFAULT_VNODES = 64


def _point(data: str) -> int:
    """64-bit ring position of *data* (stable across processes)."""
    return int.from_bytes(
        hashlib.blake2b(data.encode(), digest_size=8).digest(), "big"
    )


class HashRing:
    """Consistent-hash ring mapping string keys to shard indices."""

    def __init__(self, shards: int, vnodes: int = DEFAULT_VNODES) -> None:
        if shards < 1:
            raise ValueError("ring needs at least one shard")
        self.shards = shards
        self.vnodes = vnodes
        points: list[tuple[int, int]] = []
        for shard in range(shards):
            for v in range(vnodes):
                points.append((_point(f"shard-{shard}:{v}"), shard))
        points.sort()
        self._points = [p for p, _ in points]
        self._owners = [s for _, s in points]

    def shard(self, key: str) -> int:
        """The shard owning *key* (first ring point at or after it)."""
        idx = bisect_right(self._points, _point(key))
        if idx == len(self._points):
            idx = 0
        return self._owners[idx]

    def spread(self, keys: list[str]) -> list[int]:
        """Per-shard key counts — diagnostics for tests and metrics."""
        counts = [0] * self.shards
        for key in keys:
            counts[self.shard(key)] += 1
        return counts
