"""Thin stdlib client for the ``mcretime serve`` HTTP API.

The client holds one persistent HTTP/1.1 connection per
:class:`RetimeClient` (the server speaks keep-alive), so a polling
``wait`` loop or a batch submission burst pays the TCP handshake once,
not per request.  A request that fails on a *reused* connection — the
server may close an idle keep-alive socket at any time — is retried
once on a fresh connection; that retry is safe here because every API
request is idempotent (submissions are content-addressed, so a
duplicate ``POST /retime`` coalesces server-side).

Example::

    client = RetimeClient("http://127.0.0.1:8117")
    record = client.retime(Path("design.blif").read_text())  # blocks
    Path("retimed.blif").write_text(record["result"]["output"])
"""

from __future__ import annotations

import http.client
import json
import threading
import time
from urllib.parse import urlsplit


class ServiceError(RuntimeError):
    """A non-2xx response from the retiming service."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(f"HTTP {status}: {message}")
        self.status = status


class ServiceOverloadedError(ServiceError):
    """HTTP 429/503: the service shed the request under load.

    ``retry_after`` carries the server's ``Retry-After`` hint in
    seconds; back off at least that long before resubmitting.
    """

    def __init__(
        self, status: int, message: str, retry_after: float = 1.0
    ) -> None:
        super().__init__(status, message)
        self.retry_after = retry_after


class RetimeClient:
    """JSON client over :mod:`http.client` — no third-party dependencies."""

    def __init__(self, base_url: str, timeout: float = 600.0) -> None:
        self.base_url = base_url.rstrip("/")
        parts = urlsplit(self.base_url)
        if parts.scheme not in ("http", ""):
            raise ValueError(f"unsupported scheme {parts.scheme!r}")
        self._host = parts.hostname or "127.0.0.1"
        self._port = parts.port or 80
        self.timeout = timeout
        self._conn: http.client.HTTPConnection | None = None
        self._lock = threading.Lock()

    # -- transport -----------------------------------------------------

    def close(self) -> None:
        """Drop the persistent connection (reopened on next request)."""
        with self._lock:
            self._close_locked()

    def _close_locked(self) -> None:
        if self._conn is not None:
            try:
                self._conn.close()
            except OSError:
                pass
            self._conn = None

    def __enter__(self) -> "RetimeClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def _request(self, method: str, path: str, payload: dict | None = None):
        data = json.dumps(payload).encode() if payload is not None else None
        headers = {"Content-Type": "application/json"} if data else {}
        with self._lock:
            reused = self._conn is not None
            while True:
                if self._conn is None:
                    self._conn = http.client.HTTPConnection(
                        self._host, self._port, timeout=self.timeout
                    )
                try:
                    self._conn.request(method, path, body=data, headers=headers)
                    resp = self._conn.getresponse()
                    status = resp.status
                    body = resp.read().decode(errors="replace")
                    ctype = resp.getheader("Content-Type", "") or ""
                    retry_after = resp.getheader("Retry-After")
                    if resp.getheader("Connection", "").lower() == "close":
                        self._close_locked()
                    break
                except (http.client.HTTPException, ConnectionError, OSError):
                    # a reused keep-alive socket the server closed between
                    # requests looks like a send/recv failure — retry once
                    # on a fresh connection; a fresh-connection failure is
                    # a real outage and propagates
                    self._close_locked()
                    if not reused:
                        raise
                    reused = False
        if status >= 400:
            try:
                detail = json.loads(body).get("error", body)
            except (json.JSONDecodeError, AttributeError):
                detail = body
            if status in (429, 503):
                try:
                    delay = float(retry_after) if retry_after else 1.0
                except ValueError:
                    delay = 1.0
                raise ServiceOverloadedError(status, detail, retry_after=delay)
            raise ServiceError(status, detail)
        if ctype.startswith("application/json"):
            return json.loads(body)
        return body

    # -- API -----------------------------------------------------------

    def submit(self, netlist: str, **options) -> dict:
        """``POST /retime`` without waiting; returns the job record.

        Raises :class:`ServiceOverloadedError` when the service sheds
        the submission under load (HTTP 429).
        """
        return self._request(
            "POST", "/retime", {"netlist": netlist, **options}
        )

    def retime(self, netlist: str, **options) -> dict:
        """``POST /retime`` with ``wait=true``: submit and block."""
        return self._request(
            "POST", "/retime", {"netlist": netlist, "wait": True, **options}
        )

    def job(self, job_id: str) -> dict:
        """``GET /jobs/<id>``."""
        return self._request("GET", f"/jobs/{job_id}")

    def wait(
        self, job_id: str, timeout: float = 600.0, poll: float = 0.2
    ) -> dict:
        """Poll ``GET /jobs/<id>`` until the job finishes."""
        deadline = time.monotonic() + timeout
        while True:
            record = self.job(job_id)
            if record["state"] in ("done", "failed"):
                return record
            if time.monotonic() > deadline:
                raise TimeoutError(f"job {job_id} still {record['state']}")
            time.sleep(poll)

    def healthz(self) -> dict:
        return self._request("GET", "/healthz")

    def metrics_text(self) -> str:
        """``GET /metrics`` — raw Prometheus exposition text."""
        return self._request("GET", "/metrics")

    def slo(self) -> dict:
        """``GET /slo`` — rolling-window SLO burn rates."""
        return self._request("GET", "/slo")

    def trace(self, job_id: str) -> dict:
        """``GET /trace/<id>`` — the job's stitched distributed trace."""
        return self._request("GET", f"/trace/{job_id}")
