"""Thin stdlib client for the ``mcretime serve`` HTTP API.

Example::

    client = RetimeClient("http://127.0.0.1:8117")
    record = client.retime(Path("design.blif").read_text())  # blocks
    Path("retimed.blif").write_text(record["result"]["output"])
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request


class ServiceError(RuntimeError):
    """A non-2xx response from the retiming service."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(f"HTTP {status}: {message}")
        self.status = status


class RetimeClient:
    """JSON client over :mod:`urllib` — no third-party dependencies."""

    def __init__(self, base_url: str, timeout: float = 600.0) -> None:
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout

    # -- transport -----------------------------------------------------

    def _request(self, method: str, path: str, payload: dict | None = None):
        data = json.dumps(payload).encode() if payload is not None else None
        req = urllib.request.Request(
            self.base_url + path,
            data=data,
            method=method,
            headers={"Content-Type": "application/json"} if data else {},
        )
        try:
            with urllib.request.urlopen(req, timeout=self.timeout) as resp:
                body = resp.read().decode()
                ctype = resp.headers.get("Content-Type", "")
        except urllib.error.HTTPError as exc:
            detail = exc.read().decode(errors="replace")
            try:
                detail = json.loads(detail).get("error", detail)
            except json.JSONDecodeError:
                pass
            raise ServiceError(exc.code, detail) from None
        if ctype.startswith("application/json"):
            return json.loads(body)
        return body

    # -- API -----------------------------------------------------------

    def submit(self, netlist: str, **options) -> dict:
        """``POST /retime`` without waiting; returns the job record."""
        return self._request(
            "POST", "/retime", {"netlist": netlist, **options}
        )

    def retime(self, netlist: str, **options) -> dict:
        """``POST /retime`` with ``wait=true``: submit and block."""
        return self._request(
            "POST", "/retime", {"netlist": netlist, "wait": True, **options}
        )

    def job(self, job_id: str) -> dict:
        """``GET /jobs/<id>``."""
        return self._request("GET", f"/jobs/{job_id}")

    def wait(
        self, job_id: str, timeout: float = 600.0, poll: float = 0.2
    ) -> dict:
        """Poll ``GET /jobs/<id>`` until the job finishes."""
        deadline = time.monotonic() + timeout
        while True:
            record = self.job(job_id)
            if record["state"] in ("done", "failed"):
                return record
            if time.monotonic() > deadline:
                raise TimeoutError(f"job {job_id} still {record['state']}")
            time.sleep(poll)

    def healthz(self) -> dict:
        return self._request("GET", "/healthz")

    def metrics_text(self) -> str:
        """``GET /metrics`` — raw Prometheus exposition text."""
        return self._request("GET", "/metrics")
