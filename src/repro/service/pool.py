"""Crash-isolated multiprocessing worker pool for retiming jobs.

Design points:

* **One process per worker, one dispatch queue per worker.**  The
  supervisor assigns a job to a specific idle worker and records the
  assignment *before* the worker can touch it, so a worker death is
  always attributable to the exact job it held — there is no window in
  which a crashing worker loses a job.  (A shared task queue can't give
  that guarantee: ``mp.Queue`` flushes through a feeder thread, so a
  hard ``os._exit``/segfault can swallow the in-flight bookkeeping.)
  All queues are ``SimpleQueue``s — writes land in the pipe before
  ``put`` returns, no feeder threads anywhere.
* **Crash isolation.**  A segfault, OOM kill, or injected ``os._exit``
  takes down only the job its worker was holding.  The supervisor
  reaps the corpse, respawns a replacement, and requeues the job (with
  exponential backoff) up to ``max_retries`` times before recording a
  structured :class:`~repro.service.jobs.JobFailure`.
* **Per-job timeouts.**  A worker holding a job past ``job_timeout``
  seconds is SIGKILLed and treated like a crash (retry, then fail).
* **Deterministic errors don't retry.**  A Python exception raised by
  :func:`~repro.service.jobs.execute_job` (parse error, invalid
  circuit) is reported back and fails the job immediately — re-running
  a deterministic failure just wastes workers.

The supervisor runs on a daemon thread, so :meth:`RetimePool.submit`
returns immediately and results are awaited per-job via
:meth:`RetimePool.wait` (or in bulk via :meth:`RetimePool.run`).
"""

from __future__ import annotations

import heapq
import multiprocessing as mp
import os
import threading
import time
import traceback
from collections import deque
from dataclasses import dataclass, field

from .jobs import JobFailure, JobResult, RetimeJob, execute_job

_POLL_INTERVAL = 0.05


def _worker_main(task_q, result_q, env=None) -> None:
    """Worker loop: execute assigned payloads until the ``None`` sentinel.

    *env* entries are applied to ``os.environ`` before the first job, so
    the supervisor can propagate tracing configuration
    (``REPRO_TRACE_DIR`` / ``REPRO_TRACE_SPANS``) across the process
    boundary; the trace id itself is the job's canonical key, carried by
    the job payload.
    """
    if env:
        os.environ.update(env)
    while True:
        item = task_q.get()
        if item is None:
            return
        job_id, attempt, payload = item
        try:
            result = execute_job(RetimeJob.from_dict(payload))
            result.job_id = job_id
            result_q.put(("done", os.getpid(), job_id, attempt, result.to_dict()))
        except BaseException as exc:  # noqa: BLE001 - report, don't die
            info = {
                "type": type(exc).__name__,
                "message": str(exc),
                "traceback": traceback.format_exc(),
            }
            result_q.put(("error", os.getpid(), job_id, attempt, info))


@dataclass
class _Entry:
    """Supervisor-side bookkeeping for one submitted job."""

    job: RetimeJob
    state: str = "queued"  # queued | running | retrying | done | failed
    attempts: int = 0
    result: JobResult | None = None
    event: threading.Event = field(default_factory=threading.Event)
    submitted_at: float = field(default_factory=time.time)


@dataclass
class _Worker:
    """One worker process plus its private dispatch queue."""

    proc: mp.Process
    task_q: object
    #: (job_id, attempt, dispatch_monotonic) while busy, else None
    held: tuple[str, int, float] | None = None


class RetimePool:
    """Supervised pool of retiming workers with retry/timeout policy.

    Args:
        workers: process count (default ``os.cpu_count()``).
        job_timeout: seconds a single execution may run before the
            worker is killed and the job retried.
        max_retries: crash/timeout retries per job after the first
            attempt (total attempts = ``max_retries + 1``).
        retry_backoff: base delay before a retry; attempt *n* waits
            ``retry_backoff * 2**(n-1)`` seconds.
        on_event: optional callback ``(kind, job_id, **info)`` invoked
            from the supervisor thread for ``done`` / ``failed`` /
            ``retry`` / ``timeout`` / ``crash`` events — the service
            layer hangs its metrics off this.
        worker_env: environment variables applied in every worker
            process before it takes jobs (tracing configuration).
    """

    def __init__(
        self,
        workers: int | None = None,
        job_timeout: float = 300.0,
        max_retries: int = 2,
        retry_backoff: float = 0.5,
        on_event=None,
        worker_env: dict[str, str] | None = None,
    ) -> None:
        self.workers = max(1, workers if workers is not None else os.cpu_count() or 1)
        self.job_timeout = job_timeout
        self.max_retries = max(0, max_retries)
        self.retry_backoff = retry_backoff
        self._on_event = on_event
        self._worker_env = dict(worker_env or {})
        self._ctx = mp.get_context()
        self._result_q = self._ctx.SimpleQueue()
        self._entries: dict[str, _Entry] = {}
        self._workers: dict[int, _Worker] = {}
        self._pending: deque[tuple[str, int]] = deque()  # (job_id, attempt)
        self._retry_heap: list[tuple[float, str]] = []
        self._lock = threading.Lock()
        self._stop = threading.Event()
        self._supervisor: threading.Thread | None = None

    # -- lifecycle -----------------------------------------------------

    def start(self) -> "RetimePool":
        if self._supervisor is not None:
            return self
        for _ in range(self.workers):
            self._spawn_worker()
        self._supervisor = threading.Thread(
            target=self._supervise, name="retime-pool-supervisor", daemon=True
        )
        self._supervisor.start()
        return self

    def close(self, timeout: float = 5.0) -> None:
        """Stop the supervisor and tear the workers down."""
        if self._supervisor is None:
            return
        self._stop.set()
        self._supervisor.join(timeout=timeout)
        for worker in self._workers.values():
            try:
                worker.task_q.put(None)
            except (OSError, ValueError):
                pass
        deadline = time.monotonic() + timeout
        for worker in self._workers.values():
            worker.proc.join(timeout=max(0.0, deadline - time.monotonic()))
            if worker.proc.is_alive():
                worker.proc.kill()
                worker.proc.join(timeout=1.0)
        self._workers.clear()

    def __enter__(self) -> "RetimePool":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.close()

    # -- submission API ------------------------------------------------

    def submit(self, job_id: str, job: RetimeJob) -> None:
        """Queue *job* under *job_id* (in-flight ids coalesce)."""
        if self._supervisor is None:
            raise RuntimeError("pool is not started")
        with self._lock:
            entry = self._entries.get(job_id)
            if entry is not None and not entry.event.is_set():
                return  # already queued or running: coalesce
            entry = _Entry(job=job)
            entry.attempts = 1
            self._entries[job_id] = entry
            self._pending.append((job_id, 1))

    def wait(self, job_id: str, timeout: float | None = None) -> JobResult:
        """Block until *job_id* finishes; raises ``TimeoutError``."""
        with self._lock:
            entry = self._entries[job_id]
        if not entry.event.wait(timeout):
            raise TimeoutError(f"job {job_id} did not finish in {timeout}s")
        assert entry.result is not None
        return entry.result

    def state(self, job_id: str) -> str:
        with self._lock:
            return self._entries[job_id].state

    def run(self, jobs: dict[str, RetimeJob]) -> dict[str, JobResult]:
        """Submit every job, wait for all, return results by id."""
        for job_id, job in jobs.items():
            self.submit(job_id, job)
        return {job_id: self.wait(job_id) for job_id in jobs}

    # -- supervisor ----------------------------------------------------

    def _spawn_worker(self) -> None:
        task_q = self._ctx.SimpleQueue()
        proc = self._ctx.Process(
            target=_worker_main,
            args=(task_q, self._result_q, self._worker_env),
            daemon=True,
            name="retime-worker",
        )
        proc.start()
        self._workers[proc.pid] = _Worker(proc=proc, task_q=task_q)

    def _emit(self, kind: str, job_id: str, **info) -> None:
        if self._on_event is not None:
            try:
                self._on_event(kind, job_id, **info)
            except Exception:  # noqa: BLE001 - observer must not kill the pool
                pass

    def _supervise(self) -> None:
        while not self._stop.is_set():
            drained = self._drain_results()
            self._reap_dead_workers()
            self._enforce_timeouts()
            self._release_retries()
            self._dispatch()
            if not drained:
                time.sleep(_POLL_INTERVAL)

    def _dispatch(self) -> None:
        """Hand pending jobs to idle workers, recording the assignment
        before the worker can possibly start executing."""
        idle = [w for w in self._workers.values() if w.held is None]
        while idle:
            with self._lock:
                if not self._pending:
                    return
                job_id, attempt = self._pending.popleft()
                entry = self._entries.get(job_id)
                if entry is None or entry.event.is_set():
                    continue
                entry.state = "running"
                entry.attempts = attempt
                payload = entry.job.to_dict()
            worker = idle.pop()
            worker.held = (job_id, attempt, time.monotonic())
            worker.task_q.put((job_id, attempt, payload))

    def _drain_results(self) -> bool:
        drained = False
        while not self._result_q.empty():
            kind, pid, job_id, attempt, payload = self._result_q.get()
            drained = True
            worker = self._workers.get(pid)
            if worker is not None and worker.held and worker.held[0] == job_id:
                worker.held = None
            with self._lock:
                entry = self._entries.get(job_id)
            if entry is None:
                continue
            if kind == "done":
                result = JobResult.from_dict(payload)
                result.attempts = attempt
                self._finish(entry, job_id, result)
            else:  # deterministic Python-level failure: no retry
                result = JobResult(
                    job_id=job_id,
                    status="failed",
                    error=JobFailure(**payload),
                    attempts=attempt,
                )
                self._finish(entry, job_id, result)
        return drained

    def _finish(self, entry: _Entry, job_id: str, result: JobResult) -> None:
        if entry.event.is_set():
            return  # a raced duplicate (timeout kill vs. late done)
        with self._lock:
            entry.result = result
            entry.state = result.status
        entry.event.set()
        self._emit(result.status, job_id, result=result)

    def _reap_dead_workers(self) -> None:
        for pid, worker in list(self._workers.items()):
            if worker.proc.is_alive():
                continue
            worker.proc.join(timeout=0.1)
            del self._workers[pid]
            if not self._stop.is_set():
                self._spawn_worker()
            if worker.held is not None:
                job_id, attempt, _t0 = worker.held
                self._emit("crash", job_id, exitcode=worker.proc.exitcode)
                self._retry_or_fail(
                    job_id,
                    attempt,
                    reason="worker_crash",
                    message=(
                        f"worker died with exit code {worker.proc.exitcode} "
                        f"on attempt {attempt}"
                    ),
                )

    def _enforce_timeouts(self) -> None:
        if self.job_timeout is None:
            return
        now = time.monotonic()
        for pid, worker in list(self._workers.items()):
            if worker.held is None:
                continue
            job_id, attempt, t0 = worker.held
            if now - t0 <= self.job_timeout:
                continue
            del self._workers[pid]
            worker.proc.kill()
            worker.proc.join(timeout=1.0)
            if not self._stop.is_set():
                self._spawn_worker()
            self._emit("timeout", job_id, attempt=attempt)
            self._retry_or_fail(
                job_id,
                attempt,
                reason="timeout",
                message=(
                    f"attempt {attempt} exceeded the {self.job_timeout:.1f}s "
                    f"job timeout"
                ),
            )

    def _retry_or_fail(
        self, job_id: str, attempt: int, reason: str, message: str
    ) -> None:
        with self._lock:
            entry = self._entries.get(job_id)
        if entry is None or entry.event.is_set():
            return
        if attempt <= self.max_retries:
            delay = self.retry_backoff * (2 ** (attempt - 1))
            with self._lock:
                entry.state = "retrying"
                entry.attempts = attempt + 1
            heapq.heappush(
                self._retry_heap, (time.monotonic() + delay, job_id)
            )
            self._emit("retry", job_id, attempt=attempt + 1, reason=reason)
        else:
            result = JobResult(
                job_id=job_id,
                status="failed",
                error=JobFailure(type=reason, message=message),
                attempts=attempt,
            )
            self._finish(entry, job_id, result)

    def _release_retries(self) -> None:
        now = time.monotonic()
        while self._retry_heap and self._retry_heap[0][0] <= now:
            _ready, job_id = heapq.heappop(self._retry_heap)
            with self._lock:
                entry = self._entries.get(job_id)
                if entry is None or entry.event.is_set():
                    continue
                self._pending.append((job_id, entry.attempts))
