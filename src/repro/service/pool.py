"""Crash-isolated, sharded multiprocessing worker pool for retiming jobs.

Design points:

* **One process per worker, one dispatch queue per worker.**  The
  supervisor assigns a job to a specific idle worker and records the
  assignment *before* the worker can touch it, so a worker death is
  always attributable to the exact job it held — there is no window in
  which a crashing worker loses a job.  (A shared task queue can't give
  that guarantee: ``mp.Queue`` flushes through a feeder thread, so a
  hard ``os._exit``/segfault can swallow the in-flight bookkeeping.)
  All queues are ``SimpleQueue``s — writes land in the pipe before
  ``put`` returns, no feeder threads anywhere.
* **Workers are shard slots.**  Slot *i* owns the keyspace region the
  consistent-hash ring (:class:`~repro.service.sharding.HashRing`)
  assigns to shard *i*; a job's ``shard_key`` (the design fingerprint)
  routes all work on one design to the worker that already holds its
  parsed circuit and attached intern segment.  A crashed worker is
  respawned *into the same slot*, so churn doesn't reshuffle the
  keyspace.  An idle worker with an empty home queue steals from the
  deepest backlog — affinity is a fast path, not a straitjacket.
* **Bounded admission.**  ``max_pending`` caps the queued-not-running
  backlog; :meth:`RetimePool.submit` raises
  :class:`PoolSaturatedError` instead of queueing unboundedly, and the
  service layer turns that into an HTTP 429 with ``Retry-After``.
* **Event-driven dispatch.**  A dedicated drain thread blocks on the
  result pipe and completed jobs wake the supervisor immediately, so
  dispatch latency is microseconds, not a poll interval.  (The
  supervisor still ticks every 50 ms as a fallback to reap corpses,
  enforce timeouts, and release backoff retries.)
* **Crash isolation.**  A segfault, OOM kill, or injected ``os._exit``
  takes down only the job its worker was holding.  The supervisor
  reaps the corpse, respawns a replacement, and requeues the job (with
  exponential backoff) up to ``max_retries`` times before recording a
  structured :class:`~repro.service.jobs.JobFailure`.
* **Per-job timeouts.**  A worker holding a job past ``job_timeout``
  seconds is SIGKILLed and treated like a crash (retry, then fail).
* **Deterministic errors don't retry.**  A Python exception raised by
  :func:`~repro.service.jobs.execute_job` (parse error, invalid
  circuit) is reported back and fails the job immediately — re-running
  a deterministic failure just wastes workers.

The supervisor runs on a daemon thread, so :meth:`RetimePool.submit`
returns immediately and results are awaited per-job via
:meth:`RetimePool.wait` (or in bulk via :meth:`RetimePool.run`).
"""

from __future__ import annotations

import heapq
import multiprocessing as mp
import os
import threading
import time
import traceback
from collections import deque
from dataclasses import dataclass, field

from .jobs import JobFailure, JobResult, RetimeJob, run_payload
from .sharding import DEFAULT_VNODES, HashRing

#: fallback supervisor tick — corpse reaping, timeout enforcement, and
#: retry release run at least this often; dispatch itself is event-driven
_POLL_INTERVAL = 0.05


class PoolSaturatedError(RuntimeError):
    """``submit`` refused a job: the admission queue is full.

    The service layer maps this to HTTP 429 + ``Retry-After``; batch
    callers should back off and resubmit.
    """

    def __init__(self, pending: int, limit: int) -> None:
        super().__init__(
            f"admission queue full ({pending} pending, limit {limit})"
        )
        self.pending = pending
        self.limit = limit


def _worker_main(task_q, result_q, env=None, telemetry_q=None) -> None:
    """Worker loop: execute assigned payloads until the ``None`` sentinel.

    *env* entries are applied to ``os.environ`` before the first job, so
    the supervisor can propagate tracing configuration
    (``REPRO_TRACE_DIR`` / ``REPRO_TRACE_SPANS``) across the process
    boundary; the trace id itself is the job's canonical key, carried by
    the job payload.  *telemetry_q* is this worker's end of the live
    telemetry bus — span deltas stream back to the supervisor while the
    job runs (see :mod:`repro.obs.bus`).

    Payloads come in two shapes: a legacy full job dict (carries the
    ``netlist`` text) and a scale-out reference
    (``{"design_ref", "segment", "job"}``) resolved through the
    worker's shared-memory design cache — see
    :func:`~repro.service.jobs.resolve_payload`.  Dispatch items are
    ``(job_id, attempt, payload, trace_ctx)`` tuples; the trace context
    (minted by the front-end) is stamped into the worker's trace so the
    stitcher can join the two processes' timelines.
    """
    if env:
        os.environ.update(env)
    if telemetry_q is not None:
        from repro.obs import set_worker_queue

        set_worker_queue(telemetry_q)
    while True:
        item = task_q.get()
        if item is None:
            return
        if len(item) == 4:
            job_id, attempt, payload, trace_ctx = item
        else:  # legacy 3-tuple dispatch
            job_id, attempt, payload = item
            trace_ctx = None
        try:
            data = run_payload(job_id, payload, trace_ctx=trace_ctx)
            result_q.put(("done", os.getpid(), job_id, attempt, data))
        except BaseException as exc:  # noqa: BLE001 - report, don't die
            info = {
                "type": type(exc).__name__,
                "message": str(exc),
                "traceback": traceback.format_exc(),
            }
            result_q.put(("error", os.getpid(), job_id, attempt, info))


@dataclass
class _Entry:
    """Supervisor-side bookkeeping for one submitted job."""

    job: RetimeJob
    shard: int = 0
    #: scale-out dispatch payload; ``None`` ships the full job dict
    payload: dict | None = None
    #: propagated trace context minted by the front-end, shipped with
    #: the dispatch so the worker can stamp (pid, parent_span)
    trace_ctx: dict | None = None
    state: str = "queued"  # queued | running | retrying | done | failed
    attempts: int = 0
    result: JobResult | None = None
    event: threading.Event = field(default_factory=threading.Event)
    submitted_at: float = field(default_factory=time.monotonic)


@dataclass
class _Worker:
    """One worker process bound to a shard slot."""

    slot: int
    proc: mp.Process
    task_q: object
    #: (job_id, attempt, dispatch_monotonic) while busy, else None
    held: tuple[str, int, float] | None = None


@dataclass
class _ShardStats:
    """Cumulative per-slot dispatch accounting (for metrics)."""

    dispatched: int = 0
    stolen: int = 0
    busy_seconds: float = 0.0


class RetimePool:
    """Supervised pool of sharded retiming workers with retry/timeout
    policy and bounded admission.

    Args:
        workers: process count (default ``os.cpu_count()``); also the
            shard count of the consistent-hash ring.
        job_timeout: seconds a single execution may run before the
            worker is killed and the job retried.
        max_retries: crash/timeout retries per job after the first
            attempt (total attempts = ``max_retries + 1``).
        retry_backoff: base delay before a retry; attempt *n* waits
            ``retry_backoff * 2**(n-1)`` seconds.
        max_pending: bound on the queued-not-yet-dispatched backlog;
            ``None`` admits unboundedly (the legacy behaviour).
        on_event: optional callback ``(kind, job_id, **info)`` invoked
            from the supervisor threads for ``done`` / ``failed`` /
            ``retry`` / ``timeout`` / ``crash`` / ``dispatch`` events —
            the service layer hangs its metrics off this.
        worker_env: environment variables applied in every worker
            process before it takes jobs (tracing configuration).
        start_method: multiprocessing start method (``"fork"`` /
            ``"spawn"`` / ``"forkserver"``); ``None`` uses the
            platform default.
        telemetry_bus: optional :class:`repro.obs.TelemetryBus`; when
            given the pool creates a worker→supervisor queue, attaches
            the bus to it, and hands each worker the sending end so
            span deltas stream back live.
    """

    def __init__(
        self,
        workers: int | None = None,
        job_timeout: float = 300.0,
        max_retries: int = 2,
        retry_backoff: float = 0.5,
        max_pending: int | None = None,
        on_event=None,
        worker_env: dict[str, str] | None = None,
        start_method: str | None = None,
        telemetry_bus=None,
    ) -> None:
        self.workers = max(1, workers if workers is not None else os.cpu_count() or 1)
        self.job_timeout = job_timeout
        self.max_retries = max(0, max_retries)
        self.retry_backoff = retry_backoff
        self.max_pending = max_pending
        self._on_event = on_event
        self._worker_env = dict(worker_env or {})
        self._telemetry_bus = telemetry_bus
        self._telemetry_q = None
        self._ctx = mp.get_context(start_method)
        self._result_q = self._ctx.SimpleQueue()
        self._ring = HashRing(self.workers, DEFAULT_VNODES)
        self._entries: dict[str, _Entry] = {}
        self._slots: list[_Worker | None] = [None] * self.workers
        self._by_pid: dict[int, _Worker] = {}
        #: per-shard FIFO of (job_id, attempt)
        self._queues: list[deque[tuple[str, int]]] = [
            deque() for _ in range(self.workers)
        ]
        self._pending_total = 0
        self._shard_stats = [_ShardStats() for _ in range(self.workers)]
        self._retry_heap: list[tuple[float, str]] = []
        self._lock = threading.Lock()
        self._stop = threading.Event()
        self._wake = threading.Event()
        self._supervisor: threading.Thread | None = None
        self._drainer: threading.Thread | None = None

    # -- lifecycle -----------------------------------------------------

    def start(self) -> "RetimePool":
        if self._supervisor is not None:
            return self
        if self._telemetry_bus is not None:
            self._telemetry_q = self._ctx.SimpleQueue()
            self._telemetry_bus.attach(self._telemetry_q)
        for slot in range(self.workers):
            self._spawn_worker(slot)
        self._drainer = threading.Thread(
            target=self._drain_loop, name="retime-pool-drain", daemon=True
        )
        self._drainer.start()
        self._supervisor = threading.Thread(
            target=self._supervise, name="retime-pool-supervisor", daemon=True
        )
        self._supervisor.start()
        return self

    def close(self, timeout: float = 5.0) -> None:
        """Stop the supervisor and tear the workers down."""
        if self._supervisor is None:
            return
        self._stop.set()
        self._wake.set()
        self._result_q.put(None)  # unblock the drain thread
        self._supervisor.join(timeout=timeout)
        if self._drainer is not None:
            self._drainer.join(timeout=timeout)
        workers = [w for w in self._slots if w is not None]
        for worker in workers:
            try:
                worker.task_q.put(None)
            except (OSError, ValueError):
                pass
        deadline = time.monotonic() + timeout
        for worker in workers:
            worker.proc.join(timeout=max(0.0, deadline - time.monotonic()))
            if worker.proc.is_alive():
                worker.proc.kill()
                worker.proc.join(timeout=1.0)
        self._slots = [None] * self.workers
        self._by_pid.clear()
        if self._telemetry_bus is not None:
            self._telemetry_bus.close()

    def __enter__(self) -> "RetimePool":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.close()

    # -- submission API ------------------------------------------------

    def shard_for(self, shard_key: str) -> int:
        """The home shard the ring assigns to *shard_key*."""
        return self._ring.shard(shard_key)

    def submit(
        self,
        job_id: str,
        job: RetimeJob,
        shard_key: str | None = None,
        payload: dict | None = None,
        trace_ctx: dict | None = None,
    ) -> int:
        """Queue *job* under *job_id*; returns its home shard.

        In-flight ids coalesce.  *shard_key* (typically the design
        fingerprint) routes the job; it defaults to the job id, which
        still spreads uniformly but loses design affinity.  *payload*
        replaces the dispatched job dict with a scale-out design
        reference.  *trace_ctx* (``{"trace_id", "parent_span",
        "parent_pid"}``) rides with the dispatch so the worker's trace
        nests under the front-end's request span.  Raises
        :class:`PoolSaturatedError` when the admission queue is at
        ``max_pending``.
        """
        if self._supervisor is None:
            raise RuntimeError("pool is not started")
        shard = self._ring.shard(shard_key if shard_key is not None else job_id)
        with self._lock:
            entry = self._entries.get(job_id)
            if entry is not None and not entry.event.is_set():
                return entry.shard  # already queued or running: coalesce
            if (
                self.max_pending is not None
                and self._pending_total >= self.max_pending
            ):
                raise PoolSaturatedError(self._pending_total, self.max_pending)
            entry = _Entry(
                job=job, shard=shard, payload=payload, trace_ctx=trace_ctx
            )
            entry.attempts = 1
            self._entries[job_id] = entry
            self._queues[shard].append((job_id, 1))
            self._pending_total += 1
        self._wake.set()
        return shard

    def wait(self, job_id: str, timeout: float | None = None) -> JobResult:
        """Block until *job_id* finishes; raises ``TimeoutError``."""
        with self._lock:
            entry = self._entries[job_id]
        if not entry.event.wait(timeout):
            raise TimeoutError(f"job {job_id} did not finish in {timeout}s")
        assert entry.result is not None
        return entry.result

    def state(self, job_id: str) -> str:
        with self._lock:
            return self._entries[job_id].state

    def run(self, jobs: dict[str, RetimeJob]) -> dict[str, JobResult]:
        """Submit every job, wait for all, return results by id."""
        for job_id, job in jobs.items():
            self.submit(job_id, job)
        return {job_id: self.wait(job_id) for job_id in jobs}

    # -- introspection -------------------------------------------------

    def queue_depth(self) -> int:
        """Jobs admitted but not yet dispatched to a worker."""
        with self._lock:
            return self._pending_total

    def stats(self) -> dict:
        """Admission/queue/shard snapshot for the metrics endpoint."""
        with self._lock:
            shards = []
            for slot in range(self.workers):
                worker = self._slots[slot]
                st = self._shard_stats[slot]
                busy = worker.held[2] if worker is not None and worker.held else None
                extra = time.monotonic() - busy if busy is not None else 0.0
                shards.append(
                    {
                        "depth": len(self._queues[slot]),
                        "busy": busy is not None,
                        "dispatched": st.dispatched,
                        "stolen": st.stolen,
                        "busy_seconds": st.busy_seconds + extra,
                    }
                )
            return {
                "workers": self.workers,
                "pending": self._pending_total,
                "max_pending": self.max_pending,
                "shards": shards,
            }

    # -- supervisor ----------------------------------------------------

    def _spawn_worker(self, slot: int) -> None:
        task_q = self._ctx.SimpleQueue()
        proc = self._ctx.Process(
            target=_worker_main,
            args=(task_q, self._result_q, self._worker_env, self._telemetry_q),
            daemon=True,
            name=f"retime-worker-{slot}",
        )
        proc.start()
        worker = _Worker(slot=slot, proc=proc, task_q=task_q)
        self._slots[slot] = worker
        self._by_pid[proc.pid] = worker

    def _emit(self, kind: str, job_id: str, **info) -> None:
        if self._on_event is not None:
            try:
                self._on_event(kind, job_id, **info)
            except Exception:  # noqa: BLE001 - observer must not kill the pool
                pass

    def _supervise(self) -> None:
        while not self._stop.is_set():
            self._wake.wait(_POLL_INTERVAL)
            self._wake.clear()
            self._reap_dead_workers()
            self._enforce_timeouts()
            self._release_retries()
            self._dispatch()

    def _drain_loop(self) -> None:
        """Block on the result pipe; completions don't wait for a tick."""
        while True:
            item = self._result_q.get()
            if item is None or self._stop.is_set():
                return
            self._handle_result(*item)
            self._wake.set()

    def _next_for_slot(self, slot: int):
        """Pop the next queued job for *slot* (home queue, else steal).

        Caller holds the lock.  Returns ``(job_id, attempt, stolen,
        home_shard)`` or ``None``.
        """
        queue = self._queues[slot]
        if queue:
            self._pending_total -= 1
            job_id, attempt = queue.popleft()
            return job_id, attempt, False, slot
        victim = max(
            range(self.workers), key=lambda s: len(self._queues[s])
        )
        if self._queues[victim]:
            self._pending_total -= 1
            job_id, attempt = self._queues[victim].popleft()
            return job_id, attempt, True, victim
        return None

    def _dispatch(self) -> None:
        """Hand pending jobs to idle workers, recording the assignment
        before the worker can possibly start executing."""
        while True:
            with self._lock:
                if self._pending_total == 0:
                    return
                idle = [
                    w
                    for w in self._slots
                    if w is not None
                    and w.held is None
                    and w.proc.is_alive()
                ]
                assignment = None
                # pass 1: home-queue dispatch (cache affinity)
                for worker in idle:
                    if self._queues[worker.slot]:
                        assignment = (worker, self._next_for_slot(worker.slot))
                        break
                # pass 2: no idle worker has home work — steal
                if assignment is None:
                    for worker in idle:
                        item = self._next_for_slot(worker.slot)
                        if item is not None:
                            assignment = (worker, item)
                            break
                if assignment is None:
                    return
                worker, (job_id, attempt, stolen, home) = assignment
                entry = self._entries.get(job_id)
                if entry is None or entry.event.is_set():
                    continue  # stale queue entry; pick again
                entry.state = "running"
                entry.attempts = attempt
                payload = (
                    entry.payload
                    if entry.payload is not None
                    else entry.job.to_dict()
                )
                queued_s = time.monotonic() - entry.submitted_at
                worker.held = (job_id, attempt, time.monotonic())
                stats = self._shard_stats[worker.slot]
                stats.dispatched += 1
                if stolen:
                    stats.stolen += 1
            worker.task_q.put((job_id, attempt, payload, entry.trace_ctx))
            self._emit(
                "dispatch",
                job_id,
                shard=home,
                worker=worker.slot,
                stolen=stolen,
                queued_seconds=queued_s,
            )

    def _handle_result(self, kind, pid, job_id, attempt, payload) -> None:
        with self._lock:
            worker = self._by_pid.get(pid)
            if worker is not None and worker.held and worker.held[0] == job_id:
                self._shard_stats[worker.slot].busy_seconds += (
                    time.monotonic() - worker.held[2]
                )
                worker.held = None
            entry = self._entries.get(job_id)
        if entry is None:
            return
        if kind == "done":
            result = JobResult.from_dict(payload)
            result.attempts = attempt
            self._finish(entry, job_id, result)
        else:  # deterministic Python-level failure: no retry
            result = JobResult(
                job_id=job_id,
                status="failed",
                error=JobFailure(**payload),
                attempts=attempt,
            )
            self._finish(entry, job_id, result)

    def _finish(self, entry: _Entry, job_id: str, result: JobResult) -> None:
        if entry.event.is_set():
            return  # a raced duplicate (timeout kill vs. late done)
        with self._lock:
            entry.result = result
            entry.state = result.status
        # observers (cache/ledger/metrics writes) run BEFORE waiters
        # wake: a client that saw the job finish must find its side
        # effects already durable
        self._emit(result.status, job_id, result=result)
        entry.event.set()

    def _reap_dead_workers(self) -> None:
        with self._lock:
            dead = [
                w for w in self._by_pid.values() if not w.proc.is_alive()
            ]
        for worker in dead:
            worker.proc.join(timeout=0.1)
            with self._lock:
                self._by_pid.pop(worker.proc.pid, None)
                held = worker.held
                if held is not None:
                    self._shard_stats[worker.slot].busy_seconds += (
                        time.monotonic() - held[2]
                    )
                respawn = (
                    not self._stop.is_set()
                    and self._slots[worker.slot] is worker
                )
            if respawn:
                self._spawn_worker(worker.slot)
            if held is not None:
                job_id, attempt, _t0 = held
                self._emit("crash", job_id, exitcode=worker.proc.exitcode)
                self._retry_or_fail(
                    job_id,
                    attempt,
                    reason="worker_crash",
                    message=(
                        f"worker died with exit code {worker.proc.exitcode} "
                        f"on attempt {attempt}"
                    ),
                )

    def _enforce_timeouts(self) -> None:
        if self.job_timeout is None:
            return
        now = time.monotonic()
        with self._lock:
            overdue = [
                w
                for w in self._by_pid.values()
                if w.held is not None and now - w.held[2] > self.job_timeout
            ]
        for worker in overdue:
            with self._lock:
                self._by_pid.pop(worker.proc.pid, None)
                held = worker.held
                if held is not None:
                    self._shard_stats[worker.slot].busy_seconds += (
                        time.monotonic() - held[2]
                    )
                respawn = (
                    not self._stop.is_set()
                    and self._slots[worker.slot] is worker
                )
            worker.proc.kill()
            worker.proc.join(timeout=1.0)
            if respawn:
                self._spawn_worker(worker.slot)
            if held is None:
                continue
            job_id, attempt, _t0 = held
            self._emit("timeout", job_id, attempt=attempt)
            self._retry_or_fail(
                job_id,
                attempt,
                reason="timeout",
                message=(
                    f"attempt {attempt} exceeded the {self.job_timeout:.1f}s "
                    f"job timeout"
                ),
            )

    def _retry_or_fail(
        self, job_id: str, attempt: int, reason: str, message: str
    ) -> None:
        with self._lock:
            entry = self._entries.get(job_id)
        if entry is None or entry.event.is_set():
            return
        if attempt <= self.max_retries:
            delay = self.retry_backoff * (2 ** (attempt - 1))
            with self._lock:
                entry.state = "retrying"
                entry.attempts = attempt + 1
            heapq.heappush(
                self._retry_heap, (time.monotonic() + delay, job_id)
            )
            self._emit("retry", job_id, attempt=attempt + 1, reason=reason)
        else:
            result = JobResult(
                job_id=job_id,
                status="failed",
                error=JobFailure(type=reason, message=message),
                attempts=attempt,
            )
            self._finish(entry, job_id, result)

    def _release_retries(self) -> None:
        now = time.monotonic()
        while self._retry_heap and self._retry_heap[0][0] <= now:
            _ready, job_id = heapq.heappop(self._retry_heap)
            with self._lock:
                entry = self._entries.get(job_id)
                if entry is None or entry.event.is_set():
                    continue
                # retries bypass the admission bound: the job was
                # already admitted once and holds a design pin
                self._queues[entry.shard].append((job_id, entry.attempts))
                self._pending_total += 1
            self._wake.set()
