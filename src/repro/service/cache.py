"""Two-tier result cache: in-memory LRU over an on-disk JSON store.

Keys are the content-addressed job hashes from
:meth:`~repro.service.jobs.RetimeJob.canonical_key`, so a resubmitted
design (same canonical netlist, same options) returns its retimed
output instantly without touching the worker pool.

The memory tier absorbs hot resubmissions; the disk tier (one
``<key>.json`` per result under ``cache_dir``) survives service
restarts and is shared between ``mcretime batch`` runs and a
``mcretime serve`` instance pointed at the same directory.  Writes go
through a temp-file rename so a killed process never leaves a torn
entry behind; writers killed *between* the temp write and the rename
leave a stale ``.tmp`` file, which construction and :meth:`clear`
sweep.  Entries that fail to decode are quarantined (renamed to
``<key>.json.corrupt``) on the first miss so later lookups do not
re-read the bad bytes.
"""

from __future__ import annotations

import json
import os
import threading
from collections import OrderedDict
from pathlib import Path

from .jobs import JobResult


class ResultCache:
    """LRU memory tier over an optional persistent disk tier."""

    def __init__(
        self, cache_dir: str | Path | None = None, memory_size: int = 128
    ) -> None:
        self.cache_dir = Path(cache_dir) if cache_dir is not None else None
        if self.cache_dir is not None:
            self.cache_dir.mkdir(parents=True, exist_ok=True)
        self.memory_size = max(0, memory_size)
        self._memory: OrderedDict[str, dict] = OrderedDict()
        self._lock = threading.Lock()
        #: tier-attributed lookup counters (the service aggregates these
        #: into the Prometheus registry)
        self.memory_hits = 0
        self.disk_hits = 0
        self.misses = 0
        #: disk entries quarantined after a decode failure (the service
        #: surfaces this as ``repro_cache_corrupt_total``)
        self.corrupt = 0
        if self.cache_dir is not None:
            self._sweep_stale_tmp()

    def _disk_path(self, key: str) -> Path:
        assert self.cache_dir is not None
        return self.cache_dir / f"{key}.json"

    def _sweep_stale_tmp(self) -> None:
        """Remove leftover per-writer temp files.

        A writer hard-killed between ``tmp.write_text`` and
        ``os.replace`` never reaches its ``finally`` cleanup, leaking
        ``.<key>.json.<pid>.<tid>.tmp`` forever.  Any temp file that
        predates this process is stale by construction (live writers
        hold the file only for the duration of one ``put``, and temp
        names are unique per pid/thread), so sweeping at startup and on
        ``clear()`` cannot race an in-flight writer of *this* process.
        """
        assert self.cache_dir is not None
        for tmp in self.cache_dir.glob(".*.json.*.tmp"):
            try:
                tmp.unlink(missing_ok=True)
            except OSError:
                pass

    def _quarantine(self, path: Path) -> None:
        """Move a corrupt disk entry aside so it is never re-read."""
        try:
            path.replace(path.with_name(path.name + ".corrupt"))
        except OSError:
            try:
                path.unlink(missing_ok=True)
            except OSError:
                return
        with self._lock:
            self.corrupt += 1

    def get(self, key: str) -> JobResult | None:
        """Look *key* up, promoting disk hits into the memory tier."""
        with self._lock:
            data = self._memory.get(key)
            if data is not None:
                self._memory.move_to_end(key)
                self.memory_hits += 1
                return JobResult.from_dict(data)
        if self.cache_dir is not None:
            path = self._disk_path(key)
            try:
                text = path.read_text()
            except OSError:
                text = None
            data = None
            if text is not None:
                try:
                    data = json.loads(text)
                    if not isinstance(data, dict):
                        raise ValueError("cache entry is not an object")
                except (json.JSONDecodeError, ValueError):
                    # decodable never again: quarantine so the next
                    # lookup goes straight to a miss instead of
                    # re-parsing the same bad bytes
                    data = None
                    self._quarantine(path)
            if data is not None:
                with self._lock:
                    self.disk_hits += 1
                    self._remember(key, data)
                return JobResult.from_dict(data)
        with self._lock:
            self.misses += 1
        return None

    def put(self, key: str, result: JobResult) -> None:
        """Store a completed result in both tiers (failures excluded:
        a crash or timeout may be transient, so they stay retryable)."""
        if not result.ok:
            return
        data = result.to_dict()
        # cached-ness is a property of the lookup, not the stored value
        data["cached"] = False
        with self._lock:
            self._remember(key, data)
        if self.cache_dir is not None:
            path = self._disk_path(key)
            if path.exists():
                # content-addressed: an existing entry is already this
                # result, so concurrent re-puts skip the disk write
                return
            # per-writer temp name: concurrent writers of the same key
            # must never truncate each other's in-progress temp file
            tmp = path.with_name(
                f".{path.name}.{os.getpid()}.{threading.get_ident()}.tmp"
            )
            try:
                tmp.write_text(json.dumps(data))
                os.replace(tmp, path)
            finally:
                tmp.unlink(missing_ok=True)

    def _remember(self, key: str, data: dict) -> None:
        if self.memory_size == 0:
            return
        self._memory[key] = data
        self._memory.move_to_end(key)
        while len(self._memory) > self.memory_size:
            self._memory.popitem(last=False)

    def __contains__(self, key: str) -> bool:
        with self._lock:
            if key in self._memory:
                return True
        return self.cache_dir is not None and self._disk_path(key).exists()

    def __len__(self) -> int:
        """Number of distinct cached results (both tiers)."""
        with self._lock:
            keys = set(self._memory)
        if self.cache_dir is not None:
            keys.update(p.stem for p in self.cache_dir.glob("*.json"))
        return len(keys)

    def clear(self) -> None:
        with self._lock:
            self._memory.clear()
        if self.cache_dir is not None:
            for path in self.cache_dir.glob("*.json"):
                path.unlink(missing_ok=True)
            for path in self.cache_dir.glob("*.json.corrupt"):
                path.unlink(missing_ok=True)
            self._sweep_stale_tmp()
