"""Batch retiming service: jobs, cache, worker pool, metrics, HTTP API.

The service layer turns the single-shot flows of :mod:`repro.flows`
into a servable, fault-tolerant batch engine:

* :class:`RetimeJob` / :class:`JobResult` — content-addressed job specs
  and structured outcomes (:mod:`repro.service.jobs`);
* :class:`ResultCache` — two-tier LRU-over-disk result cache
  (:mod:`repro.service.cache`);
* :class:`RetimePool` — crash-isolated multiprocessing pool with
  per-job timeouts and bounded retries (:mod:`repro.service.pool`);
* :class:`MetricsRegistry` — Prometheus-exportable counters and
  histograms (:mod:`repro.service.metrics`);
* :class:`RetimeService` — the façade combining all of the above
  (:mod:`repro.service.engine`);
* :func:`make_server` / :class:`RetimeClient` — stdlib HTTP JSON API
  and client (:mod:`repro.service.server` / ``.client``).

See ``docs/SERVICE.md`` for the API and failure-semantics reference.
"""

from .cache import ResultCache
from .client import RetimeClient, ServiceError
from .engine import RetimeService
from .jobs import (
    JOB_FLOWS,
    JOB_TRANSFORMS,
    JobFailure,
    JobResult,
    RetimeJob,
    execute_job,
)
from .metrics import Counter, Histogram, MetricsRegistry
from .pool import RetimePool
from .server import make_server, serve_forever

__all__ = [
    "JOB_FLOWS",
    "JOB_TRANSFORMS",
    "Counter",
    "Histogram",
    "JobFailure",
    "JobResult",
    "MetricsRegistry",
    "ResultCache",
    "RetimeClient",
    "RetimeJob",
    "RetimePool",
    "RetimeService",
    "ServiceError",
    "execute_job",
    "make_server",
    "serve_forever",
]
