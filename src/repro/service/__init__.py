"""Batch retiming service: jobs, cache, worker pool, metrics, HTTP API.

The service layer turns the single-shot flows of :mod:`repro.flows`
into a servable, fault-tolerant batch engine:

* :class:`RetimeJob` / :class:`JobResult` — content-addressed job specs
  and structured outcomes (:mod:`repro.service.jobs`);
* :class:`ResultCache` — two-tier LRU-over-disk result cache
  (:mod:`repro.service.cache`);
* :class:`RetimePool` — crash-isolated, consistent-hash-sharded
  multiprocessing pool with per-job timeouts, bounded retries, and
  bounded admission (:mod:`repro.service.pool` /
  :mod:`repro.service.sharding`);
* :class:`InternRegistry` — refcounted shared-memory design interning
  for the scale-out dispatch path (:mod:`repro.service.interning`);
* :class:`MetricsRegistry` — Prometheus-exportable counters and
  histograms (:mod:`repro.service.metrics`);
* :class:`RetimeService` — the façade combining all of the above
  (:mod:`repro.service.engine`);
* :func:`make_server` / :class:`RetimeClient` — asyncio HTTP/1.1 JSON
  API (keep-alive, pipelining, backpressure) and keep-alive client
  (:mod:`repro.service.server` / ``.client``).

See ``docs/SERVICE.md`` for the API and failure-semantics reference.
"""

from .cache import ResultCache
from .client import RetimeClient, ServiceError, ServiceOverloadedError
from .engine import RetimeService
from .interning import HAVE_SHM, InternRegistry, design_fingerprint, design_ref
from .jobs import (
    JOB_FLOWS,
    JOB_TRANSFORMS,
    JobFailure,
    JobResult,
    RetimeJob,
    execute_job,
    resolve_payload,
    run_payload,
)
from .metrics import Counter, Histogram, MetricsRegistry
from .pool import PoolSaturatedError, RetimePool
from .server import AsyncRetimeServer, make_server, serve_forever
from .sharding import HashRing

__all__ = [
    "HAVE_SHM",
    "JOB_FLOWS",
    "JOB_TRANSFORMS",
    "AsyncRetimeServer",
    "Counter",
    "HashRing",
    "Histogram",
    "InternRegistry",
    "JobFailure",
    "JobResult",
    "MetricsRegistry",
    "PoolSaturatedError",
    "ResultCache",
    "RetimeClient",
    "RetimeJob",
    "RetimePool",
    "RetimeService",
    "ServiceError",
    "ServiceOverloadedError",
    "design_fingerprint",
    "design_ref",
    "execute_job",
    "make_server",
    "resolve_payload",
    "run_payload",
    "serve_forever",
]
