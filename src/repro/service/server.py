"""Stdlib HTTP JSON API over :class:`~repro.service.engine.RetimeService`.

Endpoints (see ``docs/SERVICE.md`` for the full reference):

* ``POST /retime`` — submit a job.  Body: ``{"netlist": "...",
  "fmt": "blif", "name": "...", "flow": "mcretime", "objective":
  "minarea", "delay_model": null, "target_period": null,
  "semantic_classes": true, "output_fmt": null, "wait": false}``.
  Only ``netlist`` is required.  With ``"wait": true`` the response is
  the finished job record; otherwise submission returns immediately
  with the job id for polling.
* ``GET /jobs/<id>`` — job status/result by content-addressed id.
* ``GET /healthz`` — liveness plus worker/job counts.
* ``GET /metrics`` — Prometheus text exposition (with exemplars).
* ``GET /runs?n=N`` — the newest N records of the service run ledger
  (404 when the service was started without one).
* ``GET /debug/profile?seconds=S`` — sample the server process for S
  seconds (all threads) and return speedscope JSON flame data.

The server is a ``ThreadingHTTPServer``: handler threads block on the
service (pool-backed), so slow jobs never wedge health checks.
"""

from __future__ import annotations

import json
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from urllib.parse import parse_qs, urlsplit

from .. import obs
from ..netlist import NetlistError
from .engine import RetimeService
from .jobs import RetimeJob

#: hard ceilings for the on-demand profiler endpoint
_PROFILE_MAX_SECONDS = 60.0
_RUNS_MAX = 500

_JOB_FIELDS = (
    "fmt",
    "name",
    "flow",
    "objective",
    "delay_model",
    "target_period",
    "semantic_classes",
    "verify",
    "verify_cycles",
    "output_fmt",
    "transform",
    "stages",
    "factor",
)


def job_from_request(body: dict) -> RetimeJob:
    """Build a :class:`RetimeJob` from a ``POST /retime`` JSON body."""
    if not isinstance(body, dict):
        raise ValueError("request body must be a JSON object")
    netlist = body.get("netlist")
    if not isinstance(netlist, str) or not netlist.strip():
        raise ValueError("missing required field 'netlist'")
    options = {
        key: body[key]
        for key in _JOB_FIELDS
        if key in body and body[key] is not None
    }
    return RetimeJob(netlist=netlist, **options)


def make_handler(service: RetimeService, quiet: bool = True):
    """Build the request handler class bound to *service*."""

    class RetimeHandler(BaseHTTPRequestHandler):
        protocol_version = "HTTP/1.1"
        server_version = "mcretime-service/1.0"

        # -- plumbing --------------------------------------------------

        def log_message(self, fmt, *args):  # noqa: N802
            if not quiet:
                super().log_message(fmt, *args)

        def _send(self, code: int, payload, content_type="application/json"):
            body = (
                payload.encode()
                if isinstance(payload, str)
                else json.dumps(payload, indent=1).encode()
            )
            self.send_response(code)
            self.send_header("Content-Type", content_type)
            self.send_header("Content-Length", str(len(body)))
            self.end_headers()
            self.wfile.write(body)

        def _error(self, code: int, message: str):
            self._send(code, {"error": message})

        # -- routes ----------------------------------------------------

        def _query(self) -> dict[str, str]:
            """Last value of each query-string parameter."""
            parsed = parse_qs(urlsplit(self.path).query)
            return {key: values[-1] for key, values in parsed.items()}

        def _get_runs(self):
            if service.ledger is None:
                self._error(404, "service started without a run ledger")
                return
            try:
                n = int(self._query().get("n", "20"))
            except ValueError:
                self._error(400, "query parameter 'n' must be an integer")
                return
            n = max(1, min(n, _RUNS_MAX))
            self._send(
                200,
                {
                    "ledger": str(service.ledger.path),
                    "runs": service.ledger.tail(n),
                    "skipped": service.ledger.skipped,
                },
            )

        def _get_profile(self):
            query = self._query()
            try:
                seconds = float(query.get("seconds", "5"))
                interval = float(query.get("interval", "0.005"))
            except ValueError:
                self._error(400, "'seconds'/'interval' must be numbers")
                return
            if not 0 < seconds <= _PROFILE_MAX_SECONDS:
                self._error(
                    400,
                    f"'seconds' must be in (0, {_PROFILE_MAX_SECONDS:g}]",
                )
                return
            profile = obs.profile_block(seconds, interval=interval)
            self._send(200, profile.speedscope(name="mcretime-service"))

        def do_GET(self):  # noqa: N802
            path = self.path.split("?", 1)[0].rstrip("/") or "/"
            if path == "/healthz":
                self._send(
                    200,
                    {
                        "status": "ok",
                        "workers": service.pool.workers,
                        "jobs": service.job_counts(),
                        "cache_hit_rate": round(service.cache_hit_rate(), 4),
                    },
                )
            elif path == "/metrics":
                self._send(
                    200,
                    service.metrics.render(),
                    content_type="text/plain; version=0.0.4",
                )
            elif path == "/runs":
                self._get_runs()
            elif path == "/debug/profile":
                self._get_profile()
            elif path.startswith("/jobs/"):
                job_id = path[len("/jobs/"):]
                record = service.status(job_id)
                if record is None:
                    self._error(404, f"unknown job {job_id!r}")
                else:
                    self._send(200, record)
            else:
                self._error(404, f"no route for GET {path}")

        def do_POST(self):  # noqa: N802
            path = self.path.split("?", 1)[0].rstrip("/")
            if path != "/retime":
                self._error(404, f"no route for POST {path}")
                return
            try:
                length = int(self.headers.get("Content-Length", 0))
                body = json.loads(self.rfile.read(length) or b"{}")
            except (ValueError, json.JSONDecodeError):
                self._error(400, "request body is not valid JSON")
                return
            try:
                job = job_from_request(body)
                job_id = service.submit(job)
            except (NetlistError, ValueError, TypeError) as exc:
                self._error(400, str(exc))
                return
            if body.get("wait"):
                service.wait(job_id)
            self._send(200, service.status(job_id))

    return RetimeHandler


def make_server(
    service: RetimeService,
    host: str = "127.0.0.1",
    port: int = 8117,
    quiet: bool = True,
) -> ThreadingHTTPServer:
    """Bind (but don't start) the HTTP server; port 0 picks a free one."""
    httpd = ThreadingHTTPServer((host, port), make_handler(service, quiet))
    httpd.daemon_threads = True
    return httpd


def serve_forever(
    service: RetimeService, host: str = "127.0.0.1", port: int = 8117
) -> None:
    """Blocking serve loop used by ``mcretime serve``."""
    httpd = make_server(service, host, port, quiet=False)
    try:
        httpd.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        httpd.server_close()
        service.close()
