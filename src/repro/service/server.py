"""Asyncio HTTP JSON API over :class:`~repro.service.engine.RetimeService`.

Endpoints (see ``docs/SERVICE.md`` for the full reference):

* ``POST /retime`` — submit a job.  Body: ``{"netlist": "...",
  "fmt": "blif", "name": "...", "flow": "mcretime", "objective":
  "minarea", "delay_model": null, "target_period": null,
  "semantic_classes": true, "output_fmt": null, "wait": false}``.
  Only ``netlist`` is required.  With ``"wait": true`` the response is
  the finished job record; otherwise submission returns immediately
  with the job id for polling.  Under load shedding the response is
  ``429`` with a ``Retry-After`` header.

  **ECO submissions** (``docs/ECO.md``) replace ``netlist`` with
  ``{"base_key": "<design_key>", "edit": [ ...op dicts... ]}``: the
  server resolves the base design from a previous submission's
  ``design_key`` (returned in every job record), applies the edit
  script, and submits the edited design — routed to the worker
  holding the base's warm solver state, which retimes incrementally
  (bit-identical to a cold solve).  Unknown ``base_key`` or a
  malformed script is a ``400``.
* ``GET /jobs/<id>`` — job status/result by content-addressed id.
* ``GET /healthz`` — liveness plus worker/queue/job counts.
* ``GET /metrics`` — Prometheus text exposition (with exemplars).
* ``GET /slo`` — SLO burn rates over the rolling window
  (:mod:`repro.obs.slo`; targets from the service's SLO config).
* ``GET /trace/<job>`` — the job's stitched distributed trace
  (front-end + worker timelines merged; live telemetry-bus buffer for
  in-flight jobs).  404 until anything is known about the job.
* ``GET /explain/<job>`` — the job's certificate-backed explanation
  (``docs/EXPLAIN.md``; jobs submitted with ``"explain": true``).
  404 for unknown/unfinished jobs and jobs run without explanations.
* ``GET /runs?n=N`` — the newest N records of the service run ledger,
  streamed with chunked transfer encoding (404 when the service was
  started without one).
* ``GET /debug/profile?seconds=S`` — sample the server process for S
  seconds (all threads) and return speedscope JSON flame data.

The front-end is a single asyncio event loop speaking HTTP/1.1 with
keep-alive and request pipelining: one connection serves any number of
requests, and requests a client writes back-to-back are parsed straight
out of the buffer without waiting for earlier responses to be read.
Blocking service calls (pool-backed submits, ``wait=true``) run on an
executor thread pool, so slow jobs never wedge health checks — the
event loop itself only parses, routes, and writes.

:func:`make_server` preserves the stdlib server facade
(``server_address`` / ``serve_forever`` / ``shutdown`` /
``server_close``): the listening socket binds synchronously, so
``port=0`` resolves to a concrete port before the loop starts.
"""

from __future__ import annotations

import asyncio
import json
import socket
import threading
from concurrent.futures import ThreadPoolExecutor
from http.client import responses as _REASONS
from urllib.parse import parse_qs, urlsplit

from .. import obs
from ..netlist import NetlistError
from .client import ServiceOverloadedError
from .engine import RetimeService
from .jobs import RetimeJob

#: hard ceilings for the on-demand profiler endpoint
_PROFILE_MAX_SECONDS = 60.0
_RUNS_MAX = 500

#: drop keep-alive connections idle for this long (seconds)
_IDLE_TIMEOUT = 120.0

#: executor threads for blocking service calls — bounds the number of
#: concurrently *blocking* requests (``wait=true`` submitters), not the
#: number of open connections
_EXECUTOR_THREADS = 32

_JOB_FIELDS = (
    "fmt",
    "name",
    "flow",
    "objective",
    "delay_model",
    "target_period",
    "semantic_classes",
    "verify",
    "verify_cycles",
    "explain",
    "output_fmt",
    "transform",
    "stages",
    "factor",
)


def job_from_request(body: dict, resolve_base=None) -> RetimeJob:
    """Build a :class:`RetimeJob` from a ``POST /retime`` JSON body.

    Two request shapes: a full submission carrying ``netlist``, or an
    ECO submission carrying ``base_key`` + ``edit`` (``docs/ECO.md``).
    For the latter, *resolve_base* maps a design fingerprint to its
    canonical BLIF (:meth:`RetimeService.base_netlist`); the edit
    script is applied here so the job's ``netlist`` — hence its content
    address and every cold/correctness path — is the full edited
    design, with the ECO fields riding along for the warm path.
    """
    if not isinstance(body, dict):
        raise ValueError("request body must be a JSON object")
    options = {
        key: body[key]
        for key in _JOB_FIELDS
        if key in body and body[key] is not None
    }
    netlist = body.get("netlist")
    if netlist is None and body.get("base_key") is not None:
        from ..eco import apply_edit_script
        from ..netlist import read_blif, write_blif

        base_key = body["base_key"]
        if not isinstance(base_key, str):
            raise ValueError("'base_key' must be a design fingerprint string")
        edit = body.get("edit")
        if not isinstance(edit, list):
            raise ValueError("ECO submissions need 'edit': a list of op dicts")
        base_text = resolve_base(base_key) if resolve_base else None
        if base_text is None:
            raise ValueError(
                f"unknown base_key {base_key[:16]!r}: the base design is "
                "not (or no longer) known to this service — submit it "
                "first and use the returned design_key"
            )
        base = read_blif(base_text)
        try:
            edited = apply_edit_script(base, edit)
        except (KeyError, ValueError) as exc:
            raise ValueError(f"bad edit script: {exc}") from None
        options.setdefault("fmt", "blif")
        return RetimeJob(
            netlist=write_blif(edited),
            base_key=base_key,
            base_netlist=base_text,
            edit=json.dumps(edit),
            **options,
        )
    if not isinstance(netlist, str) or not netlist.strip():
        raise ValueError("missing required field 'netlist'")
    return RetimeJob(netlist=netlist, **options)


class _Response:
    """One route outcome: status + payload (+ optional extras)."""

    __slots__ = ("status", "payload", "content_type", "headers", "stream")

    def __init__(
        self,
        status: int,
        payload,
        content_type: str = "application/json",
        headers: dict[str, str] | None = None,
        stream=None,
    ) -> None:
        self.status = status
        self.payload = payload
        self.content_type = content_type
        self.headers = headers or {}
        #: optional iterable of byte chunks — sent with chunked
        #: transfer encoding instead of a buffered body
        self.stream = stream


def _error(status: int, message: str, headers=None) -> _Response:
    return _Response(status, {"error": message}, headers=headers)


class AsyncRetimeServer:
    """Asyncio HTTP/1.1 front-end with the stdlib server facade.

    The socket binds in ``__init__`` (so ``server_address`` is final
    immediately); the event loop runs inside :meth:`serve_forever`,
    typically on a dedicated thread.  :meth:`shutdown` is threadsafe
    and blocks until the loop has exited, mirroring
    ``socketserver.BaseServer.shutdown``.
    """

    def __init__(
        self,
        service: RetimeService,
        host: str = "127.0.0.1",
        port: int = 8117,
        quiet: bool = True,
    ) -> None:
        self.service = service
        self.quiet = quiet
        self._sock = socket.create_server((host, port), reuse_port=False)
        self.server_address = self._sock.getsockname()[:2]
        self._loop: asyncio.AbstractEventLoop | None = None
        self._shutdown_requested = threading.Event()
        self._finished = threading.Event()
        self._finished.set()  # not running yet
        self._executor = ThreadPoolExecutor(
            max_workers=_EXECUTOR_THREADS, thread_name_prefix="retime-http"
        )

    # -- lifecycle (stdlib-server facade) ------------------------------

    def serve_forever(self) -> None:
        """Run the event loop until :meth:`shutdown` (blocking)."""
        self._finished.clear()
        try:
            asyncio.run(self._main())
        finally:
            self._loop = None
            self._finished.set()

    def shutdown(self) -> None:
        """Stop :meth:`serve_forever` from any thread; blocks until
        the loop has exited."""
        self._shutdown_requested.set()
        loop = self._loop
        if loop is not None:
            try:
                loop.call_soon_threadsafe(lambda: None)  # wake the waiter
            except RuntimeError:
                pass
        self._finished.wait(timeout=30.0)

    def server_close(self) -> None:
        """Release the listening socket and the executor."""
        try:
            self._sock.close()
        except OSError:
            pass
        self._executor.shutdown(wait=False)

    def __enter__(self) -> "AsyncRetimeServer":
        return self

    def __exit__(self, *exc) -> None:
        self.server_close()

    # -- event loop ----------------------------------------------------

    async def _main(self) -> None:
        self._loop = asyncio.get_running_loop()
        server = await asyncio.start_server(
            self._handle_connection, sock=self._sock, start_serving=True
        )
        try:
            while not self._shutdown_requested.is_set():
                await asyncio.sleep(0.05)
        finally:
            server.close()
            # connections in flight finish their current response;
            # wait_closed on 3.12+ would block on keep-alive idlers, so
            # just let the loop tear them down
            await asyncio.sleep(0)

    async def _handle_connection(self, reader, writer) -> None:
        try:
            while True:
                request = await self._read_request(reader)
                if request is None:
                    break
                method, target, version, headers, body = request
                keep_alive = (
                    version == "HTTP/1.1"
                    and headers.get("connection", "").lower() != "close"
                )
                try:
                    response = await self._route(method, target, headers, body)
                except Exception as exc:  # noqa: BLE001 - never kill the loop
                    if not self.quiet:
                        obs.count("service.http.internal_error")
                    response = _error(500, f"internal error: {exc}")
                await self._write_response(writer, response, keep_alive)
                if not keep_alive:
                    break
        except (
            asyncio.TimeoutError,
            asyncio.IncompleteReadError,
            ConnectionError,
            OSError,
            ValueError,  # readline() limit overrun on a garbage request
        ):
            pass
        except asyncio.CancelledError:
            pass  # loop teardown cancelled an idle keep-alive reader
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _read_request(self, reader):
        """Parse one HTTP request; None at EOF / idle timeout."""
        request_line = await asyncio.wait_for(
            reader.readline(), timeout=_IDLE_TIMEOUT
        )
        if not request_line or request_line in (b"\r\n", b"\n"):
            return None
        parts = request_line.decode("latin-1").split()
        if len(parts) == 3:
            method, target, version = parts
        elif len(parts) == 2:
            method, target, version = parts[0], parts[1], "HTTP/1.0"
        else:
            return None
        headers: dict[str, str] = {}
        while True:
            line = await reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        body = b""
        if headers.get("transfer-encoding", "").lower() == "chunked":
            # streamed request bodies: decode chunked framing
            chunks = []
            while True:
                size_line = await reader.readline()
                try:
                    size = int(size_line.split(b";")[0].strip() or b"0", 16)
                except ValueError:
                    return None
                if size == 0:
                    await reader.readline()  # trailing CRLF
                    break
                chunks.append(await reader.readexactly(size))
                await reader.readexactly(2)  # chunk CRLF
            body = b"".join(chunks)
        elif "content-length" in headers:
            try:
                length = int(headers["content-length"])
            except ValueError:
                return None
            body = await reader.readexactly(length)
        return method, target, version, headers, body

    async def _write_response(
        self, writer, response: _Response, keep_alive: bool
    ) -> None:
        reason = _REASONS.get(response.status, "Unknown")
        head = [
            f"HTTP/1.1 {response.status} {reason}",
            f"Content-Type: {response.content_type}",
            "Server: mcretime-service/2.0",
            f"Connection: {'keep-alive' if keep_alive else 'close'}",
        ]
        for name, value in response.headers.items():
            head.append(f"{name}: {value}")
        if response.stream is not None:
            head.append("Transfer-Encoding: chunked")
            writer.write(("\r\n".join(head) + "\r\n\r\n").encode("latin-1"))
            for chunk in response.stream:
                if not chunk:
                    continue
                writer.write(f"{len(chunk):x}\r\n".encode())
                writer.write(chunk)
                writer.write(b"\r\n")
                await writer.drain()
            writer.write(b"0\r\n\r\n")
        else:
            payload = response.payload
            body = (
                payload.encode()
                if isinstance(payload, str)
                else json.dumps(payload, indent=1).encode()
            )
            head.append(f"Content-Length: {len(body)}")
            writer.write(("\r\n".join(head) + "\r\n\r\n").encode("latin-1"))
            writer.write(body)
        await writer.drain()

    # -- routing -------------------------------------------------------

    async def _route(self, method, target, headers, body) -> _Response:
        split = urlsplit(target)
        path = split.path.rstrip("/") or "/"
        query = {
            key: values[-1]
            for key, values in parse_qs(split.query).items()
        }
        if method == "GET":
            return await self._route_get(path, query)
        if method == "POST":
            return await self._route_post(path, body)
        return _error(405, f"method {method} not allowed")

    async def _in_executor(self, fn, *args):
        loop = asyncio.get_running_loop()
        return await loop.run_in_executor(self._executor, fn, *args)

    async def _route_get(self, path: str, query: dict) -> _Response:
        service = self.service
        if path == "/healthz":
            return _Response(
                200,
                {
                    "status": "ok",
                    "workers": service.pool.workers,
                    "scaleout": service.scaleout,
                    "queue_depth": service.pool.queue_depth(),
                    "jobs": service.job_counts(),
                    "cache_hit_rate": round(service.cache_hit_rate(), 4),
                },
            )
        if path == "/metrics":
            text = await self._in_executor(service.metrics.render)
            return _Response(
                200, text, content_type="text/plain; version=0.0.4"
            )
        if path == "/slo":
            status = await self._in_executor(service.slo_status)
            return _Response(200, status)
        if path == "/runs":
            return await self._get_runs(query)
        if path == "/debug/profile":
            return await self._get_profile(query)
        if path.startswith("/trace/"):
            job = path[len("/trace/"):]
            if not job:
                return _error(400, "missing job id")
            events = await self._in_executor(service.trace_events, job)
            if events is None:
                return _error(404, f"no trace for job {job!r}")
            return _Response(200, {"job": job, "events": events})
        if path.startswith("/explain/"):
            job = path[len("/explain/"):]
            if not job:
                return _error(400, "missing job id")
            payload = await self._in_executor(service.explanation, job)
            if payload is None:
                return _error(
                    404,
                    f"no explanation for job {job!r} (submit with "
                    '"explain": true)',
                )
            return _Response(200, payload)
        if path.startswith("/jobs/"):
            job_id = path[len("/jobs/"):]
            record = service.status(job_id)
            if record is None:
                return _error(404, f"unknown job {job_id!r}")
            return _Response(200, record)
        return _error(404, f"no route for GET {path}")

    async def _get_runs(self, query: dict) -> _Response:
        service = self.service
        if service.ledger is None:
            return _error(404, "service started without a run ledger")
        try:
            n = int(query.get("n", "20"))
        except ValueError:
            return _error(400, "query parameter 'n' must be an integer")
        n = max(1, min(n, _RUNS_MAX))
        runs = await self._in_executor(service.ledger.tail, n)

        def stream():
            # stream the (potentially large) runs array record by
            # record so the event loop never buffers the whole body
            prefix = json.dumps(
                {"ledger": str(service.ledger.path),
                 "skipped": service.ledger.skipped}
            )[:-1]
            yield (prefix + ', "runs": [').encode()
            for index, record in enumerate(runs):
                sep = b",\n " if index else b"\n "
                yield sep + json.dumps(record).encode()
            yield b"\n]}"

        return _Response(200, None, stream=stream())

    async def _get_profile(self, query: dict) -> _Response:
        try:
            seconds = float(query.get("seconds", "5"))
            interval = float(query.get("interval", "0.005"))
        except ValueError:
            return _error(400, "'seconds'/'interval' must be numbers")
        if not 0 < seconds <= _PROFILE_MAX_SECONDS:
            return _error(
                400, f"'seconds' must be in (0, {_PROFILE_MAX_SECONDS:g}]"
            )
        profile = await self._in_executor(
            obs.profile_block, seconds, interval
        )
        return _Response(200, profile.speedscope(name="mcretime-service"))

    async def _route_post(self, path: str, body: bytes) -> _Response:
        if path != "/retime":
            return _error(404, f"no route for POST {path}")
        try:
            parsed = json.loads(body or b"{}")
        except json.JSONDecodeError:
            return _error(400, "request body is not valid JSON")
        service = self.service

        def admit():
            job = job_from_request(parsed, resolve_base=service.base_netlist)
            job_id = service.submit(job)
            if parsed.get("wait"):
                service.wait(job_id)
            return service.status(job_id)

        try:
            record = await self._in_executor(admit)
        except ServiceOverloadedError as exc:
            return _error(
                429,
                str(exc),
                headers={"Retry-After": f"{max(1, round(exc.retry_after))}"},
            )
        except (NetlistError, ValueError, TypeError) as exc:
            return _error(400, str(exc))
        return _Response(200, record)


def make_server(
    service: RetimeService,
    host: str = "127.0.0.1",
    port: int = 8117,
    quiet: bool = True,
) -> AsyncRetimeServer:
    """Bind (but don't start) the HTTP server; port 0 picks a free one."""
    return AsyncRetimeServer(service, host, port, quiet=quiet)


def serve_forever(
    service: RetimeService, host: str = "127.0.0.1", port: int = 8117
) -> None:
    """Blocking serve loop used by ``mcretime serve``."""
    httpd = make_server(service, host, port, quiet=False)
    try:
        httpd.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        httpd.server_close()
        service.close()
