"""The batch retiming service: pool + cache + metrics, one façade.

:class:`RetimeService` is what every entry point talks to — the HTTP
server (:mod:`repro.service.server`), ``mcretime batch``, and the
parallel experiment runner all submit :class:`~repro.service.jobs.RetimeJob`
values here.  Responsibilities:

* content-addressed **deduplication**: identical submissions share one
  execution (and one cache entry);
* the **two-tier cache** consult on submit — hits complete instantly
  and never touch the worker pool;
* **metrics**: every lifecycle event increments the Prometheus
  registry, including per-stage latency histograms fed from
  ``FlowResult.timings`` and per-span histograms fed from the workers'
  :mod:`repro.obs` trace snapshots (``metrics["obs"]``).

Tracing: pass ``trace_dir`` to have every worker write a per-job JSONL
trace there (the trace id is the job's canonical key); span totals are
additionally bridged into ``repro_span_seconds{span=...}`` whenever
workers trace (``trace_dir`` set, or ``REPRO_TRACE_SPANS`` inherited),
each observation carrying a ``{run="<job id>"}`` exemplar so a slow
bucket points back at a concrete job.  Pass ``ledger=`` to append one
``service.job`` run-ledger record per executed job
(:mod:`repro.obs.ledger`), served back by ``GET /runs``.
"""

from __future__ import annotations

import json
import os
import threading
import time
from pathlib import Path

from .. import __version__, obs
from ..mcretime import intern_work_graph
from ..kernels import compile_graph
from ..netlist import read_blif
from .cache import ResultCache
from .client import ServiceOverloadedError
from .interning import (
    HAVE_SHM,
    InternRegistry,
    design_fingerprint,
    design_ref,
    warm_local,
)
from .jobs import _DELAY_MODELS, JobResult, RetimeJob
from .metrics import MetricsRegistry
from .pool import PoolSaturatedError, RetimePool

#: fixed span ids of the front-end's synthetic request span tree (the
#: ``.req.jsonl`` trace written at terminal state).  The dispatch span
#: id is what the minted trace context points workers at.
_REQ_ROOT_ID = 1
_REQ_ADMIT_ID = 2
_REQ_QUEUE_ID = 3
_REQ_DISPATCH_ID = 4


class RetimeService:
    """Submit/await retiming jobs against a pool with a result cache.

    With ``scaleout`` enabled (the default wherever shared memory and
    numpy are available), admission interns each design once — the
    canonical BLIF text plus a pre-compiled work-graph CSR snapshot go
    into a refcounted ``multiprocessing.shared_memory`` segment — and
    dispatched jobs ship a design reference instead of the netlist.
    The consistent-hash ring routes every job for one design to the
    worker already holding its parsed circuit and attached segment,
    ``max_pending`` bounds the admission queue (overflow raises
    :class:`~repro.service.client.ServiceOverloadedError`, surfaced
    over HTTP as 429 + ``Retry-After``), and ``preload`` interns
    designs *before* the workers fork so they inherit the warm caches
    copy-on-write.
    """

    def __init__(
        self,
        workers: int | None = None,
        cache_dir: str | Path | None = None,
        cache_memory: int = 128,
        job_timeout: float = 300.0,
        max_retries: int = 2,
        retry_backoff: float = 0.5,
        max_pending: int | None = None,
        scaleout: bool | None = None,
        preload: list[str | Path] | None = None,
        metrics: MetricsRegistry | None = None,
        trace_dir: str | Path | None = None,
        ledger: str | Path | None = None,
        telemetry: bool = True,
        slo: "obs.SLOConfig | dict | str | Path | None" = None,
        start_method: str | None = None,
    ) -> None:
        self.metrics = metrics or MetricsRegistry()
        m = self.metrics
        self._submitted = m.counter(
            "repro_jobs_submitted_total", "Jobs submitted to the service"
        )
        self._completed = m.counter(
            "repro_jobs_completed_total", "Jobs that finished successfully"
        )
        self._failed = m.counter(
            "repro_jobs_failed_total", "Jobs that exhausted retries or errored"
        )
        self._retried = m.counter(
            "repro_jobs_retried_total", "Job re-executions after crash/timeout"
        )
        self._timeouts = m.counter(
            "repro_jobs_timeout_total", "Executions killed by the job timeout"
        )
        self._crashes = m.counter(
            "repro_worker_crashes_total", "Worker processes that died mid-job"
        )
        self._cache_hits = m.counter(
            "repro_cache_hits_total", "Submissions served from the result cache"
        )
        self._cache_misses = m.counter(
            "repro_cache_misses_total", "Submissions that required execution"
        )
        self._cache_corrupt = m.counter(
            "repro_cache_corrupt_total",
            "Corrupt disk cache entries quarantined on first read",
        )
        self._corrupt_synced = 0
        self._deduped = m.counter(
            "repro_jobs_deduped_total", "Submissions coalesced onto an in-flight job"
        )
        self._eco_jobs = m.counter(
            "repro_eco_jobs_total",
            "Incremental (ECO) submissions, labelled by the worker's plan",
        )
        self._shed = m.counter(
            "repro_jobs_shed_total",
            "Submissions refused by admission backpressure (HTTP 429)",
        )
        self._dispatched = m.counter(
            "repro_shard_dispatched_total",
            "Jobs dispatched to workers, labelled by shard slot",
        )
        self._stolen = m.counter(
            "repro_jobs_stolen_total",
            "Dispatches that broke shard affinity via work stealing",
        )
        self._queue_wait = m.histogram(
            "repro_queue_wait_seconds",
            "Seconds a job waited in the admission queue before dispatch",
        )
        self._latency = m.histogram(
            "repro_job_latency_seconds", "End-to-end job execution latency"
        )
        self._stage_seconds = m.histogram(
            "repro_stage_seconds", "Per-flow-stage wall-clock seconds"
        )
        self._span_seconds = m.histogram(
            "repro_span_seconds",
            "Per-trace-span wall-clock seconds (from worker trace snapshots)",
        )
        self._verify_checks = m.counter(
            "repro_verify_checks_total",
            "Post-flow sequential verification checks run",
        )
        self._verify_failures = m.counter(
            "repro_verify_failures_total",
            "Jobs failed by the sequential verification gate",
        )
        self._verify_seconds = m.histogram(
            "repro_verify_seconds",
            "Wall-clock seconds spent in post-flow verification",
        )
        self._explain_jobs = m.counter(
            "repro_explain_jobs_total",
            "Jobs that attached a certificate-backed explanation",
        )
        self._explain_certs = m.counter(
            "repro_explain_certificates_total",
            "Certificates re-validated across explained jobs, by verdict",
        )
        self._explain_invalid = m.counter(
            "repro_explain_invalid_total",
            "Explained jobs whose certificate re-validation failed",
        )
        self._explain_seconds = m.histogram(
            "repro_explain_seconds",
            "Wall-clock seconds spent extracting explanations",
        )
        env = obs.environment()
        self._build_info = m.gauge(
            "repro_build_info", "Build and runtime identity (value is always 1)"
        )
        self._build_info.set(
            1,
            version=__version__,
            python=str(env["python"]),
            git_sha=str(env["git_sha"]),
        )
        self._started_at = time.time()
        self._uptime = m.gauge(
            "repro_process_uptime_seconds",
            "Seconds since the service process started",
        )
        self._uptime.set_function(lambda: time.time() - self._started_at)

        self.ledger = obs.RunLedger(ledger) if ledger else None

        worker_env: dict[str, str] = {}
        if trace_dir is not None:
            worker_env["REPRO_TRACE_DIR"] = str(trace_dir)
        if trace_dir is not None or self.ledger is not None:
            # memory tracing rides along so span totals reach the
            # metrics bridge and the run ledger
            worker_env["REPRO_TRACE_SPANS"] = "1"
        self.trace_dir = Path(trace_dir) if trace_dir is not None else None
        if self.trace_dir is not None:
            self.trace_dir.mkdir(parents=True, exist_ok=True)

        #: the live telemetry bus only exists on traced services — the
        #: workers' BusSinks ride the per-job tracer, which tracing
        #: configuration activates
        self.bus: obs.TelemetryBus | None = (
            obs.TelemetryBus(metrics=m)
            if telemetry and self.trace_dir is not None
            else None
        )

        if isinstance(slo, obs.SLOConfig):
            slo_config = slo
        elif isinstance(slo, dict):
            slo_config = obs.SLOConfig.from_dict(slo)
        elif slo is not None:
            slo_config = obs.SLOConfig.load(slo)
        else:
            slo_config = obs.SLOConfig()
        self.slo = obs.SLOEngine(config=slo_config)

        self.cache = ResultCache(cache_dir, memory_size=cache_memory)

        #: shared-memory interning is on by default wherever available;
        #: ``scaleout=False`` forces the legacy ship-the-netlist path
        self.scaleout = HAVE_SHM if scaleout is None else (
            bool(scaleout) and HAVE_SHM
        )
        self.intern: InternRegistry | None = (
            InternRegistry() if self.scaleout else None
        )
        self._intern_lock = threading.Lock()
        if self.scaleout and preload:
            # intern before the workers fork: they inherit the parsed
            # circuits and compiled seeds copy-on-write
            for path in preload:
                self._preload_design(Path(path))

        self.pool = RetimePool(
            workers=workers,
            job_timeout=job_timeout,
            max_retries=max_retries,
            retry_backoff=retry_backoff,
            max_pending=max_pending,
            on_event=self._on_pool_event,
            worker_env=worker_env,
            start_method=start_method,
            telemetry_bus=self.bus,
        ).start()
        self._pool_started_at = time.monotonic()

        m.gauge(
            "repro_pool_queue_depth",
            "Jobs admitted but not yet dispatched to a worker",
        ).set_function(self.pool.queue_depth)
        m.gauge(
            "repro_pool_max_pending",
            "Admission queue bound (0 = unbounded)",
        ).set(float(max_pending or 0))
        m.gauge(
            "repro_interned_designs",
            "Designs live in the shared-memory intern registry",
        ).set_function(lambda: len(self.intern) if self.intern else 0)
        m.gauge(
            "repro_intern_bytes",
            "Bytes held by shared-memory intern segments",
        ).set_function(
            lambda: self.intern.total_bytes() if self.intern else 0
        )
        shard_depth = m.gauge(
            "repro_shard_queue_depth", "Queued jobs per shard slot"
        )
        shard_util = m.gauge(
            "repro_shard_utilization",
            "Fraction of wall-clock each shard's worker spent executing",
        )
        for slot in range(self.pool.workers):
            shard_depth.set_function(
                lambda s=slot: self.pool.stats()["shards"][s]["depth"],
                shard=str(slot),
            )
            shard_util.set_function(
                lambda s=slot: self._shard_utilization(s), shard=str(slot)
            )

        self._lock = threading.Lock()
        #: job_id -> record dict (state machine mirrored for the HTTP API)
        self._jobs: dict[str, dict] = {}
        #: design fingerprint -> canonical BLIF of recent submissions;
        #: what ``POST /retime`` ECO bodies resolve ``base_key`` against
        self._design_texts: dict[str, str] = {}
        self._design_texts_max = 128

    # -- submission ----------------------------------------------------

    def submit(self, job: RetimeJob) -> str:
        """Submit *job*; returns its content-addressed job id.

        Parse errors from canonicalisation propagate to the caller —
        invalid netlists are rejected before they reach a worker.
        Raises :class:`~repro.service.client.ServiceOverloadedError`
        when the pool's admission queue is full (backpressure).
        """
        job_id = job.canonical_key
        self._submitted.inc()
        design_key = self._remember_design(job)
        if job.base_key is not None:
            self._eco_jobs.inc(plan="submitted")
            obs.count("service.eco.submitted")
        t0 = time.perf_counter()
        submit_wall = time.time()
        with obs.span("service.admit", job=job_id[:16]):
            with self._lock:
                record = self._jobs.get(job_id)
                if record is not None and record["state"] != "failed":
                    if record["result"] is not None:
                        # completed earlier this session: an in-memory hit —
                        # re-mark the record so waiters see cached=True
                        self._cache_hits.inc()
                        obs.count("service.cache.hit")
                        hit = JobResult.from_dict(record["result"].to_dict())
                        hit.cached = True
                        record["result"] = hit
                        record["cached"] = True
                        self._latency.observe(time.perf_counter() - t0)
                        self.slo.observe(time.perf_counter() - t0)
                    else:
                        # still queued/running: coalesce onto the in-flight job
                        self._deduped.inc()
                        obs.count("service.cache.dedup")
                    return job_id
            cached = self.cache.get(job_id)
            self._sync_cache_corrupt()
            if cached is not None:
                cached.cached = True
                cached.job_id = job_id
                self._cache_hits.inc()
                obs.count("service.cache.hit")
                # cache hits flow into the latency histogram too —
                # otherwise a warm service reports p95 = 0.0 from an
                # empty reservoir
                self._latency.observe(time.perf_counter() - t0)
                self.slo.observe(time.perf_counter() - t0)
                with self._lock:
                    self._jobs[job_id] = {
                        "state": "done",
                        "cached": True,
                        "submitted_at": time.time(),
                        "result": cached,
                        "options": job.options(),
                        "design_key": design_key,
                    }
                return job_id
            self._cache_misses.inc()
            obs.count("service.cache.miss")

            shard_key = job_id
            payload = None
            ref = None
            if self.scaleout:
                ref, segment, shard_key, payload = self._intern_job(job)
            if job.base_key is not None:
                # ECO affinity: route the edit to the worker holding the
                # *base* design's parsed circuit / interned segment /
                # warm EcoState, not to the edited content's home shard
                shard_key = job.base_key
            # distributed trace context: the request span tree lives in
            # this process (written at terminal state); the worker nests
            # its root spans under the dispatch span via this stamp
            trace_ctx = (
                {
                    "trace_id": job_id,
                    "parent_span": _REQ_DISPATCH_ID,
                    "parent_pid": os.getpid(),
                }
                if self.trace_dir is not None
                else None
            )
            with self._lock:
                self._jobs[job_id] = {
                    "state": "queued",
                    "cached": False,
                    "submitted_at": time.time(),
                    "result": None,
                    "options": job.options(),
                    "intern_ref": ref,
                    "design_key": design_key,
                    "trace": {"submit_wall": submit_wall},
                }
            try:
                with obs.span("service.shard", job=job_id[:16]):
                    self.pool.submit(
                        job_id,
                        job,
                        shard_key=shard_key,
                        payload=payload,
                        trace_ctx=trace_ctx,
                    )
            except PoolSaturatedError as exc:
                self._shed.inc(exemplar={"run": job_id[:16]})
                obs.count("service.shed")
                self.slo.observe_shed()
                with self._lock:
                    self._jobs.pop(job_id, None)
                if ref is not None and self.intern is not None:
                    self.intern.release(ref)
                raise ServiceOverloadedError(
                    429, str(exc), retry_after=self._retry_after()
                ) from None
            with self._lock:
                record = self._jobs.get(job_id)
                if record is not None and "trace" in record:
                    record["trace"]["admit_s"] = time.perf_counter() - t0
        return job_id

    def _intern_job(self, job: RetimeJob):
        """Intern the job's design; returns (ref, segment, shard_key,
        dispatch payload).  The caller owns one registry pin on *ref*,
        released when the job reaches a terminal state."""
        canonical = job.canonical_netlist
        fingerprint = design_fingerprint(canonical)
        # only the plain engine flow solves on the design's own work
        # graph; everything else (mapped synthesis, transforms) ships
        # text-only under the seedless variant
        seedable = job.flow == "mcretime" and job.transform is None
        ref = design_ref(
            fingerprint,
            job.resolved_delay_model() if seedable else None,
            job.semantic_classes if seedable else False,
        )
        assert self.intern is not None
        with self._intern_lock:
            try:
                segment = self.intern.acquire(ref)
            except KeyError:
                seeds = {}
                if seedable:
                    try:
                        circuit = read_blif(canonical, name_hint=job.name)
                        model = _DELAY_MODELS[job.resolved_delay_model()]
                        work = intern_work_graph(
                            circuit, model, job.semantic_classes
                        )
                        seeds[ref] = compile_graph(work)
                    except Exception:  # noqa: BLE001
                        # a design whose work graph can't be built still
                        # dispatches text-only; the worker reproduces the
                        # error as a structured, non-retried JobFailure
                        seeds = {}
                        obs.count("service.intern.seed_error")
                segment = self.intern.register(ref, canonical, seeds)
                self.intern.acquire(ref)
        shipped = job.to_dict()
        shipped.pop("netlist")
        shipped["fmt"] = "blif"
        shipped["output_fmt"] = job.resolved_output_fmt()
        payload = {"design_ref": ref, "segment": segment, "job": shipped}
        return ref, segment, fingerprint, payload

    def _remember_design(self, job: RetimeJob) -> str:
        """Record the job's canonical netlist under its design
        fingerprint (LRU) and return the fingerprint — the ``base_key``
        future ECO submissions address this design by."""
        canonical = job.canonical_netlist
        key = design_fingerprint(canonical)
        with self._lock:
            self._design_texts.pop(key, None)
            self._design_texts[key] = canonical
            while len(self._design_texts) > self._design_texts_max:
                self._design_texts.pop(next(iter(self._design_texts)))
        return key

    def base_netlist(self, key: str) -> str | None:
        """Canonical BLIF of a recently seen design, by fingerprint
        (the ``POST /retime`` ECO path resolves ``base_key`` here)."""
        with self._lock:
            text = self._design_texts.get(key)
            if text is not None:
                # LRU touch
                self._design_texts.pop(key)
                self._design_texts[key] = text
        return text

    def _preload_design(self, path: Path) -> None:
        """Intern one netlist file pre-fork (registry + local caches)."""
        fmt = "verilog" if path.suffix in (".v", ".sv") else "blif"
        job = RetimeJob(netlist=path.read_text(), fmt=fmt, name=path.stem)
        canonical = job.canonical_netlist
        fingerprint = design_fingerprint(canonical)
        ref = design_ref(
            fingerprint, job.resolved_delay_model(), job.semantic_classes
        )
        circuit = read_blif(canonical, name_hint=job.name)
        model = _DELAY_MODELS[job.resolved_delay_model()]
        seeds = {ref: compile_graph(
            intern_work_graph(circuit, model, job.semantic_classes)
        )}
        assert self.intern is not None
        self.intern.register(ref, canonical, seeds)
        warm_local(ref, canonical, circuit=circuit, seeds=seeds)
        obs.count("service.preload")

    def _retry_after(self) -> float:
        """Backpressure hint: expected seconds to drain one queue slot."""
        count = self._latency.count()
        avg = self._latency.sum() / count if count else 1.0
        depth = self.pool.queue_depth()
        estimate = avg * (depth + 1) / max(1, self.pool.workers)
        return min(60.0, max(1.0, estimate))

    def _shard_utilization(self, slot: int) -> float:
        elapsed = time.monotonic() - self._pool_started_at
        if elapsed <= 0:
            return 0.0
        busy = self.pool.stats()["shards"][slot]["busy_seconds"]
        return min(1.0, busy / elapsed)

    def wait(self, job_id: str, timeout: float | None = None) -> JobResult:
        """Block until *job_id* completes (cache hits return at once)."""
        with self._lock:
            record = self._jobs.get(job_id)
        if record is None:
            raise KeyError(f"unknown job {job_id}")
        if record["result"] is not None:
            return record["result"]
        result = self.pool.wait(job_id, timeout=timeout)
        with self._lock:
            self._jobs[job_id]["result"] = result
            self._jobs[job_id]["state"] = result.status
        return result

    def batch(
        self, jobs: list[RetimeJob], timeout: float | None = None
    ) -> list[JobResult]:
        """Fan *jobs* across the pool; results in submission order."""
        ids = [self.submit(job) for job in jobs]
        return [self.wait(job_id, timeout=timeout) for job_id in ids]

    # -- introspection -------------------------------------------------

    def status(self, job_id: str) -> dict | None:
        """JSON-friendly status record for ``GET /jobs/<id>``."""
        with self._lock:
            record = self._jobs.get(job_id)
            if record is None:
                return None
            state = record["state"]
            result = record["result"]
            submitted_at = record["submitted_at"]
            cached = record["cached"]
            design_key = record.get("design_key")
        if result is None and state not in ("done", "failed"):
            # the pool has fresher in-flight state (running/retrying)
            try:
                state = self.pool.state(job_id)
            except KeyError:
                pass
        out = {
            "job_id": job_id,
            "state": state,
            "cached": cached,
            "submitted_at": submitted_at,
            "design_key": design_key,
            "result": result.to_dict() if result is not None else None,
        }
        return out

    def job_counts(self) -> dict[str, int]:
        counts = {"queued": 0, "running": 0, "retrying": 0, "done": 0, "failed": 0}
        with self._lock:
            ids = list(self._jobs)
            for job_id in ids:
                record = self._jobs[job_id]
                state = record["state"]
                if record["result"] is None and state not in ("done", "failed"):
                    try:
                        state = self.pool.state(job_id)
                    except KeyError:
                        pass
                counts[state] = counts.get(state, 0) + 1
        return counts

    def cache_hit_rate(self) -> float:
        hits = self._cache_hits.total()
        misses = self._cache_misses.total()
        return hits / max(hits + misses, 1)

    def _sync_cache_corrupt(self) -> None:
        """Mirror the cache's quarantine tally into the counter."""
        seen = self.cache.corrupt
        delta = seen - self._corrupt_synced
        if delta > 0:
            self._corrupt_synced = seen
            self._cache_corrupt.inc(delta)

    def _release_intern_ref(self, job_id: str) -> None:
        """Drop the job's design pin once it reaches a terminal state."""
        if self.intern is None:
            return
        with self._lock:
            record = self._jobs.get(job_id)
            ref = record.get("intern_ref") if record else None
            if record is not None:
                record["intern_ref"] = None
        if ref is not None:
            self.intern.release(ref)

    def close(self) -> None:
        self.pool.close()
        if self.intern is not None:
            self.intern.close()

    def __enter__(self) -> "RetimeService":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- pool event plumbing -------------------------------------------

    def _on_pool_event(self, kind: str, job_id: str, **info) -> None:
        if kind == "dispatch":
            queued = info.get("queued_seconds", 0.0)
            self._queue_wait.observe(queued, exemplar={"run": job_id[:16]})
            self._span_seconds.observe(
                queued, exemplar={"run": job_id[:16]}, span="pool.dispatch"
            )
            self._dispatched.inc(shard=str(info.get("worker", "?")))
            if info.get("stolen"):
                self._stolen.inc()
            with self._lock:
                record = self._jobs.get(job_id)
                trace = record.get("trace") if record else None
            if trace is not None:
                # retries overwrite: the request timeline shows the
                # dispatch that actually produced the result
                trace.update(
                    dispatch_wall=time.time(),
                    queued_s=queued,
                    shard=info.get("shard"),
                    worker=info.get("worker"),
                    stolen=bool(info.get("stolen")),
                )
            return
        if kind in ("done", "failed"):
            self._release_intern_ref(job_id)
            result: JobResult = info["result"]
            with self._lock:
                record = self._jobs.get(job_id)
                trace = record.get("trace") if record else None
            if trace is not None:
                submit_wall = trace.get("submit_wall", time.time())
                self.slo.observe(
                    time.time() - submit_wall, ok=kind == "done"
                )
                if self.trace_dir is not None:
                    self._write_request_trace(job_id, trace)
                    if self.bus is not None:
                        self.bus.forget(job_id)
            else:
                self.slo.observe(result.elapsed, ok=kind == "done")
        if kind == "done":
            result = info["result"]
            self._completed.inc()
            self._latency.observe(result.elapsed)
            for stage, seconds in result.metrics.get("timings", {}).items():
                if stage != "total":
                    self._stage_seconds.observe(seconds, stage=stage)
            snapshot = result.metrics.get("obs")
            if snapshot:
                run = {"run": job_id[:16]}
                for span, seconds in snapshot.get("spans", {}).items():
                    self._span_seconds.observe(seconds, exemplar=run, span=span)
            verify = result.metrics.get("verify")
            if verify:
                self._verify_checks.inc()
                self._verify_seconds.observe(verify.get("seconds", 0.0))
            eco = result.metrics.get("eco")
            if eco:
                self._eco_jobs.inc(plan=str(eco.get("plan", "unknown")))
            explain = result.metrics.get("explain")
            if explain:
                # invalid certificates carry the job exemplar so a bad
                # verdict points straight back at a re-runnable job
                run = {"run": job_id[:16]}
                summary = explain.get("summary") or {}
                valid = bool(summary.get("valid", False))
                self._explain_jobs.inc(exemplar=run)
                certs = float(summary.get("certificates", 0) or 0)
                if certs:
                    self._explain_certs.inc(
                        certs,
                        exemplar=run,
                        verdict="valid" if valid else "invalid",
                    )
                if not valid:
                    self._explain_invalid.inc(exemplar=run)
                seconds = result.metrics.get("timings", {}).get("explain")
                if seconds is not None:
                    self._explain_seconds.observe(float(seconds), exemplar=run)
            self.cache.put(job_id, result)
            self._record_final(job_id, result)
            self._ledger_append(job_id, result)
        elif kind == "failed":
            self._failed.inc()
            failure: JobResult = info["result"]
            if failure.error is not None and (
                failure.error.type == "VerificationError"
            ):
                self._verify_checks.inc()
                self._verify_failures.inc()
            self._record_final(job_id, failure)
        elif kind == "retry":
            self._retried.inc()
        elif kind == "timeout":
            self._timeouts.inc()
        elif kind == "crash":
            self._crashes.inc()

    def _write_request_trace(self, job_id: str, trace: dict) -> None:
        """Write the front-end's synthetic request span tree.

        One ``<job>.req.jsonl`` per executed request, in the worker
        trace schema (meta / span / end records, timestamps relative to
        this file's ``wall_time`` anchor), so the stitcher merges it
        with the worker's ``<job>.jsonl`` into one timeline:

        * ``request`` (id 1) — submit to terminal state, wall to wall;
        * ``request.admit`` (id 2) — canonicalise, cache consult,
          intern, shard, pool admission;
        * ``request.queue`` (id 3) — admission-queue wait (from the
          pool's ``queued_seconds``), stamped with shard/worker/stolen;
        * ``request.dispatch`` (id 4) — dispatch to completion; the
          worker's spans re-parent under this id via the trace context.

        Best-effort: a full disk must never fail a completed job.
        """
        submit_wall = trace.get("submit_wall")
        if submit_wall is None:
            return
        done_wall = time.time()
        total = max(0.0, done_wall - submit_wall)
        admit_s = min(total, trace.get("admit_s", 0.0))
        dispatch_wall = trace.get("dispatch_wall")
        job16 = job_id[:16]
        pid = os.getpid()

        def span(name, sid, ts, dur, self_s, **args):
            out = {
                "type": "span",
                "name": name,
                "id": sid,
                "parent": _REQ_ROOT_ID if sid != _REQ_ROOT_ID else 0,
                "depth": 0 if sid == _REQ_ROOT_ID else 1,
                "ts": max(0.0, ts),
                "dur": max(0.0, dur),
                "self": max(0.0, self_s),
                "pid": pid,
                "tid": 0,
            }
            if args:
                out["args"] = args
            return out

        events = [
            {
                "type": "meta",
                "trace_id": job_id,
                "pid": pid,
                "wall_time": submit_wall,
                "role": "frontend",
                "job": job16,
            },
            span(
                "request.admit", _REQ_ADMIT_ID, 0.0, admit_s, admit_s,
                job=job16,
            ),
        ]
        child_total = admit_s
        if dispatch_wall is not None:
            queued_s = min(total, trace.get("queued_s", 0.0))
            dispatch_ts = min(total, max(0.0, dispatch_wall - submit_wall))
            dispatch_s = total - dispatch_ts
            events.append(
                span(
                    "request.queue",
                    _REQ_QUEUE_ID,
                    dispatch_ts - queued_s,
                    queued_s,
                    queued_s,
                    shard=trace.get("shard"),
                    worker=trace.get("worker"),
                    stolen=trace.get("stolen", False),
                )
            )
            events.append(
                span(
                    "request.dispatch",
                    _REQ_DISPATCH_ID,
                    dispatch_ts,
                    dispatch_s,
                    dispatch_s,
                    job=job16,
                )
            )
            child_total += queued_s + dispatch_s
        events.append(
            span(
                "request",
                _REQ_ROOT_ID,
                0.0,
                total,
                max(0.0, total - child_total),
                job=job16,
            )
        )
        events.append(
            {
                "type": "end",
                "trace_id": job_id,
                "ts": total,
                "counters": {},
                "gauges": {},
                "spans": {e["name"]: e["dur"] for e in events[1:]},
                "pid": pid,
            }
        )
        try:
            path = self.trace_dir / f"{job16}.req.jsonl"
            with path.open("w") as fh:
                for event in events:
                    fh.write(json.dumps(event, sort_keys=True) + "\n")
        except OSError:
            pass

    # -- distributed-trace and SLO queries -----------------------------

    def trace_events(self, job: str) -> list[dict] | None:
        """Stitched timeline for one request (``GET /trace/<job>``).

        *job* is a job id or its 16-char prefix.  Completed requests
        come from the trace directory (front-end + worker files merged
        by :mod:`repro.obs.stitch`); in-flight requests fall back to
        the telemetry bus's live buffer.  Returns None when nothing is
        known about the job.
        """
        if self.trace_dir is not None:
            stitched = obs.stitch_dir(self.trace_dir, job=job)
            if stitched:
                return next(iter(stitched.values()))
        if self.bus is not None:
            live = self.bus.trace(job)
            if live:
                return live
        return None

    def slo_status(self) -> dict:
        """Current SLO burn rates (``GET /slo`` / ``mcretime slo``)."""
        return self.slo.status()

    def explanation(self, job: str) -> dict | None:
        """Explanation payload for one job (``GET /explain/<job>``).

        *job* is a job id or a unique prefix of one (≥8 chars).
        Returns None when the job is unknown, unfinished, or was run
        without ``explain=True``.
        """
        with self._lock:
            record = self._jobs.get(job)
            if record is None and len(job) >= 8:
                matches = [k for k in self._jobs if k.startswith(job)]
                record = (
                    self._jobs[matches[0]] if len(matches) == 1 else None
                )
            result = record["result"] if record else None
        if result is None:
            return None
        explain = result.metrics.get("explain")
        if not explain:
            return None
        return {
            "job_id": result.job_id,
            "cached": result.cached,
            "summary": explain.get("summary"),
            "explanation": explain.get("explanation"),
        }

    def _record_final(self, job_id: str, result: JobResult) -> None:
        with self._lock:
            record = self._jobs.get(job_id)
            if record is not None:
                record["result"] = result
                record["state"] = result.status

    def _ledger_append(self, job_id: str, result: JobResult) -> None:
        """Append one ``service.job`` record to the service run ledger."""
        if self.ledger is None:
            return
        snapshot = result.metrics.get("obs") or {}
        metrics = {
            key: value
            for key, value in result.metrics.items()
            if isinstance(value, (int, float)) and not isinstance(value, bool)
        }
        metrics["elapsed"] = result.elapsed
        explain = result.metrics.get("explain")
        if explain:
            # the flat explanation summary becomes diffable run-ledger
            # fields (certificate count, validity, witness sizes)
            for key, value in (explain.get("summary") or {}).items():
                if isinstance(value, bool):
                    metrics[f"explain_{key}"] = int(value)
                elif isinstance(value, (int, float)):
                    metrics[f"explain_{key}"] = value
        with self._lock:
            record = self._jobs.get(job_id) or {}
            config = dict(record.get("options") or {})
        try:
            self.ledger.append(
                obs.build_record(
                    kind="service.job",
                    run_id=job_id[:16],
                    fingerprint=job_id,
                    config=config,
                    spans=snapshot.get("spans") or {},
                    self_times=snapshot.get("self_times") or {},
                    counters=snapshot.get("counters") or {},
                    metrics=metrics,
                )
            )
        except (OSError, ValueError):
            # a broken ledger must never fail a completed job
            pass
