"""Shared-memory design interning for the scale-out serving path.

The single biggest cold-job overhead in the pre-scale-out service was
that **every worker re-did the same design-level work for every job**:
the netlist text rode along in each dispatched payload, was re-parsed,
re-checked, and re-interned into CSR kernel arrays — even when hundreds
of jobs (a target-period sweep, a pipeline/C-slow config grid) touched
the same few designs.

This module makes designs first-class:

* the **server** interns a design once at admission —
  :class:`InternRegistry` packs the canonical BLIF text plus the
  pre-compiled work-graph CSR snapshot (see
  :func:`repro.mcretime.intern_work_graph`) into one
  ``multiprocessing.shared_memory`` segment addressed by the design
  fingerprint;
* **jobs ship a key + config**, not a pickled netlist: the dispatched
  payload carries the fingerprint and segment name;
* **workers attach** the segment on first touch
  (:func:`resolve_design`), decode the text, lazily parse the circuit
  once per process, and seed the kernel intern cache
  (:func:`repro.kernels.seed_intern`) with zero-copy views into the
  shared mapping — four workers share one physical copy of the arrays;
* segments are **refcounted**: the registry holds one pin per live
  design, every in-flight job holds another, and the segment is
  unlinked when the last reference drops (LRU eviction or service
  shutdown).

Workers spawned by ``fork`` (the Linux default) additionally inherit
the parent's resolved-design cache copy-on-write, so designs interned
*before* the pool starts (``RetimeService(preload=...)``) cost the
workers nothing at all — not even the attach.
"""

from __future__ import annotations

import hashlib
import itertools
import json
import os
import struct
import threading
from collections import OrderedDict

from .. import obs
from ..kernels import HAVE_NUMPY, CompiledGraph, graph_from_buffer, seed_intern
from ..netlist import Circuit, read_blif

try:  # pragma: no cover - stdlib since 3.8, but keep the service usable
    from multiprocessing import shared_memory as _shm
except ImportError:  # pragma: no cover
    _shm = None

#: whether shared-memory interning is available on this platform
HAVE_SHM = _shm is not None and HAVE_NUMPY

_MAGIC = b"MCRI"

#: serialises the resource-tracker monkeypatch in :func:`_attach`
_ATTACH_LOCK = threading.Lock()

#: distinguishes registries living in the same process
_REGISTRY_IDS = itertools.count()


def design_fingerprint(canonical_text: str) -> str:
    """Content address of a canonicalised design (SHA-256 hex)."""
    return hashlib.sha256(canonical_text.encode()).hexdigest()


def design_ref(fingerprint: str, delay_model: str | None, semantic: bool) -> str:
    """Registry key for one design × solver-variant combination.

    Also the intern-cache prefix handed to
    :func:`repro.mcretime.mc_retime` as ``intern_key`` (which appends
    ``|work``).  ``delay_model=None`` names the seedless variant used
    by flows whose work graph is not the design's own (mapped
    synthesis, pipeline/C-slow transforms).
    """
    if delay_model is None:
        return f"{fingerprint}|plain"
    return f"{fingerprint}|{delay_model}|{'sem' if semantic else 'syn'}"


def pack_segment(canonical_text: str, seeds: dict[str, bytes]) -> bytes:
    """Serialise one design (text + compiled-graph buffers) for a segment."""
    text = canonical_text.encode()
    header = {"text": len(text), "seeds": {}}
    blobs: list[bytes] = []
    offset = 0
    for variant, buf in seeds.items():
        header["seeds"][variant] = [offset, len(buf)]
        blobs.append(buf)
        offset += len(buf) + ((-len(buf)) % 8)
    head = json.dumps(header).encode()
    parts = [_MAGIC, struct.pack("<QQ", len(head), len(text)), head, text]
    pos = sum(len(p) for p in parts)
    parts.append(b"\x00" * ((-pos) % 8))
    for buf in blobs:
        parts.append(buf)
        parts.append(b"\x00" * ((-len(buf)) % 8))
    return b"".join(parts)


def unpack_segment(view: memoryview) -> tuple[str, dict[str, memoryview]]:
    """Inverse of :func:`pack_segment`; seed buffers stay zero-copy."""
    if bytes(view[:4]) != _MAGIC:
        raise ValueError("not an intern segment")
    head_len, text_len = struct.unpack("<QQ", bytes(view[4:20]))
    header = json.loads(bytes(view[20:20 + head_len]).decode())
    text = bytes(view[20 + head_len:20 + head_len + text_len]).decode()
    base = 20 + head_len + text_len
    base += (-base) % 8
    seeds = {
        variant: view[base + off:base + off + length]
        for variant, (off, length) in header["seeds"].items()
    }
    return text, seeds


def _attach(name: str):
    """Attach an existing segment without resource-tracker ownership.

    Before 3.13 an attaching process registers the segment with its
    ``resource_tracker`` unconditionally.  Forked workers (the Linux
    default) share the parent's tracker, so that duplicate register is
    a harmless set-add and must NOT be unregistered — doing so would
    drop the parent's own entry.  Under ``spawn``/``forkserver`` the
    worker has a private tracker that would unlink the segment at
    worker exit — yanking the mapping out from under everyone — so
    there the unregister workaround applies.  3.13 grew ``track=False``
    and needs neither.
    """
    try:
        return _shm.SharedMemory(name=name, track=False)
    except TypeError:  # pragma: no cover - python < 3.13
        # suppress the attach-side register entirely (cpython #82300):
        # attach-then-unregister loses to pipe-write races against the
        # creator's eventual unlink-unregister
        from multiprocessing import resource_tracker

        with _ATTACH_LOCK:
            original = resource_tracker.register
            resource_tracker.register = lambda *_args: None
            try:
                return _shm.SharedMemory(name=name)
            finally:
                resource_tracker.register = original


class _Design:
    """Server-side record of one interned design variant."""

    __slots__ = ("ref", "segment", "shm", "refs", "bytes")

    def __init__(self, ref, segment, shm, size) -> None:
        self.ref = ref
        self.segment = segment
        self.shm = shm
        self.refs = 1  # the registry's own pin
        self.bytes = size


class InternRegistry:
    """Refcounted shared-memory segments for interned designs.

    One registry per serving process.  ``max_designs`` bounds the LRU
    of registry-pinned designs; an evicted design's segment survives
    until its last in-flight job releases it.
    """

    def __init__(self, max_designs: int = 256) -> None:
        if not HAVE_SHM:  # pragma: no cover - platform fallback
            raise RuntimeError("shared-memory interning unavailable")
        self.max_designs = max(1, max_designs)
        self._designs: OrderedDict[str, _Design] = OrderedDict()
        self._lock = threading.Lock()
        # The prefix must be unique per *registry*, not just per process:
        # two services in one process (common in tests) would otherwise
        # reclaim and unlink each other's live segments.
        self._prefix = f"mcri{os.getpid():x}r{next(_REGISTRY_IDS):x}"
        self.interned = 0
        self.evicted = 0

    # -- registration (server side) ------------------------------------

    def segment_name(self, ref: str) -> str:
        digest = hashlib.blake2b(ref.encode(), digest_size=10).hexdigest()
        return f"{self._prefix}_{digest}"

    def register(
        self,
        ref: str,
        canonical_text: str,
        seeds: dict[str, CompiledGraph] | None = None,
    ) -> str:
        """Intern *canonical_text* under *ref*; returns the segment name.

        Idempotent per ref — repeated registrations of a live design
        variant just refresh its LRU position.
        """
        with self._lock:
            known = self._designs.get(ref)
            if known is not None:
                self._designs.move_to_end(ref)
                return known.segment
        with obs.span("service.intern", design=ref[:12]):
            payload = pack_segment(
                canonical_text,
                {k: cg.to_buffer() for k, cg in (seeds or {}).items()},
            )
            name = self.segment_name(ref)
            try:
                shm = _shm.SharedMemory(name=name, create=True, size=len(payload))
            except FileExistsError:
                # a previous incarnation leaked it; reclaim
                stale = _attach(name)
                stale.close()
                try:
                    stale.unlink()
                except FileNotFoundError:  # pragma: no cover - raced
                    pass
                shm = _shm.SharedMemory(name=name, create=True, size=len(payload))
            shm.buf[: len(payload)] = payload
        evict: list[_Design] = []
        with self._lock:
            self._designs[ref] = _Design(ref, name, shm, len(payload))
            self.interned += 1
            obs.count("service.intern.designs")
            while len(self._designs) > self.max_designs:
                # evict the oldest design no in-flight job still pins;
                # evicting a pinned one would orphan its refcount and
                # leak the segment (the pin's release could no longer
                # find it).  In-flight pins are bounded by the pool's
                # admission limit, so the transient overshoot is too.
                victim = next(
                    (
                        r
                        for r, d in self._designs.items()
                        if r != ref and d.refs <= 1
                    ),
                    None,
                )
                if victim is None:
                    break
                old = self._designs.pop(victim)
                self.evicted += 1
                old.refs -= 1
                evict.append(old)
        for old in evict:
            self._unlink(old)
        return name

    # -- refcounting (one ref per in-flight job) -----------------------

    def acquire(self, ref: str) -> str:
        """Pin a design for an in-flight job; returns the segment name."""
        with self._lock:
            design = self._designs.get(ref)
            if design is None:
                raise KeyError(f"design {ref[:12]} is not interned")
            design.refs += 1
            return design.segment

    def release(self, ref: str) -> None:
        """Drop one job pin (no-op for already-evicted designs)."""
        gone: _Design | None = None
        with self._lock:
            design = self._designs.get(ref)
            if design is None:
                return
            design.refs -= 1
            if design.refs <= 0:
                del self._designs[ref]
                gone = design
        if gone is not None:
            self._unlink(gone)

    def _unlink(self, design: _Design) -> None:
        try:
            design.shm.close()
            design.shm.unlink()
        except FileNotFoundError:  # pragma: no cover - already gone
            pass

    def __len__(self) -> int:
        with self._lock:
            return len(self._designs)

    def total_bytes(self) -> int:
        with self._lock:
            return sum(d.bytes for d in self._designs.values())

    def close(self) -> None:
        """Unlink every live segment (service shutdown)."""
        with self._lock:
            designs = list(self._designs.values())
            self._designs.clear()
        for design in designs:
            self._unlink(design)


# ---------------------------------------------------------------------------
# worker side: attach-once design cache
# ---------------------------------------------------------------------------


class ResolvedDesign:
    """A design variant as seen by one worker process."""

    __slots__ = ("ref", "text", "circuit", "shm", "seed_variants")

    def __init__(self, ref, text, shm, seed_variants) -> None:
        self.ref = ref
        self.text = text
        self.circuit: Circuit | None = None
        self.shm = shm  # keeps the zero-copy seed views mapped
        self.seed_variants = seed_variants


#: design ref -> resolved design; inherited copy-on-write by forked
#: workers when populated before the pool starts
_LOCAL: OrderedDict[str, ResolvedDesign] = OrderedDict()
_LOCAL_MAX = 128
_LOCAL_LOCK = threading.Lock()


def resolve_design(ref: str, segment: str | None = None) -> ResolvedDesign:
    """The worker-side lookup: cache hit, else attach + seed interns."""
    with _LOCAL_LOCK:
        found = _LOCAL.get(ref)
        if found is not None:
            _LOCAL.move_to_end(ref)
            obs.count("service.intern.local_hit")
            return found
    if segment is None or not HAVE_SHM:
        raise KeyError(f"design {ref[:12]} not in the local cache")
    with obs.span("service.intern.attach", design=ref[:12]):
        shm = _attach(segment)
        text, seeds = unpack_segment(shm.buf)
        for variant, view in seeds.items():
            seed_intern(f"{variant}|work", graph_from_buffer(view))
        resolved = ResolvedDesign(ref, text, shm, tuple(seeds))
        obs.count("service.intern.attach")
    with _LOCAL_LOCK:
        _LOCAL[ref] = resolved
        _LOCAL.move_to_end(ref)
        while len(_LOCAL) > _LOCAL_MAX:
            _ref, old = _LOCAL.popitem(last=False)
            if old.shm is not None:
                old.shm.close()
    return resolved


def warm_local(
    ref: str,
    text: str,
    circuit: Circuit | None = None,
    seeds: dict[str, CompiledGraph] | None = None,
) -> None:
    """Populate the local cache directly (pre-fork warm-up path)."""
    resolved = ResolvedDesign(ref, text, None, tuple(seeds or ()))
    resolved.circuit = circuit
    for variant, cg in (seeds or {}).items():
        seed_intern(f"{variant}|work", cg)
    with _LOCAL_LOCK:
        _LOCAL[ref] = resolved
        _LOCAL.move_to_end(ref)


def resolved_circuit(design: ResolvedDesign, name: str) -> Circuit:
    """Parse (once per process) and cache the design's circuit."""
    if design.circuit is None:
        design.circuit = read_blif(design.text, name_hint=name)
    return design.circuit


def clear_local() -> None:
    """Drop the worker-side cache (tests)."""
    with _LOCAL_LOCK:
        designs = list(_LOCAL.values())
        _LOCAL.clear()
    for design in designs:
        if design.shm is not None:
            design.shm.close()
