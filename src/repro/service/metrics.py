"""Service metrics: counters and histograms with Prometheus export.

A deliberately small, stdlib-only metrics core: :class:`Counter` and
:class:`Histogram` registered in a :class:`MetricsRegistry`, rendered
with :meth:`MetricsRegistry.render` in the Prometheus text exposition
format (served at ``GET /metrics``).  Histograms additionally keep a
bounded sample reservoir so reports can ask for latency percentiles
directly (``histogram.percentile(95)``) without a scrape pipeline.

Both metric types support labels::

    completed = registry.counter("repro_jobs_completed_total", "...")
    completed.inc()
    stage = registry.histogram("repro_stage_seconds", "...", buckets=...)
    stage.observe(0.12, stage="map")
"""

from __future__ import annotations

import threading
from bisect import bisect_left, insort

#: default latency buckets (seconds) — tuned for retiming jobs that run
#: milliseconds on toy designs up to minutes at paper scale
DEFAULT_BUCKETS = (
    0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
    30.0, 60.0, 120.0, 300.0,
)

#: per-histogram reservoir size for percentile queries
_MAX_SAMPLES = 4096


def _label_key(labels: dict[str, str]) -> tuple[tuple[str, str], ...]:
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


def _label_text(key: tuple[tuple[str, str], ...]) -> str:
    if not key:
        return ""
    inner = ",".join(f'{k}="{v}"' for k, v in key)
    return "{" + inner + "}"


class Counter:
    """Monotonically increasing counter, optionally labelled."""

    kind = "counter"

    def __init__(self, name: str, help_text: str) -> None:
        self.name = name
        self.help_text = help_text
        self._values: dict[tuple, float] = {}
        self._lock = threading.Lock()

    def inc(self, amount: float = 1.0, **labels: str) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        key = _label_key(labels)
        with self._lock:
            self._values[key] = self._values.get(key, 0.0) + amount

    def value(self, **labels: str) -> float:
        with self._lock:
            return self._values.get(_label_key(labels), 0.0)

    def total(self) -> float:
        """Sum over every label combination."""
        with self._lock:
            return sum(self._values.values())

    def render(self) -> list[str]:
        lines = [
            f"# HELP {self.name} {self.help_text}",
            f"# TYPE {self.name} {self.kind}",
        ]
        with self._lock:
            values = dict(self._values) or {(): 0.0}
        for key in sorted(values):
            lines.append(f"{self.name}{_label_text(key)} {_format(values[key])}")
        return lines


class Histogram:
    """Cumulative-bucket histogram with a percentile reservoir."""

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help_text: str,
        buckets: tuple[float, ...] = DEFAULT_BUCKETS,
    ) -> None:
        self.name = name
        self.help_text = help_text
        self.buckets = tuple(sorted(buckets))
        self._lock = threading.Lock()
        self._counts: dict[tuple, list[int]] = {}
        self._sums: dict[tuple, float] = {}
        self._totals: dict[tuple, int] = {}
        self._samples: dict[tuple, list[float]] = {}

    def observe(self, value: float, **labels: str) -> None:
        key = _label_key(labels)
        with self._lock:
            counts = self._counts.setdefault(key, [0] * len(self.buckets))
            idx = bisect_left(self.buckets, value)
            if idx < len(counts):
                counts[idx] += 1
            self._sums[key] = self._sums.get(key, 0.0) + value
            self._totals[key] = self._totals.get(key, 0) + 1
            samples = self._samples.setdefault(key, [])
            insort(samples, value)
            if len(samples) > _MAX_SAMPLES:
                # drop the median neighbour to keep the tails intact
                del samples[len(samples) // 2]

    def count(self, **labels: str) -> int:
        with self._lock:
            return self._totals.get(_label_key(labels), 0)

    def sum(self, **labels: str) -> float:
        with self._lock:
            return self._sums.get(_label_key(labels), 0.0)

    def percentile(self, p: float, **labels: str) -> float:
        """The *p*-th percentile (0–100) of the recorded samples."""
        with self._lock:
            samples = self._samples.get(_label_key(labels), [])
            if not samples:
                return 0.0
            rank = max(0, min(len(samples) - 1, round(p / 100 * (len(samples) - 1))))
            return samples[rank]

    def render(self) -> list[str]:
        lines = [
            f"# HELP {self.name} {self.help_text}",
            f"# TYPE {self.name} {self.kind}",
        ]
        with self._lock:
            keys = sorted(self._totals)
            for key in keys:
                cumulative = 0
                for bound, n in zip(self.buckets, self._counts[key]):
                    cumulative += n
                    label = _label_text(key + (("le", _format(bound)),))
                    lines.append(f"{self.name}_bucket{label} {cumulative}")
                label = _label_text(key + (("le", "+Inf"),))
                lines.append(f"{self.name}_bucket{label} {self._totals[key]}")
                lines.append(
                    f"{self.name}_sum{_label_text(key)} {_format(self._sums[key])}"
                )
                lines.append(
                    f"{self.name}_count{_label_text(key)} {self._totals[key]}"
                )
        return lines


def _format(value: float) -> str:
    if value == int(value):
        return str(int(value))
    return repr(float(value))


class MetricsRegistry:
    """Create-or-get registry for all service metrics."""

    def __init__(self) -> None:
        self._metrics: dict[str, Counter | Histogram] = {}
        self._lock = threading.Lock()

    def counter(self, name: str, help_text: str = "") -> Counter:
        return self._get_or_create(Counter, name, help_text)

    def histogram(
        self,
        name: str,
        help_text: str = "",
        buckets: tuple[float, ...] = DEFAULT_BUCKETS,
    ) -> Histogram:
        metric = self._get_or_create(Histogram, name, help_text, buckets)
        return metric

    def _get_or_create(self, cls, name, help_text, *args):
        with self._lock:
            metric = self._metrics.get(name)
            if metric is None:
                metric = cls(name, help_text, *args)
                self._metrics[name] = metric
            elif not isinstance(metric, cls):
                raise TypeError(
                    f"metric {name!r} already registered as {type(metric).__name__}"
                )
            return metric

    def render(self) -> str:
        """The full registry in Prometheus text exposition format."""
        with self._lock:
            metrics = list(self._metrics.values())
        lines: list[str] = []
        for metric in sorted(metrics, key=lambda m: m.name):
            lines.extend(metric.render())
        return "\n".join(lines) + "\n"
