"""Service metrics: counters, gauges, histograms with Prometheus export.

A deliberately small, stdlib-only metrics core: :class:`Counter`,
:class:`Gauge`, and :class:`Histogram` registered in a
:class:`MetricsRegistry`, rendered with :meth:`MetricsRegistry.render`
in the Prometheus text exposition format (served at ``GET /metrics``).
Histograms additionally keep a bounded sample reservoir so reports can
ask for latency percentiles directly (``histogram.percentile(95)``)
without a scrape pipeline.

All metric types support labels::

    completed = registry.counter("repro_jobs_completed_total", "...")
    completed.inc()
    stage = registry.histogram("repro_stage_seconds", "...", buckets=...)
    stage.observe(0.12, stage="map")

Gauges can be callback-backed (evaluated at render time — uptime,
queue depths) or info-style (a constant ``1`` with identifying labels,
the ``repro_build_info`` idiom).  Histogram observations may carry an
**exemplar** — a tiny label set (typically the run/trace id) attached
to the bucket the observation landed in and rendered in OpenMetrics
``# {run="…"} value`` syntax, so a slow ``repro_span_seconds`` bucket
can be traced back to the offending job's trace file.
"""

from __future__ import annotations

import threading
from bisect import bisect_left, insort
from typing import Callable

#: default latency buckets (seconds) — tuned for retiming jobs that run
#: milliseconds on toy designs up to minutes at paper scale
DEFAULT_BUCKETS = (
    0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
    30.0, 60.0, 120.0, 300.0,
)

#: per-histogram reservoir size for percentile queries
_MAX_SAMPLES = 4096


def _label_key(labels: dict[str, str]) -> tuple[tuple[str, str], ...]:
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


def _label_text(key: tuple[tuple[str, str], ...]) -> str:
    if not key:
        return ""
    inner = ",".join(f'{k}="{v}"' for k, v in key)
    return "{" + inner + "}"


class Counter:
    """Monotonically increasing counter, optionally labelled."""

    kind = "counter"

    def __init__(self, name: str, help_text: str) -> None:
        self.name = name
        self.help_text = help_text
        self._values: dict[tuple, float] = {}
        #: label key -> (exemplar label key, increment) — most recent
        self._exemplars: dict[tuple, tuple[tuple, float]] = {}
        self._lock = threading.Lock()

    def inc(
        self,
        amount: float = 1.0,
        exemplar: dict[str, str] | None = None,
        **labels: str,
    ) -> None:
        """Increment, optionally stamping an OpenMetrics exemplar.

        *exemplar* (e.g. ``{"run": trace_id}``) is remembered as the
        series' most recent exemplar and rendered in ``# {…} value``
        suffix form, so a spike in e.g. ``repro_jobs_shed_total`` can
        be traced back to a concrete request's stitched timeline.
        """
        if amount < 0:
            raise ValueError("counters only go up")
        key = _label_key(labels)
        with self._lock:
            self._values[key] = self._values.get(key, 0.0) + amount
            if exemplar:
                self._exemplars[key] = (_label_key(exemplar), amount)

    def value(self, **labels: str) -> float:
        with self._lock:
            return self._values.get(_label_key(labels), 0.0)

    def total(self) -> float:
        """Sum over every label combination."""
        with self._lock:
            return sum(self._values.values())

    def render(self) -> list[str]:
        lines = [
            f"# HELP {self.name} {self.help_text}",
            f"# TYPE {self.name} {self.kind}",
        ]
        with self._lock:
            values = dict(self._values) or {(): 0.0}
            exemplars = dict(self._exemplars)
        for key in sorted(values):
            line = f"{self.name}{_label_text(key)} {_format(values[key])}"
            lines.append(line + _exemplar_text(exemplars.get(key)))
        return lines

    def exemplar(self, **labels: str):
        """The stored (labels, value) exemplar for one series, or None."""
        with self._lock:
            found = self._exemplars.get(_label_key(labels))
        if found is None:
            return None
        return dict(found[0]), found[1]


class Gauge:
    """A value that can go up and down, optionally callback-backed."""

    kind = "gauge"

    def __init__(self, name: str, help_text: str) -> None:
        self.name = name
        self.help_text = help_text
        self._values: dict[tuple, float] = {}
        self._callbacks: dict[tuple, Callable[[], float]] = {}
        self._lock = threading.Lock()

    def set(self, value: float, **labels: str) -> None:
        key = _label_key(labels)
        with self._lock:
            self._values[key] = float(value)

    def inc(self, amount: float = 1.0, **labels: str) -> None:
        key = _label_key(labels)
        with self._lock:
            self._values[key] = self._values.get(key, 0.0) + amount

    def dec(self, amount: float = 1.0, **labels: str) -> None:
        self.inc(-amount, **labels)

    def set_function(self, fn: Callable[[], float], **labels: str) -> None:
        """Back this series with *fn*, evaluated at render/read time."""
        key = _label_key(labels)
        with self._lock:
            self._callbacks[key] = fn

    def value(self, **labels: str) -> float:
        key = _label_key(labels)
        with self._lock:
            fn = self._callbacks.get(key)
        if fn is not None:
            return float(fn())
        with self._lock:
            return self._values.get(key, 0.0)

    def render(self) -> list[str]:
        lines = [
            f"# HELP {self.name} {self.help_text}",
            f"# TYPE {self.name} {self.kind}",
        ]
        with self._lock:
            values = dict(self._values)
            callbacks = dict(self._callbacks)
        for key, fn in callbacks.items():
            values[key] = float(fn())
        if not values:
            values = {(): 0.0}
        for key in sorted(values):
            lines.append(f"{self.name}{_label_text(key)} {_format(values[key])}")
        return lines


class Histogram:
    """Cumulative-bucket histogram with a percentile reservoir."""

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help_text: str,
        buckets: tuple[float, ...] = DEFAULT_BUCKETS,
    ) -> None:
        self.name = name
        self.help_text = help_text
        self.buckets = tuple(sorted(buckets))
        self._lock = threading.Lock()
        self._counts: dict[tuple, list[int]] = {}
        self._sums: dict[tuple, float] = {}
        self._totals: dict[tuple, int] = {}
        self._samples: dict[tuple, list[float]] = {}
        #: (label key, bucket index) -> (exemplar label key, value);
        #: bucket index len(buckets) is the +Inf bucket
        self._exemplars: dict[tuple[tuple, int], tuple[tuple, float]] = {}

    def labels(self, **labels: str) -> "Histogram":
        """Pre-register a label set so it renders before any observation.

        Mirrors ``prometheus_client``'s ``labels()`` idiom: dashboards
        that alert on absent series need every expected label set to
        expose a full zero-valued ``_bucket``/``_sum``/``_count`` family
        from the first scrape, not from the first observation.
        """
        key = _label_key(labels)
        with self._lock:
            self._register(key)
        return self

    def _register(self, key: tuple) -> None:
        """Ensure all per-series state exists for *key* (lock held)."""
        if key not in self._totals:
            self._counts[key] = [0] * len(self.buckets)
            self._sums[key] = 0.0
            self._totals[key] = 0
            self._samples[key] = []

    def observe(
        self,
        value: float,
        exemplar: dict[str, str] | None = None,
        **labels: str,
    ) -> None:
        """Record one observation.

        *exemplar* (e.g. ``{"run": trace_id}``) is remembered as the
        most recent exemplar of the bucket the value lands in, so a
        scrape can point from a slow bucket to a concrete traced run.
        """
        key = _label_key(labels)
        with self._lock:
            self._register(key)
            idx = bisect_left(self.buckets, value)
            if idx < len(self.buckets):
                self._counts[key][idx] += 1
            self._sums[key] += value
            self._totals[key] += 1
            if exemplar:
                self._exemplars[(key, idx)] = (_label_key(exemplar), value)
            samples = self._samples[key]
            insort(samples, value)
            if len(samples) > _MAX_SAMPLES:
                # drop the median neighbour to keep the tails intact
                del samples[len(samples) // 2]

    def exemplar(self, bucket_le: float | str, **labels: str):
        """The stored (labels, value) exemplar for one bucket, or None.

        ``bucket_le`` is the bucket's upper bound (or ``"+Inf"``).
        """
        key = _label_key(labels)
        if bucket_le == "+Inf":
            idx = len(self.buckets)
        else:
            idx = self.buckets.index(float(bucket_le))
        with self._lock:
            found = self._exemplars.get((key, idx))
        if found is None:
            return None
        return dict(found[0]), found[1]

    def count(self, **labels: str) -> int:
        with self._lock:
            return self._totals.get(_label_key(labels), 0)

    def sum(self, **labels: str) -> float:
        with self._lock:
            return self._sums.get(_label_key(labels), 0.0)

    def percentile(self, p: float, **labels: str) -> float:
        """The *p*-th percentile (0–100) of the recorded samples.

        Linear interpolation between adjacent reservoir samples (the
        "inclusive"/``numpy.percentile`` definition): with *n* samples
        the fractional rank is ``(n - 1) * p / 100`` and the result
        blends the two neighbouring order statistics.  Nearest-rank
        jumps a full sample width whenever an observation lands, which
        makes p50/p95 jitter badly at small sample counts; interpolation
        moves smoothly.
        """
        with self._lock:
            samples = self._samples.get(_label_key(labels), [])
            if not samples:
                return 0.0
            rank = max(0.0, min(1.0, p / 100.0)) * (len(samples) - 1)
            lo = int(rank)
            frac = rank - lo
            if frac == 0.0 or lo + 1 >= len(samples):
                return samples[lo]
            return samples[lo] + (samples[lo + 1] - samples[lo]) * frac

    def render(self) -> list[str]:
        lines = [
            f"# HELP {self.name} {self.help_text}",
            f"# TYPE {self.name} {self.kind}",
        ]
        with self._lock:
            if not self._totals:
                # match Counter: an empty metric still exposes one
                # unlabelled zero-valued series so scrapes see the name
                counts = {(): [0] * len(self.buckets)}
                sums: dict[tuple, float] = {(): 0.0}
                totals: dict[tuple, int] = {(): 0}
            else:
                counts = {k: list(v) for k, v in self._counts.items()}
                sums = dict(self._sums)
                totals = dict(self._totals)
            exemplars = dict(self._exemplars)
        for key in sorted(totals):
            cumulative = 0
            for idx, (bound, n) in enumerate(zip(self.buckets, counts[key])):
                cumulative += n
                label = _label_text(key + (("le", _format(bound)),))
                line = f"{self.name}_bucket{label} {cumulative}"
                lines.append(line + _exemplar_text(exemplars.get((key, idx))))
            label = _label_text(key + (("le", "+Inf"),))
            line = f"{self.name}_bucket{label} {totals[key]}"
            lines.append(
                line + _exemplar_text(exemplars.get((key, len(self.buckets))))
            )
            lines.append(
                f"{self.name}_sum{_label_text(key)} {_format(sums[key])}"
            )
            lines.append(
                f"{self.name}_count{_label_text(key)} {totals[key]}"
            )
        return lines


def _format(value: float) -> str:
    if value == int(value):
        return str(int(value))
    return repr(float(value))


def _exemplar_text(found: tuple[tuple, float] | None) -> str:
    """OpenMetrics exemplar suffix (`` # {run="…"} value``), or ""."""
    if found is None:
        return ""
    key, value = found
    return f" # {_label_text(key)} {_format(value)}"


class MetricsRegistry:
    """Create-or-get registry for all service metrics."""

    def __init__(self) -> None:
        self._metrics: dict[str, Counter | Gauge | Histogram] = {}
        self._lock = threading.Lock()

    def counter(self, name: str, help_text: str = "") -> Counter:
        return self._get_or_create(Counter, name, help_text)

    def gauge(self, name: str, help_text: str = "") -> Gauge:
        return self._get_or_create(Gauge, name, help_text)

    def histogram(
        self,
        name: str,
        help_text: str = "",
        buckets: tuple[float, ...] = DEFAULT_BUCKETS,
    ) -> Histogram:
        metric = self._get_or_create(Histogram, name, help_text, buckets)
        return metric

    def _get_or_create(self, cls, name, help_text, *args):
        with self._lock:
            metric = self._metrics.get(name)
            if metric is None:
                metric = cls(name, help_text, *args)
                self._metrics[name] = metric
            elif not isinstance(metric, cls):
                raise TypeError(
                    f"metric {name!r} already registered as {type(metric).__name__}"
                )
            return metric

    def render(self) -> str:
        """The full registry in Prometheus text exposition format."""
        with self._lock:
            metrics = list(self._metrics.values())
        lines: list[str] = []
        for metric in sorted(metrics, key=lambda m: m.name):
            lines.extend(metric.render())
        return "\n".join(lines) + "\n"
