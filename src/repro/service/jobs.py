"""Job specifications for the batch retiming service.

A :class:`RetimeJob` bundles everything needed to retime one design —
the netlist text plus the flow/objective/delay-model options — into a
value object with a deterministic **content-addressed key**: the
SHA-256 of the canonicalised BLIF (parse the netlist, re-emit it with
:func:`~repro.netlist.write_blif`) concatenated with the sorted JSON of
the execution options.  Two submissions that differ only in whitespace,
comment placement, or source format hash to the same key, so the result
cache deduplicates them.

:func:`execute_job` is the single worker entry point: it runs the
requested flow and returns a :class:`JobResult` whose ``metrics`` dict
carries every number the paper tables need (so the experiment runners
can rebuild their rows from job results without shipping circuits
across process boundaries).
"""

from __future__ import annotations

import hashlib
import json
import os
import threading
import time
from dataclasses import asdict, dataclass, field
from functools import cached_property
from pathlib import Path

from .. import obs
from ..flows import (
    FlowResult,
    baseline_flow,
    cslow_flow,
    decomposed_enable_flow,
    pipeline_flow,
    retime_flow,
)
from ..mcretime import MCRetimeResult, mc_retime
from ..pipeline import cslow_retime, pipeline_retime
from ..netlist import (
    Circuit,
    check_circuit,
    circuit_stats,
    read_blif,
    read_verilog,
    write_blif,
    write_verilog,
)
from ..timing import UNIT_DELAY, XC4000E_DELAY, analyze
from ..verify import (
    VerificationError,
    check_cslow,
    check_pipeline,
    check_sequential,
)

#: Flows a job may request.  ``mcretime`` retimes the netlist as-is
#: (the plain ``mcretime file.blif`` CLI behaviour); the other three are
#: the paper's Table 1/2/3 synthesis scripts from :mod:`repro.flows`.
JOB_FLOWS = ("mcretime", "baseline", "retime", "decomposed_enable")

#: Fault-injection flows used by the integration tests and ops drills:
#: ``__crash__`` hard-kills the worker process mid-job, ``__hang__``
#: sleeps past any reasonable timeout.  They exercise the pool's crash
#: isolation and timeout/retry paths without patching worker code.
FAULT_FLOWS = ("__crash__", "__hang__")

_DELAY_MODELS = {"unit": UNIT_DELAY, "xc4000e": XC4000E_DELAY}
_FORMATS = ("blif", "verilog")

#: Throughput transforms a job may request (``docs/PIPELINE.md``).
#: ``pipeline`` inserts ``stages`` output register layers before
#: retiming; ``cslow`` replicates every register ``factor`` times.
#: Transforms compose with the ``mcretime`` (engine-level) and
#: ``retime`` (mapped XC4000E) flows only.
JOB_TRANSFORMS = ("pipeline", "cslow")


def _parse(netlist: str, fmt: str, name: str) -> Circuit:
    if fmt == "verilog":
        return read_verilog(netlist)
    return read_blif(netlist, name_hint=name)


def _emit(circuit: Circuit, fmt: str) -> str:
    if fmt == "verilog":
        return write_verilog(circuit)
    return write_blif(circuit)


@dataclass(frozen=True)
class RetimeJob:
    """One retiming request: netlist text plus execution options."""

    netlist: str
    fmt: str = "blif"
    #: model-name hint for BLIF sources without a ``.model`` line
    name: str = "design"
    flow: str = "mcretime"
    objective: str = "minarea"
    #: ``None`` resolves to ``unit`` for the raw ``mcretime`` flow and
    #: ``xc4000e`` for the mapped synthesis flows, matching the CLI.
    delay_model: str | None = None
    target_period: float | None = None
    semantic_classes: bool = True
    #: sequentially verify the output against the input after the flow
    #: (coverage-directed bit-parallel refinement check); a mismatch
    #: fails the job with a non-retryable ``VerificationError``
    verify: bool = False
    verify_cycles: int = 64
    #: attach a certificate-backed explanation of the result
    #: (:mod:`repro.obs.explain`) under ``metrics["explain"]``, served
    #: back by ``GET /explain/<job>``.  Requesting an explanation
    #: changes the job's content key — explained and plain runs cache
    #: separately because their results differ.
    explain: bool = False
    #: format of ``JobResult.output`` (defaults to the input format)
    output_fmt: str | None = None
    #: optional throughput transform (``"pipeline"`` / ``"cslow"``);
    #: with ``verify=True`` the output is checked with the matching
    #: refinement checker (latency-shifted / thread-interleaving)
    #: instead of the plain sequential check
    transform: str | None = None
    #: pipeline stages (used when ``transform == "pipeline"``)
    stages: int = 1
    #: C-slow factor (used when ``transform == "cslow"``)
    factor: int = 2
    #: ECO metadata (``docs/ECO.md``): the design fingerprint of the
    #: base this job was derived from.  ``netlist`` always holds the
    #: full *edited* design — the content address, cache key, and cold
    #: path never depend on the ECO fields, so an ECO submission
    #: dedupes against an equivalent full submission.  When the worker
    #: also has ``base_netlist`` it retimes incrementally
    #: (:func:`repro.eco.eco_retime`), bit-identical but warm.
    base_key: str | None = None
    #: canonical BLIF of the base design (ships the warm path's input;
    #: ``None`` degrades to a plain cold solve)
    base_netlist: str | None = None
    #: the JSON edit script of the original request (audit trail only)
    edit: str | None = None

    def __post_init__(self) -> None:
        if self.fmt not in _FORMATS:
            raise ValueError(f"unknown netlist format {self.fmt!r}")
        if self.flow not in JOB_FLOWS + FAULT_FLOWS:
            raise ValueError(f"unknown flow {self.flow!r}; choose from {JOB_FLOWS}")
        if self.objective not in ("minarea", "minperiod"):
            raise ValueError(f"unknown objective {self.objective!r}")
        if self.delay_model is not None and self.delay_model not in _DELAY_MODELS:
            raise ValueError(f"unknown delay model {self.delay_model!r}")
        if self.output_fmt is not None and self.output_fmt not in _FORMATS:
            raise ValueError(f"unknown output format {self.output_fmt!r}")
        if not isinstance(self.verify, bool):
            raise ValueError(f"verify must be a bool, got {self.verify!r}")
        if not isinstance(self.explain, bool):
            raise ValueError(f"explain must be a bool, got {self.explain!r}")
        if (
            not isinstance(self.verify_cycles, int)
            or isinstance(self.verify_cycles, bool)
            or self.verify_cycles < 1
        ):
            raise ValueError(
                f"verify_cycles must be a positive int, got {self.verify_cycles!r}"
            )
        if self.transform is not None:
            if self.transform not in JOB_TRANSFORMS:
                raise ValueError(
                    f"unknown transform {self.transform!r}; "
                    f"choose from {JOB_TRANSFORMS}"
                )
            if self.flow not in ("mcretime", "retime"):
                raise ValueError(
                    f"transform {self.transform!r} requires flow "
                    f"'mcretime' or 'retime', not {self.flow!r}"
                )
        if (
            not isinstance(self.stages, int)
            or isinstance(self.stages, bool)
            or self.stages < 0
        ):
            raise ValueError(
                f"stages must be a non-negative int, got {self.stages!r}"
            )
        if (
            not isinstance(self.factor, int)
            or isinstance(self.factor, bool)
            or self.factor < 1
        ):
            raise ValueError(
                f"factor must be a positive int, got {self.factor!r}"
            )
        if self.base_netlist is not None and self.base_key is None:
            raise ValueError("base_netlist requires base_key")
        if self.edit is not None:
            try:
                ops = json.loads(self.edit)
            except json.JSONDecodeError as exc:
                raise ValueError(f"edit is not valid JSON: {exc}") from None
            if not isinstance(ops, list):
                raise ValueError("edit must be a JSON list of edit ops")

    @classmethod
    def from_file(cls, path: str | Path, **options) -> "RetimeJob":
        """Build a job from a netlist file (format from the suffix)."""
        path = Path(path)
        fmt = "verilog" if path.suffix in (".v", ".sv") else "blif"
        return cls(netlist=path.read_text(), fmt=fmt, name=path.stem, **options)

    def resolved_delay_model(self) -> str:
        if self.delay_model is not None:
            return self.delay_model
        return "unit" if self.flow == "mcretime" else "xc4000e"

    def resolved_output_fmt(self) -> str:
        return self.output_fmt or self.fmt

    def options(self) -> dict[str, object]:
        """The execution-relevant options (all defaults resolved)."""
        return {
            "flow": self.flow,
            "objective": self.objective,
            "delay_model": self.resolved_delay_model(),
            "target_period": self.target_period,
            "semantic_classes": self.semantic_classes,
            "verify": self.verify,
            "verify_cycles": self.verify_cycles if self.verify else None,
            "explain": self.explain,
            "output_fmt": self.resolved_output_fmt(),
            # transform-irrelevant knobs are nulled so e.g. a plain
            # retime job never collides with (or misses) a cache entry
            # over an unused stages/factor value
            "transform": self.transform,
            "stages": self.stages if self.transform == "pipeline" else None,
            "factor": self.factor if self.transform == "cslow" else None,
        }

    @cached_property
    def canonical_netlist(self) -> str:
        """The canonicalised BLIF emission of the parsed netlist.

        The design-level content address: two sources that differ only
        in whitespace, comments, or syntax variants (``.latch`` vs
        ``.mcff``) — or even in source format — emit identical text.
        The scale-out serving path interns this text into shared memory
        once per design (:mod:`repro.service.interning`).
        """
        circuit = _parse(self.netlist, self.fmt, self.name)
        return _emit(circuit, "blif")

    @cached_property
    def canonical_key(self) -> str:
        """Content-addressed job key (SHA-256 hex).

        The hash of :attr:`canonical_netlist` plus the sorted JSON of
        the execution options.  Parse errors propagate to the
        submitter, which doubles as early input validation.
        """
        payload = self.canonical_netlist + "\n" + json.dumps(
            self.options(), sort_keys=True
        )
        return hashlib.sha256(payload.encode()).hexdigest()

    def to_dict(self) -> dict[str, object]:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: dict[str, object]) -> "RetimeJob":
        return cls(**data)


@dataclass
class JobFailure:
    """Structured error record for a failed job."""

    #: ``worker_crash``, ``timeout``, or the exception class name
    type: str
    message: str
    traceback: str = ""

    def to_dict(self) -> dict[str, object]:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: dict[str, object]) -> "JobFailure":
        return cls(**data)


@dataclass
class JobResult:
    """Outcome of one job: retimed netlist text plus table metrics."""

    job_id: str
    status: str  # "done" | "failed"
    output: str | None = None
    output_fmt: str = "blif"
    metrics: dict = field(default_factory=dict)
    error: JobFailure | None = None
    #: execution attempts consumed (1 unless crashes/timeouts forced retries)
    attempts: int = 1
    #: True when served from the result cache instead of a worker
    cached: bool = False
    #: wall-clock seconds of the successful execution
    elapsed: float = 0.0

    @property
    def ok(self) -> bool:
        return self.status == "done"

    def to_dict(self) -> dict[str, object]:
        data = asdict(self)
        data["error"] = self.error.to_dict() if self.error else None
        return data

    @classmethod
    def from_dict(cls, data: dict[str, object]) -> "JobResult":
        data = dict(data)
        if data.get("error"):
            data["error"] = JobFailure.from_dict(data["error"])
        return cls(**data)


#: worker-local ECO states, keyed by (base fingerprint, delay model,
#: semantic classes) — one per base design the worker has seen.  The
#: shard ring routes every job for one base to the same worker, so this
#: small LRU gives the warm path its prefix/solve-cache reuse.
_ECO_STATES: "dict[tuple, object]" = {}
_ECO_STATES_MAX = 4
_ECO_LOCK = threading.Lock()


def _eco_state(job: RetimeJob, model):
    """Get or build the worker's :class:`repro.eco.EcoState` for the
    job's base design; returns ``None`` when the base text is absent or
    unparsable (the caller then runs the plain cold path)."""
    from ..eco import EcoState

    if job.base_key is None or job.base_netlist is None:
        return None
    key = (job.base_key, job.resolved_delay_model(), job.semantic_classes)
    with _ECO_LOCK:
        state = _ECO_STATES.get(key)
        if state is not None:
            # LRU touch
            _ECO_STATES[key] = _ECO_STATES.pop(key)
            return state
    try:
        base = read_blif(job.base_netlist, name_hint=job.name)
        check_circuit(base)
    except Exception:  # noqa: BLE001 - degrade to cold, never fail the job
        obs.count("eco.base_parse_error")
        return None
    state = EcoState(
        base, delay_model=model, semantic_classes=job.semantic_classes
    )
    with _ECO_LOCK:
        while len(_ECO_STATES) >= _ECO_STATES_MAX:
            _ECO_STATES.pop(next(iter(_ECO_STATES)))
        _ECO_STATES[key] = state
    return state


def _measure(circuit: Circuit, model) -> dict[str, object]:
    stats = circuit_stats(circuit)
    return {
        "n_ff": stats.n_ff,
        "n_lut": stats.n_lut,
        "n_gates": len(circuit.gates),
        "delay": analyze(circuit, model).max_delay,
        "has_async": stats.has_async,
        "has_enable": stats.has_enable,
    }


def _retime_metrics(result: MCRetimeResult) -> dict[str, object]:
    fractions = result.timing_fractions()
    return {
        "n_classes": result.n_classes,
        "steps_moved": result.steps_moved,
        "steps_possible": result.steps_possible,
        "period_before": result.period_before,
        "period_after": result.period_after,
        "ff_before": result.ff_before,
        "ff_after": result.ff_after,
        "resolve_attempts": result.resolve_attempts,
        "local_steps": result.stats.local_steps,
        "global_steps": result.stats.global_steps,
        "forward_steps": result.stats.forward_steps,
        "local_fraction": result.stats.local_fraction,
        "basic_fraction": fractions["basic_retiming"],
        "relocate_fraction": fractions["relocation"],
        "overhead_fraction": fractions["mc_overhead"],
        "cpu_seconds": sum(result.timings.values()),
    }


def _flow_metrics(flow: FlowResult) -> dict[str, object]:
    metrics: dict[str, object] = {
        "final": {
            "n_ff": flow.n_ff,
            "n_lut": flow.n_lut,
            "delay": flow.delay,
            "has_async": flow.has_async,
            "has_enable": flow.has_enable,
            "accepted": flow.accepted,
        },
        "timings": dict(flow.timings),
    }
    if flow.retime is not None:
        metrics["retime"] = _retime_metrics(flow.retime)
    if flow.explain is not None:
        metrics["explain"] = _explain_metrics(flow.explain)
    return metrics


def _explain_metrics(explanation: dict) -> dict[str, object]:
    """Package an explanation for ``JobResult.metrics["explain"]``:
    the full certificate payload plus the flat summary the run ledger
    and the service counters consume."""
    from ..obs.explain import summary_metrics

    return {
        "summary": summary_metrics(explanation),
        "explanation": explanation,
    }


def execute_job(
    job: RetimeJob,
    *,
    job_id: str | None = None,
    circuit: Circuit | None = None,
    intern_key: str | None = None,
) -> JobResult:
    """Run *job* to completion (worker-side entry point).

    Raises on deterministic errors (parse failures, invalid circuits);
    the pool records those as immediate failures without retrying.

    Args:
        job: the job to execute.
        job_id: the job's content key, when the submitter already
            computed it — saves the worker a parse + re-emit.
        circuit: a pre-parsed circuit for ``job.netlist`` (scale-out
            path: the worker's per-design cache).  The circuit is never
            mutated, so one parsed instance serves every job touching
            the design.
        intern_key: design ref whose pre-compiled work-graph CSR
            snapshot is seeded in this process
            (:func:`repro.kernels.seed_intern`); forwarded to
            :func:`repro.mcretime.mc_retime`.  Results are
            bit-identical with or without it.
    """
    if job.flow == "__crash__":
        # simulate a segfault/OOM kill: bypass all Python cleanup
        os._exit(139)
    if job.flow == "__hang__":
        # simulate a wedged worker: sleep far past any sane job timeout
        while True:  # pragma: no cover - killed by the pool
            time.sleep(60)

    key = job_id or job.canonical_key
    t0 = time.perf_counter()
    with obs.job_trace(key) as tracer:
        metrics = _run_flow(job, key, circuit=circuit, intern_key=intern_key)
        if tracer is not None:
            metrics["obs"] = tracer.snapshot()
    out_circuit = metrics.pop("_circuit")
    out_fmt = job.resolved_output_fmt()
    return JobResult(
        job_id=key,
        status="done",
        output=_emit(out_circuit, out_fmt),
        output_fmt=out_fmt,
        metrics=metrics,
        elapsed=time.perf_counter() - t0,
    )


def resolve_payload(payload: dict) -> tuple[RetimeJob, dict]:
    """Rebuild a job from a scale-out dispatch payload (worker side).

    A scale-out payload ships a design reference instead of the netlist
    text: ``{"design_ref": ref, "segment": name, "job": {fields minus
    netlist}}``.  The worker resolves the design through its attach-once
    cache (:func:`repro.service.interning.resolve_design`) and returns
    the reconstituted job plus the keyword arguments for
    :func:`execute_job` — a cached parsed circuit and, when the segment
    carries a compiled work-graph seed for this ref, the intern key.

    The shipped job dict must carry a resolved ``output_fmt``: the
    reconstituted job's source is always canonical BLIF, so the input
    format of the original submission is not recoverable here.
    """
    from .interning import resolve_design, resolved_circuit

    ref = payload["design_ref"]
    design = resolve_design(ref, payload.get("segment"))
    fields = dict(payload["job"])
    fields["netlist"] = design.text
    fields["fmt"] = "blif"
    job = RetimeJob(**fields)
    kwargs: dict = {}
    if job.flow == "mcretime" and job.transform is None:
        kwargs["circuit"] = resolved_circuit(design, job.name)
        if ref in design.seed_variants:
            kwargs["intern_key"] = ref
    return job, kwargs


def run_payload(
    job_id: str, payload: dict, trace_ctx: dict | None = None
) -> dict:
    """Worker-side dispatch entry: resolve, execute, serialise one job.

    This is what :func:`repro.service.pool._worker_main` calls per
    dispatch item.  It owns the worker's end of the distributed trace:
    the whole lifetime — payload resolution (shm attach + parse),
    execution, and response serialisation — runs under one
    :func:`repro.obs.job_trace` stamped with *trace_ctx* (the
    ``{"trace_id", "parent_span", "parent_pid"}`` context minted by the
    front-end), so the stitcher can nest this process's spans under the
    request span that dispatched the job:

    * ``worker.resolve`` — design resolution: shared-memory attach,
      unpack, parse-or-cache (wraps ``service.intern.attach``);
    * ``job.execute`` — the flow proper (inside :func:`execute_job`,
      whose inner ``job_trace`` joins this outer tracer);
    * ``worker.respond`` — result serialisation for the return pipe.

    The final ``metrics["obs"]`` snapshot is taken after *all* worker
    spans close, so the shipped span totals equal the trace file's.
    Returns the ``JobResult`` dict to put on the result queue.
    """
    with obs.job_trace(job_id, parent=trace_ctx) as tracer:
        with obs.span("worker.resolve", job=job_id[:16]):
            if "design_ref" in payload:
                job, kwargs = resolve_payload(payload)
            else:
                job, kwargs = RetimeJob.from_dict(payload), {}
        result = execute_job(job, job_id=job_id, **kwargs)
        with obs.span("worker.respond", job=job_id[:16]):
            data = result.to_dict()
        if tracer is not None:
            data["metrics"]["obs"] = tracer.snapshot()
    return data


def _run_flow(
    job: RetimeJob,
    key: str,
    circuit: Circuit | None = None,
    intern_key: str | None = None,
) -> dict:
    """Execute the job's flow; returns its metrics dict (the output
    circuit rides along under the ``_circuit`` key)."""
    with obs.span("job.execute", flow=job.flow, job=key[:16]):
        if circuit is None:
            circuit = _parse(job.netlist, job.fmt, job.name)
        check_circuit(circuit)
        model = _DELAY_MODELS[job.resolved_delay_model()]
        metrics = _dispatch_flow(job, circuit, model, intern_key=intern_key)
        if job.verify:
            _verify_output(job, circuit, metrics)
    return metrics


def _verify_output(job: RetimeJob, circuit: Circuit, metrics: dict) -> None:
    """Check the job's output against its input.

    Plain jobs run the sequential refinement check; transform jobs run
    the matching transform checker (latency-shifted for ``pipeline``,
    thread-interleaving for ``cslow``).  The verdict rides along in
    ``metrics["verify"]``; a failed check raises
    :class:`~repro.verify.VerificationError`, which the pool treats as
    a deterministic error (no retry — the checkers are deterministic in
    their seed, so re-running cannot pass).
    """
    t0 = time.perf_counter()
    with obs.span(
        "verify.check", cycles=job.verify_cycles, transform=job.transform
    ):
        if job.transform == "pipeline":
            check = check_pipeline(
                circuit, metrics["_circuit"], shift=job.stages,
                cycles=job.verify_cycles,
            )
        elif job.transform == "cslow":
            check = check_cslow(
                circuit, metrics["_circuit"], job.factor,
                cycles=job.verify_cycles,
            )
        else:
            check = check_sequential(
                circuit, metrics["_circuit"], cycles=job.verify_cycles
            )
    metrics["verify"] = {
        "equivalent": check.equivalent,
        "cycles": check.cycles,
        "lanes": check.lanes,
        "seconds": time.perf_counter() - t0,
    }
    if not check.equivalent:
        raise VerificationError(check)


def _transform_report(result) -> dict[str, object]:
    """Transform economics of a Pipeline/CSlowResult (engine level)."""
    if hasattr(result, "stages"):
        return {
            "kind": "pipeline",
            "stages": result.stages,
            "registers_inserted": result.registers_inserted,
            "period_before": result.period_before,
            "period_after": result.period_after,
            "lower_bound": result.lower_bound,
            "balance_slack": result.balance_slack,
            "speedup": result.speedup,
            "classes_before": result.classes_before,
            "classes_after": result.classes_after,
        }
    return {
        "kind": "cslow",
        "factor": result.factor,
        "registers_replicated": result.registers_replicated,
        "enables_folded": result.enables_folded,
        "sync_resets_folded": result.sync_resets_folded,
        "async_resets_folded": result.async_resets_folded,
        "period_before": result.period_before,
        "period_after": result.period_after,
        "thread_period": result.thread_period,
        "throughput_gain": result.throughput_gain,
        "classes_before": result.classes_before,
        "classes_after": result.classes_after,
    }


def _dispatch_transform(job: RetimeJob, circuit: Circuit, model) -> dict:
    """Run a pipeline/cslow job (engine-level or mapped flow)."""
    if job.flow == "mcretime":
        if job.transform == "pipeline":
            result = pipeline_retime(
                circuit,
                job.stages,
                model,
                objective=job.objective,
                target_period=job.target_period,
                semantic_classes=job.semantic_classes,
                explain=job.explain,
            )
        else:
            result = cslow_retime(
                circuit,
                job.factor,
                model,
                objective=job.objective,
                target_period=job.target_period,
                semantic_classes=job.semantic_classes,
                explain=job.explain,
            )
        out_circuit = result.circuit
        check_circuit(out_circuit)
        metrics = {
            "baseline": _measure(circuit, model),
            "final": {**_measure(out_circuit, model), "accepted": True},
            "retime": _retime_metrics(result.retime),
            "transform": _transform_report(result),
            "timings": dict(result.timings),
        }
        if result.retime.explanation is not None:
            metrics["explain"] = _explain_metrics(result.retime.explanation)
    else:  # flow == "retime": the mapped XC4000E flow
        flow_fn = pipeline_flow if job.transform == "pipeline" else cslow_flow
        amount = job.stages if job.transform == "pipeline" else job.factor
        flow = flow_fn(
            circuit,
            amount,
            model,
            objective=job.objective,
            target_period=job.target_period,
            semantic_classes=job.semantic_classes,
            explain=job.explain,
        )
        out_circuit = flow.circuit
        metrics = _flow_metrics(flow)
        metrics["baseline"] = _measure(circuit, model)
        metrics["transform"] = flow.transform
    metrics["_circuit"] = out_circuit
    return metrics


def _dispatch_flow(
    job: RetimeJob, circuit: Circuit, model, intern_key: str | None = None
) -> dict:
    if job.transform is not None:
        return _dispatch_transform(job, circuit, model)
    if job.flow == "mcretime":
        eco_info = None
        # the warm (ECO) path reuses a prior solve and never rebuilds
        # the certificate inputs, so explain requests take the cold path
        state = None if job.explain else _eco_state(job, model)
        if state is not None:
            from ..eco import eco_retime

            eco = eco_retime(
                state,
                circuit,
                target_period=job.target_period,
                objective=job.objective,
            )
            result = eco.result
            eco_info = {
                "plan": eco.plan,
                "dirty_fraction": eco.dirty_fraction,
                "fallback_reason": eco.fallback_reason,
                "patched_entries": eco.patched_entries,
            }
        else:
            result = mc_retime(
                circuit,
                delay_model=model,
                target_period=job.target_period,
                objective=job.objective,
                semantic_classes=job.semantic_classes,
                intern_key=intern_key,
                explain=job.explain,
            )
        out_circuit = result.circuit
        check_circuit(out_circuit)
        timings = dict(result.timings)
        timings["total"] = sum(timings.values())
        metrics = {
            "baseline": _measure(circuit, model),
            "final": {**_measure(out_circuit, model), "accepted": True},
            "retime": _retime_metrics(result),
            "timings": timings,
        }
        if eco_info is not None:
            metrics["eco"] = eco_info
        if result.explanation is not None:
            metrics["explain"] = _explain_metrics(result.explanation)
    elif job.flow == "baseline":
        flow = baseline_flow(circuit, model)
        out_circuit = flow.circuit
        metrics = _flow_metrics(flow)
        metrics["baseline"] = metrics["final"]
    elif job.flow == "retime":
        base = baseline_flow(circuit, model)
        flow = retime_flow(
            circuit,
            model,
            objective=job.objective,
            mapped=base,
            target_period=job.target_period,
            semantic_classes=job.semantic_classes,
            explain=job.explain,
        )
        out_circuit = flow.circuit
        metrics = _flow_metrics(flow)
        metrics["baseline"] = {
            "n_ff": base.n_ff,
            "n_lut": base.n_lut,
            "delay": base.delay,
            "has_async": base.has_async,
            "has_enable": base.has_enable,
        }
    else:  # decomposed_enable
        flow = decomposed_enable_flow(
            circuit,
            model,
            objective=job.objective,
            target_period=job.target_period,
            semantic_classes=job.semantic_classes,
            explain=job.explain,
        )
        out_circuit = flow.circuit
        metrics = _flow_metrics(flow)

    metrics["_circuit"] = out_circuit
    return metrics
