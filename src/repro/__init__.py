"""mc-retiming: a reproduction of "A Practical Approach to
Multiple-Class Retiming" (Eckl, Madre, Zepter, Legl — DAC 1999).

Top-level convenience re-exports; see the subpackages for the full API:

* :mod:`repro.netlist` — circuits, registers, BLIF I/O
* :mod:`repro.mcretime` — the multiple-class retiming engine
* :mod:`repro.retime` — the basic (Leiserson–Saxe) retiming engine
* :mod:`repro.techmap` / :mod:`repro.opt` — FPGA mapping substrate
* :mod:`repro.flows` / :mod:`repro.experiments` — the paper's scripts
  and table/figure regenerators
"""

from .mcretime import MCRetimeResult, mc_retime
from .netlist import Circuit, Gate, GateFn, Register, read_blif, write_blif

__all__ = [
    "Circuit",
    "Gate",
    "GateFn",
    "MCRetimeResult",
    "Register",
    "mc_retime",
    "read_blif",
    "write_blif",
]

__version__ = "1.0.0"
