"""Ternary evaluation of gate functions.

Evaluates a gate's truth table under three-valued inputs: the output is
a binary value iff *every* binary completion of the X inputs agrees,
otherwise X.  This is the exact (not merely Kleene-approximate)
semantics, which matters for justification — e.g. ``XOR(a, a)`` style
patterns inside a LUT still evaluate to 0.
"""

from __future__ import annotations

from typing import Sequence

from ..netlist.cells import Gate
from .ternary import T0, T1, TX

#: Above this many unknown inputs the exact completion sweep is skipped
#: and X is returned (exponential guard; never hit by mapped 4-LUTs).
MAX_EXACT_UNKNOWNS = 12


def eval_table(table: int, values: Sequence[int]) -> int:
    """Evaluate a truth table on a ternary input vector."""
    unknowns = [i for i, v in enumerate(values) if v == TX]
    base = 0
    for i, v in enumerate(values):
        if v == T1:
            base |= 1 << i
    if not unknowns:
        return T1 if (table >> base) & 1 else T0
    if len(unknowns) > MAX_EXACT_UNKNOWNS:
        return TX
    first = None
    for combo in range(1 << len(unknowns)):
        idx = base
        for j, pos in enumerate(unknowns):
            if (combo >> j) & 1:
                idx |= 1 << pos
        bit = (table >> idx) & 1
        if first is None:
            first = bit
        elif bit != first:
            return TX
    return T1 if first else T0


def eval_gate(gate: Gate, values: Sequence[int]) -> int:
    """Ternary-evaluate *gate* on per-pin values (same order as inputs)."""
    if len(values) != gate.n_inputs:
        raise ValueError(
            f"gate {gate.name!r} expects {gate.n_inputs} values, got {len(values)}"
        )
    return eval_table(gate.truth_table(), values)
