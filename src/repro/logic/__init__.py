"""Ternary logic, simulation, and justification utilities."""

from .ternary import (
    T0,
    T1,
    TX,
    TERNARY_VALUES,
    compatible,
    meet,
    ternary_and,
    ternary_and_all,
    ternary_char,
    ternary_from_char,
    ternary_mux,
    ternary_not,
    ternary_or,
    ternary_or_all,
    ternary_xor,
    vector_str,
)

__all__ = [
    "T0",
    "T1",
    "TX",
    "TERNARY_VALUES",
    "compatible",
    "meet",
    "ternary_and",
    "ternary_and_all",
    "ternary_char",
    "ternary_from_char",
    "ternary_mux",
    "ternary_not",
    "ternary_or",
    "ternary_or_all",
    "ternary_xor",
    "vector_str",
]
