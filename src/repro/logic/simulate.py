"""Circuit simulation: combinational ternary sweep and cycle simulation.

Two layers:

* :func:`eval_nets` — one combinational sweep: given ternary values on
  the cut (primary inputs and register outputs), compute every net.
* :class:`SequentialSimulator` — cycle-accurate simulation of the
  generic-register semantics (EN / sync reset / async reset), used by
  the integration tests to check that retimed circuits are sequentially
  equivalent to their originals from the computed reset states onward.

Async resets are modelled as sampled per cycle (asserted throughout the
cycle), which is the standard cycle-based abstraction and treats the
original and retimed circuit identically — sufficient for equivalence
checking.
"""

from __future__ import annotations

from typing import Callable, Mapping, Sequence

from ..netlist import Circuit
from ..netlist.signals import CONST0, CONST1
from .functions import eval_gate
from .ternary import T0, T1, TX


def eval_nets(
    circuit: Circuit, cut_values: Mapping[str, int]
) -> dict[str, int]:
    """Combinational sweep; unlisted cut nets default to X.

    *cut_values* gives values for primary inputs and register Q nets
    (and may override any other net).  Returns values for every net.
    """
    values: dict[str, int] = {CONST0: T0, CONST1: T1}
    for net in circuit.inputs:
        values[net] = cut_values.get(net, TX)
    for reg in circuit.registers.values():
        values[reg.q] = cut_values.get(reg.q, TX)
    values.update(cut_values)
    for gate in circuit.topo_gates():
        if gate.output in cut_values:
            continue  # explicit override wins
        ins = [values.get(n, TX) for n in gate.inputs]
        values[gate.output] = eval_gate(gate, ins)
    return values


class SequentialSimulator:
    """Cycle simulator over the generic-register semantics.

    The state maps register names to ternary Q values.  The default
    state loads each register's *synchronous* reset value if it has one,
    else its asynchronous value, else X — callers may instead supply an
    explicit state (e.g. one produced by relocation) via ``state=``.
    """

    def __init__(
        self,
        circuit: Circuit,
        state: Mapping[str, int] | None = None,
        x_chooser: Callable[[str], int] | None = None,
    ) -> None:
        self.circuit = circuit
        self._topo = circuit.topo_gates()
        self.x_chooser = x_chooser
        if state is None:
            self.state = self.default_reset_state(circuit)
        else:
            self.state = dict(state)
        self._resolve_x()

    @staticmethod
    def default_reset_state(circuit: Circuit) -> dict[str, int]:
        """Sync value, else async value, else X — per register.

        The synchronous-first preference matches the equivalent-reset-
        state convention of :mod:`repro.mcretime.reset`: relocation
        propagates and justifies the ``sval`` channel as *the* state a
        register holds after its reset sequence, with ``aval`` carried
        alongside for the async-assert case.  Forward implication is
        exact ternary evaluation, so whenever an implied ``sval`` is
        binary it agrees with the implication of any binary refinement
        of the source svals — which makes the sval-first pick consistent
        across a retiming move.  Async values are still honoured
        dynamically: the AR path dominates in :meth:`step`, so a
        warm-up cycle that asserts the async reset reloads ``aval``
        regardless of this initial pick.
        """
        state = {}
        for reg in circuit.registers.values():
            if reg.has_sync_reset and reg.sval != TX:
                state[reg.name] = reg.sval
            elif reg.has_async_reset and reg.aval != TX:
                state[reg.name] = reg.aval
            else:
                state[reg.name] = TX
        return state

    def _resolve_x(self) -> None:
        if self.x_chooser is None:
            return
        for name, value in self.state.items():
            if value == TX:
                self.state[name] = self.x_chooser(name)

    def outputs(self, pi_values: Mapping[str, int]) -> dict[str, int]:
        """Primary-output values for the current state and inputs."""
        values = self._sweep(pi_values)
        return {net: values[net] for net in self.circuit.outputs}

    def _sweep(self, pi_values: Mapping[str, int]) -> dict[str, int]:
        cut: dict[str, int] = {}
        for net in self.circuit.inputs:
            cut[net] = pi_values.get(net, TX)
        for reg in self.circuit.registers.values():
            cut[reg.q] = self.state.get(reg.name, TX)
        return eval_nets(self.circuit, cut)

    def step(self, pi_values: Mapping[str, int]) -> dict[str, int]:
        """Advance one clock cycle; returns the output values *before*
        the state update (Mealy view of the cycle)."""
        values = self._sweep(pi_values)
        outputs = {net: values[net] for net in self.circuit.outputs}
        next_state: dict[str, int] = {}
        for reg in self.circuit.registers.values():
            ar = values.get(reg.ar, T0) if reg.ar is not None else T0
            sr = values.get(reg.sr, T0) if reg.sr is not None else T0
            en = values.get(reg.en, T1) if reg.en is not None else T1
            d = values.get(reg.d, TX)
            hold = self.state.get(reg.name, TX)
            if ar == T1:
                nxt = reg.aval
            elif ar == TX:
                nxt = TX
            elif sr == T1:
                nxt = reg.sval
            elif sr == TX:
                nxt = TX
            elif en == T1:
                nxt = d
            elif en == TX:
                nxt = d if d == hold else TX
            else:
                nxt = hold
            next_state[reg.name] = nxt
        self.state = next_state
        return outputs

    def run(
        self, stimulus: Sequence[Mapping[str, int]]
    ) -> list[dict[str, int]]:
        """Apply a sequence of input vectors; returns per-cycle outputs."""
        return [self.step(vec) for vec in stimulus]
