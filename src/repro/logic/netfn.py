"""Build BDD functions of circuit nets over a variable cut.

Register classification (paper Def. 1) compares control signals up to
*logical equivalence*: two control nets belong to the same class signal
iff they compute the same function of the primary inputs and register
outputs.  Justification (Sec. 5.2) needs gate-cone functions over an
arbitrary cut.  Both reduce to: "give me the BDD of net *n* with the
nets in *cut* as free variables", which this module provides.
"""

from __future__ import annotations

from typing import Iterable, Mapping

from ..bdd import BDD, FALSE, TRUE
from ..netlist import Circuit
from ..netlist.signals import CONST0, CONST1


def default_cut(circuit: Circuit) -> set[str]:
    """The canonical cut: primary inputs plus register Q outputs."""
    cut = set(circuit.inputs)
    for reg in circuit.registers.values():
        cut.add(reg.q)
    return cut


def net_functions(
    circuit: Circuit,
    nets: Iterable[str],
    bdd: BDD,
    cut: set[str] | None = None,
    bindings: Mapping[str, int] | None = None,
) -> dict[str, int]:
    """Compute BDD nodes for the given *nets*.

    Args:
        circuit: the design.
        nets: target nets to express.
        bdd: manager in which to build (variables are named by net).
        cut: nets treated as free variables; defaults to
            :func:`default_cut`.  Undriven nets also become variables.
        bindings: optional pre-assigned functions for specific nets
            (overrides both cut membership and drivers) — used by
            justification to plug in required values.

    Returns:
        mapping net -> BDD node.
    """
    if cut is None:
        cut = default_cut(circuit)
    bindings = dict(bindings or {})
    cache: dict[str, int] = {}

    def resolve(net: str) -> int:
        if net in cache:
            return cache[net]
        if net in bindings:
            result = bindings[net]
        elif net == CONST0:
            result = FALSE
        elif net == CONST1:
            result = TRUE
        elif net in cut:
            result = bdd.var(net)
        else:
            gate = circuit.driver_gate(net)
            if gate is None:
                # register Q outside the cut or undriven net: free variable
                result = bdd.var(net)
            else:
                ins = [resolve(i) for i in gate.inputs]
                result = bdd.from_truth_table(gate.truth_table(), ins)
        cache[net] = result
        return result

    # visit the cone in topological order first so `resolve` never
    # recurses deeper than one gate (keeps deep circuits off the Python
    # recursion limit)
    targets = list(nets)
    cone = circuit.transitive_fanin_gates(targets)
    for gate in cone:
        stop = gate.output in cut or gate.output in bindings
        if not stop:
            resolve(gate.output)
    return {net: resolve(net) for net in targets}


def nets_equivalent(
    circuit: Circuit, net_a: str, net_b: str, bdd: BDD | None = None
) -> bool:
    """Decide logical equivalence of two nets over the canonical cut."""
    if net_a == net_b:
        return True
    bdd = bdd or BDD()
    fns = net_functions(circuit, [net_a, net_b], bdd)
    return fns[net_a] == fns[net_b]
