"""Three-valued logic domain {0, 1, X}.

The paper labels registers with synchronous/asynchronous reset values
``s, a ∈ {0, 1, -}`` (Sec. 3.2).  The dash — called *X* here — means the
value is unconstrained (a don't-care).  This module provides the value
domain and the Kleene-style operations used by forward implication and
backward justification (Sec. 5.2).

Values are plain small integers so they hash fast and serialize trivially:

* ``T0``  — logic 0
* ``T1``  — logic 1
* ``TX``  — unknown / don't-care ("-")
"""

from __future__ import annotations

from typing import Iterable

#: Logic zero.
T0: int = 0
#: Logic one.
T1: int = 1
#: Unknown / don't-care (printed as ``-``).
TX: int = 2

#: All ternary values, in canonical order.
TERNARY_VALUES: tuple[int, int, int] = (T0, T1, TX)

_CHARS = {T0: "0", T1: "1", TX: "-"}
_FROM_CHAR = {"0": T0, "1": T1, "-": TX, "x": TX, "X": TX, "2": TX}


def is_ternary(value: object) -> bool:
    """Return True iff *value* is one of T0, T1, TX."""
    return value in (T0, T1, TX)


def ternary_char(value: int) -> str:
    """Render a ternary value as the paper's one-character notation."""
    return _CHARS[value]


def ternary_from_char(char: str) -> int:
    """Parse ``0``, ``1``, ``-`` (or ``x``/``X``) into a ternary value."""
    try:
        return _FROM_CHAR[char]
    except KeyError:
        raise ValueError(f"not a ternary character: {char!r}") from None


def ternary_not(a: int) -> int:
    """Kleene negation: X maps to X."""
    if a == TX:
        return TX
    return T1 - a


def ternary_and(a: int, b: int) -> int:
    """Kleene conjunction: 0 dominates X."""
    if a == T0 or b == T0:
        return T0
    if a == TX or b == TX:
        return TX
    return T1


def ternary_or(a: int, b: int) -> int:
    """Kleene disjunction: 1 dominates X."""
    if a == T1 or b == T1:
        return T1
    if a == TX or b == TX:
        return TX
    return T0


def ternary_xor(a: int, b: int) -> int:
    """Kleene exclusive-or: X taints the result."""
    if a == TX or b == TX:
        return TX
    return a ^ b


def ternary_and_all(values: Iterable[int]) -> int:
    """Conjunction over an iterable (empty iterable yields 1)."""
    result = T1
    for v in values:
        result = ternary_and(result, v)
        if result == T0:
            return T0
    return result


def ternary_or_all(values: Iterable[int]) -> int:
    """Disjunction over an iterable (empty iterable yields 0)."""
    result = T0
    for v in values:
        result = ternary_or(result, v)
        if result == T1:
            return T1
    return result


def ternary_mux(sel: int, a: int, b: int) -> int:
    """Ternary multiplexer: returns *b* when sel=1, *a* when sel=0.

    When the select is X the output is known only if both data inputs
    agree on a binary value.
    """
    if sel == T0:
        return a
    if sel == T1:
        return b
    if a == b and a != TX:
        return a
    return TX


def compatible(a: int, b: int) -> bool:
    """True iff the two values do not contradict (X matches anything)."""
    return a == TX or b == TX or a == b


def meet(a: int, b: int) -> int:
    """Most specific value consistent with both; raises on 0/1 conflict."""
    if a == TX:
        return b
    if b == TX:
        return a
    if a != b:
        raise ValueError("ternary meet of conflicting binary values")
    return a


def vector_str(values: Iterable[int]) -> str:
    """Render an iterable of ternary values as e.g. ``"01-1"``."""
    return "".join(_CHARS[v] for v in values)
