"""Backward justification of reset values (paper Sec. 5.2 machinery).

Two levels, mirroring the paper:

* **Local justification** (:func:`justify_gate`): given a required
  binary output value of one gate, find a ternary input vector that
  produces it, *selecting as many don't-cares as possible* — the paper's
  heuristic for avoiding conflicts in later steps and improving register
  sharing.  Exhaustive over the 3^n ternary vectors for narrow gates
  (n ≤ 4 after mapping, 81 candidates), BDD-backed for wider ones.

* **Cone (global) justification** (:func:`justify_cone`): given required
  values on several nets, find a ternary assignment to a cut of nets
  such that forward implication through the cone reproduces every
  requirement.  Implemented with BDDs, as in the paper.
"""

from __future__ import annotations

from itertools import product
from typing import Mapping, Sequence

from ..bdd import BDD, FALSE, TRUE
from ..netlist import Circuit
from ..netlist.cells import Gate
from .functions import eval_table
from .netfn import net_functions
from .ternary import T0, T1, TX

#: Gates up to this many inputs are justified by exhaustive ternary
#: enumeration; wider gates fall back to the BDD path.
MAX_ENUM_INPUTS = 4


def _ternary_vectors_by_dontcares(n: int):
    """All ternary vectors of length n, most don't-cares first."""
    vectors = sorted(
        product((T0, T1, TX), repeat=n),
        key=lambda v: -sum(1 for x in v if x == TX),
    )
    return vectors


def justify_gate(gate: Gate, required: int) -> list[int] | None:
    """Find input values making *gate* output exactly *required* (0/1).

    Returns the ternary input vector with the maximum number of
    don't-cares, or None if the gate cannot produce the value (constant
    gate of the other polarity).  ``required`` must be binary; X would
    mean "no requirement" and needs no justification.
    """
    if required not in (T0, T1):
        raise ValueError("justify_gate needs a binary required value")
    table = gate.truth_table()
    n = gate.n_inputs
    if n <= MAX_ENUM_INPUTS:
        for vec in _ternary_vectors_by_dontcares(n):
            if eval_table(table, vec) == required:
                return list(vec)
        return None
    # BDD fallback: a sat path of f (or ~f) is a partial assignment whose
    # unassigned variables are exactly the don't-cares.
    bdd = BDD()
    vs = [bdd.var(f"i{i}") for i in range(n)]
    f = bdd.from_truth_table(table, vs)
    target = f if required == T1 else bdd.not_(f)
    model = bdd.sat_one(target)
    if model is None:
        return None
    vec = [TX] * n
    for level, value in model.items():
        vec[level] = T1 if value else T0
    return vec


def justification_choices(gate: Gate, required: int) -> list[list[int]]:
    """All maximal-don't-care justifications (ties included), best first.

    Used by conflict resolution to try alternatives before escalating to
    global justification.  Only supported for enumerable gate widths.
    """
    if gate.n_inputs > MAX_ENUM_INPUTS:
        one = justify_gate(gate, required)
        return [one] if one is not None else []
    table = gate.truth_table()
    hits = [
        list(vec)
        for vec in _ternary_vectors_by_dontcares(gate.n_inputs)
        if eval_table(table, vec) == required
    ]
    return hits


def justify_cone(
    circuit: Circuit,
    required: Mapping[str, int],
    cut: set[str],
    prefer_dontcare: bool = True,
    assume: Mapping[str, int] | None = None,
) -> dict[str, int] | None:
    """Global justification over a logic cone.

    Args:
        circuit: the design (only the cone feeding the required nets is
            examined).
        required: net -> binary value constraints (X entries are ignored).
        cut: nets to solve for; they become free BDD variables.  Any
            required net must be expressible as a function of the cut
            (plus other nets, which stay free and end up X).
        assume: nets with already-committed binary values (e.g. reset
            values of registers outside the cut); X assumptions are
            ignored and the net is treated as uncontrolled.

    Returns:
        A ternary assignment for every net in *cut* (X = don't-care)
        whose forward implication satisfies all requirements, or None
        if no assignment exists.
    """
    hard = {net: val for net, val in required.items() if val != TX}
    if not hard:
        return {net: TX for net in cut}
    bdd = BDD()
    bindings = {}
    for net, val in (assume or {}).items():
        if net in cut or val == TX:
            continue
        bindings[net] = TRUE if val == T1 else FALSE
    fns = net_functions(circuit, list(hard), bdd, cut=set(cut), bindings=bindings)
    constraint = TRUE
    for net, val in hard.items():
        f = fns[net]
        constraint = bdd.and_(constraint, f if val == T1 else bdd.not_(f))
        if constraint == FALSE:
            return None
    # nets outside the cut (side inputs we do not control) must not be
    # relied upon: the justification has to hold for every value they
    # may take, so quantify them universally
    foreign = [
        level
        for level in bdd.support(constraint)
        if bdd.var_name(level) not in cut
    ]
    if foreign:
        constraint = bdd.forall(constraint, foreign)
        if constraint == FALSE:
            return None
    model = bdd.sat_one(constraint)
    if model is None:
        return None
    result = {net: TX for net in cut}
    name_of = bdd.var_names()
    for level, value in model.items():
        net = name_of[level]
        if net in result:
            result[net] = T1 if value else T0
    if not prefer_dontcare:
        for net, val in result.items():
            if val == TX:
                result[net] = T0
    return result


def implication_satisfies(
    circuit: Circuit,
    assignment: Mapping[str, int],
    required: Mapping[str, int],
) -> bool:
    """Check a justification: forward-implicate and compare.

    ``assignment`` provides cut values; every non-X requirement must be
    reproduced exactly.
    """
    from .simulate import eval_nets

    values = eval_nets(circuit, dict(assignment))
    for net, val in required.items():
        if val == TX:
            continue
        if values.get(net, TX) != val:
            return False
    return True
