"""Retiming graphs: the Leiserson–Saxe model and its multiple-class form.

A retiming graph ``G = (V, E, d, w)`` has a vertex per combinational
gate and per I/O port plus a *host* vertex modelling the environment
(paper Sec. 2).  Every edge records its register count ``w``; in the
*multiple-class* graph (paper Sec. 3.2) it additionally carries the
ordered register sequence ``l(e) = [l_1 .. l_w]`` where ``l_1`` is the
register closest to the edge's source and each register is tagged with
its class and its (s, a) reset values.

The same class serves both roles: plain (basic) graphs simply leave the
per-edge sequences as ``None``.  Algorithm layers on top:

* :mod:`repro.retime` — FEAS / min-period / min-area on weights only;
* :mod:`repro.mcretime` — class bounds, sharing transform, relocation.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Iterable, Iterator

#: Reserved vertex name for the environment host.
HOST = "$host"

#: Vertex kinds.  ``gate`` vertices are the only freely movable ones;
#: ``sep`` (separation, Sec. 4.2) and ``mirror`` (min-area fanout model)
#: vertices are synthetic; everything else has a fixed retiming value 0.
VERTEX_KINDS = ("gate", "input", "output", "host", "ctrl", "sep", "mirror")


class GraphError(Exception):
    """Raised on structural misuse of the retiming graph."""


@dataclass(frozen=True)
class RegInstance:
    """One register on an edge of the mc-graph.

    Attributes:
        cls: register-class id (index into the class table owned by the
            classifier; see :mod:`repro.mcretime.classes`).
        sval: synchronous reset value (ternary).
        aval: asynchronous reset value (ternary).
        origin: name of the circuit register this instance descends
            from, when known (debugging / reporting only).
    """

    cls: int
    sval: int = 2  # TX
    aval: int = 2  # TX
    origin: str | None = None

    def with_values(self, sval: int, aval: int) -> "RegInstance":
        """Copy with different reset values."""
        return replace(self, sval=sval, aval=aval)


@dataclass
class Vertex:
    """A retiming-graph vertex."""

    name: str
    delay: float = 0.0
    kind: str = "gate"

    def __post_init__(self) -> None:
        if self.kind not in VERTEX_KINDS:
            raise GraphError(f"unknown vertex kind {self.kind!r}")
        if self.delay < 0:
            raise GraphError(f"vertex {self.name!r} has negative delay")

    @property
    def movable(self) -> bool:
        """True iff retiming may assign this vertex a nonzero value.

        Separation vertices are movable within explicit bounds; host,
        ports and control-signal outputs are pinned at r = 0 (the paper
        does not allow registers to cross circuit inputs/outputs).
        """
        return self.kind in ("gate", "sep", "mirror")


@dataclass
class Edge:
    """A directed edge with a register count and optional sequence."""

    eid: int
    u: str
    v: str
    w: int = 0
    regs: list[RegInstance] | None = None

    def check(self) -> None:
        """Verify the weight/sequence invariant."""
        if self.w < 0:
            raise GraphError(f"edge {self.u}->{self.v} has negative weight")
        if self.regs is not None and len(self.regs) != self.w:
            raise GraphError(
                f"edge {self.u}->{self.v}: |regs|={len(self.regs)} != w={self.w}"
            )


class RetimingGraph:
    """Mutable retiming graph with multi-edge support."""

    def __init__(self, name: str = "g") -> None:
        self.name = name
        self.vertices: dict[str, Vertex] = {}
        self.edges: dict[int, Edge] = {}
        self._out: dict[str, list[int]] = {}
        self._in: dict[str, list[int]] = {}
        self._next_eid = 0
        #: Model the environment as combinational logic (the classic
        #: Leiserson–Saxe treatment, where critical paths may wrap
        #: through the host).  Circuit-derived graphs leave this False:
        #: the environment is sequential, so combinational propagation
        #: stops at the host.
        self.combinational_host: bool = False

    # ------------------------------------------------------------------ #
    # construction

    def add_vertex(self, name: str, delay: float = 0.0, kind: str = "gate") -> Vertex:
        """Create a vertex; names must be unique."""
        if name in self.vertices:
            raise GraphError(f"vertex {name!r} already exists")
        vertex = Vertex(name, delay, kind)
        self.vertices[name] = vertex
        self._out[name] = []
        self._in[name] = []
        return vertex

    def add_host(self) -> Vertex:
        """Create the host vertex (idempotent)."""
        if HOST in self.vertices:
            return self.vertices[HOST]
        return self.add_vertex(HOST, 0.0, "host")

    def add_edge(
        self,
        u: str,
        v: str,
        w: int = 0,
        regs: list[RegInstance] | None = None,
    ) -> Edge:
        """Create an edge; *regs*, when given, must have length *w*."""
        if u not in self.vertices or v not in self.vertices:
            raise GraphError(f"edge endpoints missing: {u!r} -> {v!r}")
        edge = Edge(self._next_eid, u, v, w, regs)
        edge.check()
        self._next_eid += 1
        self.edges[edge.eid] = edge
        self._out[u].append(edge.eid)
        self._in[v].append(edge.eid)
        return edge

    def remove_edge(self, eid: int) -> Edge:
        """Delete an edge by id."""
        edge = self.edges.pop(eid)
        self._out[edge.u].remove(eid)
        self._in[edge.v].remove(eid)
        return edge

    # ------------------------------------------------------------------ #
    # queries

    def out_edges(self, v: str) -> list[Edge]:
        """Edges leaving *v*."""
        return [self.edges[e] for e in self._out[v]]

    def in_edges(self, v: str) -> list[Edge]:
        """Edges entering *v*."""
        return [self.edges[e] for e in self._in[v]]

    def successors(self, v: str) -> list[str]:
        """Distinct successor vertex names."""
        seen: dict[str, None] = {}
        for e in self._out[v]:
            seen.setdefault(self.edges[e].v)
        return list(seen)

    def predecessors(self, v: str) -> list[str]:
        """Distinct predecessor vertex names."""
        seen: dict[str, None] = {}
        for e in self._in[v]:
            seen.setdefault(self.edges[e].u)
        return list(seen)

    def iter_edges(self) -> Iterator[Edge]:
        """All edges in id order."""
        return iter(sorted(self.edges.values(), key=lambda e: e.eid))

    def total_weight(self) -> int:
        """Sum of edge weights (the unshared register count)."""
        return sum(e.w for e in self.edges.values())

    def is_multiclass(self) -> bool:
        """True iff any edge carries a register sequence."""
        return any(e.regs is not None for e in self.edges.values())

    def movable_vertices(self) -> list[str]:
        """Names of vertices retiming may move."""
        return [v.name for v in self.vertices.values() if v.movable]

    def gate_vertices(self) -> list[str]:
        """Names of real gate vertices."""
        return [v.name for v in self.vertices.values() if v.kind == "gate"]

    # ------------------------------------------------------------------ #
    # invariants and transforms

    def check(self) -> None:
        """Verify structural invariants (weights, sequences, indexes)."""
        for edge in self.edges.values():
            edge.check()
            if edge.u not in self.vertices or edge.v not in self.vertices:
                raise GraphError(f"dangling edge {edge.u}->{edge.v}")
        for v, eids in self._out.items():
            for eid in eids:
                if self.edges[eid].u != v:
                    raise GraphError("out-index corrupt")
        for v, eids in self._in.items():
            for eid in eids:
                if self.edges[eid].v != v:
                    raise GraphError("in-index corrupt")

    def copy(self, name: str | None = None) -> "RetimingGraph":
        """Deep copy preserving edge ids (register sequences are copied
        lists), so callers can correlate edges across transformed copies."""
        other = RetimingGraph(name or self.name)
        other.combinational_host = self.combinational_host
        for v in self.vertices.values():
            other.add_vertex(v.name, v.delay, v.kind)
        for edge in self.iter_edges():
            regs = list(edge.regs) if edge.regs is not None else None
            clone = Edge(edge.eid, edge.u, edge.v, edge.w, regs)
            other.edges[clone.eid] = clone
            other._out[clone.u].append(clone.eid)
            other._in[clone.v].append(clone.eid)
        other._next_eid = self._next_eid
        return other

    def retimed_weight(self, edge: Edge, r: dict[str, int]) -> int:
        """``w_r(e) = w(e) + r(v) − r(u)`` (paper Sec. 2)."""
        return edge.w + r.get(edge.v, 0) - r.get(edge.u, 0)

    def apply_retiming(self, r: dict[str, int]) -> "RetimingGraph":
        """Return a weight-only copy with weights updated by *r*.

        Register sequences are dropped: after an arbitrary relabeling the
        class sequences are no longer derivable locally (that is the job
        of relocation, which replays individual moves on the circuit).
        Raises :class:`GraphError` if any weight would become negative.
        """
        other = RetimingGraph(self.name)
        for v in self.vertices.values():
            other.add_vertex(v.name, v.delay, v.kind)
        for edge in self.iter_edges():
            w = self.retimed_weight(edge, r)
            if w < 0:
                raise GraphError(
                    f"retiming illegal: edge {edge.u}->{edge.v} weight {w}"
                )
            other.add_edge(edge.u, edge.v, w)
        return other

    def compiled(self):
        """Snapshot this graph into a :class:`repro.kernels.
        compiled_graph.CompiledGraph` (flat integer arrays for the hot
        sweeps).  The snapshot does not track later mutations — compile
        once per solver invocation.
        """
        from ..kernels.compiled_graph import compile_graph

        return compile_graph(self)

    def zero_weight_cyclic(self) -> bool:
        """True iff some cycle has zero total weight (unretimeable loop)."""
        # Kahn peeling on the subgraph of zero-weight edges
        zero_out: dict[str, list[str]] = {v: [] for v in self.vertices}
        indeg: dict[str, int] = {v: 0 for v in self.vertices}
        for edge in self.edges.values():
            if edge.w == 0:
                zero_out[edge.u].append(edge.v)
                indeg[edge.v] += 1
        queue = [v for v, d in indeg.items() if d == 0]
        seen = 0
        while queue:
            v = queue.pop()
            seen += 1
            for s in zero_out[v]:
                indeg[s] -= 1
                if indeg[s] == 0:
                    queue.append(s)
        return seen != len(self.vertices)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<RetimingGraph {self.name!r}: {len(self.vertices)} vertices, "
            f"{len(self.edges)} edges, w={self.total_weight()}>"
        )
