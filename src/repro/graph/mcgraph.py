"""Valid multiple-class retiming steps on the mc-graph (paper Fig. 3).

A *backward* step at vertex ``v`` requires a complete layer of
*compatible* registers at the source side of every fanout edge: the
first register of each fanout edge must exist and belong to one class.
The step removes that layer and inserts a fresh layer of the same class
at the sink side of every fanin edge.  A *forward* step is symmetric
(last register of every fanin edge, inserted at the source side of the
fanout edges).

Reset values are deliberately ignored here (paper Sec. 4.1: bounds are
computed without considering reset values; justification happens later,
during relocation).  The inserted instances carry X values.
"""

from __future__ import annotations

from ..logic.ternary import TX
from .retiming_graph import GraphError, RegInstance, RetimingGraph


def _require_mc(graph: RetimingGraph, v: str) -> None:
    if v not in graph.vertices:
        raise GraphError(f"no vertex {v!r}")


def backward_layer_class(graph: RetimingGraph, v: str) -> int | None:
    """Class of the layer a backward step at *v* would move, or None.

    None means the step is invalid: *v* is not movable, has no fanout,
    some fanout edge is empty, or the leading registers disagree on the
    class.
    """
    _require_mc(graph, v)
    vertex = graph.vertices[v]
    if not vertex.movable:
        return None
    outs = graph.out_edges(v)
    ins = graph.in_edges(v)
    if not outs or not ins:
        return None
    cls: int | None = None
    for edge in outs:
        if edge.regs is None or not edge.regs:
            return None
        first = edge.regs[0]
        if cls is None:
            cls = first.cls
        elif first.cls != cls:
            return None
    return cls


def forward_layer_class(graph: RetimingGraph, v: str) -> int | None:
    """Class of the layer a forward step at *v* would move, or None."""
    _require_mc(graph, v)
    vertex = graph.vertices[v]
    if not vertex.movable:
        return None
    outs = graph.out_edges(v)
    ins = graph.in_edges(v)
    if not outs or not ins:
        return None
    cls: int | None = None
    for edge in ins:
        if edge.regs is None or not edge.regs:
            return None
        last = edge.regs[-1]
        if cls is None:
            cls = last.cls
        elif last.cls != cls:
            return None
    return cls


def backward_block_reason(graph: RetimingGraph, v: str) -> dict | None:
    """Why a backward mc-step at *v* is invalid, or None when it is valid.

    Mirrors :func:`backward_layer_class`'s None-conditions exactly, but
    names the concrete blocker: the empty fanout edge, or the pair of
    fanout edges whose leading register classes disagree.  This is what
    ``mcretime explain --why-stuck`` reports for a gate clamped at its
    ``r_max^mc`` bound.
    """
    return _block_reason(graph, v, "backward")


def forward_block_reason(graph: RetimingGraph, v: str) -> dict | None:
    """Why a forward mc-step at *v* is invalid, or None when it is valid.

    The ``r_min^mc`` counterpart of :func:`backward_block_reason` (last
    register of every fanin edge instead of first of every fanout)."""
    return _block_reason(graph, v, "forward")


def _block_reason(graph: RetimingGraph, v: str, direction: str) -> dict | None:
    _require_mc(graph, v)
    vertex = graph.vertices[v]
    if not vertex.movable:
        return {"direction": direction, "reason": "not_movable", "kind": vertex.kind}
    outs = graph.out_edges(v)
    ins = graph.in_edges(v)
    if not outs:
        return {"direction": direction, "reason": "no_fanout"}
    if not ins:
        return {"direction": direction, "reason": "no_fanin"}
    edges = outs if direction == "backward" else ins
    slot = 0 if direction == "backward" else -1
    cls: int | None = None
    cls_edge: str | None = None
    for edge in edges:
        label = f"{edge.u}->{edge.v}"
        if edge.regs is None or not edge.regs:
            return {"direction": direction, "reason": "empty_layer", "edge": label}
        inst = edge.regs[slot]
        if cls is None:
            cls = inst.cls
            cls_edge = label
        elif inst.cls != cls:
            return {
                "direction": direction,
                "reason": "class_mismatch",
                "edges": [
                    {"edge": cls_edge, "cls": cls},
                    {"edge": label, "cls": inst.cls},
                ],
            }
    return None  # a step in this direction is valid


def move_backward(graph: RetimingGraph, v: str) -> int:
    """Perform one backward mc-step at *v*; returns the moved class."""
    cls = backward_layer_class(graph, v)
    if cls is None:
        raise GraphError(f"invalid backward mc-step at {v!r}")
    for edge in graph.out_edges(v):
        edge.regs.pop(0)
        edge.w -= 1
    fresh = RegInstance(cls, TX, TX)
    for edge in graph.in_edges(v):
        if edge.regs is None:
            edge.regs = []
        edge.regs.append(fresh)
        edge.w += 1
    return cls


def move_forward(graph: RetimingGraph, v: str) -> int:
    """Perform one forward mc-step at *v*; returns the moved class."""
    cls = forward_layer_class(graph, v)
    if cls is None:
        raise GraphError(f"invalid forward mc-step at {v!r}")
    for edge in graph.in_edges(v):
        edge.regs.pop()
        edge.w -= 1
    fresh = RegInstance(cls, TX, TX)
    for edge in graph.out_edges(v):
        if edge.regs is None:
            edge.regs = []
        edge.regs.insert(0, fresh)
        edge.w += 1
    return cls
