"""Translate circuits into multiple-class retiming graphs (paper Sec. 3.2).

Construction rules:

* one vertex per combinational gate (delay = cell delay + output-net
  delay under the chosen model), per primary input, per primary output;
* a host vertex with zero-weight edges to all inputs and from all
  outputs;
* one edge per *connection* (gate pin / output), carrying the ordered
  sequence of registers found between the driving cell and the sink —
  ``l_1`` closest to the source, as in Fig. 2b;
* for every register control signal except clocks, a synthetic *control
  output vertex* with an edge from the signal's generating vertex, so
  the signal keeps its temporal behaviour through retiming (Sec. 3.2);
* constant-net connections produce no edges (constants are timeless).

Classification is pluggable: the builder takes any callable mapping a
:class:`~repro.netlist.cells.Register` to a class id.  The semantic
(BDD-equivalence) classifier lives in :mod:`repro.mcretime.classes`;
:func:`syntactic_classifier` here compares control nets by name only.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from ..netlist import Circuit, Register
from ..netlist.signals import is_const
from ..timing.delay_models import DelayModel, UNIT_DELAY
from .retiming_graph import HOST, GraphError, RegInstance, RetimingGraph


def syntactic_classifier(circuit: Circuit) -> Callable[[Register], int]:
    """Classifier comparing control tuples by net *name* (no BDDs).

    Sound but potentially pessimistic: logically equivalent control nets
    with different names land in different classes.
    """
    table: dict[tuple, int] = {}

    def classify(reg: Register) -> int:
        key = (reg.clk, reg.en, reg.sr, reg.ar)
        if key not in table:
            table[key] = len(table)
        return table[key]

    return classify


@dataclass
class BuildResult:
    """The mc-graph plus the circuit↔graph correspondence."""

    graph: RetimingGraph
    #: control net -> its ctrl output vertex name
    ctrl_vertices: dict[str, str] = field(default_factory=dict)
    #: primary-output position -> its output vertex name
    out_vertices: dict[int, str] = field(default_factory=dict)
    #: register name -> class id (as assigned during the build)
    reg_class: dict[str, int] = field(default_factory=dict)

    @property
    def n_classes(self) -> int:
        """Number of distinct register classes present."""
        return len(set(self.reg_class.values())) if self.reg_class else 0


def trace_chain(circuit: Circuit, net: str) -> tuple[str, str, list[Register]]:
    """Walk from *net* back through registers to the generating cell.

    Returns ``(kind, name, regs)`` where kind is ``"gate"``, ``"input"``
    or ``"const"``; *regs* are ordered source-closest first.

    Raises :class:`GraphError` on a pure register loop (a cycle of
    registers with no combinational cell): the retiming-graph model has
    no vertex to anchor such a chain on, and the loop computes nothing —
    sweep it (or break it with a gate) before building the graph.
    """
    regs: list[Register] = []
    seen: set[str] = set()
    current = net
    while True:
        drv = circuit.driver(current)
        if drv is None:
            raise GraphError(f"net {current!r} is undriven")
        kind, name = drv
        if kind == "register":
            if name in seen:
                raise GraphError(
                    f"pure register loop through {name!r} (no combinational "
                    "cell on the cycle) — unsupported by the retiming graph"
                )
            seen.add(name)
            reg = circuit.registers[name]
            regs.append(reg)
            current = reg.d
        else:
            regs.reverse()
            return kind, name, regs


def build_mcgraph(
    circuit: Circuit,
    delay_model: DelayModel = UNIT_DELAY,
    classify: Callable[[Register], int] | None = None,
) -> BuildResult:
    """Build the multiple-class retiming graph of *circuit*."""
    if classify is None:
        classify = syntactic_classifier(circuit)
    graph = RetimingGraph(circuit.name)
    graph.add_host()
    result = BuildResult(graph)

    fanout_count = {net: len(circuit.readers(net)) for net in circuit.nets()}
    for name in circuit.inputs:
        graph.add_vertex(name, 0.0, "input")
        graph.add_edge(HOST, name, 0)
    for gate in circuit.gates.values():
        delay = delay_model.gate_delay(gate) + delay_model.net_delay(
            fanout_count.get(gate.output, 0)
        )
        graph.add_vertex(gate.name, delay, "gate")

    def instances(regs: list[Register]) -> list[RegInstance]:
        out = []
        for reg in regs:
            cls = classify(reg)
            result.reg_class[reg.name] = cls
            out.append(RegInstance(cls, reg.sval, reg.aval, origin=reg.name))
        return out

    def connect(net: str, sink_vertex: str) -> None:
        kind, name, regs = trace_chain(circuit, net)
        if kind == "const":
            return
        source = name  # input vertex name == net name; gate vertex == gate name
        graph.add_edge(source, sink_vertex, len(regs), instances(regs))

    for gate in circuit.gates.values():
        for net in gate.inputs:
            if not is_const(net):
                connect(net, gate.name)

    for index, net in enumerate(circuit.outputs):
        vertex = f"$out{index}_{net}"
        graph.add_vertex(vertex, 0.0, "output")
        result.out_vertices[index] = vertex
        connect(net, vertex)
        graph.add_edge(vertex, HOST, 0)

    for net in circuit.control_nets():
        vertex = f"$ctrl_{net}"
        graph.add_vertex(vertex, 0.0, "ctrl")
        result.ctrl_vertices[net] = vertex
        connect(net, vertex)
        graph.add_edge(vertex, HOST, 0)

    graph.check()
    return result
