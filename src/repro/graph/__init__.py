"""Retiming graphs (basic + multiple-class) and circuit translation."""

from .build import BuildResult, build_mcgraph, syntactic_classifier, trace_chain
from .mcgraph import (
    backward_layer_class,
    forward_layer_class,
    move_backward,
    move_forward,
)
from .retiming_graph import (
    HOST,
    Edge,
    GraphError,
    RegInstance,
    RetimingGraph,
    Vertex,
)

__all__ = [
    "BuildResult",
    "Edge",
    "GraphError",
    "HOST",
    "RegInstance",
    "RetimingGraph",
    "Vertex",
    "backward_layer_class",
    "build_mcgraph",
    "forward_layer_class",
    "move_backward",
    "move_forward",
    "syntactic_classifier",
    "trace_chain",
]
