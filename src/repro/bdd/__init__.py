"""From-scratch ROBDD engine (unique table + ITE + computed cache)."""

from .manager import BDD, BDDError, FALSE, TRUE

__all__ = ["BDD", "BDDError", "FALSE", "TRUE"]
