"""A from-scratch reduced ordered binary decision diagram (ROBDD) engine.

The paper implements backward justification "using BDDs" (Sec. 5.2) and
defines register classes up to *logical equivalence* of control signals
(Def. 1).  Both need a canonical function representation; this module
provides it with the classic Bryant construction:

* a **unique table** guaranteeing one node per (var, low, high) triple,
  so semantic equality is pointer equality;
* an **ITE** (if-then-else) core with a computed-table cache;
* derived operations (AND/OR/XOR/NOT via complement-free encoding),
  restriction, composition, existential/universal quantification,
  satisfiability helpers and model counting.

Nodes are integers (indexes into flat arrays) for speed; 0 and 1 are the
terminal FALSE/TRUE nodes.  Variables are ordered by their integer index
(callers control the order by the sequence of :meth:`BDD.var` calls).
"""

from __future__ import annotations

from typing import Callable, Iterable, Iterator, Sequence


class BDDError(Exception):
    """Raised on API misuse (unknown variables, foreign nodes, ...)."""


#: Terminal node encoding logic FALSE.
FALSE: int = 0
#: Terminal node encoding logic TRUE.
TRUE: int = 1

_TERMINAL_LEVEL = 1 << 30  # pseudo-level of terminals; below every variable


class BDD:
    """ROBDD manager.  All node handles are ints owned by one manager."""

    def __init__(self) -> None:
        # parallel arrays: node i has variable level, low child, high child
        self._level: list[int] = [_TERMINAL_LEVEL, _TERMINAL_LEVEL]
        self._low: list[int] = [0, 1]
        self._high: list[int] = [0, 1]
        self._unique: dict[tuple[int, int, int], int] = {}
        self._ite_cache: dict[tuple[int, int, int], int] = {}
        self._var_names: list[str] = []
        self._var_index: dict[str, int] = {}

    # ------------------------------------------------------------------ #
    # variables

    def var(self, name: str) -> int:
        """Return (creating if needed) the node for variable *name*.

        Variable order is creation order: earlier variables are tested
        first (closer to the root).
        """
        idx = self._var_index.get(name)
        if idx is None:
            idx = len(self._var_names)
            self._var_names.append(name)
            self._var_index[name] = idx
        return self._mk(idx, FALSE, TRUE)

    def nvar(self, name: str) -> int:
        """The negation of variable *name* (convenience)."""
        return self.not_(self.var(name))

    def var_name(self, level: int) -> str:
        """Name of the variable at *level*."""
        return self._var_names[level]

    def var_count(self) -> int:
        """Number of declared variables."""
        return len(self._var_names)

    def var_names(self) -> list[str]:
        """All variable names in order."""
        return list(self._var_names)

    def level_of(self, node: int) -> int:
        """Variable level tested at *node* (terminals return a sentinel)."""
        return self._level[node]

    # ------------------------------------------------------------------ #
    # node construction

    def _mk(self, level: int, low: int, high: int) -> int:
        if low == high:
            return low
        key = (level, low, high)
        node = self._unique.get(key)
        if node is None:
            node = len(self._level)
            self._level.append(level)
            self._low.append(low)
            self._high.append(high)
            self._unique[key] = node
        return node

    def node(self, u: int) -> tuple[int, int, int]:
        """Decompose a non-terminal node into (level, low, high)."""
        if u <= TRUE:
            raise BDDError("terminal nodes have no cofactors")
        return self._level[u], self._low[u], self._high[u]

    # ------------------------------------------------------------------ #
    # the ITE core

    def ite(self, f: int, g: int, h: int) -> int:
        """If-then-else: ``f ? g : h`` — the universal connective."""
        # terminal short-cuts
        if f == TRUE:
            return g
        if f == FALSE:
            return h
        if g == h:
            return g
        if g == TRUE and h == FALSE:
            return f
        key = (f, g, h)
        cached = self._ite_cache.get(key)
        if cached is not None:
            return cached
        level = min(self._level[f], self._level[g], self._level[h])
        f0, f1 = self._cofactors(f, level)
        g0, g1 = self._cofactors(g, level)
        h0, h1 = self._cofactors(h, level)
        result = self._mk(
            level, self.ite(f0, g0, h0), self.ite(f1, g1, h1)
        )
        self._ite_cache[key] = result
        return result

    def _cofactors(self, u: int, level: int) -> tuple[int, int]:
        if self._level[u] == level:
            return self._low[u], self._high[u]
        return u, u

    # ------------------------------------------------------------------ #
    # boolean connectives

    def not_(self, f: int) -> int:
        """Logical negation."""
        return self.ite(f, FALSE, TRUE)

    def and_(self, f: int, g: int) -> int:
        """Logical conjunction."""
        return self.ite(f, g, FALSE)

    def or_(self, f: int, g: int) -> int:
        """Logical disjunction."""
        return self.ite(f, TRUE, g)

    def xor(self, f: int, g: int) -> int:
        """Exclusive or."""
        return self.ite(f, self.not_(g), g)

    def xnor(self, f: int, g: int) -> int:
        """Equivalence (biconditional)."""
        return self.ite(f, g, self.not_(g))

    def implies(self, f: int, g: int) -> int:
        """Material implication f -> g."""
        return self.ite(f, g, TRUE)

    def and_all(self, nodes: Iterable[int]) -> int:
        """Conjunction over an iterable (TRUE for empty)."""
        acc = TRUE
        for n in nodes:
            acc = self.and_(acc, n)
            if acc == FALSE:
                break
        return acc

    def or_all(self, nodes: Iterable[int]) -> int:
        """Disjunction over an iterable (FALSE for empty)."""
        acc = FALSE
        for n in nodes:
            acc = self.or_(acc, n)
            if acc == TRUE:
                break
        return acc

    def from_truth_table(self, table: int, inputs: Sequence[int]) -> int:
        """Build the function of a LUT: ``inputs[i]`` is minterm bit i.

        *inputs* are BDD nodes (typically variables, but any functions
        work — this doubles as function composition for gate networks).
        """
        inputs = list(inputs)
        n = len(inputs)
        if n == 0:
            return TRUE if table & 1 else FALSE
        half = 1 << (n - 1)
        mask = (1 << half) - 1
        low = self.from_truth_table(table & mask, inputs[:-1])
        high = self.from_truth_table((table >> half) & mask, inputs[:-1])
        return self.ite(inputs[-1], high, low)

    # ------------------------------------------------------------------ #
    # structure-walking operations

    def restrict(self, f: int, assignment: dict[int, bool]) -> int:
        """Cofactor *f* by fixing variable levels to constants."""
        cache: dict[int, int] = {}

        def walk(u: int) -> int:
            if u <= TRUE:
                return u
            hit = cache.get(u)
            if hit is not None:
                return hit
            level, low, high = self._level[u], self._low[u], self._high[u]
            if level in assignment:
                result = walk(high if assignment[level] else low)
            else:
                result = self._mk(level, walk(low), walk(high))
            cache[u] = result
            return result

        return walk(f)

    def compose(self, f: int, level: int, g: int) -> int:
        """Substitute function *g* for the variable at *level* inside *f*."""
        cache: dict[int, int] = {}

        def walk(u: int) -> int:
            if u <= TRUE:
                return u
            hit = cache.get(u)
            if hit is not None:
                return hit
            lv, low, high = self._level[u], self._low[u], self._high[u]
            if lv == level:
                result = self.ite(g, high, low)
            elif lv > level:
                result = u  # variable already below the substituted one
            else:
                result = self.ite(self._mk(lv, FALSE, TRUE), walk(high), walk(low))
            cache[u] = result
            return result

        return walk(f)

    def exists(self, f: int, levels: Iterable[int]) -> int:
        """Existential quantification over the given variable levels."""
        level_set = set(levels)
        cache: dict[int, int] = {}

        def walk(u: int) -> int:
            if u <= TRUE:
                return u
            hit = cache.get(u)
            if hit is not None:
                return hit
            lv, low, high = self._level[u], self._low[u], self._high[u]
            lo, hi = walk(low), walk(high)
            if lv in level_set:
                result = self.or_(lo, hi)
            else:
                result = self._mk(lv, lo, hi)
            cache[u] = result
            return result

        return walk(f)

    def forall(self, f: int, levels: Iterable[int]) -> int:
        """Universal quantification over the given variable levels."""
        return self.not_(self.exists(self.not_(f), levels))

    def support(self, f: int) -> set[int]:
        """Variable levels the function actually depends on."""
        seen: set[int] = set()
        result: set[int] = set()
        stack = [f]
        while stack:
            u = stack.pop()
            if u <= TRUE or u in seen:
                continue
            seen.add(u)
            result.add(self._level[u])
            stack.append(self._low[u])
            stack.append(self._high[u])
        return result

    # ------------------------------------------------------------------ #
    # satisfiability and counting

    def is_tautology(self, f: int) -> bool:
        """True iff *f* is the constant TRUE."""
        return f == TRUE

    def is_contradiction(self, f: int) -> bool:
        """True iff *f* is the constant FALSE."""
        return f == FALSE

    def equiv(self, f: int, g: int) -> bool:
        """Semantic equality — pointer equality by canonicity."""
        return f == g

    def sat_one(self, f: int) -> dict[int, bool] | None:
        """One satisfying partial assignment (level -> bool), or None.

        Unmentioned levels are don't-cares.
        """
        if f == FALSE:
            return None
        assignment: dict[int, bool] = {}
        u = f
        while u > TRUE:
            level, low, high = self._level[u], self._low[u], self._high[u]
            if low != FALSE:
                assignment[level] = False
                u = low
            else:
                assignment[level] = True
                u = high
        return assignment

    def sat_count(self, f: int, n_vars: int | None = None) -> int:
        """Number of satisfying assignments over *n_vars* variables.

        ``n_vars`` defaults to the manager's declared variable count and
        must cover the support of *f*.
        """
        if n_vars is None:
            n_vars = len(self._var_names)
        support = self.support(f)
        if support and max(support) >= n_vars:
            raise BDDError("n_vars smaller than the function's support")

        def lv(u: int) -> int:
            return n_vars if u <= TRUE else self._level[u]

        cache: dict[int, int] = {}

        def walk(u: int) -> int:
            # satisfying count over variables at levels [level(u), n_vars)
            if u == FALSE:
                return 0
            if u == TRUE:
                return 1
            hit = cache.get(u)
            if hit is not None:
                return hit
            level, low, high = self._level[u], self._low[u], self._high[u]
            result = walk(low) * (1 << (lv(low) - level - 1)) + walk(high) * (
                1 << (lv(high) - level - 1)
            )
            cache[u] = result
            return result

        return walk(f) * (1 << lv(f))

    def all_sat(self, f: int, levels: Sequence[int]) -> Iterator[dict[int, bool]]:
        """Enumerate complete assignments over *levels* satisfying *f*.

        Intended for small cones (justification); exponential in general.
        """
        level_list = sorted(levels)

        def rec(u: int, pos: int, partial: dict[int, bool]) -> Iterator[dict[int, bool]]:
            if pos == len(level_list):
                # remaining (foreign) variables are free; any non-FALSE
                # residue is extendable to a model
                if u != FALSE:
                    yield dict(partial)
                return
            lv = level_list[pos]
            for value in (False, True):
                partial[lv] = value
                restricted = self.restrict(u, {lv: value})
                if restricted != FALSE:
                    yield from rec(restricted, pos + 1, partial)
            del partial[lv]

        if f != FALSE:
            yield from rec(f, 0, {})

    # ------------------------------------------------------------------ #
    # introspection

    def size(self, f: int) -> int:
        """Number of nodes reachable from *f* (including terminals)."""
        seen: set[int] = set()
        stack = [f]
        while stack:
            u = stack.pop()
            if u in seen:
                continue
            seen.add(u)
            if u > TRUE:
                stack.append(self._low[u])
                stack.append(self._high[u])
        return len(seen)

    def node_count(self) -> int:
        """Total nodes allocated by this manager."""
        return len(self._level)

    def to_expr(self, f: int) -> str:
        """Human-readable nested ITE rendering (for debugging/tests)."""
        if f == FALSE:
            return "0"
        if f == TRUE:
            return "1"
        level, low, high = self.node(f)
        name = self._var_names[level]
        return f"ite({name}, {self.to_expr(high)}, {self.to_expr(low)})"
