"""BDD sweeping: merge functionally equivalent gates.

Structural hashing (:func:`repro.opt.passes.share_structural`) only
merges gates with identical inputs; BDD sweeping catches *semantic*
duplicates — different structures computing the same function of the
primary inputs and register outputs (or its complement, which is folded
through an inverter-aware rewrite of downstream readers... kept simple
here: complement pairs are left alone, only exact duplicates merge).

Guarded by a node budget: if the manager exceeds it mid-build, the pass
stops merging deeper cones and returns what it has — sweeping is an
optimisation, never a requirement.
"""

from __future__ import annotations

from ..bdd import BDD
from ..netlist import Circuit
from ..netlist.signals import CONST0, CONST1, const_net, is_const


def sweep_equivalent_gates(
    circuit: Circuit, node_budget: int = 200_000
) -> int:
    """Merge gates computing identical functions; returns #merged.

    Gates reduced to constants are replaced by the constant nets.
    Iterates in topological order so upstream merges simplify
    downstream functions before they are compared.
    """
    bdd = BDD()
    functions: dict[str, int] = {}
    representative: dict[int, str] = {}
    merged = 0

    def fn_of(net: str) -> int:
        if net == CONST0:
            return 0
        if net == CONST1:
            return 1
        hit = functions.get(net)
        if hit is not None:
            return hit
        return bdd.var(net)  # cut: PI, register Q, or budget-skipped

    for gate in circuit.topo_gates():
        if gate.name not in circuit.gates:
            continue
        if bdd.node_count() > node_budget:
            break
        ins = [fn_of(n) for n in gate.inputs]
        f = bdd.from_truth_table(gate.truth_table(), ins)
        out = gate.output
        if f <= 1:  # constant gate
            circuit.remove_gate(gate.name)
            circuit.replace_net(out, const_net(f))
            merged += 1
            continue
        keeper = representative.get(f)
        if keeper is None:
            representative[f] = out
            functions[out] = f
            continue
        circuit.remove_gate(gate.name)
        circuit.replace_net(out, keeper)
        merged += 1
    return merged
