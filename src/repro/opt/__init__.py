"""Technology-independent logic optimisation passes."""

from .bdd_sweep import sweep_equivalent_gates
from .passes import (
    collapse_buffers,
    optimize,
    propagate_constants,
    share_structural,
    sweep_dead,
)

__all__ = [
    "collapse_buffers",
    "optimize",
    "propagate_constants",
    "share_structural",
    "sweep_dead",
    "sweep_equivalent_gates",
]
