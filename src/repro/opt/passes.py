"""Technology-independent logic optimisation passes.

The paper's synthesis script runs "logic synthesis, optimization and
mapping"; these passes are the optimization stage.  All passes take a
circuit and mutate it in place, returning the number of changes, so
flows can iterate to a fixed point with :func:`optimize`.

Passes:

* :func:`propagate_constants` — fold constant inputs into gate tables,
  replace constant gates by the constant nets;
* :func:`collapse_buffers` — bypass BUF gates and single-input identity
  LUTs (double inverters collapse via table folding + this pass);
* :func:`share_structural` — merge gates with identical (function,
  inputs) signatures (structural hashing);
* :func:`sweep_dead` — remove gates and registers that reach no primary
  output or register control pin.
"""

from __future__ import annotations

from ..netlist import Circuit, GateFn
from ..netlist.signals import const_net, is_const


def propagate_constants(circuit: Circuit) -> int:
    """Fold constant inputs; replace constant-output gates by constants.

    Iterates in topological order so constants flow forward in one call.
    """
    changes = 0
    for gate in circuit.topo_gates():
        if gate.name not in circuit.gates:
            continue
        table = gate.truth_table()
        n = gate.n_inputs
        # cofactor constant pins out of the table, highest pin first so
        # lower pin indexes stay valid
        for pin in range(n - 1, -1, -1):
            net = gate.inputs[pin]
            if not is_const(net):
                continue
            value = 1 if net == const_net(1) else 0
            table = _cofactor(table, len(gate.inputs), pin, value)
            gate.inputs.pop(pin)
            changes += 1
        if len(gate.inputs) != n:
            gate.fn = GateFn.LUT
            gate.table = table
        const = gate.is_constant()
        if const is not None:
            out = gate.output
            circuit.remove_gate(gate.name)
            circuit.replace_net(out, const_net(const))
            changes += 1
    return changes


def _cofactor(table: int, n: int, pin: int, value: int) -> int:
    """Restrict truth table to pin=value, dropping the pin."""
    result = 0
    out_bit = 0
    for minterm in range(1 << n):
        if (minterm >> pin) & 1 != value:
            continue
        if (table >> minterm) & 1:
            result |= 1 << out_bit
        out_bit += 1
    return result


def collapse_buffers(circuit: Circuit) -> int:
    """Collapse 1-input gate chains; bypass identity gates.

    A 1-input gate whose driver is also a 1-input gate absorbs the
    driver's function (so NOT∘NOT becomes the identity), then every
    identity gate is bypassed.  Dead drivers are left for
    :func:`sweep_dead`.
    """
    changes = 0
    for gate in circuit.topo_gates():
        if gate.name not in circuit.gates or gate.n_inputs != 1:
            continue
        driver = circuit.driver_gate(gate.inputs[0])
        while driver is not None and driver.n_inputs == 1:
            h = driver.truth_table()
            g = gate.truth_table()
            folded = ((g >> (h & 1)) & 1) | (((g >> ((h >> 1) & 1)) & 1) << 1)
            gate.fn = GateFn.LUT
            gate.table = folded
            gate.inputs[0] = driver.inputs[0]
            changes += 1
            driver = circuit.driver_gate(gate.inputs[0])
    for gate in list(circuit.gates.values()):
        if gate.n_inputs != 1:
            continue
        if gate.truth_table() != 0b10:  # not the identity function
            continue
        source = gate.inputs[0]
        out = gate.output
        if _bypass_closes_register_ring(circuit, source, out):
            # an identity gate between a register Q and a register D may
            # be the only combinational cell on a sequential loop; bypassing
            # it would create a pure register ring, which the retiming
            # graph (rightly) rejects — keep the buffer as the anchor
            continue
        circuit.remove_gate(gate.name)
        circuit.replace_net(out, source)
        changes += 1
    return changes


def _bypass_closes_register_ring(
    circuit: Circuit, source: str, out: str
) -> bool:
    """Would rewiring readers of *out* to *source* create a cycle of
    registers with no combinational cell on it?"""
    reg_by_q = {r.q: r for r in circuit.registers.values()}
    if source not in reg_by_q:
        return False
    victims = [
        circuit.registers[name]
        for kind, name, pin in circuit.readers(out)
        if kind == "register" and pin == 0
    ]
    if not victims:
        return False
    # walk the register-only chain upstream of `source`; if it reaches a
    # victim register, the bypass closes a pure ring
    seen: set[str] = set()
    reg = reg_by_q[source]
    while reg is not None and reg.name not in seen:
        seen.add(reg.name)
        reg = reg_by_q.get(reg.d)
    victim_names = {r.name for r in victims}
    return bool(victim_names & seen)


def share_structural(circuit: Circuit) -> int:
    """Merge gates with identical function and input nets."""
    changes = 0
    seen: dict[tuple, str] = {}
    for gate in circuit.topo_gates():
        if gate.name not in circuit.gates:
            continue
        key = (gate.truth_table(), tuple(gate.inputs))
        keeper = seen.get(key)
        if keeper is None:
            seen[key] = gate.name
            continue
        keep_out = circuit.gates[keeper].output
        out = gate.output
        circuit.remove_gate(gate.name)
        circuit.replace_net(out, keep_out)
        changes += 1
    return changes


def sweep_dead(circuit: Circuit) -> int:
    """Remove logic unreachable (backward) from the primary outputs.

    Marks nets by walking fanin cones from the outputs, through both
    gates and registers (D, clock, and control pins).  Everything
    unmarked — including self-sustaining register rings that no output
    observes — is deleted.
    """
    marked: set[str] = set()
    work = list(circuit.outputs)
    while work:
        net = work.pop()
        if net in marked:
            continue
        marked.add(net)
        gate = circuit.driver_gate(net)
        if gate is not None:
            work.extend(gate.inputs)
            continue
        reg = circuit.driver_register(net)
        if reg is not None:
            work.append(reg.d)
            work.append(reg.clk)
            for pin in (reg.en, reg.sr, reg.ar):
                if pin is not None:
                    work.append(pin)
    removed = 0
    for gate in list(circuit.gates.values()):
        if gate.output not in marked:
            circuit.remove_gate(gate.name)
            removed += 1
    for reg in list(circuit.registers.values()):
        if reg.q not in marked:
            circuit.remove_register(reg.name)
            removed += 1
    return removed


def optimize(circuit: Circuit, max_rounds: int = 20) -> int:
    """Run all passes to a fixed point; returns total changes."""
    total = 0
    for _ in range(max_rounds):
        round_changes = (
            propagate_constants(circuit)
            + collapse_buffers(circuit)
            + share_structural(circuit)
            + sweep_dead(circuit)
        )
        total += round_changes
        if not round_changes:
            break
    return total
