"""Minimum-area retiming for a target clock period (paper Sec. 5.1).

Solves the ILP

    min Σ c(v)·r(v)
    s.t. circuit constraints   r(u) − r(v) ≤ w(e)
         class constraints     via host edges (bounds)
         period constraints    r(u) − r(v) ≤ w(p) − 1  (lazily generated)

by min-cost flow on the LP dual: every difference constraint becomes a
flow arc u→v with cost = bound and infinite capacity; vertex supplies
are −c(v); the optimal retiming values are the negated node potentials.
Period constraints are produced lazily exactly as in min-period: solve,
sweep Δ on the retimed graph, add one constraint per violating path,
repeat until clean.

The returned objective is the Leiserson–Saxe *shared* register count of
the retimed graph (mirror-vertex model), which for multi-class graphs
that went through the separation-vertex transform is the paper's
corrected sharing estimate.
"""

from __future__ import annotations

from dataclasses import dataclass

from .. import obs
from ..graph.retiming_graph import HOST, RetimingGraph
from .constraints import DifferenceSystem, InfeasibleConstraints, InfeasibleError
from .feas import compute_delta
from .mincostflow import MinCostFlow
from .minperiod import EPS, MAX_LAZY_ROUNDS, base_system
from .sharing_model import SharingModel, build_sharing_model, shared_register_count


@dataclass
class AreaResult:
    """Outcome of a min-area retiming run."""

    #: Optimal retiming values (host-normalised), real vertices only.
    r: dict[str, int]
    #: Modelled (shared) register count after retiming.
    registers: int
    #: Shared register count before retiming (same model), for deltas.
    registers_before: int
    #: Achieved clock period of the retimed graph.
    period: float
    #: Lazy-generation rounds used.
    rounds: int = 0
    #: Total constraints in the final system.
    constraints: int = 0


def _solve_lp(
    system: DifferenceSystem,
    model: SharingModel,
    capture: dict | None = None,
) -> dict[str, int] | None:
    """One LP solve: min Σ c·r subject to *system*; None if infeasible.

    When *capture* is given, the solved flow network and the full
    (mirror-inclusive) solution are left in it under ``"flow"`` /
    ``"full_r"`` — the raw material min-area dual attribution
    (:mod:`repro.obs.explain`) reads its certificates from.
    """
    r0 = system.solve()
    if r0 is None:
        return None
    flow = MinCostFlow()
    variables = system.variables()  # insertion-ordered: keeps node ids,
    # and therefore Dijkstra tie-breaking, reproducible across runs
    for name in variables:
        flow.add_node(name, -model.cost.get(name, 0))
    # every costed vertex must be constrained, or the LP is unbounded
    variable_set = set(variables)
    for name in model.cost:
        if name not in variable_set:
            raise InfeasibleError(f"cost on unconstrained vertex {name!r}")
    for constraint in system:
        flow.add_arc(constraint.u, constraint.v, constraint.bound)
    # π = −r0 gives non-negative reduced costs for every constraint arc
    flow.solve(initial_potentials={v: -val for v, val in r0.items()})
    potentials = flow.potentials()
    r = {v: -int(round(p)) for v, p in potentials.items()}
    shift = r.get(HOST, 0)
    solution = {v: val - shift for v, val in r.items()}
    if capture is not None:
        capture["flow"] = flow
        capture["full_r"] = solution
    return solution


def min_area(
    graph: RetimingGraph,
    phi: float,
    bounds: dict[str, tuple[int, int]] | None = None,
    model: SharingModel | None = None,
    use_kernels: bool | None = None,
) -> AreaResult:
    """Minimum-area retiming achieving clock period ≤ *phi*.

    Raises :class:`InfeasibleError` if *phi* is not feasible for the
    graph under the given bounds.
    """
    from .. import kernels

    if model is None:
        model = build_sharing_model(graph)
    if not kernels.resolve(use_kernels):
        return _min_area_dict(graph, phi, bounds, model)
    result = kernels.min_area_kernel(graph, phi, bounds, model)
    if kernels.kernel_check_enabled():
        oracle = _min_area_dict(graph, phi, bounds, model)
        kernels.expect_equal("min_area.r", result.r, oracle.r)
        kernels.expect_equal("min_area.registers", result.registers, oracle.registers)
        kernels.expect_equal("min_area.period", result.period, oracle.period)
        kernels.expect_equal("min_area.rounds", result.rounds, oracle.rounds)
        kernels.expect_equal(
            "min_area.constraints", result.constraints, oracle.constraints
        )
    return result


def _min_area_dict(
    graph: RetimingGraph,
    phi: float,
    bounds: dict[str, tuple[int, int]] | None,
    model: SharingModel,
) -> AreaResult:
    """Dict-based reference engine for :func:`min_area`."""
    extended = model.graph
    system = base_system(extended, bounds)

    with obs.span("minarea.solve", phi=phi) as span:
        best, rounds = _lazy_lp_rounds(graph, extended, system, model, phi)
        obs.count("minarea.rounds", rounds)
        span.set(rounds=rounds)

    real_r = {
        v: best.get(v, 0)
        for v in graph.vertices
    }
    period = compute_delta(graph, real_r).period
    return AreaResult(
        r=real_r,
        registers=shared_register_count(graph, real_r),
        registers_before=shared_register_count(graph),
        period=period,
        rounds=rounds,
        constraints=len(system),
    )


def _lazy_lp_rounds(
    graph: RetimingGraph,
    extended: RetimingGraph,
    system: DifferenceSystem,
    model: SharingModel,
    phi: float,
    capture: dict | None = None,
) -> tuple[dict[str, int], int]:
    """The lazy LP loop; returns (solution, rounds used).

    *capture* is forwarded to :func:`_solve_lp` so a caller can inspect
    the final round's flow network (min-area dual attribution).
    """
    best: dict[str, int] | None = None
    for rounds in range(1, MAX_LAZY_ROUNDS + 1):
        r = _solve_lp(system, model, capture=capture)
        if r is None:
            raise InfeasibleConstraints(
                f"period {phi} infeasible for {graph.name!r}",
                system.negative_cycle() or (),
                period=phi,
            )
        violations = system.check(r)
        if violations:  # numerical/duality bug guard: never expected
            raise RuntimeError(f"LP solution violates {violations[:3]}")
        sweep = compute_delta(extended, r)
        added = False
        for v, dv in sweep.delta.items():
            if dv <= phi + EPS:
                continue
            if extended.vertices[v].kind == "mirror":
                continue
            u = sweep.trace_start(v)
            bound = r.get(u, 0) - r.get(v, 0) - 1
            if system.add(u, v, bound, tag="period"):
                added = True
        if not added:
            best = r
            break
    if best is None:
        raise RuntimeError("lazy period-constraint generation did not converge")
    return best, rounds
