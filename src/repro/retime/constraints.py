"""Systems of difference constraints ``r(u) − r(v) ≤ b``.

Retiming legality, register-class bounds and period requirements are all
difference constraints (paper Sec. 2, 4.1, 5.1).  This module keeps the
tightest bound per ordered vertex pair and solves the system with a
queue-based Bellman–Ford (SPFA) including negative-cycle detection.

Solving convention: a constraint ``r(u) − r(v) ≤ b`` becomes a
relaxation arc ``v → u`` with weight ``b``; starting every distance at 0
(virtual source) yields the component-wise *maximal non-positive*
solution, which callers normalise by the host value (solutions are
invariant under uniform shifts because every consumer only reads
differences).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Iterable, Iterator

from .. import obs


class InfeasibleError(Exception):
    """Raised when a difference system has no solution (negative cycle)."""


@dataclass(frozen=True)
class Constraint:
    """One difference constraint ``r(u) − r(v) ≤ bound``."""

    u: str
    v: str
    bound: int
    tag: str = ""


class InfeasibleConstraints(InfeasibleError):
    """Infeasibility with a machine-checkable negative-cycle certificate.

    *cycle* is the witness: a list of :class:`Constraint` whose arcs
    chain into a cycle (``cycle[i].v == cycle[(i+1) % k].u``) and whose
    bounds sum to a negative number — no assignment can satisfy all of
    them simultaneously, which is exactly why the system (and therefore
    the requested period) is infeasible.  The certificate re-validates
    independently of the solver: sum the bounds, check the chain.
    """

    def __init__(
        self,
        message: str,
        cycle: Iterable[Constraint] = (),
        period: float | None = None,
    ) -> None:
        super().__init__(message)
        self.cycle: list[Constraint] = list(cycle)
        self.period = period

    @property
    def total(self) -> int:
        """Sum of the cycle's bounds (negative for a valid certificate)."""
        return sum(c.bound for c in self.cycle)

    def certificate(self) -> dict:
        """JSON-ready negative-cycle certificate."""
        return {
            "kind": "negative_cycle",
            "period": self.period,
            "sum": self.total,
            "constraints": [
                {"u": c.u, "v": c.v, "bound": c.bound, "tag": c.tag}
                for c in self.cycle
            ],
        }

    def summary(self) -> str:
        """One-line human diagnostic naming the cycle."""
        if not self.cycle:
            return str(self)
        tags: dict[str, int] = {}
        for c in self.cycle:
            tags[c.tag or "untagged"] = tags.get(c.tag or "untagged", 0) + 1
        path = " -> ".join(c.u for c in self.cycle) + f" -> {self.cycle[0].u}"
        tag_note = ", ".join(f"{t}x{n}" for t, n in sorted(tags.items()))
        return (
            f"{self}: {len(self.cycle)}-constraint cycle {path} "
            f"sums to {self.total} ({tag_note})"
        )


class DifferenceSystem:
    """A deduplicated set of difference constraints over named variables."""

    def __init__(self, variables: Iterable[str] = ()) -> None:
        self._vars: dict[str, None] = {}
        for v in variables:
            self._vars.setdefault(v)
        self._bound: dict[tuple[str, str], int] = {}
        self._tag: dict[tuple[str, str], str] = {}
        #: constraints a generator decided not to materialise because
        #: they were implied (informational; set by dense generation)
        self.pruned_constraints: int = 0

    def add_variable(self, name: str) -> None:
        """Declare a variable (idempotent)."""
        self._vars.setdefault(name)

    def variables(self) -> list[str]:
        """All declared variables, in insertion order."""
        return list(self._vars)

    def add(self, u: str, v: str, bound: int, tag: str = "") -> bool:
        """Add ``r(u) − r(v) ≤ bound``; returns True if it tightened.

        Keeps only the minimum bound per (u, v) pair.  Self-pairs with a
        non-negative bound are vacuous and dropped; a negative self-pair
        is recorded (it makes the system infeasible, intentionally).
        """
        self.add_variable(u)
        self.add_variable(v)
        if u == v and bound >= 0:
            return False
        key = (u, v)
        old = self._bound.get(key)
        if old is not None and old <= bound:
            return False
        self._bound[key] = bound
        if tag:
            self._tag[key] = tag
        return True

    def bound(self, u: str, v: str) -> int | None:
        """Current tightest bound for the pair, or None."""
        return self._bound.get((u, v))

    def __len__(self) -> int:
        return len(self._bound)

    def __iter__(self) -> Iterator[Constraint]:
        for (u, v), b in self._bound.items():
            yield Constraint(u, v, b, self._tag.get((u, v), ""))

    def copy(self) -> "DifferenceSystem":
        """Independent copy."""
        other = DifferenceSystem(self._vars)
        other._bound = dict(self._bound)
        other._tag = dict(self._tag)
        return other

    def solve(self) -> dict[str, int] | None:
        """Solve by SPFA; returns an integral solution or None.

        All distances start at 0 (virtual source), so the returned
        values are ≤ 0; callers typically re-anchor on a designated
        variable.  Returns None on a negative cycle (infeasible system).
        """
        names = list(self._vars)
        index = {n: i for i, n in enumerate(names)}
        n = len(names)
        # relaxation arcs: constraint (u, v, b) -> arc v -> u, weight b
        arcs_from: list[list[tuple[int, int]]] = [[] for _ in range(n)]
        for (u, v), b in self._bound.items():
            if u == v:  # negative self-loop: instant infeasibility
                return None
            arcs_from[index[v]].append((index[u], b))
        dist = [0] * n
        in_queue = [True] * n
        relax_count = [0] * n
        queue: deque[int] = deque(range(n))
        while queue:
            vi = queue.popleft()
            in_queue[vi] = False
            dvi = dist[vi]
            for ui, b in arcs_from[vi]:
                nd = dvi + b
                if nd < dist[ui]:
                    dist[ui] = nd
                    relax_count[ui] += 1
                    if relax_count[ui] > n:
                        if obs.enabled():
                            obs.count("bf.solves")
                            obs.count("bf.relaxations", sum(relax_count))
                        return None  # negative cycle
                    if not in_queue[ui]:
                        in_queue[ui] = True
                        queue.append(ui)
        if obs.enabled():
            obs.count("bf.solves")
            obs.count("bf.relaxations", sum(relax_count))
            # queue-based SPFA has no synchronous rounds; report the
            # depth an equivalent round-based Bellman-Ford would need
            obs.count("bf.rounds", max(relax_count, default=0) + 1)
        return {name: dist[index[name]] for name in names}

    def negative_cycle(self) -> list[Constraint] | None:
        """Extract a negative-cycle certificate from an infeasible system.

        Runs a round-based Bellman-Ford with predecessor tracking (the
        queue-based :meth:`solve` stays certificate-free so the feasible
        hot path pays nothing) and walks the predecessor arcs back
        around the cycle.  Returns the cycle's constraints in arc order
        — consecutive entries chain ``c[i].v == c[i+1].u`` and the
        bounds sum to a negative number — or None when the system is in
        fact feasible.
        """
        for (u, v), b in self._bound.items():
            if u == v:  # negative self-pair recorded by add()
                return [Constraint(u, v, b, self._tag.get((u, v), ""))]
        names = list(self._vars)
        index = {n: i for i, n in enumerate(names)}
        n = len(names)
        arcs = [
            (index[v], index[u], b, key)
            for key, b in self._bound.items()
            for (u, v) in (key,)
        ]
        dist = [0] * n
        pred: list[tuple[str, str] | None] = [None] * n
        marked = -1
        # all distances start at 0 (virtual source), so shortest paths
        # have at most n-1 arcs: a relaxation in pass n+1 proves a cycle
        for _ in range(n + 1):
            updated = -1
            for vi, ui, b, key in arcs:
                nd = dist[vi] + b
                if nd < dist[ui]:
                    dist[ui] = nd
                    pred[ui] = key
                    updated = ui
            if updated < 0:
                return None  # converged: feasible, no certificate
            marked = updated
        # walk predecessors until a vertex repeats; that repeat closes
        # the negative cycle (the prefix before it is an approach tail)
        seen: dict[int, int] = {}
        trail: list[tuple[str, str]] = []
        node = marked
        while node not in seen:
            seen[node] = len(trail)
            key = pred[node]
            if key is None:  # defensive: should be unreachable
                return None
            trail.append(key)
            node = index[key[1]]
        cycle_keys = trail[seen[node]:]
        # each key is (node, pred-node), so consecutive keys already
        # chain c[i].v == c[i+1].u around the cycle
        return [
            Constraint(u, v, self._bound[(u, v)], self._tag.get((u, v), ""))
            for (u, v) in cycle_keys
        ]

    def check(self, r: dict[str, int]) -> list[Constraint]:
        """Return the constraints violated by assignment *r* (if any)."""
        violated = []
        for c in self:
            if r.get(c.u, 0) - r.get(c.v, 0) > c.bound:
                violated.append(c)
        return violated
