"""Basic retiming engine: FEAS, min-period, min-cost-flow min-area."""

from .constraints import Constraint, DifferenceSystem, InfeasibleError
from .dense import (
    dense_period_system,
    feasible_retiming_dense,
    min_area_dense,
    min_period_dense,
)
from .feas import DeltaResult, clock_period, compute_delta, feas
from .minarea import AreaResult, min_area
from .mincostflow import Arc, FlowInfeasibleError, MinCostFlow
from .minperiod import (
    FeasibilityResult,
    MinPeriodResult,
    base_system,
    check_period,
    feasible_retiming,
    min_period,
)
from .sharing_model import (
    SharingModel,
    build_sharing_model,
    shared_register_count,
)
from .wd import candidate_periods, wd_from_source, wd_matrices

__all__ = [
    "Arc",
    "AreaResult",
    "Constraint",
    "DeltaResult",
    "DifferenceSystem",
    "FeasibilityResult",
    "FlowInfeasibleError",
    "InfeasibleError",
    "MinCostFlow",
    "MinPeriodResult",
    "SharingModel",
    "base_system",
    "build_sharing_model",
    "candidate_periods",
    "check_period",
    "clock_period",
    "dense_period_system",
    "feasible_retiming_dense",
    "min_area_dense",
    "min_period_dense",
    "compute_delta",
    "feas",
    "feasible_retiming",
    "min_area",
    "min_period",
    "shared_register_count",
    "wd_from_source",
    "wd_matrices",
]
