"""Minimum-cost flow by successive shortest paths with potentials.

The min-area retiming ILP is the linear-programming dual of a min-cost
transshipment problem (Leiserson–Saxe [9] Sec. 8); this module is the
from-scratch solver used to compute it.  Capacities default to
"infinite" (bounded by total supply), costs must be non-negative on the
first iteration (satisfied by retiming constraint bounds, which are all
≥ −1 with the −1 cases rejected earlier as infeasibility), and node
potentials keep reduced costs non-negative so Dijkstra stays valid.

The network API is deliberately tiny: named nodes with supplies, arcs
with cost/capacity, ``solve()``, then per-arc flows and node potentials.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass

from .. import obs

INF = float("inf")


class FlowInfeasibleError(Exception):
    """Raised when supplies cannot be routed to demands."""


@dataclass
class Arc:
    """One directed arc (public view)."""

    u: str
    v: str
    cost: int
    capacity: float
    flow: int = 0


class MinCostFlow:
    """Successive-shortest-path min-cost flow over named nodes."""

    def __init__(self) -> None:
        self._names: list[str] = []
        self._index: dict[str, int] = {}
        self._supply: list[int] = []
        # arc storage: forward/backward pairs at even/odd slots
        self._to: list[int] = []
        self._cap: list[float] = []
        self._cost: list[int] = []
        self._adj: list[list[int]] = []
        self._public: list[tuple[int, Arc]] = []  # (slot, view)
        self._solved = False

    def add_node(self, name: str, supply: int = 0) -> None:
        """Create a node (or add to its supply if it exists).

        Positive supply = source of flow, negative = demand.
        """
        idx = self._index.get(name)
        if idx is None:
            idx = len(self._names)
            self._index[name] = idx
            self._names.append(name)
            self._supply.append(0)
            self._adj.append([])
        self._supply[idx] += supply

    def add_arc(self, u: str, v: str, cost: int, capacity: float = INF) -> Arc:
        """Create an arc u→v; returns a live view whose ``flow`` fills in
        after :meth:`solve`.

        Negative costs are allowed only when :meth:`solve` is given
        initial potentials that make every reduced cost non-negative.
        """
        self.add_node(u)
        self.add_node(v)
        ui, vi = self._index[u], self._index[v]
        slot = len(self._to)
        self._to.extend((vi, ui))
        self._cap.extend((capacity, 0.0))
        self._cost.extend((cost, -cost))
        self._adj[ui].append(slot)
        self._adj[vi].append(slot + 1)
        view = Arc(u, v, cost, capacity)
        self._public.append((slot, view))
        return view

    def node_names(self) -> list[str]:
        """All node names."""
        return list(self._names)

    def solve(self, initial_potentials: dict[str, float] | None = None) -> int:
        """Route all supplies; returns the total cost.

        *initial_potentials* must make every arc's reduced cost
        non-negative (callers with negative arc costs obtain them from a
        shortest-path / difference-constraint solution).  Raises
        :class:`FlowInfeasibleError` if supplies don't balance or cannot
        reach the demands.
        """
        n = len(self._names)
        if sum(self._supply) != 0:
            raise FlowInfeasibleError("supplies do not balance")
        excess = list(self._supply)
        potential = [0.0] * n
        if initial_potentials:
            for name, value in initial_potentials.items():
                idx = self._index.get(name)
                if idx is not None:
                    potential[idx] = value
        for slot in range(0, len(self._to), 2):
            if self._cap[slot] > 0:
                u = self._to[slot ^ 1]
                v = self._to[slot]
                if self._cost[slot] + potential[u] - potential[v] < -1e-9:
                    raise ValueError(
                        "initial potentials leave a negative reduced cost"
                    )
        self._potential = potential

        augmentations = 0
        while True:
            sources = [i for i in range(n) if excess[i] > 0]
            if not sources:
                break
            # Dijkstra over reduced costs from all excess sources
            dist = [INF] * n
            prev_arc: list[int] = [-1] * n
            heap: list[tuple[float, int]] = []
            for s in sources:
                dist[s] = 0.0
                heapq.heappush(heap, (0.0, s))
            while heap:
                d, vi = heapq.heappop(heap)
                if d > dist[vi]:
                    continue
                for slot in self._adj[vi]:
                    if self._cap[slot] <= 0:
                        continue
                    to = self._to[slot]
                    nd = d + self._cost[slot] + potential[vi] - potential[to]
                    if nd < dist[to] - 1e-12:
                        dist[to] = nd
                        prev_arc[to] = slot
                        heapq.heappush(heap, (nd, to))
            target = -1
            best = INF
            for i in range(n):
                if excess[i] < 0 and dist[i] < best:
                    best = dist[i]
                    target = i
            if target < 0:
                raise FlowInfeasibleError("no augmenting path to a demand")
            # update potentials (unreached nodes keep a large offset)
            for i in range(n):
                potential[i] += dist[i] if dist[i] < INF else best
            # trace the path, find bottleneck
            bottleneck = -excess[target]
            node = target
            while prev_arc[node] != -1:
                slot = prev_arc[node]
                bottleneck = min(bottleneck, self._cap[slot])
                node = self._to[slot ^ 1]
            bottleneck = min(bottleneck, excess[node])
            # push
            amount = int(bottleneck)
            node = target
            while prev_arc[node] != -1:
                slot = prev_arc[node]
                self._cap[slot] -= amount
                self._cap[slot ^ 1] += amount
                node = self._to[slot ^ 1]
            excess[node] -= amount
            excess[target] += amount
            augmentations += 1

        total = 0
        for slot, view in self._public:
            view.flow = int(self._cap[slot ^ 1]) if view.capacity == INF else int(
                view.capacity - self._cap[slot]
            )
            total += view.flow * view.cost
        self._solved = True
        if obs.enabled():
            obs.count("mcf.augmentations", augmentations)
            obs.count("mcf.cost", total)
        return total

    def potentials(self) -> dict[str, float]:
        """Node potentials after :meth:`solve` (Johnson shifts)."""
        if not self._solved:
            raise RuntimeError("solve() first")
        return {name: self._potential[i] for i, name in enumerate(self._names)}

    def arcs(self) -> list[Arc]:
        """All public arc views (flows populated after solve)."""
        return [view for _, view in self._public]
