"""W and D matrices (paper Sec. 2), for small graphs and cross-checks.

``W(u, v)`` is the minimum register count over all u→v paths and
``D(u, v)`` the maximum path delay among those minimum-weight paths.
Computed by one Dijkstra per source over the lexicographic key
``(weight, −delay)``.  Quadratic memory — intended for unit tests and
for the exact candidate-period enumeration used to validate the binary
search, not for big circuits (the production solvers never need W/D
thanks to lazy constraint generation).
"""

from __future__ import annotations

import heapq

from ..graph.retiming_graph import RetimingGraph


def wd_from_source(
    graph: RetimingGraph, source: str, through_host: bool | None = None
) -> dict[str, tuple[int, float]]:
    """(W, D) from *source* to every reachable vertex.

    D includes the delay of both endpoints, matching the paper.  Unless
    the graph models a combinational environment, paths are not allowed
    to continue *through* the host (they may still end there).
    """
    if through_host is None:
        through_host = graph.combinational_host
    d_src = graph.vertices[source].delay
    best: dict[str, tuple[int, float]] = {source: (0, d_src)}
    heap: list[tuple[int, float, str]] = [(0, -d_src, source)]
    while heap:
        w, neg_d, u = heapq.heappop(heap)
        if (w, -neg_d) != best.get(u, (None, None)):
            continue
        if not through_host and u != source and graph.vertices[u].kind == "host":
            continue
        for edge in graph.out_edges(u):
            v = edge.v
            nw = w + edge.w
            nd = -neg_d + graph.vertices[v].delay
            cur = best.get(v)
            if cur is None or (nw, -nd) < (cur[0], -cur[1]):
                best[v] = (nw, nd)
                heapq.heappush(heap, (nw, -nd, v))
    return best


def wd_matrices(
    graph: RetimingGraph, through_host: bool | None = None
) -> tuple[dict[tuple[str, str], int], dict[tuple[str, str], float]]:
    """All-pairs W and D (reachable pairs only)."""
    W: dict[tuple[str, str], int] = {}
    D: dict[tuple[str, str], float] = {}
    for source in graph.vertices:
        hits = wd_from_source(graph, source, through_host)
        for target, (w, d) in hits.items():
            W[source, target] = w
            D[source, target] = d
    return W, D


def candidate_periods(graph: RetimingGraph) -> list[float]:
    """Sorted distinct D(u, v) values — the possible optimal periods."""
    _, D = wd_matrices(graph)
    return sorted(set(D.values()))
