"""Minimum-period retiming under per-vertex bounds (paper Sec. 5.1).

Feasibility of a target period φ is decided by *lazy constraint
generation*: start from the circuit constraints, the pinned-I/O
constraints and the register-class bounds (all difference constraints
through the host, exactly as in the paper), solve, then sweep the
retimed graph for register-free paths longer than φ and add each as a
period constraint ``r(u) − r(v) ≤ w(p) − 1``.  Added constraints are
implied by the complete Leiserson–Saxe constraint set (every long path
must carry a register), so the fixed point is a true feasibility
answer; termination follows because each round strictly tightens some
vertex pair and bounds are integral.

The minimum φ is then found by binary search, shrinking the upper end
to the period actually *achieved* by each feasible solution (so the
search converges on an attainable value rather than an arbitrary
midpoint).

Two engines implement the identical algorithm: the dict-based reference
below, and the compiled integer-indexed kernels in
:mod:`repro.kernels.minperiod` (graph compiled once per search,
incremental SPFA and incremental Δ re-sweeps between lazy rounds).
``use_kernels=None`` defers to the global switch; results are
bit-identical either way, which ``REPRO_KERNEL_CHECK=1`` verifies on
every call.
"""

from __future__ import annotations

from dataclasses import dataclass

from .. import obs
from ..graph.retiming_graph import HOST, RetimingGraph
from .constraints import DifferenceSystem
from .feas import compute_delta

#: Float comparison slack for delays.
EPS = 1e-9

#: Safety valve on lazy-generation rounds.
MAX_LAZY_ROUNDS = 10_000


@dataclass
class FeasibilityResult:
    """Outcome of one lazy feasibility check."""

    r: dict[str, int] | None
    rounds: int = 0
    constraints: int = 0
    #: period achieved by ``r`` (read off the final sweep; None when
    #: infeasible) — saves the caller a redundant re-sweep
    achieved: float | None = None

    @property
    def feasible(self) -> bool:
        return self.r is not None


@dataclass
class MinPeriodResult:
    """Outcome of a minimum-period search."""

    phi: float
    r: dict[str, int]
    achieved: float
    probes: int = 0
    #: feasibility rounds accumulated over all probes
    rounds: int = 0


def base_system(
    graph: RetimingGraph,
    bounds: dict[str, tuple[int, int]] | None = None,
) -> DifferenceSystem:
    """Circuit constraints + pinned vertices + class bounds.

    Every non-movable vertex (host, ports, control outputs) is pinned to
    the host's value; *bounds* maps vertex -> (r_min, r_max) relative to
    the host, encoded as the two host difference constraints of paper
    Sec. 5.1.
    """
    system = DifferenceSystem(graph.vertices)
    for edge in graph.edges.values():
        system.add(edge.u, edge.v, edge.w, tag="circuit")
    for vertex in graph.vertices.values():
        if vertex.name == HOST:
            continue
        if not vertex.movable:
            system.add(vertex.name, HOST, 0, tag="pin")
            system.add(HOST, vertex.name, 0, tag="pin")
    for name, (lo, hi) in (bounds or {}).items():
        system.add(name, HOST, hi, tag="class")
        system.add(HOST, name, -lo, tag="class")
    return system


def _solve_normalized(system: DifferenceSystem) -> dict[str, int] | None:
    r = system.solve()
    if r is None:
        return None
    shift = r.get(HOST, 0)
    if shift:
        r = {v: val - shift for v, val in r.items()}
    return r


def _check_period_dict(
    graph: RetimingGraph,
    phi: float,
    system: DifferenceSystem,
) -> FeasibilityResult:
    """Dict-based reference engine for :func:`check_period`."""
    with obs.span("minperiod.feas", phi=phi) as span:
        for rounds in range(1, MAX_LAZY_ROUNDS + 1):
            r = _solve_normalized(system)
            if r is None:
                obs.count("feas.passes", rounds)
                span.set(rounds=rounds, feasible=False)
                return FeasibilityResult(None, rounds, len(system))
            sweep = compute_delta(graph, r)
            added = False
            for v, dv in sweep.delta.items():
                if dv <= phi + EPS:
                    continue
                if graph.vertices[v].kind == "mirror":
                    continue  # synthetic fanout vertex: not a real path end
                u = sweep.trace_start(v)
                # register-free path u ~> v: original weight = r(u) − r(v)
                bound = r.get(u, 0) - r.get(v, 0) - 1
                if system.add(u, v, bound, tag="period"):
                    added = True
            if not added:
                obs.count("feas.passes", rounds)
                span.set(rounds=rounds, feasible=True)
                return FeasibilityResult(r, rounds, len(system), sweep.period)
    raise RuntimeError("lazy period-constraint generation did not converge")


def _check_period_kernel(
    graph: RetimingGraph,
    phi: float,
    system: DifferenceSystem,
) -> FeasibilityResult:
    """Kernel engine for :func:`check_period`, mirroring generated
    constraints back into the caller's dict *system*."""
    from .. import kernels

    cg = kernels.compile_graph(graph)
    csys = kernels.CompiledSystem.from_system(system, cg)
    before = len(csys)
    outcome = kernels.check_period_kernel(cg, phi, csys)
    # replay additions/tightenings so the dict system stays the record
    names = csys.names
    if len(csys) != before or outcome.rounds > 1:
        for (u, v), slot in csys.pair.items():
            bound = csys.arc_b[slot]
            if system.bound(names[u], names[v]) != bound:
                system.add(names[u], names[v], bound, tag="period")
    if outcome.r is None:
        return FeasibilityResult(None, outcome.rounds, len(system))
    r = {names[i]: outcome.r[i] for i in range(len(outcome.r))}
    return FeasibilityResult(
        r, outcome.rounds, len(system), outcome.sweep.period
    )


def check_period(
    graph: RetimingGraph,
    phi: float,
    system: DifferenceSystem,
    use_kernels: bool | None = None,
) -> FeasibilityResult:
    """Lazy feasibility of period *phi*; mutates *system* (adds period
    constraints, which remain valid for any smaller φ probe as well).

    Note on Maheshwari–Sapatnekar bounds pruning (which the paper
    expects to compose with the class constraints): lazy generation gets
    it *for free* — a constraint implied by the class bounds can never
    be violated by a bounds-respecting solution, so this loop never even
    generates it.  The explicit prune lives in the dense formulation
    (:func:`repro.retime.dense.dense_period_system`), where constraints
    are materialised unconditionally.
    """
    from .. import kernels

    if not kernels.resolve(use_kernels):
        return _check_period_dict(graph, phi, system)
    if kernels.kernel_check_enabled():
        shadow = system.copy()
        result = _check_period_kernel(graph, phi, system)
        oracle = _check_period_dict(graph, phi, shadow)
        kernels.expect_equal("check_period.r", result.r, oracle.r)
        kernels.expect_equal("check_period.rounds", result.rounds, oracle.rounds)
        kernels.expect_equal(
            "check_period.constraints", result.constraints, oracle.constraints
        )
        return result
    return _check_period_kernel(graph, phi, system)


def feasible_retiming(
    graph: RetimingGraph,
    phi: float,
    bounds: dict[str, tuple[int, int]] | None = None,
    use_kernels: bool | None = None,
) -> dict[str, int] | None:
    """One-shot feasibility: a legal retiming with period ≤ φ, or None."""
    system = base_system(graph, bounds)
    return check_period(graph, phi, system, use_kernels=use_kernels).r


def infeasibility_certificate(
    graph: RetimingGraph,
    phi: float,
    bounds: dict[str, tuple[int, int]] | None = None,
):
    """Structured evidence that period *phi* is infeasible, or None.

    Re-runs the dict-engine lazy feasibility loop (the exceptional
    error path, so speed is irrelevant) and extracts the negative
    cycle from the resulting over-constrained system.  Returns an
    unraised :class:`~repro.retime.constraints.InfeasibleConstraints`
    ready for the caller to raise, or None when *phi* is feasible.
    """
    from .constraints import InfeasibleConstraints

    system = base_system(graph, bounds)
    if _check_period_dict(graph, phi, system).feasible:
        return None
    return InfeasibleConstraints(
        f"period {phi} infeasible for {graph.name!r}",
        system.negative_cycle() or (),
        period=phi,
    )


def _min_period_dict(
    graph: RetimingGraph,
    bounds: dict[str, tuple[int, int]] | None,
    eps: float,
) -> MinPeriodResult:
    """Dict-based reference engine for :func:`min_period`."""
    with obs.span("minperiod.search") as span:
        zero = {v: 0 for v in graph.vertices}
        start = compute_delta(graph, zero).period
        lo = max((v.delay for v in graph.vertices.values()), default=0.0)
        best_phi = start
        best_r = zero
        probes = 0
        rounds = 0
        # a period constraint generated while probing φ1 remains valid for
        # every φ ≤ φ1 but can over-constrain larger φ probes, so each probe
        # starts from a fresh copy of the base system
        base = base_system(graph, bounds)
        hi = start
        while hi - lo > eps:
            mid = (lo + hi) / 2.0
            probes += 1
            result = _check_period_dict(graph, mid, base.copy())
            rounds += result.rounds
            if result.feasible:
                achieved = result.achieved
                best_phi = achieved
                best_r = result.r
                hi = min(achieved, mid)
            else:
                lo = mid
        obs.count("minperiod.probes", probes)
        obs.gauge("minperiod.phi", best_phi)
        span.set(phi=best_phi, probes=probes)
    return MinPeriodResult(
        phi=best_phi, r=best_r, achieved=best_phi, probes=probes, rounds=rounds
    )


def min_period(
    graph: RetimingGraph,
    bounds: dict[str, tuple[int, int]] | None = None,
    eps: float = 1e-6,
    use_kernels: bool | None = None,
) -> MinPeriodResult:
    """Binary-search the minimum feasible clock period.

    Returns the best feasible (φ, r); φ is the period actually achieved
    by the returned retiming.  For graphs with integral delays the
    result is exact; for float delays it is within *eps*.
    """
    from .. import kernels

    if not kernels.resolve(use_kernels):
        return _min_period_dict(graph, bounds, eps)
    result = kernels.min_period_kernel(graph, bounds, eps)
    if kernels.kernel_check_enabled():
        oracle = _min_period_dict(graph, bounds, eps)
        kernels.expect_equal("min_period.phi", result.phi, oracle.phi)
        kernels.expect_equal("min_period.r", result.r, oracle.r)
        kernels.expect_equal("min_period.probes", result.probes, oracle.probes)
        kernels.expect_equal("min_period.rounds", result.rounds, oracle.rounds)
    return result
