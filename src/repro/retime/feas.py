"""Clock-period computation (CP) and the classic FEAS algorithm.

``CP`` computes Δ(v) — the largest delay of a register-free path ending
at v — by a topological sweep of the zero-weight subgraph; the clock
period of a retimed graph is ``max_v Δ(v)`` (paper Sec. 2 / [9]).

``FEAS`` is Leiserson–Saxe's relaxation: repeat |V|−1 times, increment
r(v) wherever Δ(v) exceeds the target period.  It is kept for its
textbook value and as a cross-check; the production path (which also
supports per-vertex bounds and pinned I/O) is the lazy constraint
generation in :mod:`repro.retime.minperiod`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .. import obs
from ..graph.retiming_graph import GraphError, RetimingGraph


@dataclass
class DeltaResult:
    """Outcome of one CP sweep."""

    #: Δ per vertex.
    delta: dict[str, float]
    #: argmax zero-weight predecessor per vertex (path tracing).
    pred: dict[str, str | None]
    #: the topological order the sweep used — callers doing repeated
    #: sweeps with a stable zero-subgraph can feed it back to
    #: :func:`compute_delta` to skip the Kahn pass
    order: list[str] | None = None
    _period: float | None = field(
        default=None, repr=False, compare=False, init=False
    )

    @property
    def period(self) -> float:
        """The clock period: max Δ (computed once, then cached)."""
        if self._period is None:
            self._period = max(self.delta.values(), default=0.0)
        return self._period

    def trace_start(self, v: str) -> str:
        """Walk predecessors back to the start of v's critical path."""
        node = v
        while self.pred.get(node) is not None:
            node = self.pred[node]
        return node


def _order_fits(
    order: list[str], graph: RetimingGraph, zero_in: dict[str, list[str]]
) -> bool:
    """Is *order* a topological order of this zero-weight subgraph?"""
    if len(order) != len(graph.vertices):
        return False
    pos: dict[str, int] = {}
    for i, v in enumerate(order):
        if v not in graph.vertices or v in pos:
            return False
        pos[v] = i
    for v, preds in zero_in.items():
        pv = pos[v]
        for u in preds:
            if pos[u] >= pv:
                return False
    return True


def compute_delta(
    graph: RetimingGraph,
    r: dict[str, int] | None = None,
    through_host: bool | None = None,
    order: list[str] | None = None,
) -> DeltaResult:
    """CP sweep over the (optionally retimed) zero-weight subgraph.

    Unless the graph models a combinational environment
    (``graph.combinational_host``), zero-weight edges *leaving* the host
    are skipped: real combinational paths never run through the
    environment, and keeping them would close a spurious zero-weight
    cycle PO → host → PI on any register-free input-to-output path.
    Classic FEAS (which treats the host as an ordinary vertex and
    normalises afterwards) passes ``through_host=True`` explicitly.

    A caller holding a topological *order* from a previous sweep (see
    :attr:`DeltaResult.order`) can pass it back; it is validated against
    the current zero subgraph in one O(E) pass and used directly when
    still consistent, skipping the Kahn pass.

    Raises :class:`GraphError` if the zero-weight subgraph is cyclic
    (which legality of *r* rules out whenever every original cycle
    carries a register).
    """
    r = r or {}
    obs.count("delta.sweeps")
    if through_host is None:
        through_host = graph.combinational_host
    zero_in: dict[str, list[str]] = {v: [] for v in graph.vertices}
    for edge in graph.edges.values():
        w = edge.w + r.get(edge.v, 0) - r.get(edge.u, 0)
        if w < 0:
            raise GraphError(
                f"negative retimed weight on {edge.u}->{edge.v} (w={w})"
            )
        if w == 0 and (through_host or graph.vertices[edge.u].kind != "host"):
            zero_in[edge.v].append(edge.u)

    if order is not None and not _order_fits(order, graph, zero_in):
        order = None  # stale order: fall back to a fresh Kahn pass
    if order is None:
        indeg = {v: len(preds) for v, preds in zero_in.items()}
        queue = [v for v, d in indeg.items() if d == 0]
        order = []
        # Kahn's algorithm needs out-adjacency; rebuild it once
        zero_out: dict[str, list[str]] = {v: [] for v in graph.vertices}
        for v, preds in zero_in.items():
            for u in preds:
                zero_out[u].append(v)
        while queue:
            v = queue.pop()
            order.append(v)
            for s in zero_out[v]:
                indeg[s] -= 1
                if indeg[s] == 0:
                    queue.append(s)
        if len(order) != len(graph.vertices):
            raise GraphError("zero-weight subgraph is cyclic")

    delta: dict[str, float] = {}
    pred: dict[str, str | None] = {}
    for v in order:
        best = 0.0
        best_pred: str | None = None
        for u in zero_in[v]:
            if delta[u] > best:
                best = delta[u]
                best_pred = u
        delta[v] = best + graph.vertices[v].delay
        pred[v] = best_pred
    return DeltaResult(delta, pred, order)


def clock_period(graph: RetimingGraph, r: dict[str, int] | None = None) -> float:
    """Clock period of the (retimed) graph."""
    return compute_delta(graph, r).period


def feas(
    graph: RetimingGraph, phi: float, normalize: str | None = None
) -> dict[str, int] | None:
    """Classic FEAS: a legal retiming achieving period ≤ *phi*, or None.

    No bounds or pinning support — every vertex may move (Leiserson–Saxe
    Algorithm FEAS).  When *normalize* names a vertex, the solution is
    shifted so that vertex gets value 0 (uniform shifts are no-ops).
    """
    eps = 1e-9
    r = {v: 0 for v in graph.vertices}
    sweep = None
    changed = False
    passes = 0
    for _ in range(max(len(graph.vertices) - 1, 1)):
        sweep = compute_delta(graph, r, through_host=True)
        passes += 1
        changed = False
        for v, dv in sweep.delta.items():
            if dv > phi + eps:
                r[v] += 1
                changed = True
        if not changed:
            break
    if changed or sweep is None:  # r moved after the last sweep
        sweep = compute_delta(graph, r, through_host=True)
    obs.count("feas.passes", passes)
    if sweep.period > phi + eps:
        return None
    if normalize is not None and normalize in r:
        shift = r[normalize]
        r = {v: val - shift for v, val in r.items()}
    return r
