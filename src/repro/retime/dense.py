"""Dense (W/D-matrix) retiming solvers — the textbook formulation.

The production solvers in :mod:`repro.retime.minperiod` / ``minarea``
generate period constraints lazily; these variants materialise the full
Leiserson–Saxe constraint set

    r(u) − r(v) ≤ W(u, v) − 1      for every pair with D(u, v) > φ

from the all-pairs W/D matrices (paper Sec. 2).  Quadratic in |V| — fine
for the small/medium graphs the ablation study uses, hopeless for the
big designs, which is exactly the point the lazy path demonstrates.

Both variants must agree with the lazy solvers on the optimum; the test
suite enforces that, and ``benchmarks/bench_ablations.py`` compares
their cost.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..graph.retiming_graph import RetimingGraph
from .constraints import DifferenceSystem, InfeasibleError
from .minarea import AreaResult, _solve_lp
from .minperiod import EPS, MinPeriodResult, base_system, _solve_normalized
from .feas import compute_delta
from .sharing_model import build_sharing_model, shared_register_count
from .wd import wd_matrices


def dense_period_system(
    graph: RetimingGraph,
    phi: float,
    bounds: dict[str, tuple[int, int]] | None = None,
    prune_with_bounds: bool = True,
    wd: tuple[dict, dict] | None = None,
) -> DifferenceSystem:
    """Base system plus *all* period constraints for target φ.

    Pairs through synthetic vertices (mirrors) are excluded; the host is
    skipped as a path endpoint unless the graph models a combinational
    environment.

    ``prune_with_bounds`` applies the Maheshwari–Sapatnekar reduction
    the paper anticipates (Sec. 5.1, last paragraph): a constraint
    ``r(u) − r(v) ≤ W(u,v) − 1`` is vacuous — and skipped — whenever the
    lag ranges already guarantee ``r_max(u) − r_min(v) ≤ W(u,v) − 1``.
    The count of pruned constraints is recorded on the returned system
    as ``pruned_constraints``.
    """
    system = base_system(graph, bounds)
    W, D = wd or wd_matrices(graph)
    skip_kinds = {"mirror"}
    through_host = graph.combinational_host

    def lag_range(name: str) -> tuple[int, int] | None:
        if bounds is not None and name in bounds:
            return bounds[name]
        vertex = graph.vertices.get(name)
        if vertex is not None and not vertex.movable:
            return (0, 0)
        return None

    pruned = 0
    for (u, v), d in D.items():
        if d <= phi + EPS:
            continue
        if graph.vertices[u].kind in skip_kinds:
            continue
        if graph.vertices[v].kind in skip_kinds:
            continue
        if not through_host and (
            graph.vertices[u].kind == "host" or graph.vertices[v].kind == "host"
        ):
            continue
        bound = W[u, v] - 1
        if prune_with_bounds:
            range_u = lag_range(u)
            range_v = lag_range(v)
            if (
                range_u is not None
                and range_v is not None
                and range_u[1] - range_v[0] <= bound
            ):
                pruned += 1
                continue
        system.add(u, v, bound, tag="period-dense")
    system.pruned_constraints = pruned
    return system


def feasible_retiming_dense(
    graph: RetimingGraph,
    phi: float,
    bounds: dict[str, tuple[int, int]] | None = None,
    wd: tuple[dict, dict] | None = None,
) -> dict[str, int] | None:
    """One-shot dense feasibility check at period φ."""
    system = dense_period_system(graph, phi, bounds, wd=wd)
    r = _solve_normalized(system)
    if r is None:
        return None
    # W/D-based constraints ignore paths through the host when the
    # environment is sequential; legality still guaranteed, but verify
    # the achieved period as a safety net
    if compute_delta(graph, r).period > phi + EPS:
        return None
    return r


def min_period_dense(
    graph: RetimingGraph,
    bounds: dict[str, tuple[int, int]] | None = None,
) -> MinPeriodResult:
    """Exact binary search over the D(u, v) candidate periods."""
    W, D = wd_matrices(graph)
    candidates = sorted(set(D.values()))
    zero = {v: 0 for v in graph.vertices}
    start = compute_delta(graph, zero).period
    best_phi, best_r = start, zero
    lo, hi = 0, len(candidates) - 1
    probes = 0
    while lo <= hi:
        mid = (lo + hi) // 2
        phi = candidates[mid]
        probes += 1
        r = feasible_retiming_dense(graph, phi, bounds, wd=(W, D))
        if r is not None:
            achieved = compute_delta(graph, r).period
            if achieved < best_phi:
                best_phi, best_r = achieved, r
            hi = mid - 1
        else:
            lo = mid + 1
    return MinPeriodResult(
        phi=best_phi, r=best_r, achieved=best_phi, probes=probes, rounds=probes
    )


def min_area_dense(
    graph: RetimingGraph,
    phi: float,
    bounds: dict[str, tuple[int, int]] | None = None,
) -> AreaResult:
    """Min-area with the full dense period-constraint set."""
    model = build_sharing_model(graph)
    system = dense_period_system(model.graph, phi, bounds)
    r = _solve_lp(system, model)
    if r is None:
        raise InfeasibleError(f"period {phi} infeasible for {graph.name!r}")
    if compute_delta(model.graph, r).period > phi + EPS:
        raise InfeasibleError(
            f"dense constraint set missed a violating path at φ={phi}"
        )
    real_r = {v: r.get(v, 0) for v in graph.vertices}
    return AreaResult(
        r=real_r,
        registers=shared_register_count(graph, real_r),
        registers_before=shared_register_count(graph),
        period=compute_delta(graph, real_r).period,
        rounds=1,
        constraints=len(system),
    )
