"""Leiserson–Saxe register-sharing (fanout) model for min-area retiming.

Registers on the fanout edges of a vertex can be merged: the hardware
cost of vertex u's fanout registers is ``max_e w_r(e)`` over its fanout
edges, not the sum.  Following [9] Sec. 8, each multi-fanout vertex u
gets a zero-delay *mirror* vertex m_u and, for every fanout edge
``e = (u, v_i)``, an edge ``v_i → m_u`` of weight ``w̄(u) − w(e)`` where
``w̄(u) = max_i w(e_i)``.  The circuit constraints on the mirror edges
pin ``r(m_u) ≥ r(v_i) − (w̄ − w_i)``; minimising the objective term
``r(m_u) − r(u)`` makes it equal ``max_i w_r(e_i) − w̄``, i.e. the
mirror measures exactly the shared register count (up to a constant).

The resulting linear objective has integer coefficients:

* ``+1`` on the head and ``−1`` on the tail of every single-fanout edge;
* ``+1`` on the mirror and ``−1`` on the vertex for multi-fanout vertices.

(The multiple-class sharing *correction* — separation vertices along a
compatibility cutline — happens earlier, in
:mod:`repro.mcretime.sharing`; by the time this model runs, fanout edges
of one vertex are mutually sharable by construction.)
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..graph.retiming_graph import RetimingGraph


@dataclass
class SharingModel:
    """The extended graph and cost vector for min-area retiming."""

    #: Copy of the input graph with mirror vertices/edges appended.
    graph: RetimingGraph
    #: Integer objective coefficient per vertex (0 entries omitted).
    cost: dict[str, int]
    #: vertex -> its mirror's name
    mirrors: dict[str, str] = field(default_factory=dict)
    #: constant offset: objective value = Σ c(v)·r(v) + constant
    constant: int = 0

    def objective(self, r: dict[str, int]) -> int:
        """Evaluate the modelled register count for retiming *r*."""
        return self.constant + sum(
            c * r.get(v, 0) for v, c in self.cost.items()
        )


def build_sharing_model(graph: RetimingGraph) -> SharingModel:
    """Build the mirror-vertex extension and cost coefficients."""
    extended = graph.copy()
    cost: dict[str, int] = {}
    mirrors: dict[str, str] = {}
    constant = 0

    def bump(v: str, amount: int) -> None:
        cost[v] = cost.get(v, 0) + amount

    for name in list(graph.vertices):
        outs = graph.out_edges(name)
        if not outs:
            continue
        if len(outs) == 1:
            edge = outs[0]
            bump(edge.v, 1)
            bump(edge.u, -1)
            constant += edge.w
        else:
            mirror = f"$mirror_{name}"
            extended.add_vertex(mirror, 0.0, "mirror")
            mirrors[name] = mirror
            w_bar = max(e.w for e in outs)
            for edge in outs:
                extended.add_edge(edge.v, mirror, w_bar - edge.w)
            bump(mirror, 1)
            bump(name, -1)
            constant += w_bar

    cost = {v: c for v, c in cost.items() if c != 0}
    return SharingModel(extended, cost, mirrors, constant)


def shared_register_count(
    graph: RetimingGraph, r: dict[str, int] | None = None
) -> int:
    """Register count under the fanout-sharing model (basic retiming).

    ``Σ_u max_e w_r(e)`` over real vertices; ignores class
    compatibility (the mc-aware count lives in the mcretime report).
    """
    r = r or {}
    total = 0
    for name, vertex in graph.vertices.items():
        if vertex.kind == "mirror":
            continue
        outs = [e for e in graph.out_edges(name) if graph.vertices[e.v].kind != "mirror"]
        if not outs:
            continue
        total += max(graph.retimed_weight(e, r) for e in outs)
    return total
