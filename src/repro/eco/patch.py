"""Dirty-region patching of interned CSR snapshots and dict graphs.

A topology-preserving edit leaves every array of the base design's
compiled work graph valid except the per-vertex ``delay`` column (gate
retypes change cell delays; everything else — names, edge arrays, CSR
adjacency, movability flags — is structure, which the edit preserved).
Instead of re-walking the dict graph (or re-interning a shared-memory
segment), :func:`patch_compiled_delays` builds a copy-on-write
:class:`~repro.kernels.CompiledGraph` that shares **every** array with
the base snapshot by reference and carries a freshly patched ``delay``
list — an O(dirty) operation independent of design size.

:func:`gate_delay_updates` computes which vertices are dirty and their
new delays from the edited circuit (vertex delay = cell delay + output
net delay; fanout counts are unchanged under a topology-preserving
edit, so only the cell term can move).
"""

from __future__ import annotations

from collections.abc import Iterable

from ..kernels import CompiledGraph
from ..netlist import Circuit
from ..timing.delay_models import DelayModel


def gate_delay_updates(
    edited: Circuit,
    delay_model: DelayModel,
    cg: CompiledGraph,
    gate_names: Iterable[str],
) -> dict[int, float]:
    """New delay per compiled-graph vertex id for the named gates.

    Only entries whose delay actually changed are returned, so an edit
    that re-types a gate without moving its delay (e.g. AND → OR under
    the unit-delay model) produces an empty patch and the caller can
    reuse the base solve outright.
    """
    updates: dict[int, float] = {}
    for name in gate_names:
        i = cg.index.get(name)
        if i is None:
            continue
        gate = edited.gates[name]
        fanout = len(edited.readers(gate.output))
        delay = delay_model.gate_delay(gate) + delay_model.net_delay(fanout)
        if delay != cg.delay[i]:
            updates[i] = delay
    return updates


def patch_compiled_delays(
    cg: CompiledGraph, updates: dict[int, float]
) -> CompiledGraph:
    """Copy-on-write delay patch of a compiled snapshot.

    Returns *cg* itself when *updates* is empty; otherwise a new
    :class:`~repro.kernels.CompiledGraph` sharing every array with *cg*
    by reference except ``delay``, which is a patched copy.  The base
    snapshot is never mutated — it may be a zero-copy view into a
    shared-memory segment other workers are reading.
    """
    if not updates:
        return cg
    patched = CompiledGraph()
    for slot in CompiledGraph.__slots__:
        setattr(patched, slot, getattr(cg, slot))
    delay = list(cg.delay)
    for i, value in updates.items():
        delay[i] = value
    patched.delay = delay
    return patched


def patch_graph_delays(graph, updates_by_name: dict[str, float]):
    """Patch vertex delays on a copy of a dict retiming graph.

    Used for the solver-facing work graph: the copy feeds the exact
    same ``min_period`` / ``min_area`` entry points as a cold solve, so
    the trajectory (and hence the result) is bit-identical to a cold
    build of the edited design.
    """
    copy = graph.copy()
    for name, delay in updates_by_name.items():
        vertex = copy.vertices.get(name)
        if vertex is not None:
            vertex.delay = delay
    return copy
