"""Incremental (ECO) multiple-class retiming.

``eco_retime(base, edit)`` answers a stream of near-identical jobs —
small netlist edits, parameter nudges, what-if sweeps — without paying
a cold six-step solve for each.  The contract is absolute: **every ECO
result is bit-identical to a cold solve of the edited design** (same
netlist bytes, same deterministic result metrics).  Speed comes only
from skipping work whose result is provably unchanged, never from
approximation:

* the solver prefix (build → bounds → sharing) is *delay-independent*
  and depends only on graph structure and register classes, so a
  topology-preserving, class-preserving edit reuses the base's prefix
  outright;
* the solves (min-period binary search + min-area LP) depend only on
  the work graph's structure, weights, bounds and vertex delays — not
  on reset values — so the **solve cache** (content-addressed by base
  content + patched delay vector + solve options) returns the full
  retiming instantly for any edit that lands on a previously solved
  delay configuration (reset nudges, reverts, A/B sweeps);
* on a solve-cache miss the edit's delay changes are patched
  copy-on-write into the interned CSR snapshot
  (:func:`repro.eco.patch.patch_compiled_delays`) instead of
  re-interning, and the live solve runs the exact cold trajectory over
  the patched arrays;
* clock periods before/after are recomputed with the incremental
  Δ ``refresh`` (:mod:`repro.kernels.delta`), seeded with the edit's
  dirty vertices (``extra_seeds``) and re-swept only over the edit's
  forward cone — the dirty-region STA of the graph domain;
* relocation (reset justification) *does* depend on reset values, so
  it always runs for real on the edited circuit.

Structural edits, class changes, IO changes, edits touching more than
``dirty_threshold`` of the design (the ``_REFRESH_FRACTION``
discipline), and relocation conflicts on a warm path all **fall back
to a cold solve** — correct by construction, only slower.  With
``REPRO_KERNEL_CHECK=1`` every warm result is additionally
differential-checked against a cold solve of the edited design and a
mismatch raises :class:`~repro.kernels.KernelMismatchError`.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field

from .. import kernels, obs
from ..graph.build import build_mcgraph
from ..kernels import (
    compile_graph,
    delta_sweep,
    refresh,
    seed_intern,
    unseed_intern,
)
from ..kernels.delta import _REFRESH_FRACTION
from ..mcretime import MCRetimeResult, mc_retime
from ..mcretime.bounds import compute_bounds
from ..mcretime.classes import Classifier
from ..mcretime.engine import _real_r, _verify_reset_requirements
from ..mcretime.relocate import (
    JustificationConflict,
    RelocationDeadlock,
    RelocationError,
    relocate,
)
from ..mcretime.reset import JustificationStats
from ..mcretime.sharing import apply_sharing_transform
from ..netlist import Circuit, write_blif
from ..retime.minarea import min_area
from ..retime.minperiod import min_period
from ..timing.delay_models import DelayModel, UNIT_DELAY
from .diff import CircuitDiff, apply_edit_script, diff_circuits
from .patch import (
    gate_delay_updates,
    patch_compiled_delays,
    patch_graph_delays,
)

#: result fields that must be bit-identical between an ECO solve and a
#: cold solve (everything except wall-clock timings)
DETERMINISTIC_METRICS = (
    "r",
    "n_classes",
    "steps_moved",
    "steps_possible",
    "period_before",
    "period_after",
    "ff_before",
    "ff_after",
    "resolve_attempts",
    "area_registers",
)


def deterministic_metrics(result: MCRetimeResult) -> dict:
    """The timing-independent projection of a retiming result."""
    return {name: getattr(result, name) for name in DETERMINISTIC_METRICS}


@dataclass
class SolveRecord:
    """Cached solver output for one delay configuration of a base."""

    phi: float
    #: full solver retiming over the work-graph vertices (the original
    #: graph's restriction feeds the period computation)
    r: dict[str, int]
    gate_r: dict[str, int]
    area_registers: int | None


@dataclass
class EcoResult:
    """An ECO solve: the retiming result plus how it was obtained."""

    result: MCRetimeResult
    circuit: Circuit
    #: ``"reuse"`` (solve cache hit), ``"resolve"`` (warm prefix, live
    #: solve over patched arrays) or ``"cold"`` (full fallback)
    plan: str
    diff: CircuitDiff | None = None
    dirty_fraction: float = 0.0
    #: why a cold fallback ran (``None`` on warm plans)
    fallback_reason: str | None = None
    #: CSR delay entries patched copy-on-write
    patched_entries: int = 0
    timings: dict[str, float] = field(default_factory=dict)

    @property
    def warm(self) -> bool:
        return self.plan != "cold"


class EcoState:
    """Reusable per-base-design solver state for incremental retiming.

    Holds the base circuit's solver prefix (classifier, mc-graph,
    bounds, sharing transform), the compiled CSR snapshots, the base
    Δ sweep the dirty-region refreshes start from, and the
    content-addressed solve cache.  One state serves any number of
    edits of the same base; construction is lazy, so creating a state
    costs nothing until the first :func:`eco_retime` call.
    """

    def __init__(
        self,
        circuit: Circuit,
        delay_model: DelayModel = UNIT_DELAY,
        semantic_classes: bool = True,
        intern_key: str | None = None,
        max_solve_records: int = 64,
    ) -> None:
        self.circuit = circuit
        self.delay_model = delay_model
        self.semantic_classes = semantic_classes
        #: optional shared-memory seed tag for the work graph (the
        #: service's interned segment); consumed by the first compile
        self.intern_key = intern_key
        self.max_solve_records = max(1, max_solve_records)
        self.solve_cache: dict[str, SolveRecord] = {}
        self.stats = {
            "edits": 0,
            "reuse": 0,
            "resolve": 0,
            "cold": 0,
            "patched_entries": 0,
        }
        self._built = False
        self._patch_token = 0

    # -- lazy prefix ---------------------------------------------------

    def _build_prefix(self) -> None:
        if self._built:
            return
        with obs.timed("eco.prefix", circuit=self.circuit.name):
            self.classifier = Classifier(
                self.circuit, semantic=self.semantic_classes
            )
            self.build = build_mcgraph(
                self.circuit, self.delay_model, self.classifier.classify
            )
            self.graph = self.build.graph
            self.bounds = compute_bounds(self.graph)
            self.transform = apply_sharing_transform(
                self.graph, self.bounds.bounds, self.bounds.backward_graph
            )
            if self.intern_key is not None:
                self.transform.graph.intern_key = f"{self.intern_key}|work"
            #: name -> class id of the base (class-preservation check)
            self.cid_map = {
                name: self.classifier.classify(reg)
                for name, reg in self.circuit.registers.items()
            }
            #: mc-graph CSR + its Δ sweep at r = 0: the anchor every
            #: dirty-region refresh starts from
            self.graph_cg = compile_graph(self.graph)
            self.zero_sweep = delta_sweep(
                self.graph_cg, [0] * self.graph_cg.n
            )
            #: work-graph CSR (honours the interned seed when tagged)
            self.work_cg = compile_graph(self.transform.graph)
            self.structural_key = hashlib.sha256(
                json.dumps(
                    {
                        "netlist": write_blif(self.circuit),
                        "model": repr(self.delay_model),
                        "semantic": self.semantic_classes,
                    },
                    sort_keys=True,
                ).encode()
            ).hexdigest()
        self._built = True

    def solve_key(
        self,
        updates: dict[int, float],
        objective: str,
        target_period: float | None,
    ) -> str:
        """Content address of one solve: base content + patched delay
        vector + solve options.  Every edit that lands on the same
        delay configuration (reset nudges, reverts, repeated what-ifs)
        shares the key and reuses the cached retiming."""
        self._build_prefix()
        payload = json.dumps(
            {
                "base": self.structural_key,
                "delays": sorted(updates.items()),
                "objective": objective,
                "target": target_period,
            },
            sort_keys=True,
        )
        return hashlib.sha256(payload.encode()).hexdigest()

    def remember(self, key: str, record: SolveRecord) -> None:
        if len(self.solve_cache) >= self.max_solve_records:
            # drop the oldest insertion (dict preserves order)
            self.solve_cache.pop(next(iter(self.solve_cache)))
        self.solve_cache[key] = record

    def next_patch_key(self) -> str:
        self._patch_token += 1
        return f"eco|{self.structural_key[:16]}|{self._patch_token}"


def _periods(
    state: EcoState,
    updates: dict[int, float],
    full_r: dict[str, int],
) -> tuple[float, float]:
    """Clock period before/after via dirty-region Δ refreshes.

    Starts from the base's r=0 sweep, patches the edit's delay changes
    in (``extra_seeds`` drives the forward-cone re-sweep), then moves
    to the solved retiming.  The kernel refresh is provably equal to a
    full sweep, and the full sweep is bit-identical to the dict
    ``compute_delta`` — so both values equal a cold solve's
    ``clock_period`` results exactly.
    """
    cg = patch_compiled_delays(state.graph_cg, updates)
    zeros = [0] * cg.n
    before = refresh(
        cg, state.zero_sweep, zeros, extra_seeds=set(updates)
    )
    r_list = cg.r_array(_real_r(state.graph, full_r))
    after = refresh(cg, before, r_list)
    return before.period, after.period


def _warm_solve(
    state: EcoState,
    work_graph,
    work_cg_patched,
    objective: str,
    target_period: float | None,
    use_kernels: bool | None,
    max_conflict_resolves: int,
    edited: Circuit,
    classifier: Classifier,
    timings: dict[str, float],
):
    """The cold solve/relocate loop, minus build/bounds/sharing.

    Runs over the (possibly delay-patched) work graph with a fresh
    bounds copy — the exact code path :func:`repro.mcretime.mc_retime`
    takes after its prefix, so the trajectory and result match a cold
    solve of the edited design bit for bit.
    """
    work_bounds = dict(state.transform.bounds)
    stats = JustificationStats()
    attempts = 0
    timings.setdefault("minperiod", 0.0)
    timings.setdefault("minarea", 0.0)
    timings.setdefault("relocate", 0.0)

    patch_key = None
    if work_graph is not state.transform.graph:
        # seed the patched CSR so the solver's compile is O(dirty)
        # instead of a full dict-graph walk
        patch_key = state.next_patch_key()
        seed_intern(patch_key, work_cg_patched)
        work_graph.intern_key = patch_key

    try:
        while True:
            with obs.timed("engine.minperiod", attempt=attempts) as sp:
                if target_period is None:
                    mp = min_period(
                        work_graph, work_bounds, use_kernels=use_kernels
                    )
                    phi = mp.phi
                else:
                    phi = target_period
            timings["minperiod"] += sp.duration

            with obs.timed("engine.minarea", phi=phi) as sp:
                if objective == "minarea":
                    area = min_area(
                        work_graph, phi, work_bounds, use_kernels=use_kernels
                    )
                    r = area.r
                    area_registers = area.registers
                elif objective == "minperiod":
                    if target_period is None:
                        r = mp.r
                    else:
                        from ..retime.minperiod import feasible_retiming

                        r = feasible_retiming(
                            work_graph,
                            phi,
                            work_bounds,
                            use_kernels=use_kernels,
                        )
                        if r is None:
                            from ..retime.constraints import InfeasibleError

                            raise InfeasibleError(
                                f"target period {phi} infeasible for "
                                f"{edited.name!r}"
                            )
                    area_registers = None
                else:
                    raise ValueError(f"unknown objective {objective!r}")
            timings["minarea"] += sp.duration

            gate_r = {name: r.get(name, 0) for name in edited.gates}

            try:
                with obs.timed("engine.relocate", attempt=attempts) as sp:
                    reloc = relocate(edited, gate_r, classifier)
                timings["relocate"] += sp.duration
                return r, gate_r, phi, area_registers, reloc, stats, attempts
            except JustificationConflict as conflict:
                timings["relocate"] += sp.duration
                obs.count("relocate.conflicts")
                stats.unresolvable += 1
                attempts += 1
                if attempts > max_conflict_resolves:
                    raise RelocationError(
                        "too many unresolvable justification conflicts"
                    ) from conflict
                lo, hi = work_bounds.get(conflict.gate, (0, 0))
                work_bounds[conflict.gate] = (
                    lo,
                    min(hi, conflict.moves_done),
                )
            except RelocationDeadlock as deadlock:
                timings["relocate"] += sp.duration
                obs.count("relocate.deadlocks")
                attempts += 1
                if attempts > max_conflict_resolves:
                    raise
                for gate_name, remaining in deadlock.pending.items():
                    lo, hi = work_bounds.get(gate_name, (0, 0))
                    done = deadlock.done[gate_name]
                    if remaining > 0:
                        work_bounds[gate_name] = (lo, min(hi, done))
                    else:
                        work_bounds[gate_name] = (max(lo, done), hi)
    finally:
        if patch_key is not None:
            unseed_intern(patch_key)


def eco_retime(
    base: "EcoState | Circuit",
    edit: "list[dict] | Circuit",
    delay_model: DelayModel | None = None,
    target_period: float | None = None,
    objective: str = "minarea",
    semantic_classes: bool | None = None,
    max_conflict_resolves: int = 25,
    verify_resets: bool = True,
    use_kernels: bool | None = None,
    dirty_threshold: float = _REFRESH_FRACTION,
    force_cold: bool = False,
) -> EcoResult:
    """Retime an edited design incrementally against its base.

    Args:
        base: an :class:`EcoState` (reused across edits — the fast
            path) or the base :class:`Circuit` (a throwaway state is
            built).
        edit: an edit script (list of op dicts, see
            :func:`repro.eco.apply_edit_script`) applied to the base,
            or the already-edited :class:`Circuit`.
        delay_model / semantic_classes: must match the state when one
            is passed; default to the state's settings.
        dirty_threshold: fall back to a cold solve when the edit
            touches more than this fraction of cells (the
            ``_REFRESH_FRACTION`` discipline).
        force_cold: always take the cold path (differential testing).

    Returns:
        :class:`EcoResult`; ``.result`` is bit-identical to
        ``mc_retime`` on the edited design.
    """
    state = base if isinstance(base, EcoState) else EcoState(
        base,
        delay_model=delay_model or UNIT_DELAY,
        semantic_classes=True if semantic_classes is None else semantic_classes,
    )
    if delay_model is not None and delay_model != state.delay_model:
        raise ValueError("delay_model differs from the ECO state's")
    if (
        semantic_classes is not None
        and semantic_classes != state.semantic_classes
    ):
        raise ValueError("semantic_classes differs from the ECO state's")

    timings: dict[str, float] = {}
    state.stats["edits"] += 1

    with obs.span("eco.retime", circuit=state.circuit.name):
        with obs.timed("eco.diff") as sp:
            edited = (
                edit
                if isinstance(edit, Circuit)
                else apply_edit_script(state.circuit, edit)
            )
            diff = diff_circuits(state.circuit, edited)
            dirty_fraction = diff.dirty_fraction(edited)
        timings["eco.diff"] = sp.duration
        obs.gauge("eco.dirty_fraction", dirty_fraction)

        reason = None
        if force_cold:
            reason = "forced"
        elif not diff.topology_preserving:
            reason = "structural"
        elif dirty_fraction > dirty_threshold:
            reason = "dirty_fraction"

        classifier = None
        if reason is None:
            state._build_prefix()
            # relocation needs the edited circuit's classifier anyway;
            # compare its partition against the base's — a retype that
            # altered a control function changes classes, which the
            # solver prefix baked in, so reuse would be unsound
            classifier = Classifier(edited, semantic=state.semantic_classes)
            cid_map = {
                name: classifier.classify(reg)
                for name, reg in edited.registers.items()
            }
            if cid_map != state.cid_map:
                reason = "class_changed"

        if reason is not None:
            return _cold(
                state,
                edited,
                diff,
                dirty_fraction,
                reason,
                timings,
                target_period,
                objective,
                max_conflict_resolves,
                verify_resets,
                use_kernels,
            )

        with obs.timed("eco.patch") as sp:
            updates = gate_delay_updates(
                edited,
                state.delay_model,
                state.graph_cg,
                diff.retyped_gates,
            )
            key = state.solve_key(updates, objective, target_period)
        timings["eco.patch"] = sp.duration
        obs.count("eco.patch.entries", len(updates))
        state.stats["patched_entries"] += len(updates)

        record = state.solve_cache.get(key)
        with obs.timed("eco.resolve", plan="reuse" if record else "live") as sp:
            try:
                if record is not None:
                    obs.count("eco.cache.hit")
                    plan = "reuse"
                    stats = JustificationStats()
                    with obs.timed("engine.relocate") as rsp:
                        reloc = relocate(edited, record.gate_r, classifier)
                    timings["relocate"] = rsp.duration
                    full_r, gate_r = record.r, record.gate_r
                    area_registers = record.area_registers
                    attempts = 0
                else:
                    obs.count("eco.cache.miss")
                    plan = "resolve"
                    if updates:
                        by_name = {
                            state.graph_cg.names[i]: d
                            for i, d in updates.items()
                        }
                        work_graph = patch_graph_delays(
                            state.transform.graph, by_name
                        )
                        work_updates = {
                            state.work_cg.index[name]: d
                            for name, d in by_name.items()
                            if name in state.work_cg.index
                        }
                        work_cg = patch_compiled_delays(
                            state.work_cg, work_updates
                        )
                    else:
                        work_graph = state.transform.graph
                        work_cg = state.work_cg
                    (
                        full_r,
                        gate_r,
                        _phi,
                        area_registers,
                        reloc,
                        stats,
                        attempts,
                    ) = _warm_solve(
                        state,
                        work_graph,
                        work_cg,
                        objective,
                        target_period,
                        use_kernels,
                        max_conflict_resolves,
                        edited,
                        classifier,
                        timings,
                    )
                    if attempts == 0:
                        # conflict-free solves are pure functions of the
                        # delay configuration — safe to reuse; conflicted
                        # trajectories also depend on reset values, so
                        # they are never cached
                        state.remember(
                            key,
                            SolveRecord(
                                phi=_phi,
                                r=dict(full_r),
                                gate_r=dict(gate_r),
                                area_registers=area_registers,
                            ),
                        )
            except (JustificationConflict, RelocationDeadlock):
                # a cached retiming can conflict on *this* edit's reset
                # values even though it was conflict-free on the base's;
                # the cold solve replays the clamp loop from scratch
                return _cold(
                    state,
                    edited,
                    diff,
                    dirty_fraction,
                    "conflict",
                    timings,
                    target_period,
                    objective,
                    max_conflict_resolves,
                    verify_resets,
                    use_kernels,
                )
        timings["eco.resolve"] = sp.duration

        if verify_resets:
            _verify_reset_requirements(reloc.circuit, reloc.requirements)

        period_before, period_after = _periods(state, updates, full_r)

        for stage in ("build", "bounds", "sharing"):
            # the prefix is amortised across edits; the keys stay so
            # timing_fractions() sees the same schema as a cold result
            timings.setdefault(stage, 0.0)

        result = MCRetimeResult(
            circuit=reloc.circuit,
            r=gate_r,
            n_classes=classifier.n_classes,
            steps_moved=reloc.steps_moved,
            steps_possible=state.bounds.steps_possible,
            period_before=period_before,
            period_after=period_after,
            ff_before=len(edited.registers),
            ff_after=len(reloc.circuit.registers),
            stats=stats.merged(reloc.stats),
            timings=timings,
            resolve_attempts=attempts,
            area_registers=area_registers,
        )
        state.stats[plan] += 1
        eco = EcoResult(
            result=result,
            circuit=edited,
            plan=plan,
            diff=diff,
            dirty_fraction=dirty_fraction,
            patched_entries=len(updates),
            timings=dict(timings),
        )
        if kernels.kernel_check_enabled():
            _check_against_cold(
                eco,
                edited,
                state,
                target_period,
                objective,
                max_conflict_resolves,
                verify_resets,
                use_kernels,
            )
        return eco


def _cold(
    state: EcoState,
    edited: Circuit,
    diff: CircuitDiff,
    dirty_fraction: float,
    reason: str,
    timings: dict[str, float],
    target_period: float | None,
    objective: str,
    max_conflict_resolves: int,
    verify_resets: bool,
    use_kernels: bool | None,
) -> EcoResult:
    """Full cold solve of the edited design (always bit-identical)."""
    obs.count("eco.fallback")
    obs.count(f"eco.fallback.{reason}")
    state.stats["cold"] += 1
    result = mc_retime(
        edited,
        delay_model=state.delay_model,
        target_period=target_period,
        objective=objective,
        semantic_classes=state.semantic_classes,
        max_conflict_resolves=max_conflict_resolves,
        verify_resets=verify_resets,
        use_kernels=use_kernels,
    )
    merged = dict(result.timings)
    merged.update(timings)
    result.timings = merged
    return EcoResult(
        result=result,
        circuit=edited,
        plan="cold",
        diff=diff,
        dirty_fraction=dirty_fraction,
        fallback_reason=reason,
        timings=merged,
    )


def _check_against_cold(
    eco: EcoResult,
    edited: Circuit,
    state: EcoState,
    target_period: float | None,
    objective: str,
    max_conflict_resolves: int,
    verify_resets: bool,
    use_kernels: bool | None,
) -> None:
    """Differential mode: a warm result must match a cold solve."""
    cold = mc_retime(
        edited,
        delay_model=state.delay_model,
        target_period=target_period,
        objective=objective,
        semantic_classes=state.semantic_classes,
        max_conflict_resolves=max_conflict_resolves,
        verify_resets=verify_resets,
        use_kernels=use_kernels,
    )
    kernels.expect_equal(
        "eco.netlist",
        write_blif(eco.result.circuit),
        write_blif(cold.circuit),
    )
    kernels.expect_equal(
        "eco.metrics",
        deterministic_metrics(eco.result),
        deterministic_metrics(cold),
    )
