"""Netlist diffing and edit scripts for incremental (ECO) retiming.

Two circuits of the same design lineage are compared cell by cell into
a :class:`CircuitDiff`: which gates were added, removed, re-typed
(function/table changed, pins identical) or rewired, which registers
changed their reset values, control pins or connectivity, and which
nets the edit touched.  The diff drives the plan decision in
:func:`repro.eco.eco_retime` — a *topology-preserving* edit (only gate
functions and register reset values changed, cell order intact) keeps
the base design's retiming graph structurally identical, so the solver
prefix (build → bounds → sharing) and, when delays are also unchanged,
the whole solve can be reused.

Edits also travel as **edit scripts**: JSON-able lists of operation
dicts that :func:`apply_edit_script` replays onto a clone of the base
circuit.  The service layer ships scripts instead of full netlists for
``RetimeJob(base_key=..., edit=...)`` submissions.

Supported operations::

    {"op": "retype_gate", "name": g, "fn": "nand", "table": null}
    {"op": "set_reset",   "name": f, "sval": 1, "aval": 2}
    {"op": "set_control", "name": f, "en": "net" | null, ...}
    {"op": "add_gate",    "name": g, "fn": "and", "inputs": [...],
                          "output": net, "table": null,
                          "as_output": true}
    {"op": "remove_gate", "name": g}

Reset values are the ternary integers of :mod:`repro.logic.ternary`
(0, 1, 2 = don't-care), so scripts round-trip through JSON untouched.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..netlist import Circuit, GateFn


#: ops that keep the retiming graph's structure (vertices, edges,
#: weights) identical; only vertex delays and reset values may move
_TOPOLOGY_PRESERVING_OPS = frozenset({"retype_gate", "set_reset"})


@dataclass
class CircuitDiff:
    """Cell-level difference between a base and an edited circuit."""

    #: gate names present only in the edited circuit
    added_gates: list[str] = field(default_factory=list)
    #: gate names present only in the base circuit
    removed_gates: list[str] = field(default_factory=list)
    #: same name and pins, different function or truth table
    retyped_gates: list[str] = field(default_factory=list)
    #: same name, different inputs or output net
    rewired_gates: list[str] = field(default_factory=list)
    added_registers: list[str] = field(default_factory=list)
    removed_registers: list[str] = field(default_factory=list)
    #: registers whose d/q/clk/en/sr/ar nets changed (class-relevant)
    control_changed: list[str] = field(default_factory=list)
    #: registers whose sval/aval changed (relocation-relevant only)
    reset_changed: list[str] = field(default_factory=list)
    #: primary input/output lists or circuit name differ
    io_changed: bool = False
    #: cell insertion order differs (vertex ids would renumber)
    order_changed: bool = False
    #: nets whose driving cell or timing the edit may have altered
    touched_nets: set[str] = field(default_factory=set)

    @property
    def is_empty(self) -> bool:
        return not (
            self.added_gates
            or self.removed_gates
            or self.retyped_gates
            or self.rewired_gates
            or self.added_registers
            or self.removed_registers
            or self.control_changed
            or self.reset_changed
            or self.io_changed
            or self.order_changed
        )

    @property
    def topology_preserving(self) -> bool:
        """True when the mc-graph of the edited circuit has the same
        vertices, edges, weights, and register classes-by-position as
        the base — only vertex delays (gate retypes) and reset values
        may differ.  The solver prefix (build → bounds → sharing) is
        then structurally identical and reusable."""
        return not (
            self.added_gates
            or self.removed_gates
            or self.rewired_gates
            or self.added_registers
            or self.removed_registers
            or self.control_changed
            or self.io_changed
            or self.order_changed
        )

    @property
    def n_touched_cells(self) -> int:
        return (
            len(self.added_gates)
            + len(self.removed_gates)
            + len(self.retyped_gates)
            + len(self.rewired_gates)
            + len(self.added_registers)
            + len(self.removed_registers)
            + len(self.control_changed)
            + len(self.reset_changed)
        )

    def dirty_fraction(self, circuit: Circuit) -> float:
        """Touched cells as a fraction of the edited design's cells."""
        total = len(circuit.gates) + len(circuit.registers)
        if total == 0:
            return 1.0 if not self.is_empty else 0.0
        return min(1.0, self.n_touched_cells / total)


def diff_circuits(base: Circuit, edited: Circuit) -> CircuitDiff:
    """Compare two circuits cell by cell.

    The comparison is name-keyed: a gate present in both circuits under
    the same name is classified as unchanged / retyped / rewired; cell
    *insertion order* is compared separately (``order_changed``) because
    compiled-graph vertex ids follow it.
    """
    d = CircuitDiff()
    d.io_changed = (
        base.inputs != edited.inputs
        or base.outputs != edited.outputs
        or base.name != edited.name
    )

    base_gates = base.gates
    new_gates = edited.gates
    for name, gate in new_gates.items():
        old = base_gates.get(name)
        if old is None:
            d.added_gates.append(name)
            d.touched_nets.add(gate.output)
        elif old.inputs != gate.inputs or old.output != gate.output:
            d.rewired_gates.append(name)
            d.touched_nets.add(gate.output)
            d.touched_nets.add(old.output)
        elif old.fn is not gate.fn or old.truth_table() != gate.truth_table():
            d.retyped_gates.append(name)
            d.touched_nets.add(gate.output)
    for name, gate in base_gates.items():
        if name not in new_gates:
            d.removed_gates.append(name)
            d.touched_nets.add(gate.output)

    base_regs = base.registers
    new_regs = edited.registers
    for name, reg in new_regs.items():
        old = base_regs.get(name)
        if old is None:
            d.added_registers.append(name)
            d.touched_nets.add(reg.q)
            continue
        if (
            old.d != reg.d
            or old.q != reg.q
            or old.clk != reg.clk
            or old.en != reg.en
            or old.sr != reg.sr
            or old.ar != reg.ar
        ):
            d.control_changed.append(name)
            d.touched_nets.add(reg.q)
            d.touched_nets.add(old.q)
        elif old.sval != reg.sval or old.aval != reg.aval:
            d.reset_changed.append(name)
    for name, reg in base_regs.items():
        if name not in new_regs:
            d.removed_registers.append(name)
            d.touched_nets.add(reg.q)

    # vertex/edge ids follow cell insertion order; a reordering with
    # identical content still renumbers the compiled arrays (compare
    # common cells only — adds/removes are already classified above)
    if not d.order_changed:
        d.order_changed = [n for n in base_gates if n in new_gates] != [
            n for n in new_gates if n in base_gates
        ] or [n for n in base_regs if n in new_regs] != [
            n for n in new_regs if n in base_regs
        ]
    return d


def _fn_of(value: str) -> GateFn:
    try:
        return GateFn(value)
    except ValueError:
        raise ValueError(f"unknown gate function {value!r}") from None


def apply_edit_script(circuit: Circuit, ops: list[dict]) -> Circuit:
    """Replay *ops* onto a clone of *circuit*; the input is untouched.

    Raises ``ValueError``/``KeyError`` on malformed operations (unknown
    op kind, missing cell, bad function name) — the service layer maps
    these to HTTP 400.
    """
    work = circuit.clone()
    for op in ops:
        kind = op.get("op")
        if kind == "retype_gate":
            gate = work.gates[op["name"]]
            fn = _fn_of(op["fn"])
            table = op.get("table")
            if fn is not GateFn.LUT and table is None:
                # primitive retype: let the arity check validate
                replacement = type(gate)(
                    gate.name, fn, list(gate.inputs), gate.output
                )
            else:
                replacement = type(gate)(
                    gate.name, fn, list(gate.inputs), gate.output, table
                )
            # swap in place, preserving insertion order
            work.gates[gate.name] = replacement
        elif kind == "set_reset":
            reg = work.registers[op["name"]]
            if "sval" in op:
                reg.sval = int(op["sval"])
            if "aval" in op:
                reg.aval = int(op["aval"])
        elif kind == "set_control":
            reg = work.registers[op["name"]]
            for pin in ("en", "sr", "ar"):
                if pin in op:
                    setattr(reg, pin, op[pin])
        elif kind == "add_gate":
            work.add_gate(
                _fn_of(op["fn"]),
                list(op["inputs"]),
                op["output"],
                name=op["name"],
                table=op.get("table"),
            )
            if op.get("as_output"):
                work.add_output(op["output"])
        elif kind == "remove_gate":
            gate = work.remove_gate(op["name"])
            if gate.output in work.outputs:
                work.outputs.remove(gate.output)
        else:
            raise ValueError(f"unknown edit op {kind!r}")
    return work
