"""``repro.eco`` — incremental (ECO) multiple-class retiming.

Engineering-change-order support: diff an edited netlist against its
base (:mod:`.diff`), patch the edit's delay changes copy-on-write into
the base's interned CSR snapshot (:mod:`.patch`), and re-solve warm
(:mod:`.solve`) — reusing the delay-independent solver prefix, the
content-addressed solve cache, and dirty-region Δ refreshes — with
every result bit-identical to a cold solve of the edited design.

Entry points:

* :func:`eco_retime` — retime ``base + edit`` incrementally.
* :class:`EcoState` — reusable per-base solver state (prefix, CSR
  snapshots, solve cache); share one across an edit stream.
* :func:`diff_circuits` / :func:`apply_edit_script` — the netlist-diff
  layer and the JSON edit-script format the service ships.

See ``docs/ECO.md`` for the plan taxonomy (reuse / resolve / cold) and
the fallback rules.
"""

from .diff import (
    CircuitDiff,
    apply_edit_script,
    diff_circuits,
)
from .patch import (
    gate_delay_updates,
    patch_compiled_delays,
    patch_graph_delays,
)
from .solve import (
    DETERMINISTIC_METRICS,
    EcoResult,
    EcoState,
    SolveRecord,
    deterministic_metrics,
    eco_retime,
)

__all__ = [
    "CircuitDiff",
    "DETERMINISTIC_METRICS",
    "EcoResult",
    "EcoState",
    "SolveRecord",
    "apply_edit_script",
    "deterministic_metrics",
    "diff_circuits",
    "eco_retime",
    "gate_delay_updates",
    "patch_compiled_delays",
    "patch_graph_delays",
]
