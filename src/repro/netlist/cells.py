"""Cell types: combinational gates and the generic register.

Combinational cells are either named primitive functions (AND, OR, ...)
or LUTs carrying an explicit truth table.  Every primitive normalizes to
a truth table, so downstream code (simulation, BDD construction, mapping)
only ever deals with one representation.

The sequential cell is the paper's *generic register* (Fig. 2a): a
D-flip-flop with optional synchronous load enable EN, a synchronous
set/clear signal, and an asynchronous set/clear signal, plus the reset
values ``s, a ∈ {0, 1, -}`` the register assumes when the respective
reset asserts.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from enum import Enum
from typing import Sequence

from ..logic.ternary import T0, T1, TX, ternary_char


class GateFn(Enum):
    """Primitive combinational functions.

    ``LUT`` marks a gate whose function is given by an explicit truth
    table; all other members have a fixed function of their input count.
    """

    BUF = "buf"
    NOT = "not"
    AND = "and"
    OR = "or"
    NAND = "nand"
    NOR = "nor"
    XOR = "xor"
    XNOR = "xnor"
    MUX = "mux"  # inputs (sel, a, b): sel=0 -> a, sel=1 -> b
    LUT = "lut"
    #: XC4000-style hardwired carry element: inputs (a, b, cin),
    #: output = majority(a, b, cin).  Kept as a primitive through
    #: mapping (the dedicated carry logic is much faster than a LUT).
    CARRY = "carry"


#: Maximum input count for which truth tables are materialised eagerly.
MAX_TABLE_INPUTS = 16


def _table_from_fn(fn: GateFn, n_inputs: int) -> int:
    """Truth table (bitmask over minterm indices) of a primitive."""
    size = 1 << n_inputs
    mask = 0
    for minterm in range(size):
        bits = [(minterm >> i) & 1 for i in range(n_inputs)]
        if fn is GateFn.BUF:
            value = bits[0]
        elif fn is GateFn.NOT:
            value = 1 - bits[0]
        elif fn is GateFn.AND:
            value = int(all(bits))
        elif fn is GateFn.NAND:
            value = int(not all(bits))
        elif fn is GateFn.OR:
            value = int(any(bits))
        elif fn is GateFn.NOR:
            value = int(not any(bits))
        elif fn is GateFn.XOR:
            value = sum(bits) & 1
        elif fn is GateFn.XNOR:
            value = 1 - (sum(bits) & 1)
        elif fn is GateFn.MUX:
            if n_inputs != 3:
                raise ValueError("MUX requires exactly 3 inputs (sel, a, b)")
            value = bits[2] if bits[0] else bits[1]
        elif fn is GateFn.CARRY:
            if n_inputs != 3:
                raise ValueError("CARRY requires exactly 3 inputs (a, b, cin)")
            value = int(sum(bits) >= 2)
        else:
            raise ValueError(f"no fixed table for {fn}")
        if value:
            mask |= 1 << minterm
    return mask


_ARITY_CHECKS = {
    GateFn.BUF: (1, 1),
    GateFn.NOT: (1, 1),
    GateFn.AND: (1, None),
    GateFn.OR: (1, None),
    GateFn.NAND: (1, None),
    GateFn.NOR: (1, None),
    GateFn.XOR: (1, None),
    GateFn.XNOR: (1, None),
    GateFn.MUX: (3, 3),
    GateFn.LUT: (0, None),
    GateFn.CARRY: (3, 3),
}


@dataclass
class Gate:
    """A combinational cell.

    Attributes:
        name: unique instance name within the circuit.
        fn: primitive function tag.
        inputs: driving nets, in pin order (bit ``i`` of a minterm index
            corresponds to ``inputs[i]``).
        output: the single driven net.
        table: truth table bitmask; required when ``fn`` is LUT, derived
            on demand otherwise.
    """

    name: str
    fn: GateFn
    inputs: list[str]
    output: str
    table: int | None = None

    def __post_init__(self) -> None:
        lo, hi = _ARITY_CHECKS[self.fn]
        n = len(self.inputs)
        if n < lo or (hi is not None and n > hi):
            raise ValueError(f"{self.fn.value} gate {self.name!r} has {n} inputs")
        if self.fn is GateFn.LUT:
            if self.table is None:
                raise ValueError(f"LUT gate {self.name!r} needs a truth table")
            if n > MAX_TABLE_INPUTS:
                raise ValueError(f"LUT gate {self.name!r} too wide ({n} inputs)")
            if self.table >> (1 << n):
                raise ValueError(f"LUT gate {self.name!r} table wider than 2^{n} bits")

    @property
    def n_inputs(self) -> int:
        """Number of input pins."""
        return len(self.inputs)

    def truth_table(self) -> int:
        """Truth table bitmask over ``2**n_inputs`` minterms.

        For primitives the table is computed once and cached on the gate.
        """
        if self.table is None:
            self.table = _table_from_fn(self.fn, len(self.inputs))
        return self.table

    def eval_binary(self, values: Sequence[int]) -> int:
        """Evaluate on fully binary inputs (0/1 per pin)."""
        index = 0
        for i, v in enumerate(values):
            if v:
                index |= 1 << i
        return (self.truth_table() >> index) & 1

    def is_constant(self) -> int | None:
        """Return 0/1 if the gate ignores all inputs, else None."""
        table = self.truth_table()
        size = 1 << len(self.inputs)
        if table == 0:
            return 0
        if table == (1 << size) - 1:
            return 1
        return None

    def clone(self) -> "Gate":
        """Deep copy (input list is copied)."""
        return Gate(self.name, self.fn, list(self.inputs), self.output, self.table)


@dataclass
class Register:
    """The generic register of paper Fig. 2a.

    Control pins are nets; ``None`` means the capability is absent (for
    EN this is equivalent to tying the pin to constant 1).  ``sval`` /
    ``aval`` are the ternary values the register assumes when the
    synchronous / asynchronous reset signal asserts — the paper's labels
    ``s`` and ``a``.  A register with ``sr`` set and ``sval == T1``
    models a synchronous set (SS); ``sval == T0`` a synchronous clear
    (SC); likewise ``ar``/``aval`` for AS/AC.

    Update semantics (active-high controls, rising clock edge)::

        if ar:            Q <= aval            (asynchronous, immediate)
        elif rising(clk):
            if sr:        Q <= sval
            elif en:      Q <= D
            else:         Q <= Q
    """

    name: str
    d: str
    q: str
    clk: str
    en: str | None = None
    sr: str | None = None
    ar: str | None = None
    sval: int = TX
    aval: int = TX

    def __post_init__(self) -> None:
        if self.sval not in (T0, T1, TX):
            raise ValueError(f"register {self.name!r}: bad sval {self.sval!r}")
        if self.aval not in (T0, T1, TX):
            raise ValueError(f"register {self.name!r}: bad aval {self.aval!r}")

    @property
    def has_enable(self) -> bool:
        """True iff the register has a real (non-constant-1) load enable."""
        from .signals import CONST1

        return self.en is not None and self.en != CONST1

    @property
    def has_sync_reset(self) -> bool:
        """True iff a synchronous set/clear signal is connected."""
        from .signals import CONST0

        return self.sr is not None and self.sr != CONST0

    @property
    def has_async_reset(self) -> bool:
        """True iff an asynchronous set/clear signal is connected."""
        from .signals import CONST0

        return self.ar is not None and self.ar != CONST0

    def control_nets(self) -> list[str]:
        """All connected control nets except the clock, in pin order."""
        nets = []
        for net in (self.en, self.sr, self.ar):
            if net is not None:
                nets.append(net)
        return nets

    def reset_label(self) -> str:
        """The paper's ``(s, a)`` annotation, e.g. ``"s=1,a=-"``."""
        return f"s={ternary_char(self.sval)},a={ternary_char(self.aval)}"

    def clone(self) -> "Register":
        """Field-wise copy."""
        return replace(self)


@dataclass(frozen=True)
class Port:
    """A primary input or output; the port name is also its net name."""

    name: str
    direction: str  # "input" | "output"

    def __post_init__(self) -> None:
        if self.direction not in ("input", "output"):
            raise ValueError(f"bad port direction {self.direction!r}")


def make_lut(name: str, inputs: Sequence[str], output: str, table: int) -> Gate:
    """Convenience constructor for a LUT gate."""
    return Gate(name, GateFn.LUT, list(inputs), output, table)
