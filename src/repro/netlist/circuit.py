"""The circuit container: a flat netlist of gates, registers, and ports.

This is the central mutable data structure of the library.  Everything —
optimization passes, technology mapping, retiming-graph construction, and
register relocation — reads and edits a :class:`Circuit`.

Design notes
------------
* Nets are strings.  Each net has at most one driver: a primary input, a
  gate output, a register Q, or one of the two constant nets.
* The container maintains a driver index incrementally; fanout (reader)
  indexes are computed on demand and cached until the next mutation.
* Registers never participate in combinational topological order: their
  Q pins act as sources and their D/control pins as sinks.
"""

from __future__ import annotations

from typing import Callable, Iterable, Iterator

from .cells import Gate, GateFn, Port, Register
from .signals import CONST0, CONST1, NetNamer, is_const


class NetlistError(Exception):
    """Raised on structural violations (double drivers, missing nets, ...)."""


class Circuit:
    """A flat synchronous netlist.

    Attributes:
        name: design name.
        inputs: primary input port names, in declaration order.
        outputs: primary output port names, in declaration order.
        gates: combinational cells by instance name.
        registers: sequential cells by instance name.
    """

    def __init__(self, name: str = "top") -> None:
        self.name = name
        self.inputs: list[str] = []
        self.outputs: list[str] = []
        self.gates: dict[str, Gate] = {}
        self.registers: dict[str, Register] = {}
        self._driver: dict[str, tuple[str, str]] = {}  # net -> (kind, cell/port name)
        self._readers_cache: dict[str, list[tuple[str, str, int]]] | None = None
        self.namer = NetNamer()
        self.namer.claim(CONST0)
        self.namer.claim(CONST1)

    # ------------------------------------------------------------------ #
    # construction

    def add_input(self, name: str) -> str:
        """Declare a primary input; the port name is also the net name."""
        if name in self._driver:
            raise NetlistError(f"net {name!r} already driven")
        self.inputs.append(name)
        self._driver[name] = ("input", name)
        self.namer.claim(name)
        self._invalidate()
        return name

    def add_output(self, net: str) -> str:
        """Declare *net* as a primary output (it must be driven by someone)."""
        self.outputs.append(net)
        self.namer.claim(net)
        self._invalidate()
        return net

    def add_gate(
        self,
        fn: GateFn,
        inputs: Iterable[str],
        output: str | None = None,
        name: str | None = None,
        table: int | None = None,
    ) -> Gate:
        """Create a gate; names and output net are auto-generated if omitted."""
        if name is None:
            name = self.namer.fresh(f"g_{fn.value}")
        else:
            if name in self.gates or name in self.registers:
                raise NetlistError(f"cell name {name!r} already used")
            self.namer.claim(name)
        if output is None:
            output = self.namer.fresh(f"n_{fn.value}")
        else:
            self.namer.claim(output)
        if output in self._driver:
            raise NetlistError(f"net {output!r} already driven")
        gate = Gate(name, fn, list(inputs), output, table)
        self.gates[name] = gate
        self._driver[output] = ("gate", name)
        self._invalidate()
        return gate

    def add_register(
        self,
        d: str,
        q: str | None = None,
        clk: str = "clk",
        name: str | None = None,
        en: str | None = None,
        sr: str | None = None,
        ar: str | None = None,
        sval: int = 2,
        aval: int = 2,
    ) -> Register:
        """Create a generic register (paper Fig. 2a)."""
        if name is None:
            name = self.namer.fresh("r")
        else:
            if name in self.gates or name in self.registers:
                raise NetlistError(f"cell name {name!r} already used")
            self.namer.claim(name)
        if q is None:
            q = self.namer.fresh("q")
        else:
            self.namer.claim(q)
        if q in self._driver:
            raise NetlistError(f"net {q!r} already driven")
        reg = Register(name, d, q, clk, en=en, sr=sr, ar=ar, sval=sval, aval=aval)
        self.registers[name] = reg
        self._driver[q] = ("register", name)
        self._invalidate()
        return reg

    def new_net(self, prefix: str = "n") -> str:
        """Reserve and return a fresh net name (undriven until used)."""
        return self.namer.fresh(prefix)

    # ------------------------------------------------------------------ #
    # removal / rewiring

    def remove_gate(self, name: str) -> Gate:
        """Delete a gate; its output net becomes undriven."""
        gate = self.gates.pop(name)
        del self._driver[gate.output]
        self._invalidate()
        return gate

    def remove_register(self, name: str) -> Register:
        """Delete a register; its Q net becomes undriven."""
        reg = self.registers.pop(name)
        del self._driver[reg.q]
        self._invalidate()
        return reg

    def rewire_gate_output(self, gate: Gate, new_output: str) -> None:
        """Move a gate's output to a different (undriven) net."""
        if new_output in self._driver:
            raise NetlistError(f"net {new_output!r} already driven")
        del self._driver[gate.output]
        gate.output = new_output
        self.namer.claim(new_output)
        self._driver[new_output] = ("gate", gate.name)
        self._invalidate()

    def replace_net(self, old: str, new: str) -> int:
        """Substitute every *use* of net ``old`` by ``new``.

        The driver of ``old`` is untouched; returns the number of pins
        rewritten (including output-port uses).
        """
        count = 0
        for gate in self.gates.values():
            for i, net in enumerate(gate.inputs):
                if net == old:
                    gate.inputs[i] = new
                    count += 1
        for reg in self.registers.values():
            if reg.d == old:
                reg.d = new
                count += 1
            if reg.clk == old:
                reg.clk = new
                count += 1
            for attr in ("en", "sr", "ar"):
                if getattr(reg, attr) == old:
                    setattr(reg, attr, new)
                    count += 1
        for i, net in enumerate(self.outputs):
            if net == old:
                self.outputs[i] = new
                count += 1
        self._invalidate()
        return count

    # ------------------------------------------------------------------ #
    # queries

    def driver(self, net: str) -> tuple[str, str] | None:
        """Return ``(kind, name)`` driving *net*; constants drive themselves.

        Kinds: ``"input"``, ``"gate"``, ``"register"``, ``"const"``.
        Returns None for undriven nets.
        """
        if is_const(net):
            return ("const", net)
        return self._driver.get(net)

    def driver_gate(self, net: str) -> Gate | None:
        """The gate driving *net*, or None."""
        d = self._driver.get(net)
        if d is not None and d[0] == "gate":
            return self.gates[d[1]]
        return None

    def driver_register(self, net: str) -> Register | None:
        """The register whose Q drives *net*, or None."""
        d = self._driver.get(net)
        if d is not None and d[0] == "register":
            return self.registers[d[1]]
        return None

    def readers(self, net: str) -> list[tuple[str, str, int]]:
        """All sinks of *net* as ``(kind, cell name, pin index)`` triples.

        Kinds: ``"gate"`` (pin index into ``gate.inputs``), ``"register"``
        (pin 0=D, 1=CLK, 2=EN, 3=SR, 4=AR), ``"output"`` (index into
        ``self.outputs``).
        """
        return self._readers().get(net, [])

    def _readers(self) -> dict[str, list[tuple[str, str, int]]]:
        if self._readers_cache is None:
            readers: dict[str, list[tuple[str, str, int]]] = {}
            for gate in self.gates.values():
                for i, net in enumerate(gate.inputs):
                    readers.setdefault(net, []).append(("gate", gate.name, i))
            for reg in self.registers.values():
                pins = [reg.d, reg.clk, reg.en, reg.sr, reg.ar]
                for i, net in enumerate(pins):
                    if net is not None:
                        readers.setdefault(net, []).append(("register", reg.name, i))
            for i, net in enumerate(self.outputs):
                readers.setdefault(net, []).append(("output", net, i))
            self._readers_cache = readers
        return self._readers_cache

    def nets(self) -> set[str]:
        """Every net mentioned anywhere in the circuit."""
        result: set[str] = set(self.inputs) | set(self.outputs)
        for gate in self.gates.values():
            result.update(gate.inputs)
            result.add(gate.output)
        for reg in self.registers.values():
            result.add(reg.d)
            result.add(reg.q)
            result.add(reg.clk)
            for net in (reg.en, reg.sr, reg.ar):
                if net is not None:
                    result.add(net)
        return result

    def clock_nets(self) -> list[str]:
        """Distinct nets used as register clocks, in first-use order."""
        seen: dict[str, None] = {}
        for reg in self.registers.values():
            seen.setdefault(reg.clk)
        return list(seen)

    def control_nets(self) -> list[str]:
        """Distinct nets used as EN/SR/AR pins, in first-use order."""
        seen: dict[str, None] = {}
        for reg in self.registers.values():
            for net in reg.control_nets():
                if not is_const(net):
                    seen.setdefault(net)
        return list(seen)

    def topo_gates(self) -> list[Gate]:
        """Gates in combinational topological order.

        Register Q pins, primary inputs and constants are sources.
        Raises :class:`NetlistError` if a combinational cycle exists.
        """
        order: list[Gate] = []
        state: dict[str, int] = {}  # gate name -> 0 visiting, 1 done
        stack: list[tuple[Gate, int]] = []
        for root in self.gates.values():
            if state.get(root.name) == 1:
                continue
            stack.append((root, 0))
            while stack:
                gate, pin = stack.pop()
                if pin == 0:
                    if state.get(gate.name) == 1:
                        continue
                    if state.get(gate.name) == 0:
                        continue
                    state[gate.name] = 0
                if pin < len(gate.inputs):
                    stack.append((gate, pin + 1))
                    pred = self.driver_gate(gate.inputs[pin])
                    if pred is not None and state.get(pred.name) != 1:
                        if state.get(pred.name) == 0:
                            raise NetlistError(
                                f"combinational cycle through {pred.name!r}"
                            )
                        stack.append((pred, 0))
                else:
                    state[gate.name] = 1
                    order.append(gate)
        return order

    def transitive_fanin_gates(self, nets: Iterable[str]) -> list[Gate]:
        """Gates in the combinational cone feeding *nets* (topo order)."""
        cone: set[str] = set()
        work = list(nets)
        while work:
            net = work.pop()
            gate = self.driver_gate(net)
            if gate is not None and gate.name not in cone:
                cone.add(gate.name)
                work.extend(gate.inputs)
        return [g for g in self.topo_gates() if g.name in cone]

    # ------------------------------------------------------------------ #
    # misc

    def _invalidate(self) -> None:
        self._readers_cache = None

    def clone(self, name: str | None = None) -> "Circuit":
        """Deep copy of the circuit (independent cells and indexes)."""
        other = Circuit(name or self.name)
        other.inputs = list(self.inputs)
        other.outputs = list(self.outputs)
        other.gates = {n: g.clone() for n, g in self.gates.items()}
        other.registers = {n: r.clone() for n, r in self.registers.items()}
        other._driver = dict(self._driver)
        for n in self.nets():
            other.namer.claim(n)
        for n in list(self.gates) + list(self.registers):
            other.namer.claim(n)
        return other

    def counts(self) -> dict[str, int]:
        """Quick size summary: gates, registers, inputs, outputs."""
        return {
            "gates": len(self.gates),
            "registers": len(self.registers),
            "inputs": len(self.inputs),
            "outputs": len(self.outputs),
        }

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        c = self.counts()
        return (
            f"<Circuit {self.name!r}: {c['gates']} gates, "
            f"{c['registers']} regs, {c['inputs']}/{c['outputs']} io>"
        )

    def cells(self) -> Iterator[Gate | Register]:
        """Iterate all cells, gates first."""
        yield from self.gates.values()
        yield from self.registers.values()

    def map_nets(self, fn: Callable[[str], str]) -> None:
        """Apply a renaming function to every net reference (advanced)."""
        for gate in self.gates.values():
            gate.inputs = [fn(n) for n in gate.inputs]
            gate.output = fn(gate.output)
        for reg in self.registers.values():
            reg.d = fn(reg.d)
            reg.q = fn(reg.q)
            reg.clk = fn(reg.clk)
            for attr in ("en", "sr", "ar"):
                v = getattr(reg, attr)
                if v is not None:
                    setattr(reg, attr, fn(v))
        self.inputs = [fn(n) for n in self.inputs]
        self.outputs = [fn(n) for n in self.outputs]
        self._driver = {}
        for name in self.inputs:
            self._driver[name] = ("input", name)
        for gate in self.gates.values():
            self._driver[gate.output] = ("gate", gate.name)
        for reg in self.registers.values():
            self._driver[reg.q] = ("register", reg.name)
        self._invalidate()
