"""Structural validation of circuits.

Checks the invariants every pass must preserve:

* every used net has exactly one driver (constants count as driven);
* no combinational cycles;
* every primary output is driven;
* register control pins reference real nets;
* cell names and net driver indexes are consistent.

Passes call :func:`check_circuit` in tests and after complex surgery
(relocation, decomposition) so corruption is caught at the source.
"""

from __future__ import annotations

from .circuit import Circuit, NetlistError
from .signals import is_const


def check_circuit(circuit: Circuit) -> None:
    """Raise :class:`NetlistError` on the first violated invariant."""
    driven: dict[str, str] = {}
    for name in circuit.inputs:
        if name in driven:
            raise NetlistError(f"input {name!r} declared twice")
        driven[name] = f"input {name}"
    for gate in circuit.gates.values():
        if gate.output in driven:
            raise NetlistError(
                f"net {gate.output!r} driven by both {driven[gate.output]} "
                f"and gate {gate.name}"
            )
        if is_const(gate.output):
            raise NetlistError(f"gate {gate.name!r} drives a constant net")
        driven[gate.output] = f"gate {gate.name}"
    for reg in circuit.registers.values():
        if reg.q in driven:
            raise NetlistError(
                f"net {reg.q!r} driven by both {driven[reg.q]} and register {reg.name}"
            )
        if is_const(reg.q):
            raise NetlistError(f"register {reg.name!r} drives a constant net")
        driven[reg.q] = f"register {reg.name}"

    def need(net: str | None, what: str) -> None:
        if net is None:
            return
        if is_const(net):
            return
        if net not in driven:
            raise NetlistError(f"{what} reads undriven net {net!r}")

    for gate in circuit.gates.values():
        for net in gate.inputs:
            need(net, f"gate {gate.name}")
    for reg in circuit.registers.values():
        need(reg.d, f"register {reg.name} D")
        need(reg.clk, f"register {reg.name} CLK")
        need(reg.en, f"register {reg.name} EN")
        need(reg.sr, f"register {reg.name} SR")
        need(reg.ar, f"register {reg.name} AR")
    for net in circuit.outputs:
        need(net, "primary output")

    # driver index consistency
    for net, (kind, name) in circuit._driver.items():
        if kind == "input" and net not in circuit.inputs:
            raise NetlistError(f"driver index stale for input net {net!r}")
        if kind == "gate" and circuit.gates.get(name) is None:
            raise NetlistError(f"driver index stale for gate {name!r}")
        if kind == "gate" and circuit.gates[name].output != net:
            raise NetlistError(f"driver index stale: gate {name!r} vs net {net!r}")
        if kind == "register" and circuit.registers.get(name) is None:
            raise NetlistError(f"driver index stale for register {name!r}")
        if kind == "register" and circuit.registers[name].q != net:
            raise NetlistError(f"driver index stale: register {name!r} vs {net!r}")

    # no combinational cycles (raises on its own)
    circuit.topo_gates()


def is_valid(circuit: Circuit) -> bool:
    """Boolean wrapper around :func:`check_circuit`."""
    try:
        check_circuit(circuit)
    except NetlistError:
        return False
    return True
