"""Structural Verilog writer and (subset) reader.

The paper's designs are RT-level VHDL/Verilog run through an HDL
analyzer; our interchange format of record is extended BLIF, but a
structural Verilog view makes the netlists usable with ordinary EDA
tooling.  The writer emits a flat module of ``assign`` equations and
``always`` blocks implementing the generic-register semantics of
Fig. 2a; the reader accepts exactly that subset back (it is a
round-trip format, not a general Verilog front end).

Emitted register template (active-high controls)::

    always @(posedge clk or posedge AR)        // AR present
        if (AR) q <= 1'b<aval>;
        else if (SR) q <= 1'b<sval>;           // SR present
        else if (EN) q <= d;                   // EN present
        // else hold (no final else)

Don't-care reset values are materialised as 0 on write (a legal
refinement) and recorded as such on read.
"""

from __future__ import annotations

import io
import re
from typing import TextIO

from ..logic.ternary import T0, T1, TX
from .cells import GateFn
from .circuit import Circuit, NetlistError
from .signals import CONST0, CONST1


class VerilogError(NetlistError):
    """Raised on input outside the supported structural subset."""


# writer-side: identifiers we pass through unmangled (no "$": legal in
# Verilog but reserved here for the reader's fresh internal names)
_ID_RE = re.compile(r"^[A-Za-z_][A-Za-z0-9_]*$")
# parser-side: accept $ in identifiers for robustness with foreign files
_PARSE_ID_RE = re.compile(r"^[A-Za-z_][A-Za-z0-9_$]*$")


def _mangle(net: str, table: dict[str, str]) -> str:
    """Map arbitrary internal names to legal Verilog identifiers."""
    if net in table:
        return table[net]
    if net == CONST0:
        return "1'b0"
    if net == CONST1:
        return "1'b1"
    if _ID_RE.match(net):
        table[net] = net
        return net
    safe = re.sub(r"[^A-Za-z0-9_]", "_", net)
    if not safe or not re.match(r"[A-Za-z_]", safe[0]):
        safe = "n_" + safe
    candidate = safe
    suffix = 0
    existing = set(table.values())
    while candidate in existing:
        suffix += 1
        candidate = f"{safe}_{suffix}"
    table[net] = candidate
    return candidate


def _gate_expression(gate, names: dict[str, str]) -> str:
    ins = [_mangle(n, names) for n in gate.inputs]
    fn = gate.fn
    if fn is GateFn.BUF:
        return ins[0]
    if fn is GateFn.NOT:
        return f"~{ins[0]}"
    if fn is GateFn.AND:
        return " & ".join(ins)
    if fn is GateFn.NAND:
        return "~(" + " & ".join(ins) + ")"
    if fn is GateFn.OR:
        return " | ".join(ins)
    if fn is GateFn.NOR:
        return "~(" + " | ".join(ins) + ")"
    if fn is GateFn.XOR:
        return " ^ ".join(ins)
    if fn is GateFn.XNOR:
        return "~(" + " ^ ".join(ins) + ")"
    if fn is GateFn.MUX:
        return f"{ins[0]} ? {ins[2]} : {ins[1]}"
    if fn is GateFn.CARRY:
        a, b, cin = ins
        return f"({a} & {b}) | ({a} & {cin}) | ({b} & {cin})"
    # LUT: sum of on-set minterms
    table = gate.truth_table()
    n = gate.n_inputs
    if n == 0:
        return "1'b1" if table & 1 else "1'b0"
    if table == 0:
        return "1'b0"
    if table == (1 << (1 << n)) - 1:
        return "1'b1"
    terms = []
    for minterm in range(1 << n):
        if not (table >> minterm) & 1:
            continue
        literals = [
            ins[i] if (minterm >> i) & 1 else f"~{ins[i]}" for i in range(n)
        ]
        terms.append("(" + " & ".join(literals) + ")")
    return " | ".join(terms)


def write_verilog(circuit: Circuit, stream: TextIO | None = None) -> str:
    """Serialise a circuit as one flat structural Verilog module."""
    out = io.StringIO()
    names: dict[str, str] = {}
    module = re.sub(r"[^A-Za-z0-9_]", "_", circuit.name) or "top"
    ports = [_mangle(n, names) for n in circuit.inputs] + [
        _mangle(n, names) for n in circuit.outputs
    ]
    out.write(f"module {module}(" + ", ".join(dict.fromkeys(ports)) + ");\n")
    for net in circuit.inputs:
        out.write(f"  input {_mangle(net, names)};\n")
    for net in dict.fromkeys(circuit.outputs):
        out.write(f"  output {_mangle(net, names)};\n")
    declared = set(circuit.inputs) | set(circuit.outputs)
    for gate in circuit.gates.values():
        if gate.output not in declared:
            out.write(f"  wire {_mangle(gate.output, names)};\n")
            declared.add(gate.output)
    for reg in circuit.registers.values():
        if reg.q in circuit.inputs:
            raise VerilogError(f"register Q {reg.q!r} collides with an input")
        # outputs may be re-declared as reg (classic Verilog style)
        out.write(f"  reg {_mangle(reg.q, names)};\n")
    out.write("\n")
    for gate in circuit.gates.values():
        expr = _gate_expression(gate, names)
        out.write(f"  assign {_mangle(gate.output, names)} = {expr};\n")
    out.write("\n")
    for reg in circuit.registers.values():
        q = _mangle(reg.q, names)
        d = _mangle(reg.d, names)
        clk = _mangle(reg.clk, names)
        aval = 1 if reg.aval == T1 else 0
        sval = 1 if reg.sval == T1 else 0
        if reg.ar is not None:
            ar = _mangle(reg.ar, names)
            out.write(f"  always @(posedge {clk} or posedge {ar})\n")
            out.write(f"    if ({ar}) {q} <= 1'b{aval};\n")
            prefix = "    else "
        else:
            out.write(f"  always @(posedge {clk})\n")
            prefix = "    "
        if reg.sr is not None:
            sr = _mangle(reg.sr, names)
            out.write(f"{prefix}if ({sr}) {q} <= 1'b{sval};\n")
            prefix = "    else "
        if reg.en is not None:
            en = _mangle(reg.en, names)
            out.write(f"{prefix}if ({en}) {q} <= {d};\n")
        else:
            if prefix.strip() == "else":
                out.write(f"{prefix}{q} <= {d};\n")
            else:
                out.write(f"{prefix}{q} <= {d};\n")
    out.write("endmodule\n")
    text = out.getvalue()
    if stream is not None:
        stream.write(text)
    return text


# --------------------------------------------------------------------- #
# reader (round-trip subset)

_TOKEN_RE = re.compile(
    r"\s*(module|endmodule|input|output|wire|reg|assign|always|if|else|"
    r"posedge|or|<=|[A-Za-z_][A-Za-z0-9_$]*|1'b[01]|[@()=;,?:~&|^])"
)


def _tokenize(text: str) -> list[str]:
    # strip comments
    text = re.sub(r"//[^\n]*", "", text)
    text = re.sub(r"/\*.*?\*/", "", text, flags=re.S)
    tokens = []
    pos = 0
    while pos < len(text):
        if text[pos].isspace():
            pos += 1
            continue
        m = _TOKEN_RE.match(text, pos)
        if not m:
            raise VerilogError(f"unexpected character {text[pos]!r} at {pos}")
        tokens.append(m.group(1))
        pos = m.end()
    return tokens


class _Parser:
    """Recursive-descent parser for the writer's output subset."""

    def __init__(self, tokens: list[str]) -> None:
        self.tokens = tokens
        self.pos = 0

    def peek(self) -> str | None:
        return self.tokens[self.pos] if self.pos < len(self.tokens) else None

    def take(self, expected: str | None = None) -> str:
        tok = self.peek()
        if tok is None:
            raise VerilogError("unexpected end of input")
        if expected is not None and tok != expected:
            raise VerilogError(f"expected {expected!r}, got {tok!r}")
        self.pos += 1
        return tok

    # expression parsing (precedence: ?: < | < ^ < & < ~ < atom)
    def expr(self) -> tuple:
        condition = self.or_expr()
        if self.peek() == "?":
            self.take("?")
            then = self.expr()
            self.take(":")
            other = self.expr()
            return ("mux", condition, other, then)
        return condition

    def or_expr(self) -> tuple:
        left = self.xor_expr()
        while self.peek() == "|":
            self.take("|")
            left = ("or", left, self.xor_expr())
        return left

    def xor_expr(self) -> tuple:
        left = self.and_expr()
        while self.peek() == "^":
            self.take("^")
            left = ("xor", left, self.and_expr())
        return left

    def and_expr(self) -> tuple:
        left = self.unary()
        while self.peek() == "&":
            self.take("&")
            left = ("and", left, self.unary())
        return left

    def unary(self) -> tuple:
        if self.peek() == "~":
            self.take("~")
            return ("not", self.unary())
        if self.peek() == "(":
            self.take("(")
            inner = self.expr()
            self.take(")")
            return inner
        tok = self.take()
        if tok in ("1'b0", "1'b1"):
            return ("const", tok == "1'b1")
        if not _PARSE_ID_RE.match(tok):
            raise VerilogError(f"expected identifier, got {tok!r}")
        return ("net", tok)


def _build_expr(circuit: Circuit, node: tuple) -> str:
    kind = node[0]
    if kind == "net":
        return node[1]
    if kind == "const":
        return CONST1 if node[1] else CONST0
    if kind == "not":
        return circuit.add_gate(GateFn.NOT, [_build_expr(circuit, node[1])]).output
    if kind == "mux":
        sel = _build_expr(circuit, node[1])
        a = _build_expr(circuit, node[2])
        b = _build_expr(circuit, node[3])
        return circuit.add_gate(GateFn.MUX, [sel, a, b]).output
    fn = {"and": GateFn.AND, "or": GateFn.OR, "xor": GateFn.XOR}[kind]
    a = _build_expr(circuit, node[1])
    b = _build_expr(circuit, node[2])
    return circuit.add_gate(fn, [a, b]).output


def read_verilog(stream: TextIO | str) -> Circuit:
    """Parse the writer's structural subset back into a circuit."""
    text = stream if isinstance(stream, str) else stream.read()
    p = _Parser(_tokenize(text))
    p.take("module")
    name = p.take()
    circuit = Circuit(name)
    p.take("(")
    while p.peek() != ")":
        p.take()
        if p.peek() == ",":
            p.take(",")
    p.take(")")
    p.take(";")

    outputs: list[str] = []
    pending_assigns: list[tuple[str, tuple]] = []
    regs: list[dict] = []

    while p.peek() != "endmodule":
        tok = p.take()
        if tok in ("input", "output", "wire", "reg"):
            net = p.take()
            p.take(";")
            if tok == "input":
                circuit.add_input(net)
            elif tok == "output":
                outputs.append(net)
        elif tok == "assign":
            target = p.take()
            p.take("=")
            pending_assigns.append((target, p.expr()))
            p.take(";")
        elif tok == "always":
            regs.append(_parse_always(p))
        else:
            raise VerilogError(f"unexpected token {tok!r}")
    p.take("endmodule")

    # materialise assigns: expression trees become gates; the top node
    # is rewired onto the assign target net
    for target, tree in pending_assigns:
        result = _build_expr(circuit, tree)
        gate = circuit.driver_gate(result)
        if gate is None:  # plain alias: assign y = x;
            circuit.add_gate(GateFn.BUF, [result], target)
        elif gate.output != target:
            circuit.rewire_gate_output(gate, target)
    for reg in regs:
        circuit.add_register(**reg)
    for net in outputs:
        circuit.add_output(net)
    return circuit


def _parse_always(p: _Parser) -> dict:
    p.take("@")
    p.take("(")
    p.take("posedge")
    clk = p.take()
    ar = None
    if p.peek() == "or":
        p.take("or")
        p.take("posedge")
        ar = p.take()
    p.take(")")
    fields: dict = {"clk": clk, "ar": ar, "sr": None, "en": None}
    aval = sval = TX

    def value_of(tok: str) -> int:
        return T1 if tok == "1'b1" else T0

    # optional: if (ar) q <= 1'bX; else ...
    first = True
    while True:
        if p.peek() == "else":
            p.take("else")
        if p.peek() == "if":
            p.take("if")
            p.take("(")
            cond = p.take()
            p.take(")")
            q = p.take()
            p.take("<=")
            rhs = p.take()
            p.take(";")
            fields["q"] = q
            if first and ar is not None and cond == ar:
                aval = value_of(rhs)
            elif rhs in ("1'b0", "1'b1") and fields["sr"] is None and (
                p.peek() == "else"
            ):
                fields["sr"] = cond
                sval = value_of(rhs)
            else:
                fields["en"] = cond
                fields["d"] = {"1'b0": CONST0, "1'b1": CONST1}.get(rhs, rhs)
            first = False
            if p.peek() != "else":
                break
        else:
            q = p.take()
            p.take("<=")
            d = p.take()
            p.take(";")
            fields["q"] = q
            fields["d"] = {"1'b0": CONST0, "1'b1": CONST1}.get(d, d)
            break
    fields["aval"] = aval
    fields["sval"] = sval
    if "d" not in fields:
        raise VerilogError(f"register {fields.get('q')} never loads D")
    return fields
