"""Net naming conventions and constant signals.

Nets in :mod:`repro.netlist` are identified by plain strings.  Two reserved
names denote the constant-0 and constant-1 signals; they are considered
driven in every circuit, so gates and register control pins may reference
them freely.  A load-enable pin tied to :data:`CONST1` is the paper's way
of saying "this register has no enable" (Sec. 3.1: the EN input of the
generic register is deactivated by connecting it to constant 1).
"""

from __future__ import annotations

#: Reserved net carrying constant logic 0.
CONST0: str = "$const0"
#: Reserved net carrying constant logic 1.
CONST1: str = "$const1"

#: Both constant nets, for membership tests.
CONST_NETS: frozenset[str] = frozenset((CONST0, CONST1))


def is_const(net: str | None) -> bool:
    """True iff *net* names one of the two constant signals."""
    return net in CONST_NETS


def const_value(net: str) -> int:
    """Return 0 or 1 for a constant net; raises ValueError otherwise."""
    if net == CONST0:
        return 0
    if net == CONST1:
        return 1
    raise ValueError(f"not a constant net: {net!r}")


def const_net(value: int) -> str:
    """Return the reserved net name carrying the given constant bit."""
    return CONST1 if value else CONST0


class NetNamer:
    """Generates fresh, collision-free net/instance names.

    The circuit container owns one of these; passes that create new logic
    (decomposition, mapping, retiming relocation) pull names from it so
    the emitted netlists stay readable and deterministic.
    """

    def __init__(self, taken: set[str] | None = None) -> None:
        self._taken: set[str] = set(taken or ())
        self._counters: dict[str, int] = {}

    def claim(self, name: str) -> None:
        """Record an externally chosen name as taken."""
        self._taken.add(name)

    def fresh(self, prefix: str) -> str:
        """Return a new unique name of the form ``prefix$N``."""
        n = self._counters.get(prefix, 0)
        while True:
            candidate = f"{prefix}${n}"
            n += 1
            if candidate not in self._taken:
                self._counters[prefix] = n
                self._taken.add(candidate)
                return candidate

    def __contains__(self, name: str) -> bool:
        return name in self._taken
