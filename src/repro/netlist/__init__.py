"""Netlist substrate: circuits of gates and multiple-class registers.

Public surface:

* :class:`Circuit` — the flat netlist container.
* :class:`Gate`, :class:`Register`, :class:`GateFn`, :class:`Port` — cells.
* :func:`read_blif` / :func:`write_blif` — extended-BLIF persistence.
* :func:`check_circuit` / :func:`is_valid` — structural validation.
* :func:`circuit_stats` — Table-1 style summaries.
* :data:`CONST0` / :data:`CONST1` — the reserved constant nets.
"""

from .blif import BlifError, read_blif, write_blif
from .cells import Gate, GateFn, Port, Register, make_lut
from .circuit import Circuit, NetlistError
from .signals import CONST0, CONST1, const_net, const_value, is_const
from .stats import (
    CircuitStats,
    circuit_stats,
    class_histogram,
    format_class_histogram,
    register_class_label,
)
from .validate import check_circuit, is_valid
from .verilog import VerilogError, read_verilog, write_verilog

__all__ = [
    "BlifError",
    "CONST0",
    "CONST1",
    "Circuit",
    "CircuitStats",
    "Gate",
    "GateFn",
    "NetlistError",
    "Port",
    "Register",
    "VerilogError",
    "check_circuit",
    "circuit_stats",
    "class_histogram",
    "const_net",
    "const_value",
    "format_class_histogram",
    "is_const",
    "is_valid",
    "make_lut",
    "read_blif",
    "read_verilog",
    "register_class_label",
    "write_blif",
    "write_verilog",
]
