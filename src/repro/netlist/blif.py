"""Extended-BLIF reader/writer.

The format is standard BLIF (``.model/.inputs/.outputs/.names/.latch``)
plus one extension, ``.mcff``, that round-trips the paper's generic
register with all control pins and reset values::

    .mcff <name> d=<net> q=<net> clk=<net> [en=<net>]
          [sr=<net>] [sval=0|1|-] [ar=<net>] [aval=0|1|-]

``.names`` bodies are single-output covers; they are compiled into LUT
truth tables on read and regenerated as minterm covers on write (our
LUTs are at most :data:`~repro.netlist.cells.MAX_TABLE_INPUTS` wide, and
post-mapping at most 4, so covers stay small).  A classic ``.latch``
line is accepted and becomes a plain register on the named clock.
"""

from __future__ import annotations

import io
import re
from typing import Iterable, TextIO

from ..logic.ternary import TX, ternary_char, ternary_from_char
from .cells import GateFn
from .circuit import Circuit, NetlistError
from .signals import CONST0, CONST1, is_const

# precompiled at module scope: these run once per cover line / kv token,
# the two hottest spots when parsing mapped netlists
_COVER_RE = re.compile(r"[01-]*")
_KV_RE = re.compile(r"([^=]*)=(.*)")


class BlifError(NetlistError):
    """Raised on malformed BLIF input."""


def _logical_lines(text: Iterable[str]) -> Iterable[tuple[int, str]]:
    """Yield (line number, line) with ``\\`` continuations joined."""
    parts: list[str] = []
    start = 0
    for i, raw in enumerate(text, 1):
        line = (raw.split("#", 1)[0] if "#" in raw else raw).rstrip()
        if not parts:
            start = i
        if line.endswith("\\"):
            parts.append(line[:-1])
            parts.append(" ")
            continue
        parts.append(line)
        joined = "".join(parts).strip() if len(parts) > 1 else line.strip()
        parts.clear()
        if joined:
            yield start, joined
    tail = "".join(parts).strip()
    if tail:
        yield start, tail


def _cover_to_table(n_inputs: int, cover: list[tuple[str, str]], lineno: int) -> int:
    """Compile on-set/off-set cover lines into a truth-table bitmask."""
    if not cover:
        return 0
    out_values = {out for _, out in cover}
    if len(out_values) != 1:
        raise BlifError(f"line {lineno}: mixed on-set/off-set cover")
    polarity = cover[0][1]
    mask = 0
    for pattern, _ in cover:
        if len(pattern) != n_inputs:
            raise BlifError(
                f"line {lineno}: cover width {len(pattern)} != {n_inputs} inputs"
            )
        if _COVER_RE.fullmatch(pattern) is None:
            bad = next(ch for ch in pattern if ch not in "01-")
            raise BlifError(f"line {lineno}: bad cover character {bad!r}")
        free = [i for i, ch in enumerate(pattern) if ch == "-"]
        base = 0
        for i, ch in enumerate(pattern):
            if ch == "1":
                base |= 1 << i
        for combo in range(1 << len(free)):
            idx = base
            for j, pos in enumerate(free):
                if (combo >> j) & 1:
                    idx |= 1 << pos
            mask |= 1 << idx
    if polarity == "0":
        mask = ((1 << (1 << n_inputs)) - 1) ^ mask
    return mask


def _parse_kv(tokens: list[str], lineno: int) -> dict[str, str]:
    result = {}
    for tok in tokens:
        match = _KV_RE.fullmatch(tok)
        if match is None:
            raise BlifError(f"line {lineno}: expected key=value, got {tok!r}")
        result[match.group(1)] = match.group(2)
    return result


def read_blif(stream: TextIO | str, name_hint: str | None = None) -> Circuit:
    """Parse extended BLIF from a stream or string into a Circuit."""
    if isinstance(stream, str):
        stream = io.StringIO(stream)
    circuit: Circuit | None = None
    pending_names: tuple[int, list[str]] | None = None
    pending_cover: list[tuple[str, str]] = []
    lut_counter = 0

    def flush_names() -> None:
        nonlocal pending_names, pending_cover, lut_counter
        if pending_names is None:
            return
        lineno, signals = pending_names
        *ins, out = signals
        table = _cover_to_table(len(ins), pending_cover, lineno)
        if is_const(out):
            pass  # constants are implicitly driven; ignore re-declaration
        else:
            assert circuit is not None
            # name anonymous .names gates after the net they drive: the
            # output net is unique and survives a BLIF round-trip, so
            # gate names stay stable when cells are inserted or removed
            # upstream — which is what lets the ECO layer diff two
            # parses of related designs cell by cell (sequential
            # numbering would shift every name after an edit)
            lut_counter += 1
            name = f"lut${out}"
            if name in circuit.gates or name in circuit.registers:
                name = f"lut{lut_counter}"
            circuit.add_gate(GateFn.LUT, ins, out, name=name, table=table)
        pending_names = None
        pending_cover = []

    for lineno, line in _logical_lines(stream):
        tokens = line.split()
        keyword = tokens[0]
        if not keyword.startswith("."):
            if pending_names is None:
                raise BlifError(f"line {lineno}: cover line outside .names")
            if len(tokens) == 1 and len(pending_names[1]) == 1:
                pending_cover.append(("", tokens[0]))
            elif len(tokens) == 2:
                pending_cover.append((tokens[0], tokens[1]))
            else:
                raise BlifError(f"line {lineno}: malformed cover line")
            continue
        flush_names()
        if keyword == ".model":
            if circuit is not None:
                raise BlifError(f"line {lineno}: multiple .model sections")
            circuit = Circuit(tokens[1] if len(tokens) > 1 else (name_hint or "top"))
        elif circuit is None:
            raise BlifError(f"line {lineno}: {keyword} before .model")
        elif keyword == ".inputs":
            for net in tokens[1:]:
                circuit.add_input(net)
        elif keyword == ".outputs":
            for net in tokens[1:]:
                circuit.add_output(net)
        elif keyword == ".names":
            if len(tokens) < 2:
                raise BlifError(f"line {lineno}: .names needs at least an output")
            pending_names = (lineno, tokens[1:])
        elif keyword == ".latch":
            # .latch <input> <output> [<type> <control>] [<init-val>]
            rest = tokens[1:]
            if len(rest) < 2:
                raise BlifError(f"line {lineno}: malformed .latch")
            d, q = rest[0], rest[1]
            clk = "clk"
            if len(rest) >= 4:
                clk = rest[3]
            circuit.add_register(d=d, q=q, clk=clk)
        elif keyword == ".mcgate":
            # .mcgate carry <name> <a> <b> <cin> <out>
            if len(tokens) != 7 or tokens[1] != "carry":
                raise BlifError(f"line {lineno}: malformed .mcgate")
            circuit.add_gate(
                GateFn.CARRY, tokens[3:6], tokens[6], name=tokens[2]
            )
        elif keyword == ".mcff":
            if len(tokens) < 2:
                raise BlifError(f"line {lineno}: .mcff needs a name")
            kv = _parse_kv(tokens[2:], lineno)
            for required in ("d", "q", "clk"):
                if required not in kv:
                    raise BlifError(f"line {lineno}: .mcff missing {required}=")
            circuit.add_register(
                d=kv["d"],
                q=kv["q"],
                clk=kv["clk"],
                name=tokens[1],
                en=kv.get("en"),
                sr=kv.get("sr"),
                ar=kv.get("ar"),
                sval=ternary_from_char(kv.get("sval", "-")),
                aval=ternary_from_char(kv.get("aval", "-")),
            )
        elif keyword == ".end":
            break
        else:
            raise BlifError(f"line {lineno}: unknown directive {keyword}")
    flush_names()
    if circuit is None:
        raise BlifError("no .model section found")
    return circuit


def _table_to_cover(n_inputs: int, table: int) -> list[str]:
    """Emit one cover line per on-set minterm (plus degenerate cases)."""
    size = 1 << n_inputs
    full = (1 << size) - 1
    if table == 0:
        return []  # empty cover = constant 0 in BLIF
    if n_inputs == 0:
        return ["1"]
    if table == full:
        return ["-" * n_inputs + " 1"]
    lines = []
    for minterm in range(size):
        if (table >> minterm) & 1:
            bits = "".join("1" if (minterm >> i) & 1 else "0" for i in range(n_inputs))
            lines.append(f"{bits} 1")
    return lines


def write_blif(circuit: Circuit, stream: TextIO | None = None) -> str:
    """Serialize a circuit to extended BLIF; returns the text."""
    out = io.StringIO()
    out.write(f".model {circuit.name}\n")
    if circuit.inputs:
        out.write(".inputs " + " ".join(circuit.inputs) + "\n")
    if circuit.outputs:
        out.write(".outputs " + " ".join(circuit.outputs) + "\n")
    used = circuit.nets()
    for const in (CONST0, CONST1):
        if const in used:
            out.write(f".names {const}\n")
            if const == CONST1:
                out.write("1\n")
    for gate in circuit.gates.values():
        if gate.fn is GateFn.CARRY:
            pins = " ".join(gate.inputs + [gate.output])
            out.write(f".mcgate carry {gate.name} {pins}\n")
            continue
        table = gate.truth_table()
        out.write(".names " + " ".join(gate.inputs + [gate.output]) + "\n")
        for line in _table_to_cover(gate.n_inputs, table):
            out.write(line + "\n")
    for reg in circuit.registers.values():
        fields = [f"d={reg.d}", f"q={reg.q}", f"clk={reg.clk}"]
        if reg.en is not None:
            fields.append(f"en={reg.en}")
        if reg.sr is not None:
            fields.append(f"sr={reg.sr}")
        if reg.sval != TX:
            fields.append(f"sval={ternary_char(reg.sval)}")
        if reg.ar is not None:
            fields.append(f"ar={reg.ar}")
        if reg.aval != TX:
            fields.append(f"aval={ternary_char(reg.aval)}")
        out.write(f".mcff {reg.name} " + " ".join(fields) + "\n")
    out.write(".end\n")
    text = out.getvalue()
    if stream is not None:
        stream.write(text)
    return text
