"""Circuit statistics in the vocabulary of the paper's Table 1.

``#FF`` is the register count, ``#LUT`` the LUT/gate count, and the
AS/AC / EN flags say whether any register uses asynchronous set/clear or
a synchronous load enable.  :func:`circuit_stats` also reports the
register-class profile used in Table 2's ``#Class`` column (delegating
classification to :mod:`repro.mcretime.classes` when requested there;
here we only count *syntactically* distinct control tuples, which is an
upper bound on the semantic class count).
"""

from __future__ import annotations

from dataclasses import dataclass

from .cells import GateFn
from .circuit import Circuit


@dataclass(frozen=True)
class CircuitStats:
    """Summary row mirroring the columns of paper Table 1."""

    name: str
    has_async: bool
    has_enable: bool
    n_ff: int
    n_lut: int
    n_gates: int
    n_syntactic_classes: int

    def row(self) -> dict[str, object]:
        """Render as a plain dict for table printers."""
        return {
            "Name": self.name,
            "AS/AC": "y" if self.has_async else "",
            "EN": "y" if self.has_enable else "",
            "#FF": self.n_ff,
            "#LUT": self.n_lut,
        }


def syntactic_class_key(reg) -> tuple:
    """Control tuple compared *by net name* (not logical equivalence)."""
    return (reg.clk, reg.en, reg.sr, reg.ar)


def circuit_stats(circuit: Circuit) -> CircuitStats:
    """Compute the Table-1 style summary of a circuit."""
    has_async = any(r.has_async_reset for r in circuit.registers.values())
    has_enable = any(r.has_enable for r in circuit.registers.values())
    n_lut = sum(1 for g in circuit.gates.values() if g.fn is GateFn.LUT)
    classes = {syntactic_class_key(r) for r in circuit.registers.values()}
    return CircuitStats(
        name=circuit.name,
        has_async=has_async,
        has_enable=has_enable,
        n_ff=len(circuit.registers),
        n_lut=n_lut,
        n_gates=len(circuit.gates),
        n_syntactic_classes=len(classes),
    )
