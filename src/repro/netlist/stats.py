"""Circuit statistics in the vocabulary of the paper's Table 1.

``#FF`` is the register count, ``#LUT`` the LUT/gate count, and the
AS/AC / EN flags say whether any register uses asynchronous set/clear or
a synchronous load enable.  :func:`circuit_stats` also reports the
register-class profile used in Table 2's ``#Class`` column (delegating
classification to :mod:`repro.mcretime.classes` when requested there;
here we only count *syntactically* distinct control tuples, which is an
upper bound on the semantic class count).

:func:`class_histogram` aggregates registers by *shape* — which control
capabilities they use (EN / SR / AR and the reset polarities), ignoring
which net drives them — so transform reports (pipelining, C-slow) can
show the class composition before and after: e.g. C-slow folds ``EN``
and ``SR`` shapes into ``plain``/``AR`` ones while pipelining adds
``plain`` registers.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..logic.ternary import T0, T1
from .cells import GateFn, Register
from .circuit import Circuit


@dataclass(frozen=True)
class CircuitStats:
    """Summary row mirroring the columns of paper Table 1."""

    name: str
    has_async: bool
    has_enable: bool
    n_ff: int
    n_lut: int
    n_gates: int
    n_syntactic_classes: int
    #: register-shape histogram (see :func:`class_histogram`)
    class_histogram: dict[str, int] = field(default_factory=dict)

    def row(self) -> dict[str, object]:
        """Render as a plain dict for table printers."""
        return {
            "Name": self.name,
            "AS/AC": "y" if self.has_async else "",
            "EN": "y" if self.has_enable else "",
            "#FF": self.n_ff,
            "#LUT": self.n_lut,
        }


def syntactic_class_key(reg) -> tuple:
    """Control tuple compared *by net name* (not logical equivalence)."""
    return (reg.clk, reg.en, reg.sr, reg.ar)


def _value_char(value: int) -> str:
    if value == T0:
        return "0"
    if value == T1:
        return "1"
    return "x"


def register_class_label(reg: Register) -> str:
    """Shape label of one register: which capabilities it uses.

    ``"plain"`` for a bare flip-flop, else ``+``-joined capability tags
    — ``EN``, ``SR<v>`` (sync reset to value *v*), ``AR<v>`` (async).
    Registers whose EN/SR/AR pins are tied to the neutral constant
    count as not having that capability, matching the ``has_*``
    properties.
    """
    parts = []
    if reg.has_enable:
        parts.append("EN")
    if reg.has_sync_reset:
        parts.append("SR" + _value_char(reg.sval))
    if reg.has_async_reset:
        parts.append("AR" + _value_char(reg.aval))
    return "+".join(parts) or "plain"


def class_histogram(circuit: Circuit) -> dict[str, int]:
    """Registers per shape label, sorted by label."""
    hist: dict[str, int] = {}
    for reg in circuit.registers.values():
        label = register_class_label(reg)
        hist[label] = hist.get(label, 0) + 1
    return dict(sorted(hist.items()))


def format_class_histogram(hist: dict[str, int]) -> str:
    """One-line rendering (``plain=12 EN=4 EN+AR0=3``) for reports."""
    return " ".join(f"{label}={n}" for label, n in hist.items()) or "-"


def circuit_stats(circuit: Circuit) -> CircuitStats:
    """Compute the Table-1 style summary of a circuit."""
    has_async = any(r.has_async_reset for r in circuit.registers.values())
    has_enable = any(r.has_enable for r in circuit.registers.values())
    n_lut = sum(1 for g in circuit.gates.values() if g.fn is GateFn.LUT)
    classes = {syntactic_class_key(r) for r in circuit.registers.values()}
    return CircuitStats(
        name=circuit.name,
        has_async=has_async,
        has_enable=has_enable,
        n_ff=len(circuit.registers),
        n_lut=n_lut,
        n_gates=len(circuit.gates),
        n_syntactic_classes=len(classes),
        class_histogram=class_histogram(circuit),
    )
