"""The multiple-class retiming engine: the paper's six-step flow (Sec. 5).

1. build the mc-graph from the circuit;
2. derive the mc-retiming bounds by maximal backward/forward retiming;
3. modify the graph for multiple-class register sharing (separation
   vertices, Eq. 3);
4. minimum-period retiming subject to the bounds → φ_min;
5. minimum-area retiming at φ_min (min-cost flow);
6. relocate the registers, computing equivalent reset states; on an
   unresolvable justification conflict, clamp ``r_max^mc`` at the
   offending vertex and repeat from step 4.

Each phase is wall-clock timed so the Sec. 6 CPU-split claims
(≈90 % basic retiming / 7 % relocation / 3 % mc bookkeeping) can be
reproduced.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .. import obs
from ..graph.build import build_mcgraph
from ..logic.simulate import eval_nets
from ..logic.ternary import TX
from ..netlist import Circuit
from ..retime.feas import clock_period
from ..retime.minarea import min_area
from ..retime.minperiod import min_period
from .bounds import compute_bounds
from .classes import Classifier
from .relocate import (
    JustificationConflict,
    RelocationDeadlock,
    RelocationError,
    relocate,
)
from .reset import JustificationStats
from ..timing.delay_models import DelayModel, UNIT_DELAY
from .sharing import apply_sharing_transform


@dataclass
class MCRetimeResult:
    """Everything the paper's Table 2 row needs (plus diagnostics)."""

    circuit: Circuit
    r: dict[str, int]
    n_classes: int
    #: layers actually moved (paper #Step, first number)
    steps_moved: int
    #: valid mc-steps available (paper #Step, second number)
    steps_possible: int
    #: graph clock period before / after (delay-model units)
    period_before: float
    period_after: float
    #: circuit register count before / after
    ff_before: int
    ff_after: int
    stats: JustificationStats
    timings: dict[str, float] = field(default_factory=dict)
    #: how many times a conflict forced a retiming re-solve
    resolve_attempts: int = 0
    #: achieved min-area register objective (shared model)
    area_registers: int | None = None
    #: certificate-backed explanation (schema ``repro.explain/1``) when
    #: the run was made with ``explain=True``; see :mod:`repro.obs.explain`
    explanation: dict | None = None

    def timing_fractions(self) -> dict[str, float]:
        """Phase shares of total runtime (paper Sec. 6 prose)."""
        total = sum(self.timings.values()) or 1.0
        basic = self.timings.get("minperiod", 0.0) + self.timings.get(
            "minarea", 0.0
        )
        mc_overhead = (
            self.timings.get("build", 0.0)
            + self.timings.get("bounds", 0.0)
            + self.timings.get("sharing", 0.0)
        )
        return {
            "basic_retiming": basic / total,
            "relocation": self.timings.get("relocate", 0.0) / total,
            "mc_overhead": mc_overhead / total,
        }


def intern_work_graph(
    circuit: Circuit,
    delay_model: DelayModel = UNIT_DELAY,
    semantic_classes: bool = True,
):
    """Build the sharing-transformed work graph for *circuit*.

    This is exactly the deterministic, config-independent prefix of
    :func:`mc_retime` (build → bounds → sharing): the graph whose CSR
    snapshot the hot solvers compile.  The serving layer runs it once
    per design, packs the compiled snapshot into shared memory
    (:mod:`repro.service.interning`), and workers seed it back via
    :func:`repro.kernels.seed_intern` — the two call sites MUST stay in
    lockstep or seeded solves would diverge from unseeded ones.
    """
    classifier = Classifier(circuit, semantic=semantic_classes)
    build = build_mcgraph(circuit, delay_model, classifier.classify)
    bounds = compute_bounds(build.graph)
    transform = apply_sharing_transform(
        build.graph, bounds.bounds, bounds.backward_graph
    )
    return transform.graph


def mc_retime(
    circuit: Circuit,
    delay_model: DelayModel = UNIT_DELAY,
    target_period: float | None = None,
    objective: str = "minarea",
    semantic_classes: bool = True,
    max_conflict_resolves: int = 25,
    verify_resets: bool = True,
    use_kernels: bool | None = None,
    intern_key: str | None = None,
    explain: bool = False,
) -> MCRetimeResult:
    """Run multiple-class retiming on *circuit* (non-destructive).

    Args:
        circuit: the mapped design to retime.
        delay_model: per-gate delays for the retiming graph.
        target_period: retime for this period instead of φ_min.
        objective: ``"minarea"`` (paper's min-area-for-best-delay when
            *target_period* is None) or ``"minperiod"`` (skip the area
            ILP and implement the min-period solution directly).
        semantic_classes: compare control signals by BDD equivalence
            (paper Def. 1) instead of by net name.
        max_conflict_resolves: bound on conflict-driven re-solves.
        verify_resets: double-check every recorded reset requirement by
            forward implication after relocation.
        use_kernels: route the retiming solves through the compiled
            kernels (:mod:`repro.kernels`); None defers to the global
            switch.  Results are bit-identical either way.
        intern_key: tag the sharing-transformed work graph with this
            key so :func:`repro.kernels.compile_graph` can return a
            pre-interned snapshot (see :func:`intern_work_graph` and
            :mod:`repro.service.interning`).  Results are bit-identical
            with or without a seed.
        explain: attach a certificate-backed explanation of the result
            (:mod:`repro.obs.explain`) under ``result.explanation``.
            Extraction is entirely post-hoc — the solving phases are
            untouched when this is off.

    Returns:
        :class:`MCRetimeResult`; ``result.circuit`` is a retimed clone.
    """
    timings: dict[str, float] = {}

    with obs.timed("engine.build", circuit=circuit.name) as sp:
        classifier = Classifier(circuit, semantic=semantic_classes)
        build = build_mcgraph(circuit, delay_model, classifier.classify)
        graph = build.graph
    timings["build"] = sp.duration

    with obs.timed("engine.bounds") as sp:
        bounds = compute_bounds(graph)
    timings["bounds"] = sp.duration

    with obs.timed("engine.sharing") as sp:
        transform = apply_sharing_transform(
            graph, bounds.bounds, bounds.backward_graph
        )
        work_graph = transform.graph
        work_bounds = dict(transform.bounds)
        if intern_key is not None:
            work_graph.intern_key = f"{intern_key}|work"
    timings["sharing"] = sp.duration

    period_before = clock_period(graph)
    stats = JustificationStats()
    attempts = 0
    timings.setdefault("minperiod", 0.0)
    timings.setdefault("minarea", 0.0)
    timings.setdefault("relocate", 0.0)

    while True:
        with obs.timed("engine.minperiod", attempt=attempts) as sp:
            if target_period is None:
                mp = min_period(work_graph, work_bounds, use_kernels=use_kernels)
                phi = mp.phi
            else:
                phi = target_period
        timings["minperiod"] += sp.duration

        with obs.timed("engine.minarea", phi=phi) as sp:
            if objective == "minarea":
                area = min_area(
                    work_graph, phi, work_bounds, use_kernels=use_kernels
                )
                r = area.r
                area_registers = area.registers
            elif objective == "minperiod":
                if target_period is None:
                    r = mp.r
                else:
                    from ..retime.minperiod import feasible_retiming

                    r = feasible_retiming(
                        work_graph, phi, work_bounds, use_kernels=use_kernels
                    )
                    if r is None:
                        from ..retime.constraints import InfeasibleConstraints
                        from ..retime.minperiod import infeasibility_certificate

                        err = infeasibility_certificate(
                            work_graph, phi, work_bounds
                        )
                        raise InfeasibleConstraints(
                            f"target period {phi} infeasible for "
                            f"{circuit.name!r}",
                            err.cycle if err is not None else (),
                            period=phi,
                        )
                area_registers = None
            else:
                raise ValueError(f"unknown objective {objective!r}")
        timings["minarea"] += sp.duration

        gate_r = {name: r.get(name, 0) for name in circuit.gates}

        try:
            with obs.timed("engine.relocate", attempt=attempts) as sp:
                reloc = relocate(circuit, gate_r, classifier)
            timings["relocate"] += sp.duration
            break
        except JustificationConflict as conflict:
            timings["relocate"] += sp.duration
            obs.count("relocate.conflicts")
            stats.unresolvable += 1
            attempts += 1
            if attempts > max_conflict_resolves:
                raise RelocationError(
                    "too many unresolvable justification conflicts"
                ) from conflict
            lo, hi = work_bounds.get(conflict.gate, (0, 0))
            work_bounds[conflict.gate] = (lo, min(hi, conflict.moves_done))
        except RelocationDeadlock as deadlock:
            # the unit-move scheduler wedged (mixed-direction lags on a
            # multi-fanout net); clamp every stuck gate to the moves it
            # actually completed and re-solve — r=0 stays feasible, so
            # the tightened LP always has a solution
            timings["relocate"] += sp.duration
            obs.count("relocate.deadlocks")
            attempts += 1
            if attempts > max_conflict_resolves:
                raise
            for gate_name, remaining in deadlock.pending.items():
                lo, hi = work_bounds.get(gate_name, (0, 0))
                done = deadlock.done[gate_name]
                if remaining > 0:
                    work_bounds[gate_name] = (lo, min(hi, done))
                else:
                    work_bounds[gate_name] = (max(lo, done), hi)

    if verify_resets:
        _verify_reset_requirements(reloc.circuit, reloc.requirements)

    explanation = None
    if explain:
        with obs.timed("engine.explain", circuit=circuit.name) as sp:
            from ..obs.explain import build_explanation

            explanation = build_explanation(
                work_graph,
                bounds,
                transform,
                work_bounds,
                r,
                phi,
                objective,
                target_period=target_period,
                design=circuit.name,
            )
        timings["explain"] = sp.duration

    result = MCRetimeResult(
        circuit=reloc.circuit,
        r=gate_r,
        n_classes=classifier.n_classes,
        steps_moved=reloc.steps_moved,
        steps_possible=bounds.steps_possible,
        period_before=period_before,
        period_after=clock_period(graph, _real_r(graph, r)),
        ff_before=len(circuit.registers),
        ff_after=len(reloc.circuit.registers),
        stats=stats.merged(reloc.stats),
        timings=timings,
        resolve_attempts=attempts,
        area_registers=area_registers,
        explanation=explanation,
    )
    return result


def _real_r(graph, r: dict[str, int]) -> dict[str, int]:
    """Restrict a solution to the vertices of the original graph."""
    return {v: r.get(v, 0) for v in graph.vertices}


def _verify_reset_requirements(
    circuit: Circuit, requirements: dict[str, frozenset]
) -> None:
    """Check every recorded reset requirement by forward implication.

    For each register created by a backward move, the flattened terminal
    requirements say which original register positions (nets) must still
    evaluate to which reset values.  Implicating the committed register
    values through the combinational logic (primary inputs unknown) must
    reproduce every binary requirement exactly; a mismatch means a
    justification was silently invalidated — a bug, so fail loudly.
    """
    items: set[tuple[str, int, int]] = set()
    for reqs in requirements.values():
        items |= reqs
    if not items:
        return
    for index, attr in ((1, "sval"), (2, "aval")):
        cut = {reg.q: getattr(reg, attr) for reg in circuit.registers.values()}
        values = eval_nets(circuit, cut)
        for item in items:
            net, required = item[0], item[index]
            if required == TX:
                continue
            got = values.get(net, TX)
            if got != required:
                raise RelocationError(
                    f"reset requirement violated at {net!r}: "
                    f"{attr} implies {got}, needs {required}"
                )
