"""Register relocation: implement a computed mc-retiming on the circuit.

Step 6 of the paper's flow: given per-gate retiming values, perform the
corresponding sequence of *valid mc-retiming steps* directly on the
netlist, computing equivalent reset states on the way (Sec. 5.2):

* **forward step** (r < 0): bypass the register layer at the gate's
  inputs, insert one register after the gate; its reset values are the
  forward implication of the source values.
* **backward step** (r > 0): remove the register layer at the gate's
  output, insert one register per (non-constant) input net; values come
  from local justification, or from a BDD global justification over the
  cone back to the registers' original positions when the local step
  conflicts (paper Fig. 5).

Every register created by a backward step records the flattened set of
*terminal requirements* — ``(net, sval, aval)`` at original register
positions — it is responsible for.  A global justification solves those
requirements jointly for the new layer *and* any sibling registers
carrying a subset of the same requirements (the paper's "other
registers involved in moving backward the conflicting registers"),
assuming the committed values of all other registers and universally
quantifying primary inputs.

If even the global step fails, :class:`JustificationConflict` reports
the gate and how many backward moves succeeded there, so the engine can
clamp ``r_max^mc`` and re-solve (paper Sec. 5.2, last paragraph).

Scheduling: repeatedly sweep the gates with outstanding moves and apply
any step that is currently valid; a full sweep without progress on a
legal retiming indicates an upstream bug and raises RelocationError.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from .. import obs
from ..bdd import BDD, FALSE, TRUE
from ..logic.netfn import net_functions
from ..logic.simulate import eval_nets
from ..logic.ternary import T0, T1, TX, meet
from ..netlist import Circuit, Register
from ..netlist.signals import is_const
from .classes import Classifier
from .reset import JustificationStats, implied_value, justify_pins


class RelocationError(Exception):
    """Raised when a supposedly legal retiming cannot be replayed."""


class RelocationDeadlock(RelocationError):
    """The move scheduler reached a fixed point with moves pending.

    Per-gate unit moves can wedge even for an LP-feasible solution:
    a backward move needs registers on *every* fanout edge right now,
    and with mixed-direction lags on a multi-fanout net no single gate
    may be movable first.  The engine treats this like a justification
    conflict — clamp each stuck gate to the moves it actually
    completed (``done``) and re-solve.

    Attributes:
        pending: gate name -> remaining (signed) moves at the wedge.
        done: gate name -> signed moves successfully applied there.
    """

    def __init__(self, pending: dict[str, int], done: dict[str, int]):
        super().__init__(
            f"relocation deadlocked with pending moves: {pending}"
        )
        self.pending = pending
        self.done = done


class JustificationConflict(Exception):
    """An unresolvable reset conflict at a backward step.

    Attributes:
        gate: vertex where the conflict occurred.
        moves_done: backward moves successfully performed there before
            the conflict — the paper's new upper bound for that vertex.
    """

    def __init__(self, gate: str, moves_done: int) -> None:
        super().__init__(f"unjustifiable backward move at {gate!r}")
        self.gate = gate
        self.moves_done = moves_done


@dataclass
class RelocationResult:
    """Retimed circuit plus bookkeeping."""

    circuit: Circuit
    stats: JustificationStats
    #: layers actually moved (Σ |r(v)|) — the paper's first #Step number
    steps_moved: int = 0
    #: registers created minus removed (net area movement)
    register_delta: int = 0
    #: per-register terminal requirements (register -> {(net, s, a)})
    requirements: dict[str, frozenset] = field(default_factory=dict)


def relocate(
    circuit: Circuit,
    r: dict[str, int],
    classifier: Classifier | None = None,
) -> RelocationResult:
    """Apply retiming *r* (gate name -> lag) to a clone of *circuit*."""
    work = circuit.clone()
    classifier = classifier or Classifier(circuit)
    stats = JustificationStats()
    pending: dict[str, int] = {
        name: value
        for name, value in r.items()
        if value and name in work.gates
    }
    requested = dict(pending)
    requirements: dict[str, frozenset] = {}
    performed: dict[str, int] = {}
    steps_moved = 0
    regs_before = len(work.registers)

    while pending:
        progress = False
        for name in list(pending):
            direction = pending[name]
            gate = work.gates[name]
            if direction > 0:
                applied = _try_backward(
                    work, gate, classifier, requirements, stats, performed
                )
            else:
                applied = _try_forward(work, gate, classifier, requirements, stats)
            if applied:
                progress = True
                steps_moved += 1
                pending[name] += -1 if direction > 0 else 1
                if pending[name] == 0:
                    del pending[name]
        if not progress:
            raise RelocationDeadlock(
                dict(pending),
                {name: requested[name] - pending[name] for name in pending},
            )

    merge_shareable_registers(work, classifier, requirements)

    return RelocationResult(
        circuit=work,
        stats=stats,
        steps_moved=steps_moved,
        register_delta=len(work.registers) - regs_before,
        requirements=requirements,
    )


def merge_shareable_registers(
    work: Circuit,
    classifier: Classifier,
    requirements: dict[str, frozenset] | None = None,
) -> int:
    """Merge registers with one driver, one class, and compatible values.

    Relocation materialises one register per gate input, so several
    gates reading the same net end up with duplicate registers; the
    min-area cost model already assumed those share (Leiserson–Saxe
    fanout sharing), and this pass realises it.  Reset values are met
    (X yields to a binary sibling); incompatible values keep separate
    registers.  Returns the number of registers removed.
    """
    from ..logic.ternary import compatible as t_compatible

    requirements = requirements if requirements is not None else {}
    removed = 0
    groups: dict[tuple, list[Register]] = {}
    for reg in work.registers.values():
        groups.setdefault((reg.d, classifier.classify(reg)), []).append(reg)
    for (_, _), members in groups.items():
        if len(members) < 2:
            continue
        keeper = members[0]
        for other in members[1:]:
            if not (
                t_compatible(keeper.sval, other.sval)
                and t_compatible(keeper.aval, other.aval)
            ):
                continue
            keeper.sval = meet(keeper.sval, other.sval)
            keeper.aval = meet(keeper.aval, other.aval)
            if other.name in requirements:
                merged = requirements.get(keeper.name, frozenset()) | (
                    requirements.pop(other.name)
                )
                requirements[keeper.name] = merged
            work.remove_register(other.name)
            work.replace_net(other.q, keeper.q)
            removed += 1
    return removed


def _meet_all(values: list[int]) -> int | None:
    """Meet of ternary values, or None on a 0/1 conflict."""
    acc = TX
    for v in values:
        try:
            acc = meet(acc, v)
        except ValueError:
            return None
    return acc


def _try_backward(
    work: Circuit,
    gate,
    classifier: Classifier,
    requirements: dict[str, frozenset],
    stats: JustificationStats,
    performed: dict[str, int],
) -> bool:
    """One backward layer move across *gate*, if currently valid."""
    out_net = gate.output
    readers = work.readers(out_net)
    if not readers:
        return False
    removed: list[Register] = []
    for kind, name, pin in readers:
        if kind != "register" or pin != 0:
            return False  # some fanout connection has no adjacent register
        removed.append(work.registers[name])
    cids = {classifier.classify(reg) for reg in removed}
    if len(cids) != 1:
        return False
    in_nets = [n for n in gate.inputs if not is_const(n)]
    if not in_nets:
        return False  # constant generator: no fanin edges to receive a layer

    # terminal requirements carried by the removed layer
    req_items: set[tuple[str, int, int]] = set()
    for reg in removed:
        stored = requirements.get(reg.name)
        if stored is not None:
            req_items |= stored
        else:
            req_items.add((out_net, reg.sval, reg.aval))

    # --- try the cheap local justification first -----------------------
    # the new layer must reproduce the removed layer's values AND any
    # terminal requirement anchored at this gate's output net: a derived
    # X-valued register at `out_net` may coexist with a hard requirement
    # (net, s, a) that deeper logic satisfied until now — inserting the
    # new layer cuts that path, so the layer must carry it itself.
    # Requirements anchored here by *other* registers' histories count
    # too: `out_net` may itself be an original register position whose
    # implied value a sibling layer elsewhere still depends on, and the
    # new layer pins that implied value to g(new values).
    local_values: tuple[dict[str, int], dict[str, int]] | None = None
    anchored = [item for item in req_items if item[0] == out_net]
    for reqs in requirements.values():
        anchored.extend(item for item in reqs if item[0] == out_net)
    req_s = _meet_all(
        [reg.sval for reg in removed] + [s for _net, s, _a in anchored]
    )
    req_a = _meet_all(
        [reg.aval for reg in removed] + [a for _net, _s, a in anchored]
    )
    if req_s is not None and req_a is not None:
        vs = justify_pins(gate, req_s)
        va = justify_pins(gate, req_a)
        if vs is not None and va is not None:
            local_values = (vs, va)

    # the global path revises register values, so it must compare the
    # circuit's behaviour against what the committed circuit computed
    # *before* this step (see _global_justify)
    pre = None if local_values is not None else work.clone()

    # --- structural rewiring (shared by both justification paths) ------
    template = removed[0]
    new_regs: dict[str, Register] = {}
    for net in dict.fromkeys(in_nets):
        new_regs[net] = work.add_register(
            d=net,
            clk=template.clk,
            en=template.en,
            sr=template.sr,
            ar=template.ar,
            sval=TX,
            aval=TX,
        )
    for i, net in enumerate(gate.inputs):
        if not is_const(net):
            gate.inputs[i] = new_regs[net].q
    for reg in removed:
        work.remove_register(reg.name)
        work.replace_net(reg.q, out_net)
        requirements.pop(reg.name, None)

    frozen = frozenset(req_items)
    if local_values is not None:
        vs, va = local_values
        for net, reg in new_regs.items():
            reg.sval = vs.get(net, TX)
            reg.aval = va.get(net, TX)
            requirements[reg.name] = frozen
        stats.local_steps += 1
        obs.count("relocate.local_steps")
        performed[gate.name] = performed.get(gate.name, 0) + 1
        return True

    # --- global justification over the cone ----------------------------
    ok = _global_justify(
        pre, work, next(iter(cids)), classifier, new_regs, frozen, requirements
    )
    if not ok:
        stats.unresolvable += 1
        raise JustificationConflict(gate.name, performed.get(gate.name, 0))
    stats.global_steps += 1
    obs.count("relocate.global_steps")
    performed[gate.name] = performed.get(gate.name, 0) + 1
    return True


def _global_justify(
    pre: Circuit,
    work: Circuit,
    cid,
    classifier: Classifier,
    new_regs: dict[str, Register],
    req_items: frozenset,
    requirements: dict[str, frozenset],
) -> bool:
    """Joint BDD justification of the requirement set (paper Fig. 5b).

    Two families of constraints, solved per reset channel in one BDD:

    * the flattened *terminal requirements* — implied values at original
      register positions with every committed register at its channel
      value (the environment :func:`_verify_reset_requirements` checks);
    * *frontier function preservation* — revising a sibling register's
      reset value changes what its readers see during that class's
      reset-hold window, while registers of other classes keep arbitrary
      dynamic contents.  So at every committed register pin and primary
      output the step can reach, the net's function — over primary
      inputs and other-class register contents, with same-class
      committed registers at their channel values — must equal its
      pre-step function.  Value-level snapshots are not enough: a
      revision can keep an X-valued implication X while silently
      changing which function of the inputs reaches a committed D pin.

    Revisable siblings are restricted to registers of the moved layer's
    class whose whole responsibility is a subset of the requirements
    being solved (the paper's "other registers involved in moving
    backward the conflicting registers").  Returns False when no
    assignment exists; the caller refuses the step and the engine clamps
    ``r_max^mc`` (paper Sec. 5.2, last paragraph).
    """
    # requirements per net, with per-net meets (a hard clash here means
    # two original registers at one position disagreed — unresolvable).
    # Iterate in sorted order: req_items is a set, and its hash-dependent
    # order would otherwise leak into the BDD variable order and thereby
    # into which (equally valid) justification gets picked, making runs
    # irreproducible across interpreter hash seeds.
    required_s: dict[str, int] = {}
    required_a: dict[str, int] = {}
    for net, sval, aval in sorted(req_items):
        s = _meet_all([required_s.get(net, TX), sval])
        a = _meet_all([required_a.get(net, TX), aval])
        if s is None or a is None:
            return False
        required_s[net] = s
        required_a[net] = a

    cut = {reg.q for reg in new_regs.values()}
    revisable: dict[str, Register] = {reg.q: reg for reg in new_regs.values()}
    for name in sorted(requirements):
        reqs = requirements[name]
        if reqs and reqs <= req_items:
            reg = work.registers.get(name)
            if reg is not None and classifier.classify(reg) == cid:
                cut.add(reg.q)
                revisable[reg.q] = reg

    # nets the step can change, post-rewiring
    affected = set(cut)
    for gate in work.topo_gates():
        if gate.output not in affected and any(
            n in affected for n in gate.inputs
        ):
            affected.add(gate.output)

    # outstanding requirements from other registers' histories that
    # anchor at nets this step can change must be preserved as well
    for name in sorted(requirements):
        for net, sval, aval in sorted(requirements[name]):
            if net not in affected:
                continue
            s = _meet_all([required_s.get(net, TX), sval])
            a = _meet_all([required_a.get(net, TX), aval])
            if s is None or a is None:
                return False
            required_s[net] = s
            required_a[net] = a

    # observation frontier: register pins and primary outputs the change
    # can reach, paired with their pre-step nets.  Keyed by register
    # name / output index because the rewiring renames nets in place
    # (removed Q nets collapse onto the moved gate's output net).  Cut
    # registers' own D pins are observed too: the new layer samples the
    # moved gate's input nets every cycle, and a sibling revision that
    # shifts what those nets compute right after a reset changes the
    # data the moved region replays one cycle later.  New registers have
    # no pre-step twin; their D nets kept their names through the
    # rewiring, so the pre-step net is the same string.
    targets: list[tuple[str, str]] = []
    for name in sorted(work.registers):
        reg = work.registers[name]
        pre_reg = pre.registers.get(name)
        for attr in ("d", "en", "sr", "ar"):
            post_net = getattr(reg, attr)
            if post_net is None or post_net not in affected:
                continue
            pre_net = (
                getattr(pre_reg, attr) if pre_reg is not None else post_net
            )
            targets.append((pre_net, post_net))
    for index, post_net in enumerate(work.outputs):
        if post_net in affected:
            targets.append((pre.outputs[index], post_net))

    new_q = {reg.q for reg in new_regs.values()}
    template = next(iter(new_regs.values()))
    solutions = []
    for attr, pin, required in (
        ("sval", template.sr, required_s),
        ("aval", template.ar, required_a),
    ):
        # a class without the matching reset pin never loads this
        # channel, so there is no reset event to preserve behaviour
        # across — only the implied-value requirements remain (other
        # classes' bookkeeping still references this channel's state)
        chan_targets = targets if pin is not None else []
        sol = _solve_channel(
            pre, work, cid, classifier, attr, required, cut, chan_targets
        )
        if sol is None:
            return False
        # a don't-care on a *sibling* keeps its committed value: the BDD
        # treats X as "either binary value works", but to the ternary
        # simulator X is an information loss its readers may observe
        for q_net, reg in revisable.items():
            if q_net not in new_q and sol.get(q_net, TX) == TX:
                sol[q_net] = getattr(reg, attr)
        if not _ternary_ok(
            pre, work, cid, classifier, attr, required, sol, chan_targets
        ):
            return False
        solutions.append(sol)
    sol_s, sol_a = solutions
    for q_net, reg in revisable.items():
        reg.sval = sol_s.get(q_net, TX)
        reg.aval = sol_a.get(q_net, TX)
        if reg.name not in requirements or reg.q in {
            nr.q for nr in new_regs.values()
        }:
            requirements[reg.name] = req_items
    return True


def _ternary_ok(
    pre: Circuit,
    work: Circuit,
    cid,
    classifier: Classifier,
    attr: str,
    required: dict[str, int],
    cut_vals: dict[str, int],
    targets: list[tuple[str, str]],
) -> bool:
    """Validate a BDD solution under per-gate ternary evaluation.

    The BDD solve reasons over binary completions, so it may leave a
    don't-care cut variable at X — but the sequential simulator's
    per-gate X-propagation is structural, and an X reset value can
    surface as X at a net the pre-step circuit kept binary (a real
    refinement violation even though every binary completion agrees).
    So re-check the solution with :func:`eval_nets`: the terminal
    requirements must implicate exactly in the all-channel-values
    state, and every frontier target must evaluate identically to the
    pre-step circuit in the class reset state (other classes X).
    """
    env_all: dict[str, int] = {}
    env_cls_post: dict[str, int] = {}
    for reg in work.registers.values():
        val = cut_vals.get(reg.q, getattr(reg, attr))
        env_all[reg.q] = val
        if classifier.classify(reg) == cid:
            env_cls_post[reg.q] = val
    vals_all = eval_nets(work, env_all)
    for net, val in required.items():
        if val != TX and vals_all.get(net, TX) != val:
            return False
    if not targets:
        return True
    # warm-up environment: every class resets at once
    pre_all = eval_nets(
        pre, {reg.q: getattr(reg, attr) for reg in pre.registers.values()}
    )
    for pre_net, post_net in targets:
        if vals_all.get(post_net, TX) != pre_all.get(pre_net, TX):
            return False
    # class reset environment: other classes hold dynamic contents (X)
    env_cls_pre = {
        reg.q: getattr(reg, attr)
        for reg in pre.registers.values()
        if classifier.classify(reg) == cid
    }
    post_vals = eval_nets(work, env_cls_post)
    pre_vals = eval_nets(pre, env_cls_pre)
    for pre_net, post_net in targets:
        if post_vals.get(post_net, TX) != pre_vals.get(pre_net, TX):
            return False
    return True


def _solve_channel(
    pre: Circuit,
    work: Circuit,
    cid,
    classifier: Classifier,
    attr: str,
    required: dict[str, int],
    cut: set[str],
    targets: list[tuple[str, str]],
) -> dict[str, int] | None:
    """Solve one reset channel of a global justification (see above).

    Register Q nets share BDD variables between the pre- and post-step
    circuits: a committed register's dynamic content is the same
    unknown on both sides of every equality constraint.
    """
    bdd = BDD()
    # environment A: every committed register at its channel value — the
    # terminal requirements are implications in exactly this state
    bind_all: dict[str, int] = {}
    # environment B: only class-`cid` registers at channel values; other
    # classes hold arbitrary dynamic contents (free, quantified below)
    bind_cls_post: dict[str, int] = {}
    for reg in work.registers.values():
        if reg.q in cut:
            continue
        val = getattr(reg, attr)
        if val == TX:
            continue
        node = TRUE if val == T1 else FALSE
        bind_all[reg.q] = node
        if classifier.classify(reg) == cid:
            bind_cls_post[reg.q] = node
    bind_cls_pre: dict[str, int] = {}
    for reg in pre.registers.values():
        val = getattr(reg, attr)
        if val == TX or classifier.classify(reg) != cid:
            continue
        bind_cls_pre[reg.q] = TRUE if val == T1 else FALSE

    constraint = TRUE
    hard = {net: val for net, val in required.items() if val != TX}
    if hard:
        fns = net_functions(work, list(hard), bdd, bindings=bind_all)
        for net in sorted(hard):
            f = fns[net]
            constraint = bdd.and_(
                constraint, f if hard[net] == T1 else bdd.not_(f)
            )
            if constraint == FALSE:
                return None
    if targets:
        post_fns = net_functions(
            work, [p for _, p in targets], bdd, bindings=bind_cls_post
        )
        pre_fns = net_functions(
            pre, [p for p, _ in targets], bdd, bindings=bind_cls_pre
        )
        for pre_net, post_net in targets:
            constraint = bdd.and_(
                constraint, bdd.xnor(pre_fns[pre_net], post_fns[post_net])
            )
            if constraint == FALSE:
                return None

    # everything we do not control — primary inputs, other-class
    # contents, removed registers' unknowns — must not be relied upon
    foreign = [
        level
        for level in bdd.support(constraint)
        if bdd.var_name(level) not in cut
    ]
    if foreign:
        constraint = bdd.forall(constraint, foreign)
        if constraint == FALSE:
            return None
    model = bdd.sat_one(constraint)
    if model is None:
        return None
    result = {net: TX for net in cut}
    name_of = bdd.var_names()
    for level, value in model.items():
        net = name_of[level]
        if net in result:
            result[net] = T1 if value else T0
    return result


def _try_forward(
    work: Circuit,
    gate,
    classifier: Classifier,
    requirements: dict[str, frozenset],
    stats: JustificationStats,
) -> bool:
    """One forward layer move across *gate*, if currently valid."""
    in_nets = [n for n in gate.inputs if not is_const(n)]
    if not in_nets:
        return False
    drivers: dict[str, Register] = {}
    for net in in_nets:
        reg = work.driver_register(net)
        if reg is None:
            return False
        drivers[net] = reg
    cids = {classifier.classify(reg) for reg in drivers.values()}
    if len(cids) != 1:
        return False

    # forward implication of the reset values (exact ternary)
    sval = implied_value(gate, {n: r.sval for n, r in drivers.items()})
    aval = implied_value(gate, {n: r.aval for n, r in drivers.items()})

    template = next(iter(drivers.values()))
    # bypass the source registers at this gate's pins
    for i, net in enumerate(gate.inputs):
        if not is_const(net):
            gate.inputs[i] = drivers[net].d
    # drop sources that became unobservable
    for reg in drivers.values():
        if reg.name in work.registers and not work.readers(reg.q):
            work.remove_register(reg.name)
            requirements.pop(reg.name, None)
    # insert the new layer after the gate
    old_out = gate.output
    new_net = work.new_net("fwd")
    work.rewire_gate_output(gate, new_net)
    work.add_register(
        d=new_net,
        q=old_out,
        clk=template.clk,
        en=template.en,
        sr=template.sr,
        ar=template.ar,
        sval=sval,
        aval=aval,
    )
    stats.forward_steps += 1
    obs.count("relocate.forward_steps")
    return True
