"""Register relocation: implement a computed mc-retiming on the circuit.

Step 6 of the paper's flow: given per-gate retiming values, perform the
corresponding sequence of *valid mc-retiming steps* directly on the
netlist, computing equivalent reset states on the way (Sec. 5.2):

* **forward step** (r < 0): bypass the register layer at the gate's
  inputs, insert one register after the gate; its reset values are the
  forward implication of the source values.
* **backward step** (r > 0): remove the register layer at the gate's
  output, insert one register per (non-constant) input net; values come
  from local justification, or from a BDD global justification over the
  cone back to the registers' original positions when the local step
  conflicts (paper Fig. 5).

Every register created by a backward step records the flattened set of
*terminal requirements* — ``(net, sval, aval)`` at original register
positions — it is responsible for.  A global justification solves those
requirements jointly for the new layer *and* any sibling registers
carrying a subset of the same requirements (the paper's "other
registers involved in moving backward the conflicting registers"),
assuming the committed values of all other registers and universally
quantifying primary inputs.

If even the global step fails, :class:`JustificationConflict` reports
the gate and how many backward moves succeeded there, so the engine can
clamp ``r_max^mc`` and re-solve (paper Sec. 5.2, last paragraph).

Scheduling: repeatedly sweep the gates with outstanding moves and apply
any step that is currently valid; a full sweep without progress on a
legal retiming indicates an upstream bug and raises RelocationError.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from .. import obs
from ..logic.justify import justify_cone
from ..logic.ternary import TX, meet
from ..netlist import Circuit, Register
from ..netlist.signals import is_const
from .classes import Classifier
from .reset import JustificationStats, implied_value, justify_pins


class RelocationError(Exception):
    """Raised when a supposedly legal retiming cannot be replayed."""


class JustificationConflict(Exception):
    """An unresolvable reset conflict at a backward step.

    Attributes:
        gate: vertex where the conflict occurred.
        moves_done: backward moves successfully performed there before
            the conflict — the paper's new upper bound for that vertex.
    """

    def __init__(self, gate: str, moves_done: int) -> None:
        super().__init__(f"unjustifiable backward move at {gate!r}")
        self.gate = gate
        self.moves_done = moves_done


@dataclass
class RelocationResult:
    """Retimed circuit plus bookkeeping."""

    circuit: Circuit
    stats: JustificationStats
    #: layers actually moved (Σ |r(v)|) — the paper's first #Step number
    steps_moved: int = 0
    #: registers created minus removed (net area movement)
    register_delta: int = 0
    #: per-register terminal requirements (register -> {(net, s, a)})
    requirements: dict[str, frozenset] = field(default_factory=dict)


def relocate(
    circuit: Circuit,
    r: dict[str, int],
    classifier: Classifier | None = None,
) -> RelocationResult:
    """Apply retiming *r* (gate name -> lag) to a clone of *circuit*."""
    work = circuit.clone()
    classifier = classifier or Classifier(circuit)
    stats = JustificationStats()
    pending: dict[str, int] = {
        name: value
        for name, value in r.items()
        if value and name in work.gates
    }
    requirements: dict[str, frozenset] = {}
    performed: dict[str, int] = {}
    steps_moved = 0
    regs_before = len(work.registers)

    while pending:
        progress = False
        for name in list(pending):
            direction = pending[name]
            gate = work.gates[name]
            if direction > 0:
                applied = _try_backward(
                    work, gate, classifier, requirements, stats, performed
                )
            else:
                applied = _try_forward(work, gate, classifier, requirements, stats)
            if applied:
                progress = True
                steps_moved += 1
                pending[name] += -1 if direction > 0 else 1
                if pending[name] == 0:
                    del pending[name]
        if not progress:
            raise RelocationError(
                f"relocation deadlocked with pending moves: {pending}"
            )

    merge_shareable_registers(work, classifier, requirements)

    return RelocationResult(
        circuit=work,
        stats=stats,
        steps_moved=steps_moved,
        register_delta=len(work.registers) - regs_before,
        requirements=requirements,
    )


def merge_shareable_registers(
    work: Circuit,
    classifier: Classifier,
    requirements: dict[str, frozenset] | None = None,
) -> int:
    """Merge registers with one driver, one class, and compatible values.

    Relocation materialises one register per gate input, so several
    gates reading the same net end up with duplicate registers; the
    min-area cost model already assumed those share (Leiserson–Saxe
    fanout sharing), and this pass realises it.  Reset values are met
    (X yields to a binary sibling); incompatible values keep separate
    registers.  Returns the number of registers removed.
    """
    from ..logic.ternary import compatible as t_compatible

    requirements = requirements if requirements is not None else {}
    removed = 0
    groups: dict[tuple, list[Register]] = {}
    for reg in work.registers.values():
        groups.setdefault((reg.d, classifier.classify(reg)), []).append(reg)
    for (_, _), members in groups.items():
        if len(members) < 2:
            continue
        keeper = members[0]
        for other in members[1:]:
            if not (
                t_compatible(keeper.sval, other.sval)
                and t_compatible(keeper.aval, other.aval)
            ):
                continue
            keeper.sval = meet(keeper.sval, other.sval)
            keeper.aval = meet(keeper.aval, other.aval)
            if other.name in requirements:
                merged = requirements.get(keeper.name, frozenset()) | (
                    requirements.pop(other.name)
                )
                requirements[keeper.name] = merged
            work.remove_register(other.name)
            work.replace_net(other.q, keeper.q)
            removed += 1
    return removed


def _meet_all(values: list[int]) -> int | None:
    """Meet of ternary values, or None on a 0/1 conflict."""
    acc = TX
    for v in values:
        try:
            acc = meet(acc, v)
        except ValueError:
            return None
    return acc


def _try_backward(
    work: Circuit,
    gate,
    classifier: Classifier,
    requirements: dict[str, frozenset],
    stats: JustificationStats,
    performed: dict[str, int],
) -> bool:
    """One backward layer move across *gate*, if currently valid."""
    out_net = gate.output
    readers = work.readers(out_net)
    if not readers:
        return False
    removed: list[Register] = []
    for kind, name, pin in readers:
        if kind != "register" or pin != 0:
            return False  # some fanout connection has no adjacent register
        removed.append(work.registers[name])
    cids = {classifier.classify(reg) for reg in removed}
    if len(cids) != 1:
        return False
    in_nets = [n for n in gate.inputs if not is_const(n)]
    if not in_nets:
        return False  # constant generator: no fanin edges to receive a layer

    # terminal requirements carried by the removed layer
    req_items: set[tuple[str, int, int]] = set()
    for reg in removed:
        stored = requirements.get(reg.name)
        if stored is not None:
            req_items |= stored
        else:
            req_items.add((out_net, reg.sval, reg.aval))

    # --- try the cheap local justification first -----------------------
    # the new layer must reproduce the removed layer's values AND any
    # terminal requirement anchored at this gate's output net: a derived
    # X-valued register at `out_net` may coexist with a hard requirement
    # (net, s, a) that deeper logic satisfied until now — inserting the
    # new layer cuts that path, so the layer must carry it itself
    local_values: tuple[dict[str, int], dict[str, int]] | None = None
    req_s = _meet_all(
        [reg.sval for reg in removed]
        + [s for net, s, _a in req_items if net == out_net]
    )
    req_a = _meet_all(
        [reg.aval for reg in removed]
        + [a for net, _s, a in req_items if net == out_net]
    )
    if req_s is not None and req_a is not None:
        vs = justify_pins(gate, req_s)
        va = justify_pins(gate, req_a)
        if vs is not None and va is not None:
            local_values = (vs, va)

    # --- structural rewiring (shared by both justification paths) ------
    template = removed[0]
    new_regs: dict[str, Register] = {}
    for net in dict.fromkeys(in_nets):
        new_regs[net] = work.add_register(
            d=net,
            clk=template.clk,
            en=template.en,
            sr=template.sr,
            ar=template.ar,
            sval=TX,
            aval=TX,
        )
    for i, net in enumerate(gate.inputs):
        if not is_const(net):
            gate.inputs[i] = new_regs[net].q
    for reg in removed:
        work.remove_register(reg.name)
        work.replace_net(reg.q, out_net)
        requirements.pop(reg.name, None)

    frozen = frozenset(req_items)
    if local_values is not None:
        vs, va = local_values
        for net, reg in new_regs.items():
            reg.sval = vs.get(net, TX)
            reg.aval = va.get(net, TX)
            requirements[reg.name] = frozen
        stats.local_steps += 1
        obs.count("relocate.local_steps")
        performed[gate.name] = performed.get(gate.name, 0) + 1
        return True

    # --- global justification over the cone ----------------------------
    ok = _global_justify(work, new_regs, frozen, requirements, stats)
    if not ok:
        stats.unresolvable += 1
        raise JustificationConflict(gate.name, performed.get(gate.name, 0))
    stats.global_steps += 1
    obs.count("relocate.global_steps")
    performed[gate.name] = performed.get(gate.name, 0) + 1
    return True


def _global_justify(
    work: Circuit,
    new_regs: dict[str, Register],
    req_items: frozenset,
    requirements: dict[str, frozenset],
    stats: JustificationStats,
) -> bool:
    """Joint BDD justification of the requirement set (paper Fig. 5b)."""
    # requirements per net, with per-net meets (a hard clash here means
    # two original registers at one position disagreed — unresolvable).
    # Iterate in sorted order: req_items is a set, and its hash-dependent
    # order would otherwise leak into the BDD variable order and thereby
    # into which (equally valid) justification gets picked, making runs
    # irreproducible across interpreter hash seeds.
    required_s: dict[str, int] = {}
    required_a: dict[str, int] = {}
    for net, sval, aval in sorted(req_items):
        s = _meet_all([required_s.get(net, TX), sval])
        a = _meet_all([required_a.get(net, TX), aval])
        if s is None or a is None:
            return False
        required_s[net] = s
        required_a[net] = a

    # the solvable cut: the new layer plus sibling registers whose whole
    # responsibility is a subset of the requirements being solved
    cut = {reg.q for reg in new_regs.values()}
    revisable: dict[str, Register] = {reg.q: reg for reg in new_regs.values()}
    for name in sorted(requirements):
        reqs = requirements[name]
        if reqs and reqs <= req_items:
            reg = work.registers.get(name)
            if reg is not None:
                cut.add(reg.q)
                revisable[reg.q] = reg

    # committed values of every other register act as assumptions
    assume_s: dict[str, int] = {}
    assume_a: dict[str, int] = {}
    for reg in work.registers.values():
        if reg.q in cut:
            continue
        assume_s[reg.q] = reg.sval
        assume_a[reg.q] = reg.aval

    sol_s = justify_cone(work, required_s, cut, assume=assume_s)
    if sol_s is None:
        return False
    sol_a = justify_cone(work, required_a, cut, assume=assume_a)
    if sol_a is None:
        return False
    for q_net, reg in revisable.items():
        reg.sval = sol_s.get(q_net, TX)
        reg.aval = sol_a.get(q_net, TX)
        if reg.name not in requirements or reg.q in {
            nr.q for nr in new_regs.values()
        }:
            requirements[reg.name] = req_items
    return True


def _try_forward(
    work: Circuit,
    gate,
    classifier: Classifier,
    requirements: dict[str, frozenset],
    stats: JustificationStats,
) -> bool:
    """One forward layer move across *gate*, if currently valid."""
    in_nets = [n for n in gate.inputs if not is_const(n)]
    if not in_nets:
        return False
    drivers: dict[str, Register] = {}
    for net in in_nets:
        reg = work.driver_register(net)
        if reg is None:
            return False
        drivers[net] = reg
    cids = {classifier.classify(reg) for reg in drivers.values()}
    if len(cids) != 1:
        return False

    # forward implication of the reset values (exact ternary)
    sval = implied_value(gate, {n: r.sval for n, r in drivers.items()})
    aval = implied_value(gate, {n: r.aval for n, r in drivers.items()})

    template = next(iter(drivers.values()))
    # bypass the source registers at this gate's pins
    for i, net in enumerate(gate.inputs):
        if not is_const(net):
            gate.inputs[i] = drivers[net].d
    # drop sources that became unobservable
    for reg in drivers.values():
        if reg.name in work.registers and not work.readers(reg.q):
            work.remove_register(reg.name)
            requirements.pop(reg.name, None)
    # insert the new layer after the gate
    old_out = gate.output
    new_net = work.new_net("fwd")
    work.rewire_gate_output(gate, new_net)
    work.add_register(
        d=new_net,
        q=old_out,
        clk=template.clk,
        en=template.en,
        sr=template.sr,
        ar=template.ar,
        sval=sval,
        aval=aval,
    )
    stats.forward_steps += 1
    obs.count("relocate.forward_steps")
    return True
