"""Run reports in the vocabulary of the paper's Table 2 and Sec. 6 prose."""

from __future__ import annotations

from dataclasses import dataclass

from .engine import MCRetimeResult


@dataclass(frozen=True)
class RetimeReport:
    """One Table-2 style row (area columns filled in by the flow layer)."""

    name: str
    n_classes: int
    steps_moved: int
    steps_possible: int
    ff: int
    period: float
    local_fraction: float
    basic_fraction: float
    relocation_fraction: float
    overhead_fraction: float
    resolve_attempts: int

    def step_column(self) -> str:
        """The paper's ``moved/possible`` rendering."""
        return f"{self.steps_moved}/{self.steps_possible}"


def report_from_result(name: str, result: MCRetimeResult) -> RetimeReport:
    """Summarise an engine result."""
    fractions = result.timing_fractions()
    return RetimeReport(
        name=name,
        n_classes=result.n_classes,
        steps_moved=result.steps_moved,
        steps_possible=result.steps_possible,
        ff=result.ff_after,
        period=result.period_after,
        local_fraction=result.stats.local_fraction,
        basic_fraction=fractions["basic_retiming"],
        relocation_fraction=fractions["relocation"],
        overhead_fraction=fractions["mc_overhead"],
        resolve_attempts=result.resolve_attempts,
    )


def format_table(rows: list[dict[str, object]], floatfmt: str = ".1f") -> str:
    """Minimal fixed-width table printer for the experiment scripts."""
    if not rows:
        return "(empty table)"
    headers = list(rows[0])
    rendered = []
    for row in rows:
        rendered.append(
            {
                h: (f"{v:{floatfmt}}" if isinstance(v, float) else str(v))
                for h, v in row.items()
            }
        )
    widths = {
        h: max(len(h), *(len(r[h]) for r in rendered)) for h in headers
    }
    lines = [
        "  ".join(h.ljust(widths[h]) for h in headers),
        "  ".join("-" * widths[h] for h in headers),
    ]
    for r in rendered:
        lines.append("  ".join(r[h].rjust(widths[h]) for h in headers))
    return "\n".join(lines)
