"""Multiple-class register sharing transform (paper Sec. 4.2, Eq. 3).

The Leiserson–Saxe sharing cost (max over fanout edges) under-counts
when a fanout layer mixes classes — mixed-class registers cannot share
hardware (Fig. 4a reports 2 where the true cost is 3).  The paper's
repair:

1. maximally backward-retime the graph (we reuse the copy produced by
   the bounds pass);
2. at each multi-fanout vertex, walk the fanout register layers from
   source to sink, keeping at each layer the largest set of
   class-compatible registers among the edges still "inside" the cut —
   that greedy frontier is the *cutline* separating sharable registers
   (left) from non-sharable ones (right);
3. insert a zero-delay *separation vertex* s_i on each fanout edge with
   non-sharable registers, redistribute the original edge's registers
   around s_i (by rewinding the maximal backward retiming), and bound

       r_max^mc(s_i) = max(r_max^mc(v_i) − w_b(e_{s_i v_i}), 0)    (3)

   so the solver can never pull a non-sharable register into the shared
   region beyond what undoing the maximal backward retiming allows.

The separated tail edges are single-fanout, so the standard sharing
cost then counts each non-sharable register individually — an over-
rather than under-estimate, as the paper prefers.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..graph.retiming_graph import Edge, RegInstance, RetimingGraph


@dataclass
class Separation:
    """Record of one inserted separation vertex."""

    sep: str
    u: str
    v: str
    original_eid: int
    #: registers that stayed on the u-side edge (sharable side)
    head_regs: int
    #: registers moved to the sep→v edge (non-sharable side)
    tail_regs: int
    #: Eq. 3 bound for the separation vertex
    r_max: int
    r_min: int


@dataclass
class SharingTransformResult:
    """Transformed graph plus updated bounds."""

    graph: RetimingGraph
    #: bounds including entries for the new separation vertices
    bounds: dict[str, tuple[int, int]]
    separations: list[Separation] = field(default_factory=list)


def _cut_positions(sequences: list[list[RegInstance]]) -> list[int]:
    """Greedy cutline: sharable prefix length per fanout edge.

    Walks layers source→sink; at each layer the largest compatible class
    among still-active edges survives (ties broken by smaller class id
    for determinism); edges falling out keep their prefix length.
    """
    n = len(sequences)
    shar = [0] * n
    active = [i for i in range(n)]
    layer = 0
    while True:
        groups: dict[int, list[int]] = {}
        for i in active:
            if len(sequences[i]) > layer:
                groups.setdefault(sequences[i][layer].cls, []).append(i)
        if not groups:
            break
        winner = max(groups, key=lambda cls: (len(groups[cls]), -cls))
        survivors = groups[winner]
        for i in survivors:
            shar[i] = layer + 1
        active = survivors
        layer += 1
    return shar


def apply_sharing_transform(
    graph: RetimingGraph,
    bounds: dict[str, tuple[int, int]],
    backward_graph: RetimingGraph,
) -> SharingTransformResult:
    """Insert separation vertices into a copy of *graph*.

    Args:
        graph: the original mc-graph (untouched).
        bounds: mc-retiming bounds from :func:`~repro.mcretime.bounds.
            compute_bounds` (vertex -> (r_min, r_max)).
        backward_graph: the maximally backward-retimed copy (edge ids
            aligned with *graph*).
    """
    out = graph.copy()
    new_bounds = dict(bounds)
    separations: list[Separation] = []

    def r_max_of(v: str) -> int:
        return new_bounds.get(v, (0, 0))[1]

    def r_min_of(v: str) -> int:
        return new_bounds.get(v, (0, 0))[0]

    for name, vertex in graph.vertices.items():
        if vertex.kind not in ("gate", "input"):
            continue
        original_edges = graph.out_edges(name)
        if len(original_edges) < 2:
            continue
        sequences = []
        for edge in original_edges:
            bwd_edge = backward_graph.edges[edge.eid]
            sequences.append(list(bwd_edge.regs or []))
        shar = _cut_positions(sequences)
        for edge, seq, prefix in zip(original_edges, sequences, shar):
            non_sharable = len(seq) - prefix
            if non_sharable <= 0:
                continue
            v_i = edge.v
            sep = f"$sep{edge.eid}_{name}"
            out.add_vertex(sep, 0.0, "sep")
            # rewind the maximal backward retiming to place the original
            # registers: tail registers that never crossed the cut
            tail = max(non_sharable - r_max_of(v_i), 0)
            tail = min(tail, edge.w)
            head = edge.w - tail
            old = out.edges[edge.eid]
            regs = list(old.regs or [])
            out.remove_edge(edge.eid)
            out.add_edge(name, sep, head, regs[:head])
            out.add_edge(sep, v_i, tail, regs[head:])
            sep_r_max = max(r_max_of(v_i) - non_sharable, 0)
            sep_r_min = r_min_of(v_i) - tail
            new_bounds[sep] = (sep_r_min, sep_r_max)
            separations.append(
                Separation(
                    sep=sep,
                    u=name,
                    v=v_i,
                    original_eid=edge.eid,
                    head_regs=head,
                    tail_regs=tail,
                    r_max=sep_r_max,
                    r_min=sep_r_min,
                )
            )
    out.check()
    return SharingTransformResult(out, new_bounds, separations)
