"""Register classification (paper Def. 1).

A register class is the tuple ``(clk, load, r_sync, r_async)`` of
control *signals*, compared up to **logical equivalence**: two registers
are compatible iff each control signal computes the same Boolean
function of the primary inputs and register outputs.  We decide
equivalence with BDDs over the canonical cut (one variable per PI and
per register Q); by ROBDD canonicity, equal functions are equal node
handles, so a class is simply a tuple of node ids.

Normalisations (all direct consequences of the generic-register
semantics of Fig. 2a):

* a missing EN pin behaves as constant 1, so ``en=None`` and an enable
  net that provably computes TRUE share a key;
* missing SR / AR pins behave as constant 0 (never reset);
* reset *values* (s, a) are **not** part of the class — they are labels
  on individual registers (Sec. 3.2).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..bdd import BDD, FALSE, TRUE
from ..logic.netfn import default_cut, net_functions
from ..netlist import Circuit, Register
from ..netlist.signals import CONST0, CONST1


@dataclass(frozen=True)
class RegisterClass:
    """One register class, with representative nets for materialisation.

    The representative nets are taken from the first register observed
    in the class; any member's nets would do, since they are logically
    equivalent (and relocation always copies nets from an actual member
    register anyway).
    """

    cid: int
    clk: str
    en: str | None
    sr: str | None
    ar: str | None

    @property
    def has_enable(self) -> bool:
        return self.en is not None

    @property
    def has_sync_reset(self) -> bool:
        return self.sr is not None

    @property
    def has_async_reset(self) -> bool:
        return self.ar is not None

    def describe(self) -> str:
        """Compact human-readable form."""
        parts = [f"clk={self.clk}"]
        if self.en is not None:
            parts.append(f"en={self.en}")
        if self.sr is not None:
            parts.append(f"sr={self.sr}")
        if self.ar is not None:
            parts.append(f"ar={self.ar}")
        return f"C{self.cid}(" + ", ".join(parts) + ")"


class Classifier:
    """Maps registers of one circuit to class ids.

    With ``semantic=True`` (the default and the paper's definition),
    control nets are compared by BDD function; otherwise by net name.
    The classifier is built eagerly over the whole circuit so repeated
    queries are dictionary lookups.
    """

    def __init__(self, circuit: Circuit, semantic: bool = True) -> None:
        self.circuit = circuit
        self.semantic = semantic
        self.classes: list[RegisterClass] = []
        self._by_reg: dict[str, int] = {}
        self._key_to_cid: dict[tuple, int] = {}
        self._net_keys: dict[str, object] = {}
        if semantic:
            self._build_net_keys()
        for reg in circuit.registers.values():
            self._by_reg[reg.name] = self._classify(reg)

    def _build_net_keys(self) -> None:
        nets: set[str] = set()
        for reg in self.circuit.registers.values():
            nets.add(reg.clk)
            for net in (reg.en, reg.sr, reg.ar):
                if net is not None:
                    nets.add(net)
        nets.discard(CONST0)
        nets.discard(CONST1)
        if not nets:
            return
        bdd = BDD()
        fns = net_functions(self.circuit, sorted(nets), bdd)
        self._net_keys = dict(fns)
        self._net_keys[CONST0] = FALSE
        self._net_keys[CONST1] = TRUE
        self._true_key = TRUE
        self._false_key = FALSE

    def _key(self, net: str | None, absent: object) -> object:
        """Key of one control net; *absent* is the missing-pin value."""
        if net is None:
            return absent
        if self.semantic:
            key = self._net_keys.get(net)
            if key is None:  # net never seen (shouldn't happen) — by name
                return ("name", net)
            return key
        if net == CONST1:
            return TRUE if absent is TRUE else ("name", net)
        if net == CONST0:
            return FALSE if absent is FALSE else ("name", net)
        return ("name", net)

    def _classify(self, reg: Register) -> int:
        key = (
            self._key(reg.clk, ("name", reg.clk)),
            self._key(reg.en, TRUE),  # no enable == always enabled
            self._key(reg.sr, FALSE),  # no sync reset == never resets
            self._key(reg.ar, FALSE),
        )
        cid = self._key_to_cid.get(key)
        if cid is None:
            cid = len(self.classes)
            self._key_to_cid[key] = cid
            self.classes.append(
                RegisterClass(cid, reg.clk, reg.en, reg.sr, reg.ar)
            )
        return cid

    def classify(self, reg: Register) -> int:
        """Class id of *reg* (registers added after construction are
        classified on the fly)."""
        cid = self._by_reg.get(reg.name)
        if cid is None:
            cid = self._classify(reg)
            self._by_reg[reg.name] = cid
        return cid

    def class_of(self, cid: int) -> RegisterClass:
        """The class record for an id."""
        return self.classes[cid]

    @property
    def n_classes(self) -> int:
        """Number of distinct classes among classified registers."""
        return len(self.classes)

    def compatible(self, a: Register, b: Register) -> bool:
        """Paper Def. 1: same class."""
        return self.classify(a) == self.classify(b)
