"""MC-retiming bounds by maximal backward / forward retiming (Sec. 4.1).

``r_max^mc(v)`` — how many layers may move backward across v — equals
the number of registers moved across v when the mc-graph is *maximally
backward retimed* (valid mc-steps applied until none remains), and
symmetrically ``r_min^mc(v)`` is minus the count from maximal forward
retiming.  Reset values are ignored here, exactly as the paper argues
(unique constraint set; justification deferred to relocation).

The pass also produces the paper's "#Step possible" statistic: the total
number of valid mc-steps executed across both maximal phases.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

from ..graph.mcgraph import (
    backward_layer_class,
    forward_layer_class,
    move_backward,
    move_forward,
)
from ..graph.retiming_graph import GraphError, RetimingGraph


class BoundsError(GraphError):
    """Raised when maximal retiming fails to terminate (dead ring)."""


@dataclass
class BoundsResult:
    """Bounds plus the two maximally retimed graphs (the backward one
    feeds the sharing transform of Sec. 4.2)."""

    #: vertex -> (r_min, r_max); only movable vertices appear.
    bounds: dict[str, tuple[int, int]]
    #: graph copy after maximal backward retiming.
    backward_graph: RetimingGraph
    #: graph copy after maximal forward retiming.
    forward_graph: RetimingGraph
    #: total valid mc-steps found (backward + forward) — paper's
    #: "#Step possible".
    steps_possible: int = 0

    def r_max(self, v: str) -> int:
        return self.bounds.get(v, (0, 0))[1]

    def r_min(self, v: str) -> int:
        return self.bounds.get(v, (0, 0))[0]


def _maximal_retime(
    graph: RetimingGraph,
    direction: str,
    move_cap: int,
    per_vertex_cap: int,
) -> tuple[dict[str, int], int]:
    """Apply valid mc-steps of one direction until exhaustion.

    Mutates *graph*; returns (moves per vertex, total moves).  FIFO
    worklist; after a move the vertices whose step validity can have
    changed (the vertex itself and its predecessors/successors for
    backward/forward respectively) are re-enqueued.

    ``per_vertex_cap`` truncates the exploration: register loops that
    are not reachable from the host (free-running counters, toggle
    flip-flops) admit unboundedly many forward steps — every lap leaves
    one more register on each tap edge — so the true bound can be
    infinite.  Capping is *sound*: bounds only restrict the solution
    space, and no useful retiming lags exceed the circuit's sequential
    depth, let alone the cap.
    """
    if direction == "backward":
        probe, move = backward_layer_class, move_backward
    else:
        probe, move = forward_layer_class, move_forward
    counts: dict[str, int] = {}
    total = 0
    movable = [v for v in graph.vertices.values() if v.movable]
    queue: deque[str] = deque(v.name for v in movable)
    queued = {v.name for v in movable}
    while queue:
        name = queue.popleft()
        queued.discard(name)
        count = counts.get(name, 0)
        moved = False
        while count < per_vertex_cap and probe(graph, name) is not None:
            move(graph, name)
            count += 1
            moved = True
            total += 1
            if total > move_cap:
                raise BoundsError(
                    "maximal retiming exceeded its move budget despite "
                    "the per-vertex cap — graph is pathological"
                )
        if not moved:
            continue
        counts[name] = count
        # moves change edge weights only, never topology, so the
        # neighbor set is loop-invariant: compute it once per drain
        neighbors = (
            graph.predecessors(name)
            if direction == "backward"
            else graph.successors(name)
        )
        for n in neighbors:
            if graph.vertices[n].movable and n not in queued:
                queue.append(n)
                queued.add(n)
    return counts, total


def compute_bounds(
    graph: RetimingGraph,
    move_cap: int | None = None,
    per_vertex_cap: int = 64,
) -> BoundsResult:
    """Compute mc-retiming bounds of a multiple-class graph.

    The input graph is left untouched (maximal retiming runs on copies).
    ``per_vertex_cap`` bounds the lag explored per vertex (see
    :func:`_maximal_retime` for why this is sound and necessary).
    """
    if move_cap is None:
        move_cap = max(100_000, per_vertex_cap * (len(graph.vertices) + 1))
    backward = graph.copy()
    bwd_counts, bwd_total = _maximal_retime(
        backward, "backward", move_cap, per_vertex_cap
    )
    forward = graph.copy()
    fwd_counts, fwd_total = _maximal_retime(
        forward, "forward", move_cap, per_vertex_cap
    )
    bounds: dict[str, tuple[int, int]] = {}
    for vertex in graph.vertices.values():
        if not vertex.movable:
            continue
        bounds[vertex.name] = (
            -fwd_counts.get(vertex.name, 0),
            bwd_counts.get(vertex.name, 0),
        )
    return BoundsResult(
        bounds=bounds,
        backward_graph=backward,
        forward_graph=forward,
        steps_possible=bwd_total + fwd_total,
    )
