"""Reset-value computation for mc-retiming steps (paper Sec. 5.2).

Three layers, matching the paper:

* forward implication — a forward-moved layer's values are the gate
  function applied to the source values (exact ternary evaluation);
* local justification — one gate at a time, choosing as many don't-cares
  as possible (cheap, used for >99 % of steps in the paper);
* global justification — on a local conflict, re-justify over the whole
  cone back to the registers' original positions with BDDs, possibly
  revising sibling registers created by the same chain of moves.

This module owns the gate-level vector helpers and the statistics
record; the cone bookkeeping lives in :mod:`repro.mcretime.relocate`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..logic.functions import eval_table
from ..logic.justify import justification_choices
from ..logic.ternary import T0, T1, TX, meet
from ..netlist.cells import Gate
from ..netlist.signals import const_value, is_const


@dataclass
class JustificationStats:
    """Counters mirroring the paper's Sec. 6 prose claims."""

    #: backward layer moves justified by the one-gate local method
    local_steps: int = 0
    #: backward layer moves that needed a global (cone) justification
    global_steps: int = 0
    #: forward layer moves (pure implication, no search)
    forward_steps: int = 0
    #: unresolvable conflicts (each forces a retiming re-solve)
    unresolvable: int = 0

    @property
    def backward_steps(self) -> int:
        """Total backward layer moves."""
        return self.local_steps + self.global_steps

    @property
    def local_fraction(self) -> float:
        """Fraction of backward justifications done locally (paper: >99 %)."""
        total = self.backward_steps
        return 1.0 if total == 0 else self.local_steps / total

    def merged(self, other: "JustificationStats") -> "JustificationStats":
        """Sum of two stat records."""
        return JustificationStats(
            self.local_steps + other.local_steps,
            self.global_steps + other.global_steps,
            self.forward_steps + other.forward_steps,
            self.unresolvable + other.unresolvable,
        )


def implied_value(gate: Gate, value_of: dict[str, int]) -> int:
    """Forward implication: ternary gate output for per-net values.

    Constant input nets contribute their constant; any net missing from
    *value_of* contributes X.
    """
    vector = []
    for net in gate.inputs:
        if is_const(net):
            vector.append(T1 if const_value(net) else T0)
        else:
            vector.append(value_of.get(net, TX))
    return eval_table(gate.truth_table(), vector)


def justify_pins(gate: Gate, required: int) -> dict[str, int] | None:
    """Per-net input values making *gate* output *required* (binary).

    Honors two circuit-level constraints the plain gate-level search
    doesn't know about: constant input nets cannot be assigned (the
    vector must already agree with them), and pins wired to the same net
    must receive compatible values (they become one register).  Returns
    the first (maximal-don't-care) consistent choice as a net→value map
    over the non-constant inputs, or None.
    """
    if required == TX:
        return {net: TX for net in gate.inputs if not is_const(net)}
    for vector in justification_choices(gate, required):
        values: dict[str, int] = {}
        ok = True
        for net, val in zip(gate.inputs, vector):
            if is_const(net):
                const = T1 if const_value(net) else T0
                if val not in (TX, const):
                    ok = False
                    break
                continue
            try:
                values[net] = meet(values.get(net, TX), val)
            except ValueError:
                ok = False
                break
        if ok:
            return values
    return None
