"""Multiple-class retiming — the paper's contribution.

Public surface:

* :func:`mc_retime` — the full six-step engine (Sec. 5).
* :class:`Classifier` / :class:`RegisterClass` — Def. 1 classification.
* :func:`compute_bounds` — maximal fwd/bwd retiming bounds (Sec. 4.1).
* :func:`apply_sharing_transform` — separation vertices (Sec. 4.2).
* :func:`relocate` — register relocation with reset justification
  (Sec. 5.2).
"""

from .bounds import BoundsError, BoundsResult, compute_bounds
from .classes import Classifier, RegisterClass
from .engine import MCRetimeResult, intern_work_graph, mc_retime
from .relocate import (
    JustificationConflict,
    RelocationError,
    RelocationResult,
    merge_shareable_registers,
    relocate,
)
from .report import RetimeReport, format_table, report_from_result
from .reset import JustificationStats, implied_value, justify_pins
from .sharing import (
    Separation,
    SharingTransformResult,
    apply_sharing_transform,
)

__all__ = [
    "BoundsError",
    "BoundsResult",
    "Classifier",
    "JustificationConflict",
    "JustificationStats",
    "MCRetimeResult",
    "RegisterClass",
    "RelocationError",
    "RelocationResult",
    "RetimeReport",
    "Separation",
    "SharingTransformResult",
    "apply_sharing_transform",
    "compute_bounds",
    "format_table",
    "merge_shareable_registers",
    "implied_value",
    "justify_pins",
    "intern_work_graph",
    "mc_retime",
    "relocate",
    "report_from_result",
]
