"""Synthetic industrial-style design generation (C1..C10 stand-ins)."""

from .designs import DESIGN_NAMES, all_designs, build_design, design_spec
from .generator import ControlSet, DesignSpec, GeneratedDesign, generate

__all__ = [
    "ControlSet",
    "DESIGN_NAMES",
    "DesignSpec",
    "GeneratedDesign",
    "all_designs",
    "build_design",
    "design_spec",
    "generate",
]
