"""Synthetic industrial-style design generation (C1..C10 stand-ins)."""

from .datapath import DATAPATH_NAMES, build_datapath, datapath_spec
from .designs import DESIGN_NAMES, all_designs, build_design, design_spec
from .generator import ControlSet, DesignSpec, GeneratedDesign, generate

__all__ = [
    "ControlSet",
    "DATAPATH_NAMES",
    "DESIGN_NAMES",
    "DesignSpec",
    "GeneratedDesign",
    "all_designs",
    "build_datapath",
    "build_design",
    "datapath_spec",
    "design_spec",
    "generate",
]
