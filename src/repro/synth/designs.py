"""The ten evaluation designs (stand-ins for the paper's C1..C10).

The paper's circuits are proprietary industrial designs; these specs
reproduce each row's *retiming-relevant profile* from Tables 1 and 2:
register count, combinational size, presence of async set/clear and
load enables, register-class count, and logic depth (inferred from the
reported delays).  Absolute LUT/delay values are emergent, not forced;
EXPERIMENTS.md records how closely each row lands.

The EN column's checkmarks did not survive the source scan; we infer
EN for every design except C6 because Table 3 (retiming after EN
decomposition) changes every row *except* C6's — a no-op decomposition
means no EN registers.

``scale`` shrinks a design uniformly (fewer FFs and gates) for quick
runs; class structure and flags are preserved.
"""

from __future__ import annotations

from .generator import DesignSpec, GeneratedDesign, generate

#: name -> (ff, gate budget, classes, has_en, has_async, depth, inputs,
#:          ff_fraction, loop_fraction) — calibrated so the mapped stats
#: land near the paper's Table 1 rows and the retiming head-room near
#: each row's Rdelay (see EXPERIMENTS.md for the measured landing).
_PROFILES: dict[str, tuple[int, int, int, bool, bool, int, int, float, float]] = {
    "C1": (35, 240, 8, True, True, 6, 8, 0.62, 0.85),
    "C2": (12, 215, 3, True, True, 10, 8, 0.50, 0.40),
    "C3": (26, 82, 4, True, False, 9, 8, 0.62, 0.40),
    "C4": (301, 2850, 11, True, False, 36, 16, 0.85, 0.55),
    "C5": (88, 220, 15, True, True, 5, 10, 0.62, 0.90),
    "C6": (1027, 1450, 1, False, True, 14, 16, 0.82, 0.65),
    "C7": (315, 950, 40, True, True, 7, 12, 0.62, 0.95),
    "C8": (79, 290, 7, True, False, 7, 8, 0.62, 0.90),
    "C9": (79, 1300, 6, True, True, 16, 10, 0.62, 0.80),
    "C10": (206, 2640, 5, True, True, 8, 12, 0.75, 0.75),
}

#: Deterministic per-design seeds (fixed forever for reproducibility).
_SEEDS = {name: 1000 + i for i, name in enumerate(_PROFILES)}

DESIGN_NAMES: list[str] = list(_PROFILES)


def design_spec(name: str, scale: float = 1.0) -> DesignSpec:
    """Spec for one of C1..C10, optionally scaled down."""
    if name not in _PROFILES:
        raise KeyError(f"unknown design {name!r}; choose from {DESIGN_NAMES}")
    (ff, gates, classes, has_en, has_async, depth, inputs, frac,
     loop_frac) = _PROFILES[name]
    ff = max(4, round(ff * scale))
    gates = max(30, round(gates * scale))
    classes = max(1, min(classes, max(1, ff // 3)))
    return DesignSpec(
        name=name,
        seed=_SEEDS[name],
        target_ff=ff,
        target_gates=gates,
        n_classes=classes,
        has_enable=has_en,
        has_async=has_async,
        has_sync=False,
        logic_depth=depth,
        n_inputs=inputs,
        ff_fraction=frac,
        loop_fraction=loop_frac,
    )


def build_design(name: str, scale: float = 1.0) -> GeneratedDesign:
    """Generate one of the ten evaluation designs."""
    return generate(design_spec(name, scale))


def all_designs(scale: float = 1.0) -> list[GeneratedDesign]:
    """Generate all ten designs in table order."""
    return [build_design(name, scale) for name in DESIGN_NAMES]
