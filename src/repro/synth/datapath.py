"""Realistic datapath netlists for the pipelining / C-slow family.

The C1..C10 stand-ins (:mod:`repro.synth.designs`) mimic *control*
dominated industrial designs; pipelining and C-slow retiming shine on
*datapath* dominated ones — deep arithmetic between thin register
layers.  This module builds four such designs from the generator's
exact arithmetic primitives (:meth:`_Builder.add_mac`,
:meth:`_Builder.add_butterfly` and the ripple/multiplier helpers):

* ``MAC6`` — two chained 6-bit multiply-accumulate stages; the
  accumulator feedback loop bounds the period, C-slowing splits it;
* ``BFLY8`` — two cascaded 8-bit radix-2 butterfly stages, the
  feed-forward NTT/FFT workhorse;
* ``NTT4`` — a 4-bit butterfly followed by a modular (twiddle)
  multiply of the difference lane, the inner loop of a
  number-theoretic transform;
* ``MODMUL6`` — two chained 6-bit modular multiplies (low product
  plus conditional subtract), Montgomery-ladder style.

Every register class follows the multiple-class model: operand input
registers on the enable-only class, recirculating/output registers on
the resettable class (an accumulator without a reset would recirculate
a power-up X forever).  Controls are pins (``derived_controls=0``) so
the designs exercise the per-thread control threading of C-slow
verification directly.
"""

from __future__ import annotations

from ..netlist import GateFn
from ..netlist.signals import const_net
from .generator import DesignSpec, GeneratedDesign, _Builder

__all__ = [
    "DATAPATH_NAMES",
    "build_datapath",
    "datapath_spec",
]

#: name -> (kind, width, modulus) — modulus only for modular kinds
_PROFILES: dict[str, tuple[str, int, int | None]] = {
    "NTT4": ("ntt", 4, 13),
    "BFLY8": ("butterfly", 8, None),
    "MODMUL6": ("modmul", 6, 53),
    "MAC6": ("mac", 6, None),
}

#: deterministic per-design seeds (fixed forever, like C1..C10's)
_SEEDS = {name: 2000 + i for i, name in enumerate(_PROFILES)}

DATAPATH_NAMES: list[str] = list(_PROFILES)


class _DatapathBuilder(_Builder):
    """The generator builder plus modular-arithmetic composition."""

    def add_modmul(
        self,
        width: int,
        modulus: int,
        a: list[str] | None = None,
        b: list[str] | None = None,
    ) -> list[str]:
        """Registered modular multiply: low product, conditional subtract.

        Computes ``p = (a*b) mod 2^width`` on registered operands, then
        ``p - modulus`` through a ripple add of the two's-complement
        constant; the carry out selects the reduced value (the classic
        single conditional-subtract reduction).  Returns the registered
        result Q nets, LSB first.
        """
        if not 0 < modulus < (1 << width):
            raise ValueError(f"modulus {modulus} out of range for width {width}")
        c = self.circuit
        ctrl_in = self.controls[1 % len(self.controls)]
        ctrl_out = self.controls[0]
        aq = [self._reg(n, ctrl_in).q for n in a or self._pick_nets(width)]
        bq = [self._reg(n, ctrl_in).q for n in b or self._pick_nets(width)]
        p = self._mult_low(aq, bq)
        comp = (1 << width) - modulus
        comp_bits = [const_net(bool((comp >> i) & 1)) for i in range(width)]
        t, cout = self._ripple_add(p, comp_bits)
        outs = []
        for pi, ti in zip(p, t):
            # cout=1 means p >= modulus: take the subtracted value
            r = c.add_gate(GateFn.MUX, [cout, pi, ti]).output
            self.gate_budget -= 1
            outs.append(self._reg(r, ctrl_out).q)
        self.taps.append(outs[-1])
        return outs

    # ------------------------------------------------------------------
    # whole designs

    def build_datapath(self, kind: str, width: int, modulus: int | None):
        a = [f"in{i}" for i in range(width)]
        b = [f"in{width + i}" for i in range(width)]
        if kind == "mac":
            acc = self.add_mac(width, a, b)
            outs = self.add_mac(width, acc, b)
        elif kind == "butterfly":
            s1 = self.add_butterfly(width, a, b)
            outs = self.add_butterfly(width, s1[:width], s1[width:])
        elif kind == "ntt":
            s1 = self.add_butterfly(width, a, b)
            outs = s1[:width] + self.add_modmul(width, modulus, s1[width:], b)
        elif kind == "modmul":
            t = self.add_modmul(width, modulus, a, b)
            outs = self.add_modmul(width, modulus, t, b)
        else:  # pragma: no cover - profile table is the only caller
            raise ValueError(f"unknown datapath kind {kind!r}")
        for q in outs:
            self.circuit.add_output(q)
        return GeneratedDesign(self.circuit, self.spec, self.controls)


def datapath_spec(name: str) -> DesignSpec:
    """Spec for one datapath design (budgets are informational)."""
    if name not in _PROFILES:
        raise KeyError(
            f"unknown datapath design {name!r}; choose from {DATAPATH_NAMES}"
        )
    kind, width, _ = _PROFILES[name]
    return DesignSpec(
        name=name,
        seed=_SEEDS[name],
        target_ff=6 * width,
        target_gates=4 * width * width,
        n_classes=2,
        has_enable=True,
        has_async=True,
        has_sync=False,
        # pin-driven controls: C-slow verification threads them per lane
        derived_controls=0.0,
        logic_depth=2 * width,
        n_inputs=2 * width,
    )


def build_datapath(name: str) -> GeneratedDesign:
    """Generate one datapath design (deterministic)."""
    kind, width, modulus = _PROFILES[name]
    return _DatapathBuilder(datapath_spec(name)).build_datapath(
        kind, width, modulus
    )
