"""Refinement checks for the pipeline subsystem's transforms.

Two checkers on the bit-parallel simulator, both refinement-style
(wherever the reference's output bit is binary, the transformed circuit
must reproduce it exactly; X in the reference exempts the bit):

* :func:`check_pipeline` — **latency-shifted** refinement.  A K-stage
  pipelined-and-retimed circuit must satisfy ``y'(t + K) = y(t)``; the
  checker drives both circuits with the identical coverage-directed
  :class:`~repro.verify.sequential.StimulusPlan` and compares the
  original's cycle-``t`` outputs against the pipelined circuit's
  cycle-``t+K`` outputs.

* :func:`check_cslow` — **thread-interleaving** refinement.  A C-slowed
  circuit interleaves C independent threads, one per global cycle
  (thread ``k`` owns cycles ``t ≡ k (mod C)``).  The reference is the
  *original* circuit simulated with one lane per (variant, thread)
  pair, stepped once per superperiod; the C-slowed circuit runs one
  lane per variant at the full clock rate, fed thread ``k``'s inputs on
  thread ``k``'s cycles.  Output ``j`` of C-slow lane ``m`` at global
  cycle ``i*C + k`` must refine output ``j`` of reference lane
  ``m*C + k`` at superperiod ``i`` — the bit-parallel simulator's lanes
  *are* the threads.

Because :func:`~repro.pipeline.cslow_transform` folds *every* control —
EN, SR and AR alike — into the D path (the engine samples AR at the
clock edge, so the fold is exact), each thread's controls land in that
thread's own slot and the comparison is exact on every cycle: resets,
enables and data are all driven independently per (variant, thread)
pair with no exemption windows.  This is what kills the "broadcast AR"
mutant that keeps AR pins on the replicas — its assertion edge skews
threads ``k >= 1`` by a thread-cycle and the checker sees the wave.

The C-slow reference starts from *power-up X* rather than the
sval/aval initial-state convention: that convention exists for reset
relocation inside the retiming engine, and plain replica registers
cannot encode it in the netlist.  Starting unknown, a reference output
bit becomes binary only once the original's own resets or data writes
establish it — and from then on the C-slowed machine must reproduce it
exactly, so coverage after the warm-up superperiod is unchanged.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Sequence

from .. import obs
from ..kernels.sim import BitSimulator, compile_circuit, unpack_lane
from ..logic.ternary import TX
from ..netlist import Circuit
from .equivalence import CheckResult, clock_exempt_nets
from .sequential import RESET_PREFIXES, StimulusPlan


@dataclass
class PipelineCheckResult(CheckResult):
    """Verdict of the latency-shifted pipeline check."""

    #: latency shift applied to the pipelined circuit's outputs
    shift: int = 0
    #: cycles compared (excluding warm-up and the shift window)
    cycles: int = 0
    #: stimulus lanes simulated
    lanes: int = 0
    #: lane of the first failure, if any
    lane: int | None = None


@dataclass
class CSlowCheckResult(CheckResult):
    """Verdict of the thread-interleaving C-slow check."""

    factor: int = 1
    #: superperiods (thread-cycles) compared per thread
    cycles: int = 0
    #: reference lanes simulated (= variants * factor)
    lanes: int = 0
    #: independent stimulus variants interleaved
    variants: int = 0
    #: (variant, thread) of the first failure, if any
    variant: int | None = None
    thread: int | None = None


def _interface_mismatch(original: Circuit, transformed: Circuit) -> str | None:
    if len(original.outputs) != len(transformed.outputs):
        return "output counts differ"
    known = set(original.inputs)
    extra = [net for net in transformed.inputs if net not in known]
    if extra:
        return (
            "input interface mismatch: transformed-only inputs "
            f"{extra} would be driven to X"
        )
    return None


# --------------------------------------------------------------------- #
# pipelining: latency-shifted refinement


def check_pipeline(
    original: Circuit,
    pipelined: Circuit,
    shift: int,
    cycles: int = 48,
    seed: int = 0,
    lanes: int = 64,
    reset_prefixes: Sequence[str] = RESET_PREFIXES,
) -> PipelineCheckResult:
    """Latency-shifted refinement: ``pipelined(t + shift)`` must refine
    ``original(t)`` under the identical coverage-directed stimulus.

    ``shift=0`` degenerates to the plain sequential refinement
    criterion.  Cycle 0 of the plan is the unchecked warm-up vector;
    comparison covers original cycles ``1..cycles``.
    """
    if shift < 0:
        return PipelineCheckResult(False, f"negative shift {shift}")
    mismatch = _interface_mismatch(original, pipelined)
    if mismatch:
        return PipelineCheckResult(False, mismatch, shift=shift)

    plan = StimulusPlan(
        original, pipelined, cycles + shift, seed, lanes, reset_prefixes
    )
    full = (1 << plan.lanes) - 1
    with obs.span(
        "verify.pipeline", shift=shift, cycles=cycles, lanes=plan.lanes
    ):
        sim_o = BitSimulator(compile_circuit(original), lanes=plan.lanes)
        sim_p = BitSimulator(compile_circuit(pipelined), lanes=plan.lanes)
        outs_o = []
        outs_p = []
        for t in range(cycles + shift + 1):
            words = plan.word_stimulus(t)
            outs_o.append(sim_o.step(words))
            outs_p.append(sim_p.step(words))
        obs.count("verify.checks")
        obs.count("verify.lane_cycles", plan.lanes * cycles)
        for t in range(1, cycles + 1):
            pairs = zip(outs_o[t], outs_p[t + shift])
            for k, ((av, ax), (bv, bx)) in enumerate(pairs):
                bad = ~ax & full & (bx | (av ^ bv))
                if bad:
                    lane = (bad & -bad).bit_length() - 1
                    expected = unpack_lane((av, ax), lane)
                    got = unpack_lane((bv, bx), lane)
                    obs.count("verify.failures")
                    net = original.outputs[k]
                    return PipelineCheckResult(
                        False,
                        f"cycle {t} (+{shift} shift), output #{k} "
                        f"({net!r}): original={expected}, "
                        f"pipelined={got} (lane {lane}: "
                        f"{plan.describe_lane(lane)})",
                        counterexample=(t, k, expected, got),
                        shift=shift,
                        cycles=cycles,
                        lanes=plan.lanes,
                        lane=lane,
                    )
    return PipelineCheckResult(
        True,
        f"latency-{shift} refinement holds over {cycles} cycles x "
        f"{plan.lanes} coverage-directed lanes",
        shift=shift,
        cycles=cycles,
        lanes=plan.lanes,
    )


# --------------------------------------------------------------------- #
# C-slow: thread-interleaving refinement


def _slice_thread(word: int, factor: int, variants: int, k: int) -> int:
    """Compress an ``(variants*factor)``-bit word: bit ``m*factor+k``
    moves to bit ``m`` (thread ``k``'s view, one bit per variant)."""
    out = 0
    for m in range(variants):
        if (word >> (m * factor + k)) & 1:
            out |= 1 << m
    return out


class _CSlowStimulus:
    """Thread-rate stimulus streams for the C-slow check.

    For each superperiod ``i`` (0 = warm-up, resets asserted) every
    input net gets an ``(variants*factor)``-bit word — one lane per
    (variant, thread) pair, so even async resets exercise each thread
    independently.  Variant 0 is the quiet variant: zero data, enables
    low, resets only in warm-up.
    """

    def __init__(
        self,
        original: Circuit,
        cslowed: Circuit,
        factor: int,
        cycles: int,
        seed: int,
        variants: int,
        reset_prefixes: Sequence[str],
    ) -> None:
        self.factor = factor
        self.variants = variants
        self.cycles = cycles
        exempt = clock_exempt_nets(original, cslowed)
        inputs = [n for n in original.inputs if n not in exempt]
        prefixes = tuple(reset_prefixes)

        ar_pins: set[str] = set()
        sr_pins: set[str] = set()
        en_pins: set[str] = set()
        for circuit in (original, cslowed):
            for reg in circuit.registers.values():
                if reg.ar is not None:
                    ar_pins.add(reg.ar)
                if reg.sr is not None:
                    sr_pins.add(reg.sr)
                if reg.en is not None:
                    en_pins.add(reg.en)

        self.reset_like = [
            n for n in inputs
            if n.startswith(prefixes) or n in sr_pins or n in ar_pins
        ]
        reset_set = set(self.reset_like)
        self.en_like = [
            n for n in inputs if n in en_pins and n not in reset_set
        ]
        en_set = set(self.en_like)
        self.data = [
            n for n in inputs if n not in reset_set and n not in en_set
        ]

        R = variants * factor
        full_R = (1 << R) - 1
        quiet_R = (1 << factor) - 1  # variant 0's thread lanes
        rng = random.Random(seed)

        def sparse(bits: int, p_shift: int) -> int:
            word = rng.getrandbits(bits)
            for _ in range(p_shift):
                word &= rng.getrandbits(bits)
            return word

        #: per-thread streams: net -> [word per superperiod 0..cycles]
        self.streams: dict[str, list[int]] = {}
        for net in self.data:
            self.streams[net] = [0] + [
                rng.getrandbits(R) & ~quiet_R for _ in range(cycles)
            ]
        for net in self.en_like:
            # mostly high (p(0) = 1/4) so data flows; variant 0 quiet
            self.streams[net] = [0] + [
                (full_R & ~sparse(R, 1)) & ~quiet_R for _ in range(cycles)
            ]
        for net in self.reset_like:
            self.streams[net] = [full_R] + [
                sparse(R, 3) & ~quiet_R for _ in range(cycles)
            ]

    def reference_words(self, i: int) -> dict[str, tuple[int, int]]:
        """Superperiod *i*'s stimulus for the reference run (lanes =
        (variant, thread) pairs)."""
        return {net: (stream[i], 0) for net, stream in self.streams.items()}

    def cslow_words(self, i: int, k: int) -> dict[str, tuple[int, int]]:
        """Global cycle ``i*factor + k``'s stimulus for the C-slowed run
        (lanes = variants; thread ``k``'s slice of the superperiod)."""
        return {
            net: (_slice_thread(stream[i], self.factor, self.variants, k), 0)
            for net, stream in self.streams.items()
        }


def check_cslow(
    original: Circuit,
    cslowed: Circuit,
    factor: int,
    cycles: int = 32,
    seed: int = 0,
    variants: int | None = None,
    reset_prefixes: Sequence[str] = RESET_PREFIXES,
) -> CSlowCheckResult:
    """Thread-interleaving refinement check of a C-slowed circuit.

    Simulates ``variants`` independent copies of the original circuit
    at thread rate (one bit-parallel lane per (variant, thread) pair)
    and the C-slowed circuit at clock rate (one lane per variant), and
    requires every binary reference output bit to be reproduced in the
    matching thread slot on every compared cycle.  Superperiod 0 is the
    reset warm-up; all controls (including async resets, which the
    transform folds into the D path) are exercised per thread.
    """
    if factor < 1:
        return CSlowCheckResult(False, f"factor must be >= 1, got {factor}")
    mismatch = _interface_mismatch(original, cslowed)
    if mismatch:
        return CSlowCheckResult(False, mismatch, factor=factor)
    if variants is None:
        variants = max(2, min(16, 64 // factor))

    stim = _CSlowStimulus(
        original, cslowed, factor, cycles, seed, variants, reset_prefixes
    )
    M = variants
    full_M = (1 << M) - 1
    with obs.span(
        "verify.cslow",
        factor=factor,
        cycles=cycles,
        variants=variants,
        lanes=M * factor,
    ):
        # power-up-X reference: the sval/aval initial-state convention
        # serves reset *relocation*; C-slow replicas cannot encode it
        # (they are plain), so the refinement statement starts both
        # machines unknown and compares bits once the original's own
        # resets / data writes establish them — which the folded
        # per-thread controls reproduce exactly.
        x_state = {name: TX for name in original.registers}
        sim_ref = BitSimulator(
            compile_circuit(original), lanes=M * factor, state=x_state
        )
        sim_cs = BitSimulator(compile_circuit(cslowed), lanes=M)
        ref_outs = [
            sim_ref.step(stim.reference_words(i)) for i in range(cycles + 1)
        ]
        cs_outs: list[list[tuple[int, int]]] = []
        for i in range(cycles + 1):
            for k in range(factor):
                cs_outs.append(sim_cs.step(stim.cslow_words(i, k)))
        obs.count("verify.checks")
        obs.count("verify.lane_cycles", M * factor * cycles)
        for i in range(1, cycles + 1):
            for k in range(factor):
                cs_row = cs_outs[i * factor + k]
                for j, (av, ax) in enumerate(ref_outs[i]):
                    bv, bx = cs_row[j]
                    ref_v = _slice_thread(av, factor, M, k)
                    ref_x = _slice_thread(ax, factor, M, k)
                    bad = ~ref_x & full_M & (bx | (ref_v ^ bv))
                    if bad:
                        m = (bad & -bad).bit_length() - 1
                        lane = m * factor + k
                        expected = unpack_lane(ref_outs[i][j], lane)
                        got = unpack_lane((bv, bx), m)
                        obs.count("verify.failures")
                        net = original.outputs[j]
                        return CSlowCheckResult(
                            False,
                            f"thread-cycle {i}, thread {k}, variant {m}, "
                            f"output #{j} ({net!r}): original={expected}, "
                            f"C-slowed={got} (global cycle "
                            f"{i * factor + k})",
                            counterexample=(i, j, expected, got),
                            factor=factor,
                            cycles=cycles,
                            lanes=M * factor,
                            variants=variants,
                            variant=m,
                            thread=k,
                        )
    return CSlowCheckResult(
        True,
        f"thread-interleaving refinement holds over {cycles} "
        f"superperiods x {factor} threads x {variants} variants",
        factor=factor,
        cycles=cycles,
        lanes=M * factor,
        variants=variants,
    )
