"""Differential fuzzing of the retiming pipeline.

Two modes, both deterministic in the seed:

* **pipeline fuzzing** (:func:`fuzz_one` / :func:`fuzz_run`) — generate
  a random multi-class design, push it through the production pipeline
  (arch prepare, LUT mapping, :func:`~repro.mcretime.mc_retime`), and
  refinement-check every result with the coverage-directed sequential
  checker.  Any failure comes back with a shrunk scalar counterexample.

* **mutation fuzzing** (:func:`inject_mutation` / ``fuzz_run(...,
  mutate=True)``) — take a *correct* retiming result and corrupt it
  with a known-bad register move (flipped reset value, deleted /
  inserted register, dropped or inverted enable), then demand the
  checker catch it.  A mutation that happens to be behaviourally benign
  (for example deleting a dead register) is first filtered out by the
  scalar-oracle engine over the identical stimulus plan, so the kill
  rate is an honest differential statement: every oracle-confirmed bad
  mutant must be killed by the bit-parallel engine.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, field
from typing import Callable

from .. import obs
from ..netlist import Circuit, GateFn, check_circuit
from ..logic.ternary import T0, T1, TX
from .sequential import SequentialCheckResult, check_sequential

#: mutation kinds, in the order :func:`inject_mutation` tries them
MUTATION_KINDS = (
    "flip_reset",
    "drop_register",
    "extra_register",
    "drop_enable",
    "invert_enable",
)


def random_spec(seed: int):
    """A random multi-class :class:`~repro.synth.DesignSpec` for *seed*.

    Small enough to fuzz in bulk, broad enough to hit every register
    class combination (EN / SS-SC / AS-AC, derived controls, multiple
    classes).
    """
    from ..synth import DesignSpec

    rng = random.Random(seed * 0x9E3779B1 + 1)
    return DesignSpec(
        name=f"fuzz{seed}",
        seed=rng.randrange(1 << 30),
        target_ff=rng.randint(8, 26),
        target_gates=rng.randint(50, 200),
        n_classes=rng.randint(1, 5),
        has_enable=rng.random() < 0.8,
        has_async=rng.random() < 0.8,
        has_sync=rng.random() < 0.4,
        derived_controls=rng.choice((0.0, 0.3, 0.6)),
        logic_depth=rng.randint(3, 9),
        n_inputs=rng.randint(4, 10),
    )


@dataclass
class FuzzCase:
    """One fuzzed pipeline run."""

    seed: int
    ok: bool
    #: checker verdict (None when the pipeline itself raised)
    check: SequentialCheckResult | None = None
    #: pipeline exception, formatted (pipeline bugs count as failures)
    error: str | None = None
    #: mutation description when running in mutation mode
    mutation: str | None = None
    #: mutation-mode only: scalar oracle confirmed the mutant as bad
    confirmed: bool = False
    #: mutation-mode only: the bit-parallel checker caught it
    killed: bool = False


@dataclass
class FuzzReport:
    """Aggregate outcome of a fuzzing run."""

    rounds: int = 0
    failures: list[FuzzCase] = field(default_factory=list)
    #: mutation mode: oracle-confirmed bad mutants / killed by checker
    confirmed: int = 0
    killed: int = 0
    #: mutation mode: mutants the oracle found behaviourally benign
    benign: int = 0
    elapsed: float = 0.0

    @property
    def ok(self) -> bool:
        return not self.failures

    @property
    def kill_rate(self) -> float:
        """Killed / confirmed-bad; 1.0 when nothing was confirmed."""
        if not self.confirmed:
            return 1.0
        return self.killed / self.confirmed

    def summary(self) -> str:
        parts = [f"{self.rounds} rounds", f"{len(self.failures)} failures"]
        if self.confirmed or self.benign:
            parts.append(
                f"{self.killed}/{self.confirmed} mutants killed "
                f"({self.benign} benign)"
            )
        parts.append(f"{self.elapsed:.1f}s")
        return ", ".join(parts)


def _pipeline(seed: int, objective: str):
    """generate -> arch prepare -> map -> mc_retime; returns the mapped
    original and the retimed circuit."""
    from ..mcretime import mc_retime
    from ..synth import generate
    from ..techmap import XC4000E_ARCH, map_luts
    from ..timing import XC4000E_DELAY

    design = generate(random_spec(seed))
    work = design.circuit.clone()
    XC4000E_ARCH.prepare(work)
    mapped = map_luts(work).circuit
    result = mc_retime(mapped, delay_model=XC4000E_DELAY, objective=objective)
    check_circuit(result.circuit)
    return mapped, result.circuit


def fuzz_one(
    seed: int,
    cycles: int = 48,
    engine: str = "bits",
) -> FuzzCase:
    """Run one random design through the full pipeline and check it."""
    objective = "minperiod" if seed % 3 == 0 else "minarea"
    try:
        mapped, retimed = _pipeline(seed, objective)
        check = check_sequential(
            mapped, retimed, cycles=cycles, seed=seed, engine=engine
        )
        return FuzzCase(seed, ok=check.equivalent, check=check)
    except Exception as exc:  # pipeline bug — report, don't crash the run
        return FuzzCase(seed, ok=False, error=f"{type(exc).__name__}: {exc}")


# --------------------------------------------------------------------- #
# mutation mode


def inject_mutation(
    circuit: Circuit, seed: int
) -> tuple[Circuit, str] | None:
    """Corrupt *circuit* with one known-bad register move.

    Returns ``(mutant, description)``, or None when the circuit offers
    no mutation site (no registers).  The mutant is a fresh clone and
    is structurally valid (:func:`check_circuit` passes) — dropping a
    register on a feedback path would create a combinational cycle, so
    candidates like that are discarded and the next kind is tried.  The
    input circuit is never modified.  Note "known-bad" means
    *structurally* wrong — a valid mutation can still be behaviourally
    benign (dead register, enable that never gates anything); callers
    filter those with the scalar oracle.
    """
    rng = random.Random(seed * 0x51ED2701 + 3)
    regs = sorted(circuit.registers)
    if not regs:
        return None

    def attempt(kind: str) -> tuple[Circuit, str] | None:
        mutant = circuit.clone()
        reg = mutant.registers[rng.choice(regs)]
        if kind == "flip_reset":
            if reg.sval in (T0, T1):
                reg.sval = T1 if reg.sval == T0 else T0
                return mutant, f"flip_reset: {reg.name} sval"
            if reg.aval in (T0, T1):
                reg.aval = T1 if reg.aval == T0 else T0
                return mutant, f"flip_reset: {reg.name} aval"
        elif kind == "drop_register":
            mutant.remove_register(reg.name)
            mutant.replace_net(reg.q, reg.d)
            return mutant, f"drop_register: {reg.name}"
        elif kind == "extra_register":
            gates = sorted(mutant.gates)
            if not gates:
                return None
            gate = mutant.gates[rng.choice(gates)]
            net = gate.output
            delayed = mutant.new_net("mut_q")
            mutant.replace_net(net, delayed)
            mutant.add_register(d=net, q=delayed, clk=reg.clk, aval=T0)
            return mutant, f"extra_register: after {net}"
        elif kind == "drop_enable":
            if reg.has_enable:
                reg.en = None
                return mutant, f"drop_enable: {reg.name}"
        elif kind == "invert_enable":
            if reg.has_enable:
                inv = mutant.add_gate(
                    GateFn.NOT, [reg.en], mutant.new_net("mut_nen")
                )
                reg.en = inv.output
                return mutant, f"invert_enable: {reg.name}"
        return None

    for kind in rng.sample(MUTATION_KINDS, len(MUTATION_KINDS)):
        injected = attempt(kind)
        if injected is None:
            continue
        try:
            check_circuit(injected[0])
        except Exception:
            continue  # e.g. dropping a feedback register: comb. cycle
        return injected
    # fall back to forcing a reset value onto a reset-free register
    mutant = circuit.clone()
    reg = mutant.registers[rng.choice(regs)]
    if reg.sval == TX and reg.aval == TX:
        reg.aval = T1
        reg.ar = reg.clk  # tie async reset to the clock net: always on
        return mutant, f"force_reset: {reg.name}"
    return None


def mutate_one(
    seed: int,
    cycles: int = 48,
) -> FuzzCase:
    """One mutation round: retime correctly, corrupt the result, demand
    the bit-parallel checker kill every oracle-confirmed bad mutant."""
    objective = "minperiod" if seed % 3 == 0 else "minarea"
    try:
        mapped, retimed = _pipeline(seed, objective)
        injected = inject_mutation(retimed, seed)
        if injected is None:
            return FuzzCase(seed, ok=True, mutation="no mutation site")
        mutant, description = injected
        check_circuit(mutant)
        oracle = check_sequential(
            mapped, mutant, cycles=cycles, seed=seed,
            engine="scalar", shrink=False,
        )
        if oracle.equivalent:
            return FuzzCase(
                seed, ok=True, mutation=f"{description} (benign)"
            )
        check = check_sequential(
            mapped, mutant, cycles=cycles, seed=seed, engine="bits"
        )
        killed = not check.equivalent
        return FuzzCase(
            seed,
            ok=killed,
            check=check,
            mutation=description,
            confirmed=True,
            killed=killed,
        )
    except Exception as exc:
        return FuzzCase(seed, ok=False, error=f"{type(exc).__name__}: {exc}")


def fuzz_run(
    rounds: int = 20,
    seed: int = 0,
    cycles: int = 48,
    mutate: bool = False,
    time_budget: float | None = None,
    on_case: Callable[[FuzzCase], None] | None = None,
) -> FuzzReport:
    """Fuzz for *rounds* rounds (or until *time_budget* seconds elapse,
    whichever comes first).  ``mutate=True`` switches to mutation mode.
    """
    report = FuzzReport()
    start = time.monotonic()
    with obs.span(
        "verify.fuzz", rounds=rounds, mutate=mutate, seed=seed
    ):
        for i in range(rounds):
            if (
                time_budget is not None
                and report.rounds > 0
                and time.monotonic() - start > time_budget
            ):
                break
            case = (
                mutate_one(seed + i, cycles=cycles)
                if mutate
                else fuzz_one(seed + i, cycles=cycles)
            )
            report.rounds += 1
            obs.count("verify.fuzz_rounds")
            if case.confirmed:
                report.confirmed += 1
                report.killed += case.killed
            elif mutate and case.ok and case.error is None:
                report.benign += 1
            if not case.ok:
                report.failures.append(case)
                obs.count("verify.fuzz_failures")
            if on_case is not None:
                on_case(case)
    report.elapsed = time.monotonic() - start
    return report
