"""Equivalence checking for transformed circuits.

Three layers, cheapest first:

* :func:`check_combinational` / :func:`check_refinement` — scalar
  BDD/simulation checks used by unit tests and the paper experiments.
* :func:`check_sequential` — the production gate: coverage-directed
  stimulus on the bit-parallel kernel, with counterexample shrinking.
* :func:`fuzz_run` — differential pipeline fuzzing and mutation
  (fault-injection) fuzzing of the checker itself.
"""

from .equivalence import (
    CheckResult,
    check_combinational,
    check_refinement,
    clock_exempt_nets,
)
from .fuzz import (
    MUTATION_KINDS,
    FuzzCase,
    FuzzReport,
    fuzz_one,
    fuzz_run,
    inject_mutation,
    mutate_one,
    random_spec,
)
from .pipeline import (
    CSlowCheckResult,
    PipelineCheckResult,
    check_cslow,
    check_pipeline,
)
from .sequential import (
    RESET_PREFIXES,
    SequentialCheckResult,
    StimulusPlan,
    VerificationError,
    check_sequential,
    replay,
    shrink_counterexample,
)

__all__ = [
    "CSlowCheckResult",
    "CheckResult",
    "FuzzCase",
    "FuzzReport",
    "MUTATION_KINDS",
    "PipelineCheckResult",
    "RESET_PREFIXES",
    "SequentialCheckResult",
    "StimulusPlan",
    "VerificationError",
    "check_combinational",
    "check_cslow",
    "check_pipeline",
    "check_refinement",
    "check_sequential",
    "clock_exempt_nets",
    "fuzz_one",
    "fuzz_run",
    "inject_mutation",
    "mutate_one",
    "random_spec",
    "replay",
    "shrink_counterexample",
]
