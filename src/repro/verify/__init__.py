"""Equivalence checking for transformed circuits."""

from .equivalence import CheckResult, check_combinational, check_refinement

__all__ = ["CheckResult", "check_combinational", "check_refinement"]
