"""Equivalence checking for retimed (and remapped) circuits.

Two complementary checkers:

* :func:`check_combinational` — exact BDD miter over the shared cut
  (primary inputs + register outputs).  Right tool for transformations
  that never move registers: optimisation passes, technology mapping,
  format round-trips.  Register *positions* must correspond by Q net.

* :func:`check_refinement` — cycle-accurate simulation from the reset
  state.  Right tool for retiming: register positions change, so only
  the I/O behaviour can be compared.  Because justification may refine
  don't-cares (pick binary values where the original state was X), the
  pass criterion is *refinement*: whenever the original circuit's
  output is binary, the transformed circuit must produce exactly that
  value.  Randomised stimulus with a deterministic seed; reset-style
  inputs (configurable prefix match) are asserted for one warm-up cycle
  then held low.

Both return a :class:`CheckResult` with a counterexample when they
fail, and both are what the internal test-suite uses to validate every
engine change.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Sequence

from ..bdd import BDD
from ..logic.netfn import net_functions
from ..logic.simulate import SequentialSimulator
from ..logic.ternary import T0, T1, TX
from ..netlist import Circuit


@dataclass
class CheckResult:
    """Outcome of an equivalence check."""

    equivalent: bool
    #: human-readable reason / counterexample description
    reason: str = ""
    #: failing (cycle, output index, expected, got) for refinement runs
    counterexample: tuple | None = None

    def __bool__(self) -> bool:  # pragma: no cover - convenience
        return self.equivalent


def check_combinational(
    original: Circuit, transformed: Circuit
) -> CheckResult:
    """Exact BDD miter between two circuits with matching interfaces.

    Outputs are compared positionally; the cut variables are the shared
    primary inputs and register Q nets, which must agree by name (true
    for optimisation/mapping passes, which keep net names for register
    pins and outputs).
    """
    if len(original.outputs) != len(transformed.outputs):
        return CheckResult(False, "output counts differ")
    bdd = BDD()
    fns_a = net_functions(original, list(original.outputs), bdd)
    fns_b = net_functions(transformed, list(transformed.outputs), bdd)
    for index, (net_a, net_b) in enumerate(
        zip(original.outputs, transformed.outputs)
    ):
        fa = fns_a[net_a]
        fb = fns_b[net_b]
        if fa != fb:
            miter = bdd.xor(fa, fb)
            witness = bdd.sat_one(miter)
            names = bdd.var_names()
            assignment = {
                names[level]: int(value)
                for level, value in (witness or {}).items()
            }
            return CheckResult(
                False,
                f"output #{index} ({net_a!r} vs {net_b!r}) differs",
                counterexample=(index, assignment),
            )
    return CheckResult(True)


def clock_exempt_nets(*circuits: Circuit) -> set[str]:
    """Input nets stimulus must never toggle: the declared register
    clock nets of every given circuit (any name, including per-class
    clocks), with the conventional ``"clk"`` kept as a fallback for
    circuits whose clock reaches no register (e.g. fully combinational
    intermediates)."""
    exempt = {"clk"}
    for circuit in circuits:
        exempt.update(circuit.clock_nets())
    return exempt


def _reset_vector(
    circuit: Circuit,
    reset_prefixes: Sequence[str],
    exempt: set[str],
) -> dict:
    vec = {}
    for net in circuit.inputs:
        if net in exempt:
            continue
        vec[net] = T1 if net.startswith(tuple(reset_prefixes)) else T0
    return vec


def check_refinement(
    original: Circuit,
    transformed: Circuit,
    cycles: int = 64,
    seed: int = 0,
    reset_prefixes: Sequence[str] = ("rst", "rs", "srst"),
) -> CheckResult:
    """Cycle-accurate refinement check from the reset state.

    Both circuits start from their declared reset state with
    unconstrained registers left at X, then take one warm-up cycle with
    every reset-style input asserted and run the same random binary
    stimulus.  Fails on the first cycle where an original-binary output
    bit is not reproduced.

    Keeping X as X (instead of resolving it arbitrarily) matters for
    soundness: a register without any reset has *no* defined initial
    value, and reset-state justification is free to pick concrete
    don't-cares in the transformed circuit; outputs that depend on such
    registers are X in the original and rightly exempt until real data
    flushes them.

    The transformed circuit's inputs must be a subset of the original's:
    a transformed-only input would silently be driven to X, turning a
    mere interface drift into spurious refinement failures, so it is
    reported as an explicit mismatch instead.  Each simulator receives a
    vector built over its *own* inputs (original-only inputs are simply
    unused on the transformed side).
    """
    if len(original.outputs) != len(transformed.outputs):
        return CheckResult(False, "output counts differ")
    known = set(original.inputs)
    extra = [net for net in transformed.inputs if net not in known]
    if extra:
        return CheckResult(
            False,
            "input interface mismatch: transformed-only inputs "
            f"{extra} would be driven to X",
        )
    exempt = clock_exempt_nets(original, transformed)
    t_inputs = set(transformed.inputs)
    rng = random.Random(seed)
    sims = [SequentialSimulator(c) for c in (original, transformed)]
    warmup = _reset_vector(original, reset_prefixes, exempt)
    sims[0].step(warmup)
    sims[1].step({n: v for n, v in warmup.items() if n in t_inputs})
    for cycle in range(cycles):
        vec = {}
        for net in original.inputs:
            if net in exempt:
                continue
            if net.startswith(tuple(reset_prefixes)):
                vec[net] = T0
            else:
                vec[net] = T1 if rng.random() < 0.5 else T0
        tvec = {n: v for n, v in vec.items() if n in t_inputs}
        outs = [sims[0].step(vec), sims[1].step(tvec)]
        left = [outs[0][n] for n in original.outputs]
        right = [outs[1][n] for n in transformed.outputs]
        for index, (a, b) in enumerate(zip(left, right)):
            if a != TX and a != b:
                return CheckResult(
                    False,
                    f"cycle {cycle}, output #{index}: original={a}, "
                    f"transformed={b}",
                    counterexample=(cycle, index, a, b),
                )
    return CheckResult(True)
