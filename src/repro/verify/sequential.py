"""Bit-parallel sequential refinement checking with directed stimulus.

:func:`check_sequential` is the production version of
:func:`~repro.verify.equivalence.check_refinement`: same refinement
criterion (wherever the original circuit's output is binary, the
transformed circuit must reproduce it exactly), but

* it runs on the bit-parallel kernel (:mod:`repro.kernels.sim`), so a
  64-lane check costs roughly one scalar simulation instead of 64;
* the stimulus is **coverage-directed** instead of uniform-random: the
  registers' EN / sync-reset / async-reset control pins get dedicated
  pulse lanes (uniform stimulus rarely exercises the multi-class
  semantics the paper is about), resets are re-asserted mid-run, and
  data inputs get quiet / all-ones / walking-ones lanes, with the
  remaining lanes randomised from the seed;
* failures are **shrunk** into a small scalar counterexample — first
  minimising the cycle count, then freeing asserted inputs toward 0 —
  and re-confirmed on the scalar oracle before being reported.

Lane 0 of the plan is the quiet lane, so a deterministic circuit pair
is always exercised on the all-zero sequence; the warm-up vector
(cycle 0, outputs unchecked, reset-style inputs asserted) mirrors the
scalar checker.

``engine="scalar"`` runs the identical lane plan through the scalar
:class:`~repro.logic.simulate.SequentialSimulator` — the oracle mode the
differential tests and the mutation fuzzer use to pin the kernel's
verdicts bit-for-bit.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Sequence

from .. import obs
from ..kernels.sim import BitSimulator, compile_circuit, unpack_lane
from ..logic.simulate import SequentialSimulator
from ..logic.ternary import T0, T1, TX
from ..netlist import Circuit
from .equivalence import CheckResult, clock_exempt_nets

#: default reset-style input prefixes (same as check_refinement)
RESET_PREFIXES = ("rst", "rs", "srst")

#: replay budget for counterexample shrinking
MAX_SHRINK_CHECKS = 600


class VerificationError(RuntimeError):
    """A sequential equivalence gate failed (the transform is unsound).

    Raised by callers that *gate* on verification — flows, the CLI, the
    batch service — rather than inspect the verdict.  Carries the full
    :class:`SequentialCheckResult` (counterexample included) as
    ``check``.  Deliberately not retryable: the checker is
    deterministic in its seed, so a second run cannot pass.
    """

    def __init__(self, check: "SequentialCheckResult") -> None:
        super().__init__(f"sequential verification failed: {check.reason}")
        self.check = check


@dataclass
class SequentialCheckResult(CheckResult):
    """A :class:`CheckResult` plus the sequential-run evidence."""

    #: scalar counterexample stimulus (cycle 0 is the unchecked warm-up
    #: vector); replaying it with :func:`replay` reproduces the failure
    stimulus: list[dict[str, int]] | None = None
    #: lane of the bit-parallel run that first failed
    lane: int | None = None
    #: cycles compared (excluding the warm-up vector)
    cycles: int = 0
    #: stimulus lanes simulated
    lanes: int = 0


class StimulusPlan:
    """Deterministic coverage-directed lane plan for a circuit pair.

    The plan is a pure function of ``(original, transformed, cycles,
    seed, lanes, reset_prefixes)``; the lane budget grows automatically
    when the dedicated lanes alone exceed the request.
    """

    def __init__(
        self,
        original: Circuit,
        transformed: Circuit,
        cycles: int,
        seed: int,
        lanes: int,
        reset_prefixes: Sequence[str] = RESET_PREFIXES,
    ) -> None:
        self.cycles = cycles
        exempt = clock_exempt_nets(original, transformed)
        inputs = [n for n in original.inputs if n not in exempt]
        prefixes = tuple(reset_prefixes)

        en_pins: set[str] = set()
        reset_pins: set[str] = set()
        for circuit in (original, transformed):
            for reg in circuit.registers.values():
                if reg.en is not None:
                    en_pins.add(reg.en)
                for net in (reg.sr, reg.ar):
                    if net is not None:
                        reset_pins.add(net)

        in_set = set(inputs)
        self.inputs = inputs
        #: reset-style nets: prefix-matched inputs plus SR/AR pin inputs
        self.reset_nets = [
            n for n in inputs
            if n.startswith(prefixes) or n in reset_pins
        ]
        reset_set = set(self.reset_nets)
        #: enable-style nets: EN pin inputs that are not also resets
        self.enable_nets = [
            n for n in inputs if n in en_pins and n not in reset_set
        ]
        enable_set = set(self.enable_nets)
        #: plain data inputs
        self.data_nets = [
            n for n in inputs if n not in reset_set and n not in enable_set
        ]
        #: control nets that get dedicated pulse lanes
        self.control_nets = [
            n for n in inputs if n in en_pins or n in reset_pins
        ]

        self._lane_desc: list[str] = ["quiet", "all-ones data"]
        self._ctrl_base = 2
        for net in self.control_nets:
            self._lane_desc.append(f"pulse {net} (fast)")
            self._lane_desc.append(f"pulse {net} (slow)")
        self._reassert_base = len(self._lane_desc)
        self._lane_desc.append("reset reassert (1 cycle)")
        self._lane_desc.append("reset reassert (held)")
        self._walk_base = len(self._lane_desc)
        self._walk_nets = self.data_nets[:16]
        for net in self._walk_nets:
            self._lane_desc.append(f"walking-one {net}")
        dedicated = len(self._lane_desc)
        self.lanes = max(lanes, dedicated + 8)
        self._n_random = self.lanes - dedicated
        self._rand_base = dedicated

        # materialise the whole run up front: per cycle, net -> v word
        # (all stimulus is binary, so the x word is always 0); cycle 0
        # is the warm-up vector
        rng = random.Random(seed)
        mid = max(cycles // 2, 1)
        self.words: list[dict[str, int]] = []
        warm = {}
        for net in inputs:
            warm[net] = self._all() if net in reset_set else 0
        self.words.append(warm)
        for cycle in range(cycles):
            vec: dict[str, int] = {}
            for i, net in enumerate(self.data_nets):
                vec[net] = self._data_word(i, net, cycle, rng)
            for net in self.enable_nets:
                vec[net] = self._enable_word(net, cycle, rng)
            for net in self.reset_nets:
                vec[net] = self._reset_word(net, cycle, mid, rng)
            self.words.append(vec)

    def _all(self) -> int:
        return (1 << self.lanes) - 1

    def _ctrl_lanes(self, net: str) -> tuple[int, int] | None:
        try:
            j = self.control_nets.index(net)
        except ValueError:
            return None
        return self._ctrl_base + 2 * j, self._ctrl_base + 2 * j + 1

    def _pulse_bits(self, net: str, cycle: int) -> int:
        """This control net's own fast/slow pulse lanes."""
        pair = self._ctrl_lanes(net)
        if pair is None:
            return 0
        fast, slow = pair
        word = 0
        if cycle % 2 == 1:
            word |= 1 << fast
        if (cycle // 4) % 2 == 1:
            word |= 1 << slow
        return word

    def _rand_bits(self, rng: random.Random, p_shift: int = 0) -> int:
        """Random-lane block; each extra *p_shift* halves the 1-density."""
        word = rng.getrandbits(self._n_random)
        for _ in range(p_shift):
            word &= rng.getrandbits(self._n_random)
        return word << self._rand_base

    def _data_word(
        self, index: int, net: str, cycle: int, rng: random.Random
    ) -> int:
        word = 1 << 1  # all-ones lane
        # alternating fill keeps data moving through the control,
        # reassert and walking lanes without drowning the pulses
        fill = (cycle + index) & 1
        if fill:
            for j in range(len(self.control_nets)):
                word |= 0b11 << (self._ctrl_base + 2 * j)
            word |= 0b11 << self._reassert_base
        if net in self._walk_nets:
            word |= 1 << (self._walk_base + self._walk_nets.index(net))
        return word | self._rand_bits(rng)

    def _enable_word(self, net: str, cycle: int, rng: random.Random) -> int:
        # enables are held high outside their own pulse lanes so data
        # actually flows; the quiet lane keeps them low
        word = 1 << 1
        for j, other in enumerate(self.control_nets):
            if other != net:
                word |= 0b11 << (self._ctrl_base + 2 * j)
        word |= 0b11 << self._reassert_base
        for k in range(len(self._walk_nets)):
            word |= 1 << (self._walk_base + k)
        return word | self._pulse_bits(net, cycle) | self._rand_bits(rng)

    def _reset_word(
        self, net: str, cycle: int, mid: int, rng: random.Random
    ) -> int:
        word = self._pulse_bits(net, cycle)
        if cycle == mid:
            word |= 0b11 << self._reassert_base
        elif mid < cycle <= mid + 2:
            word |= 0b10 << self._reassert_base
        # sparse random reset assertions (p = 1/16) in the random block
        return word | self._rand_bits(rng, p_shift=3)

    # -- extraction -----------------------------------------------------

    def word_stimulus(self, cycle: int) -> dict[str, tuple[int, int]]:
        """Cycle *cycle*'s stimulus as ``net -> (v, x)`` words."""
        return {net: (word, 0) for net, word in self.words[cycle].items()}

    def lane_vector(self, cycle: int, lane: int) -> dict[str, int]:
        """One lane of one cycle as a scalar stimulus dict."""
        return {
            net: T1 if (word >> lane) & 1 else T0
            for net, word in self.words[cycle].items()
        }

    def describe_lane(self, lane: int) -> str:
        if lane < len(self._lane_desc):
            return self._lane_desc[lane]
        return f"random lane {lane - self._rand_base}"


# --------------------------------------------------------------------- #
# scalar replay + shrinking


def replay(
    original: Circuit,
    transformed: Circuit,
    stimulus: Sequence[dict[str, int]],
) -> tuple[int, int, int, int] | None:
    """Scalar-replay *stimulus* on both circuits from their default
    reset states; returns the first refinement violation as ``(cycle,
    output index, expected, got)`` or None.

    Cycle 0 is treated as the warm-up vector: it is applied but its
    outputs are not compared, matching :func:`check_sequential`.
    """
    o_in = set(original.inputs)
    t_in = set(transformed.inputs)
    sim_o = SequentialSimulator(original)
    sim_t = SequentialSimulator(transformed)
    for cycle, vec in enumerate(stimulus):
        a = sim_o.step({n: v for n, v in vec.items() if n in o_in})
        b = sim_t.step({n: v for n, v in vec.items() if n in t_in})
        if cycle == 0:
            continue
        for k, (na, nb) in enumerate(
            zip(original.outputs, transformed.outputs)
        ):
            va = a[na]
            vb = b[nb]
            if va != TX and va != vb:
                return (cycle, k, va, vb)
    return None


def shrink_counterexample(
    original: Circuit,
    transformed: Circuit,
    stimulus: list[dict[str, int]],
    max_checks: int = MAX_SHRINK_CHECKS,
) -> tuple[list[dict[str, int]], tuple[int, int, int, int]] | None:
    """Minimise a failing stimulus: fewer cycles first, then freeing
    asserted inputs toward 0.  Returns ``(stimulus, failure)`` with the
    replay-confirmed failure tuple, or None if the stimulus does not
    actually fail under scalar replay."""
    budget = max_checks
    fail = replay(original, transformed, stimulus)
    if fail is None:
        return None
    stimulus = [dict(v) for v in stimulus[: fail[0] + 1]]

    # pass 1: delete whole cycles (never the warm-up vector)
    changed = True
    while changed and budget > 0:
        changed = False
        for i in range(len(stimulus) - 1, 0, -1):
            if budget <= 0:
                break
            candidate = stimulus[:i] + stimulus[i + 1 :]
            if len(candidate) < 2:
                continue
            budget -= 1
            f = replay(original, transformed, candidate)
            if f is not None:
                stimulus = [dict(v) for v in candidate[: f[0] + 1]]
                fail = f
                changed = True

    # pass 2: free asserted inputs toward 0
    for vec in stimulus:
        for net in sorted(vec):
            if vec[net] != T1 or budget <= 0:
                continue
            vec[net] = T0
            budget -= 1
            f = replay(original, transformed, stimulus)
            if f is None:
                vec[net] = T1
            else:
                fail = f
    final = replay(original, transformed, stimulus)
    if final is None:  # pragma: no cover - shrinker invariant
        return None
    # zeroing can move the failure earlier; drop now-dangling cycles
    # (a failure at cycle c depends only on the stimulus prefix 0..c)
    return stimulus[: final[0] + 1], final


# --------------------------------------------------------------------- #
# the checker


def check_sequential(
    original: Circuit,
    transformed: Circuit,
    cycles: int = 64,
    seed: int = 0,
    lanes: int = 64,
    reset_prefixes: Sequence[str] = RESET_PREFIXES,
    shrink: bool = True,
    engine: str = "bits",
) -> SequentialCheckResult:
    """Coverage-directed bit-parallel refinement check.

    Pass criterion and interface rules match
    :func:`~repro.verify.equivalence.check_refinement`; see the module
    docstring for the stimulus model.  With ``shrink=True`` a failure
    comes back with a minimised scalar ``stimulus`` that
    :func:`replay` reproduces.
    """
    if engine not in ("bits", "scalar"):
        raise ValueError(f"unknown engine {engine!r}")
    if len(original.outputs) != len(transformed.outputs):
        return SequentialCheckResult(False, "output counts differ")
    known = set(original.inputs)
    extra = [net for net in transformed.inputs if net not in known]
    if extra:
        return SequentialCheckResult(
            False,
            "input interface mismatch: transformed-only inputs "
            f"{extra} would be driven to X",
        )

    plan = StimulusPlan(
        original, transformed, cycles, seed, lanes, reset_prefixes
    )
    with obs.span(
        "verify.sequential",
        cycles=cycles,
        lanes=plan.lanes,
        engine=engine,
    ):
        if engine == "bits":
            failure = _run_bits(original, transformed, plan)
        else:
            failure = _run_scalar(original, transformed, plan)
        obs.count("verify.checks")
        obs.count("verify.lane_cycles", plan.lanes * cycles)
        if failure is None:
            return SequentialCheckResult(
                True,
                f"refines over {cycles} cycles x {plan.lanes} "
                "coverage-directed lanes",
                cycles=cycles,
                lanes=plan.lanes,
            )

        obs.count("verify.failures")
        cycle, index, lane, expected, got = failure
        stimulus = [plan.lane_vector(t, lane) for t in range(cycle + 1)]
        counterexample = (cycle, index, expected, got)
        if shrink:
            shrunk = shrink_counterexample(original, transformed, stimulus)
            if shrunk is not None:
                stimulus, counterexample = shrunk
                cycle, index, expected, got = counterexample
        net = original.outputs[index]
        return SequentialCheckResult(
            False,
            f"cycle {cycle}, output #{index} ({net!r}): "
            f"original={expected}, transformed={got} "
            f"(lane {lane}: {plan.describe_lane(lane)}; "
            f"counterexample shrunk to {len(stimulus)} cycles)"
            if shrink
            else f"cycle {cycle}, output #{index} ({net!r}): "
            f"original={expected}, transformed={got} "
            f"(lane {lane}: {plan.describe_lane(lane)})",
            counterexample=counterexample,
            stimulus=stimulus,
            lane=lane,
            cycles=cycles,
            lanes=plan.lanes,
        )


def _run_bits(
    original: Circuit, transformed: Circuit, plan: StimulusPlan
) -> tuple[int, int, int, int, int] | None:
    """Run the plan on the bit kernel; first failure as
    ``(cycle, output index, lane, expected, got)``."""
    full = (1 << plan.lanes) - 1
    sim_o = BitSimulator(compile_circuit(original), lanes=plan.lanes)
    sim_t = BitSimulator(compile_circuit(transformed), lanes=plan.lanes)
    for cycle in range(plan.cycles + 1):
        words = plan.word_stimulus(cycle)
        outs_o = sim_o.step(words)
        outs_t = sim_t.step(words)
        if cycle == 0:
            continue
        for k, ((av, ax), (bv, bx)) in enumerate(zip(outs_o, outs_t)):
            bad = ~ax & full & (bx | (av ^ bv))
            if bad:
                lane = (bad & -bad).bit_length() - 1
                expected = unpack_lane((av, ax), lane)
                got = unpack_lane((bv, bx), lane)
                return (cycle, k, lane, expected, got)
    return None


def _run_scalar(
    original: Circuit, transformed: Circuit, plan: StimulusPlan
) -> tuple[int, int, int, int, int] | None:
    """Oracle mode: the identical plan, one scalar simulator per lane."""
    o_in = set(original.inputs)
    t_in = set(transformed.inputs)
    sims = [
        (SequentialSimulator(original), SequentialSimulator(transformed))
        for _ in range(plan.lanes)
    ]
    for cycle in range(plan.cycles + 1):
        results = []
        for lane, (sim_o, sim_t) in enumerate(sims):
            vec = plan.lane_vector(cycle, lane)
            a = sim_o.step({n: v for n, v in vec.items() if n in o_in})
            b = sim_t.step({n: v for n, v in vec.items() if n in t_in})
            results.append((a, b))
        if cycle == 0:
            continue
        for k, (na, nb) in enumerate(
            zip(original.outputs, transformed.outputs)
        ):
            for lane, (a, b) in enumerate(results):
                va = a[na]
                vb = b[nb]
                if va != TX and va != vb:
                    return (cycle, k, lane, va, vb)
    return None
