"""The paper's synthesis scripts as composable flows (Sec. 6).

Three flows mirror the three experimental setups:

* :func:`baseline_flow` — "minimal area for best delay" script:
  legalise registers for the XC4000E (decompose SS/SC), optimise, map
  to 4-LUTs, STA.  Produces Table 1 rows.
* :func:`retime_flow` — the modified script with the ``retime`` command
  inserted after mapping and a ``remap`` of the combinational part
  afterwards.  Produces Table 2 rows.
* :func:`decomposed_enable_flow` — the Table 3 script: a command that
  decomposes the load enables of all registers is prepended, then the
  retime flow runs (mc-retiming still handles the remaining AS/AC
  classes).

Two throughput flows extend the set beyond the paper's tables with the
:mod:`repro.pipeline` workload family:

* :func:`pipeline_flow` — map, insert K output register layers, retime
  to balance them, remap; verified by the latency-shifted refinement
  check (:func:`repro.verify.check_pipeline`).
* :func:`cslow_flow` — map, C-slow (replicate every register C times,
  folding EN/SR/AR per class into the D path), remap the new fold
  gates, retime, remap; verified by the thread-interleaving refinement
  check (:func:`repro.verify.check_cslow`).

Stage timings come from :mod:`repro.obs` spans (``flow.*``), so a
traced run shows the flow stages as the top level of the span tree;
``timings["total"]`` remains the sum of the stage entries.

Flows never mutate their input circuit.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .. import obs
from ..eco import EcoResult, EcoState, eco_retime
from ..mcretime import MCRetimeResult, mc_retime
from ..netlist import Circuit, circuit_stats, class_histogram
from ..obs import StageClock, finalize_total
from ..opt import optimize
from ..pipeline import cslow_transform, insert_pipeline_layers
from ..techmap import XC4000E_ARCH, decompose_enables, map_luts, remap
from ..timing import XC4000E_DELAY, analyze
from ..timing.delay_models import DelayModel
from ..verify import (
    CheckResult,
    SequentialCheckResult,
    VerificationError,
    check_cslow,
    check_pipeline,
    check_sequential,
)


@dataclass
class FlowResult:
    """Mapped (and possibly retimed) design plus the table metrics."""

    circuit: Circuit
    n_ff: int
    n_lut: int
    #: STA delay of the mapped circuit (the tables' Delay column)
    delay: float
    has_async: bool
    has_enable: bool
    #: present when the flow ran retiming
    retime: MCRetimeResult | None = None
    #: wall-clock seconds per stage; ``timings["total"]`` is always
    #: present and equals the sum of the individual stage timings
    timings: dict[str, float] = field(default_factory=dict)
    #: False when retiming ran but was rejected as unprofitable (the
    #: graph-model optimum regressed under full STA, so the flow kept
    #: the pre-retiming netlist)
    accepted: bool = True
    #: refinement check of the flow's transform, when the flow ran with
    #: ``verify=True`` (sequential, latency-shifted or thread-
    #: interleaving depending on the flow)
    verify: CheckResult | None = None
    #: throughput-transform report (kind, configuration, period
    #: economics, register-class histograms) for the pipeline / C-slow
    #: flows; ``None`` for the paper's table flows
    transform: dict | None = None
    #: how the incremental path answered an :func:`eco_flow` run (plan,
    #: diff, dirty fraction, fallback reason); ``None`` elsewhere
    eco: EcoResult | None = None
    #: certificate-backed explanation of the retiming result
    #: (:mod:`repro.obs.explain`, schema ``repro.explain/1``) when the
    #: flow ran with ``explain=True``; ``None`` elsewhere
    explain: dict | None = None


def _verify_stage(
    clock: StageClock,
    original: Circuit,
    transformed: Circuit,
    cycles: int,
) -> SequentialCheckResult:
    """Run the sequential equivalence gate as a timed flow stage."""
    with clock.stage("verify", "flow.verify", cycles=cycles):
        check = check_sequential(original, transformed, cycles=cycles)
    if not check.equivalent:
        raise VerificationError(check)
    return check


def _measure(circuit: Circuit, model: DelayModel) -> tuple[int, int, float]:
    stats = circuit_stats(circuit)
    delay = analyze(circuit, model).max_delay
    return stats.n_ff, stats.n_lut, delay


def baseline_flow(
    circuit: Circuit,
    delay_model: DelayModel = XC4000E_DELAY,
    mapping_mode: str = "depth",
    verify: bool = False,
    verify_cycles: int = 64,
) -> FlowResult:
    """Optimise + map (Table 1 setup).

    ``mapping_mode="depth"`` is the paper's *minimal area for best
    delay* script; ``"area"`` the plain *minimal area* script (the
    system provides both, Sec. 6).  ``verify=True`` appends a timed
    ``verify`` stage that sequentially checks the mapped netlist
    against the input and raises :class:`VerificationError` on a
    mismatch.
    """
    clock = StageClock()
    work = circuit.clone()
    with clock.stage("optimize", "flow.optimize"):
        XC4000E_ARCH.prepare(work)  # decompose SS/SC: no such FF pins on-chip
        optimize(work)
    with clock.stage("map", "flow.map", mode=mapping_mode):
        mapped = map_luts(work, mode=mapping_mode).circuit
        XC4000E_ARCH.check_mapped(mapped)
    check = None
    if verify:
        check = _verify_stage(clock, circuit, mapped, verify_cycles)
    stats = circuit_stats(mapped)
    n_ff, n_lut, delay = _measure(mapped, delay_model)
    return FlowResult(
        circuit=mapped,
        n_ff=n_ff,
        n_lut=n_lut,
        delay=delay,
        has_async=stats.has_async,
        has_enable=stats.has_enable,
        timings=clock.done(),
        verify=check,
    )


def retime_flow(
    circuit: Circuit,
    delay_model: DelayModel = XC4000E_DELAY,
    objective: str = "minarea",
    mapped: FlowResult | None = None,
    target_period: float | None = None,
    semantic_classes: bool = True,
    verify: bool = False,
    verify_cycles: int = 64,
    explain: bool = False,
) -> FlowResult:
    """Baseline flow + ``retime`` + ``remap`` (Table 2 setup).

    Retiming runs on the *mapped* netlist so gate delays are as close as
    possible to the actual FPGA delays, exactly as the paper argues.
    Pass a precomputed ``mapped`` result to skip re-running the baseline.
    ``verify=True`` appends a timed ``verify`` stage that sequentially
    checks the final netlist against the pre-retiming mapped design and
    raises :class:`VerificationError` on a mismatch.  ``explain=True``
    attaches the certificate-backed explanation of the retiming under
    ``result.explain`` (see :mod:`repro.obs.explain`).
    """
    base = mapped or baseline_flow(circuit, delay_model)
    clock = StageClock(seed=base.timings)
    with clock.stage("retime", "flow.retime", objective=objective):
        result = mc_retime(
            base.circuit,
            delay_model=delay_model,
            objective=objective,
            target_period=target_period,
            semantic_classes=semantic_classes,
            explain=explain,
        )
    with clock.stage("remap", "flow.remap"):
        final = remap(result.circuit, delay_model=delay_model).circuit
        XC4000E_ARCH.check_mapped(final)
    n_ff, n_lut, delay = _measure(final, delay_model)
    # the retiming optimum is exact on the graph model but full STA adds
    # clock-to-Q, setup and fanout-dependent wire terms; on rare small
    # designs that mismatch turns the "improvement" into a regression —
    # a production flow keeps the better netlist
    accepted = delay <= base.delay + 1e-9
    if not accepted:
        final = base.circuit
        n_ff, n_lut, delay = base.n_ff, base.n_lut, base.delay
    check = None
    if verify:
        # the rejected path returns base.circuit unchanged, so the check
        # is then trivially an identity comparison — run it anyway so a
        # verify=True caller always gets a verdict
        check = _verify_stage(clock, base.circuit, final, verify_cycles)
    stats = circuit_stats(final)
    return FlowResult(
        circuit=final,
        n_ff=n_ff,
        n_lut=n_lut,
        delay=delay,
        has_async=stats.has_async,
        has_enable=stats.has_enable,
        retime=result,
        timings=clock.done(),
        accepted=accepted,
        verify=check,
        explain=result.explanation,
    )


def eco_flow(
    circuit: Circuit,
    edit,
    state: EcoState | None = None,
    delay_model: DelayModel = XC4000E_DELAY,
    objective: str = "minarea",
    target_period: float | None = None,
    semantic_classes: bool = True,
    verify: bool = False,
    verify_cycles: int = 64,
) -> FlowResult:
    """Incrementally retime an edited design against its base (ECO).

    *circuit* is the **mapped** base netlist (edits address mapped
    cells by name — typically ``baseline_flow(...).circuit`` or a
    previous flow's output); *edit* is either an edit script (see
    :func:`repro.eco.apply_edit_script`) or the already-edited mapped
    circuit.  Pass a reusable :class:`repro.eco.EcoState` to amortise
    the base's solver prefix and solve cache across an edit stream;
    without one the flow builds a throwaway state (still correct, no
    reuse between calls).

    The retiming result is bit-identical to ``retime_flow`` on the
    edited netlist — only faster — so the remap / accept-or-reject
    logic is the same: the flow keeps the pre-retiming edited netlist
    when full STA shows a regression.  ``verify=True`` sequentially
    checks the final netlist against the edited base.
    """
    if state is not None and state.circuit is not circuit:
        raise ValueError("state was built for a different base circuit")
    clock = StageClock()
    with clock.stage("eco", "flow.eco", objective=objective):
        eco = eco_retime(
            state if state is not None else circuit,
            edit,
            delay_model=None if state is not None else delay_model,
            objective=objective,
            target_period=target_period,
            semantic_classes=None if state is not None else semantic_classes,
        )
        result = eco.result
    with clock.stage("remap", "flow.remap"):
        final = remap(result.circuit, delay_model=delay_model).circuit
        XC4000E_ARCH.check_mapped(final)
    base_ff, base_lut, base_delay = _measure(eco.circuit, delay_model)
    n_ff, n_lut, delay = _measure(final, delay_model)
    accepted = delay <= base_delay + 1e-9
    if not accepted:
        final = eco.circuit
        n_ff, n_lut, delay = base_ff, base_lut, base_delay
    check = None
    if verify:
        check = _verify_stage(clock, eco.circuit, final, verify_cycles)
    stats = circuit_stats(final)
    return FlowResult(
        circuit=final,
        n_ff=n_ff,
        n_lut=n_lut,
        delay=delay,
        has_async=stats.has_async,
        has_enable=stats.has_enable,
        retime=result,
        timings=clock.done(),
        accepted=accepted,
        verify=check,
        eco=eco,
    )


def decomposed_enable_flow(
    circuit: Circuit,
    delay_model: DelayModel = XC4000E_DELAY,
    objective: str = "minarea",
    target_period: float | None = None,
    semantic_classes: bool = True,
    verify: bool = False,
    verify_cycles: int = 64,
    explain: bool = False,
) -> FlowResult:
    """Decompose load enables first, then the retime flow (Table 3).

    With EN folded into D-side multiplexers, those registers become
    plain flip-flops and retiming moves them without class restrictions
    from enables — the paper's comparison point showing why preserving
    enables matters.
    """
    work = circuit.clone()
    clock = StageClock()
    with clock.stage("decompose_en", "flow.decompose_en"):
        decompose_enables(work)
    result = retime_flow(
        work,
        delay_model,
        objective,
        target_period=target_period,
        semantic_classes=semantic_classes,
        verify=verify,
        verify_cycles=verify_cycles,
        explain=explain,
    )
    result.timings["decompose_en"] = clock.timings["decompose_en"]
    finalize_total(result.timings)
    return result


def pipeline_flow(
    circuit: Circuit,
    stages: int,
    delay_model: DelayModel = XC4000E_DELAY,
    objective: str = "minperiod",
    mapped: FlowResult | None = None,
    target_period: float | None = None,
    semantic_classes: bool = True,
    verify: bool = False,
    verify_cycles: int = 48,
    explain: bool = False,
) -> FlowResult:
    """Baseline flow + K output register layers + retime + remap.

    Pipelining trades latency (the outputs shift by *stages* cycles)
    for clock speed: min-period retiming pulls the inserted plain
    registers back through the output cones.  The ``transform`` report
    compares the achieved period against the ``P0 / (K+1)`` perfect-
    balance lower bound.  ``verify=True`` appends a timed stage running
    the latency-shifted refinement check against the mapped base and
    raises :class:`VerificationError` on a mismatch.
    """
    base = mapped or baseline_flow(circuit, delay_model)
    clock = StageClock(seed=base.timings)
    with clock.stage("pipeline", "flow.pipeline", stages=stages):
        work, inserted = insert_pipeline_layers(base.circuit, stages)
    with clock.stage("retime", "flow.retime", objective=objective):
        result = mc_retime(
            work,
            delay_model=delay_model,
            objective=objective,
            target_period=target_period,
            semantic_classes=semantic_classes,
            explain=explain,
        )
    with clock.stage("remap", "flow.remap"):
        final = remap(result.circuit, delay_model=delay_model).circuit
        XC4000E_ARCH.check_mapped(final)
    check = None
    if verify:
        with clock.stage("verify", "flow.verify", cycles=verify_cycles):
            check = check_pipeline(
                base.circuit, final, shift=stages, cycles=verify_cycles
            )
        if not check.equivalent:
            raise VerificationError(check)
    stats = circuit_stats(final)
    n_ff, n_lut, delay = _measure(final, delay_model)
    lower_bound = base.delay / (stages + 1)
    balance_slack = delay - lower_bound
    obs.gauge("pipeline.balance_slack", balance_slack)
    return FlowResult(
        circuit=final,
        n_ff=n_ff,
        n_lut=n_lut,
        delay=delay,
        has_async=stats.has_async,
        has_enable=stats.has_enable,
        retime=result,
        timings=clock.done(),
        verify=check,
        explain=result.explanation,
        transform={
            "kind": "pipeline",
            "stages": stages,
            "registers_inserted": inserted,
            "period_before": base.delay,
            "period_after": delay,
            "lower_bound": lower_bound,
            "balance_slack": balance_slack,
            "speedup": base.delay / max(delay, 1e-12),
            "classes_before": class_histogram(base.circuit),
            "classes_after": class_histogram(final),
        },
    )


def cslow_flow(
    circuit: Circuit,
    factor: int,
    delay_model: DelayModel = XC4000E_DELAY,
    objective: str = "minperiod",
    mapped: FlowResult | None = None,
    target_period: float | None = None,
    semantic_classes: bool = True,
    verify: bool = False,
    verify_cycles: int = 32,
    explain: bool = False,
) -> FlowResult:
    """Baseline flow + C-slow + remap + retime + remap.

    C-slow turns the design into a C-thread interleaved machine: every
    register becomes a chain of C plain replicas (EN/SR/AR folded into
    the D path per class), and retiming spreads the chains through the
    logic.  The fold gates are primitives, so a ``premap`` stage remaps
    them to LUTs before retiming.  The ``transform`` report gives the
    aggregate throughput gain ``P0 / P1`` and the per-thread period
    ``C * P1``.  ``verify=True`` appends a timed stage running the
    thread-interleaving refinement check against the mapped base and
    raises :class:`VerificationError` on a mismatch.
    """
    base = mapped or baseline_flow(circuit, delay_model)
    clock = StageClock(seed=base.timings)
    with clock.stage("cslow", "flow.cslow", factor=factor):
        work, counts = cslow_transform(base.circuit, factor)
    with clock.stage("premap", "flow.premap"):
        # fold gates (MUX/OR/AND/NOT) are primitives: remap before
        # retiming so the delay model sees LUTs only
        work = remap(
            work, delay_model=delay_model, keep_better=False
        ).circuit
        XC4000E_ARCH.check_mapped(work)
    with clock.stage("retime", "flow.retime", objective=objective):
        result = mc_retime(
            work,
            delay_model=delay_model,
            objective=objective,
            target_period=target_period,
            semantic_classes=semantic_classes,
            explain=explain,
        )
    with clock.stage("remap", "flow.remap"):
        final = remap(result.circuit, delay_model=delay_model).circuit
        XC4000E_ARCH.check_mapped(final)
    check = None
    if verify:
        with clock.stage("verify", "flow.verify", cycles=verify_cycles):
            check = check_cslow(
                base.circuit, final, factor, cycles=verify_cycles
            )
        if not check.equivalent:
            raise VerificationError(check)
    stats = circuit_stats(final)
    n_ff, n_lut, delay = _measure(final, delay_model)
    return FlowResult(
        circuit=final,
        n_ff=n_ff,
        n_lut=n_lut,
        delay=delay,
        has_async=stats.has_async,
        has_enable=stats.has_enable,
        retime=result,
        timings=clock.done(),
        verify=check,
        explain=result.explanation,
        transform={
            "kind": "cslow",
            "factor": factor,
            "registers_replicated": counts["registers_replicated"],
            "enables_folded": counts["enables_folded"],
            "sync_resets_folded": counts["sync_resets_folded"],
            "async_resets_folded": counts["async_resets_folded"],
            "period_before": base.delay,
            "period_after": delay,
            "thread_period": factor * delay,
            "throughput_gain": base.delay / max(delay, 1e-12),
            "classes_before": class_histogram(base.circuit),
            "classes_after": class_histogram(final),
        },
    )
