"""Synthesis-script flows mirroring the paper's experimental setups."""

from .script import (
    FlowResult,
    baseline_flow,
    cslow_flow,
    decomposed_enable_flow,
    eco_flow,
    pipeline_flow,
    retime_flow,
)

__all__ = [
    "FlowResult",
    "baseline_flow",
    "cslow_flow",
    "decomposed_enable_flow",
    "eco_flow",
    "pipeline_flow",
    "retime_flow",
]
