"""Delay models for gates and nets.

The paper computes combinational delays "after place and route using the
Xilinx timing analyzer" on an XC4000E.  We cannot place and route, so the
XC4000E-flavoured model below stands in: a fixed LUT propagation delay
plus a fanout-dependent net delay, with register clock-to-Q and setup.
The constants are chosen to land mapped circuits in the paper's tens-of-
nanoseconds range; only *relative* delays (before vs after retiming)
carry meaning in the reproduction.

A model answers three questions:

* ``gate_delay(gate)`` — propagation delay through a cell;
* ``net_delay(fanout)`` — interconnect delay added at a cell output that
  drives *fanout* sinks;
* ``clock_to_q`` / ``setup`` — register timing overheads.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..netlist.cells import Gate, GateFn


@dataclass(frozen=True)
class DelayModel:
    """Base delay model: fixed per-gate delay, linear net delay."""

    #: Delay of any combinational cell.
    base_gate_delay: float = 1.0
    #: Net delay constant term (applied when fanout >= 1).
    net_base: float = 0.0
    #: Net delay per additional fanout beyond the first.
    net_per_fanout: float = 0.0
    #: Register clock-to-output delay.
    clock_to_q: float = 0.0
    #: Register data setup time.
    setup: float = 0.0

    def gate_delay(self, gate: Gate) -> float:
        """Propagation delay through *gate*."""
        return self.base_gate_delay

    def net_delay(self, fanout: int) -> float:
        """Interconnect delay for a net driving *fanout* sinks."""
        if fanout <= 0:
            return 0.0
        return self.net_base + self.net_per_fanout * (fanout - 1)


#: Pure unit-delay model (every gate costs 1, wires are free) — the
#: textbook retiming setting; used by most algorithm-level tests.
UNIT_DELAY = DelayModel(base_gate_delay=1.0)


@dataclass(frozen=True)
class XC4000EDelayModel(DelayModel):
    """XC4000E-flavoured delays (nanoseconds, -2 speed-grade ballpark).

    A CLB function generator (4-LUT) is ~1.6 ns; small pass-through
    logic is cheaper; interconnect contributes ~1 ns plus a fanout term.
    """

    base_gate_delay: float = 1.6
    net_base: float = 1.0
    net_per_fanout: float = 0.35
    clock_to_q: float = 1.1
    setup: float = 1.2

    def gate_delay(self, gate: Gate) -> float:
        if gate.fn is GateFn.CARRY:
            # the hardwired carry chain is far faster than a LUT hop —
            # the reason the paper retimes after mapping, with real
            # primitive delays
            return 0.25
        if gate.fn in (GateFn.BUF, GateFn.NOT):
            return 0.6
        if gate.fn is GateFn.LUT and gate.n_inputs <= 1:
            return 0.6
        return self.base_gate_delay


#: Shared instance of the FPGA delay model.
XC4000E_DELAY = XC4000EDelayModel()
