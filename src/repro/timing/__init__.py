"""Delay models and static timing analysis.

``CompiledSTA`` (re-exported from :mod:`repro.kernels.sta`) is the
incremental engine for repeated what-if analysis against a fixed
netlist; ``analyze`` is the one-shot entry point and dispatches to it
automatically when kernels are enabled.
"""

from .delay_models import (
    DelayModel,
    UNIT_DELAY,
    XC4000E_DELAY,
    XC4000EDelayModel,
)
from .sta import TimingResult, analyze, combinational_depth


def __getattr__(name):  # lazy: keeps repro.timing import light and cycle-free
    if name == "CompiledSTA":
        from ..kernels.sta import CompiledSTA

        return CompiledSTA
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


__all__ = [
    "CompiledSTA",
    "DelayModel",
    "TimingResult",
    "UNIT_DELAY",
    "XC4000E_DELAY",
    "XC4000EDelayModel",
    "analyze",
    "combinational_depth",
]
