"""Delay models and static timing analysis."""

from .delay_models import (
    DelayModel,
    UNIT_DELAY,
    XC4000E_DELAY,
    XC4000EDelayModel,
)
from .sta import TimingResult, analyze, combinational_depth

__all__ = [
    "DelayModel",
    "TimingResult",
    "UNIT_DELAY",
    "XC4000E_DELAY",
    "XC4000EDelayModel",
    "analyze",
    "combinational_depth",
]
