"""Static timing analysis of the combinational network.

Computes per-net arrival times and the maximum combinational path delay
— the paper's Table 1/2/3 ``Delay`` column ("maximal delay over all
combinational paths").  Sources are primary inputs (arrival 0) and
register Q pins (arrival = clock-to-Q); sinks are primary outputs and
register D/EN/SR/AR pins (+ setup on synchronous pins).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .. import obs
from ..netlist import Circuit
from ..netlist.signals import is_const
from .delay_models import DelayModel, UNIT_DELAY


@dataclass
class TimingResult:
    """Outcome of one STA sweep."""

    #: Maximum combinational path delay (the clock-period lower bound).
    max_delay: float
    #: Arrival time per net (sources included).
    arrival: dict[str, float]
    #: Nets along one critical path, source first.
    critical_path: list[str] = field(default_factory=list)
    #: The sink net realizing ``max_delay``.
    critical_sink: str | None = None

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<TimingResult max_delay={self.max_delay:.2f}>"


def analyze(
    circuit: Circuit,
    model: DelayModel = UNIT_DELAY,
    use_kernels: bool | None = None,
) -> TimingResult:
    """Run STA; returns arrival times and the critical path.

    Dispatches to the compiled engine
    (:class:`repro.kernels.sta.CompiledSTA`) unless kernels are
    disabled; both engines produce bit-identical results.  Callers doing
    repeated what-if analysis against a fixed netlist should hold a
    ``CompiledSTA`` directly and use its incremental ``update``.
    """
    from .. import kernels

    with obs.span("sta.analyze"):
        if not kernels.resolve(use_kernels):
            return _analyze_dict(circuit, model)
        result = kernels.analyze_kernel(circuit, model)
    if kernels.kernel_check_enabled():
        oracle = _analyze_dict(circuit, model)
        kernels.expect_equal("sta.max_delay", result.max_delay, oracle.max_delay)
        kernels.expect_equal("sta.arrival", result.arrival, oracle.arrival)
        kernels.expect_equal(
            "sta.critical_path", result.critical_path, oracle.critical_path
        )
        kernels.expect_equal(
            "sta.critical_sink", result.critical_sink, oracle.critical_sink
        )
    return result


def _analyze_dict(circuit: Circuit, model: DelayModel) -> TimingResult:
    """Dict-based reference engine for :func:`analyze`."""
    arrival: dict[str, float] = {}
    pred: dict[str, str | None] = {}
    fanout_count = {net: len(circuit.readers(net)) for net in circuit.nets()}

    for net in circuit.inputs:
        arrival[net] = 0.0
        pred[net] = None
    for reg in circuit.registers.values():
        arrival[reg.q] = model.clock_to_q
        pred[reg.q] = None

    for gate in circuit.topo_gates():
        best_at = 0.0
        best_in: str | None = None
        for net in gate.inputs:
            if is_const(net):
                continue
            at = arrival.get(net, 0.0)
            if best_in is None or at > best_at:
                best_at = at
                best_in = net
        out = gate.output
        arrival[out] = (
            best_at
            + model.gate_delay(gate)
            + model.net_delay(fanout_count.get(out, 0))
        )
        pred[out] = best_in

    max_delay = 0.0
    critical_sink: str | None = None

    def consider(net: str | None, extra: float) -> None:
        nonlocal max_delay, critical_sink
        if net is None or is_const(net):
            return
        at = arrival.get(net, 0.0) + extra
        if at > max_delay:
            max_delay = at
            critical_sink = net

    for net in circuit.outputs:
        consider(net, 0.0)
    for reg in circuit.registers.values():
        consider(reg.d, model.setup)
        consider(reg.en, model.setup)
        consider(reg.sr, model.setup)
        # async pins have no setup against the clock; still combinational
        consider(reg.ar, 0.0)

    path: list[str] = []
    node = critical_sink
    while node is not None:
        path.append(node)
        node = pred.get(node)
    path.reverse()
    return TimingResult(
        max_delay=max_delay,
        arrival=arrival,
        critical_path=path,
        critical_sink=critical_sink,
    )


def combinational_depth(circuit: Circuit) -> int:
    """Maximum gate count along any combinational path (unit levels)."""
    depth: dict[str, int] = {}
    best = 0
    for gate in circuit.topo_gates():
        d = 1 + max((depth.get(n, 0) for n in gate.inputs), default=0)
        depth[gate.output] = d
        best = max(best, d)
    return best
