"""Bit-parallel ternary circuit simulation (the verification kernel).

The scalar :class:`~repro.logic.simulate.SequentialSimulator` evaluates
one stimulus vector per Python-level sweep — fine for unit tests,
hopeless for a verification stage that wants thousands of cycles on
every retimed netlist.  This module packs **one stimulus lane per bit of
a Python int** (64 lanes per machine word, arbitrarily many per int)
and evaluates all lanes simultaneously with word-wide boolean algebra.

Ternary values use the classic **two-word encoding**: a net's lanes are
a pair ``(v, x)`` of equal-width bit masks where lane *i* is

* ``X``  when bit *i* of ``x`` is set (the ``v`` bit is then 0 — the
  encoding is kept canonical: ``v & x == 0``),
* ``1``  when bit *i* of ``v`` is set,
* ``0``  otherwise.

Gate evaluation implements the **exact completion semantics** of
:func:`repro.logic.functions.eval_table` (binary iff every binary
completion of the X inputs agrees) by Shannon cofactoring the truth
table: for each input the lanes split into "can be 0" / "can be 1"
branch masks and the two cofactor sub-tables are evaluated recursively,
giving per-lane ``can0``/``can1`` sets in O(2^n) word operations with
aggressive constant-subtable pruning (AND/OR-like tables cost O(n)).
The scalar evaluator's :data:`~repro.logic.functions.MAX_EXACT_UNKNOWNS`
guard is reproduced per lane with a bit-sliced unknown counter so wide
gates stay bit-identical to the oracle.

Register update implements the full generic-register semantics of
paper Fig. 2a exactly as the scalar simulator does (async set/clear
sampled per cycle, dominant over sync set/clear, over EN; an X enable
holds only when D already equals the stored value), lane-parallel.

Like :mod:`repro.kernels.compiled_graph`, the circuit is interned once
into flat integer-indexed arrays (:func:`compile_circuit`) — net ids,
topological gate order with per-gate pin-id tuples, register pin ids —
and a :class:`BitSimulator` then runs any number of cycles against the
snapshot.  Mutating the source circuit invalidates the snapshot.

Differential contract: for any circuit, initial state, and stimulus,
lane *i* of a :class:`BitSimulator` run is **bit-identical** to a
:class:`~repro.logic.simulate.SequentialSimulator` run on lane *i*'s
scalar vectors (tests/verify/test_sim_kernel.py enforces this with
hypothesis; ``benchmarks/bench_verify.py`` gates the >=20x cycle
throughput this kernel exists for).
"""

from __future__ import annotations

from typing import Mapping, Sequence

from .. import obs
from ..logic.functions import MAX_EXACT_UNKNOWNS
from ..logic.simulate import SequentialSimulator
from ..logic.ternary import T0, T1, TX
from ..netlist import Circuit
from ..netlist.signals import CONST0, CONST1

#: Default lane count: one 64-bit machine word per Python int.
DEFAULT_LANES = 64


class CompiledCircuit:
    """Flat integer-indexed snapshot of a :class:`Circuit` for simulation.

    Net ids are assigned in a fixed order (constants, primary inputs,
    register Q nets, gate outputs in topological order, then any
    remaining referenced nets) so compiled runs are deterministic and
    reproducible across processes.
    """

    __slots__ = (
        "name",
        "n_nets",
        "net_names",
        "net_index",
        "input_ids",
        "input_names",
        "output_ids",
        "output_names",
        "gate_out",
        "gate_pins",
        "gate_table",
        "gate_wide",
        "reg_names",
        "reg_d",
        "reg_q",
        "reg_en",
        "reg_sr",
        "reg_ar",
        "reg_sval",
        "reg_aval",
        "reg_reset",
        "n_regs",
    )


def compile_circuit(circuit: Circuit) -> CompiledCircuit:
    """Intern *circuit* into a :class:`CompiledCircuit` snapshot."""
    obs.count("kernels.compile_circuit")
    cc = CompiledCircuit()
    cc.name = circuit.name

    index: dict[str, int] = {CONST0: 0, CONST1: 1}
    names = [CONST0, CONST1]

    def intern(net: str) -> int:
        nid = index.get(net)
        if nid is None:
            nid = len(names)
            index[net] = nid
            names.append(net)
        return nid

    for net in circuit.inputs:
        intern(net)
    for reg in circuit.registers.values():
        intern(reg.q)

    topo = circuit.topo_gates()
    for gate in topo:
        intern(gate.output)
    for net in sorted(circuit.nets()):
        intern(net)

    cc.net_index = index
    cc.net_names = names
    cc.n_nets = len(names)
    cc.input_ids = [index[n] for n in circuit.inputs]
    cc.input_names = list(circuit.inputs)
    cc.output_ids = [index[n] for n in circuit.outputs]
    cc.output_names = list(circuit.outputs)

    # nets with a defined value during a sweep; everything else reads
    # as the scalar simulator's defaults (X for gates/D, constants for
    # register control pins)
    driven = bytearray(cc.n_nets)
    driven[0] = driven[1] = 1
    for nid in cc.input_ids:
        driven[nid] = 1
    for reg in circuit.registers.values():
        driven[index[reg.q]] = 1
    for gate in topo:
        driven[index[gate.output]] = 1

    cc.gate_out = [index[g.output] for g in topo]
    cc.gate_pins = [tuple(index[n] for n in g.inputs) for g in topo]
    cc.gate_table = [g.truth_table() for g in topo]
    cc.gate_wide = [len(g.inputs) > MAX_EXACT_UNKNOWNS for g in topo]

    def ctrl_id(net: str | None) -> int:
        """Control pin id; -1 when the pin is absent or the net is
        undriven (both read as the pin's constant default)."""
        if net is None:
            return -1
        nid = index[net]
        return nid if driven[nid] else -1

    cc.reg_names = []
    cc.reg_d = []
    cc.reg_q = []
    cc.reg_en = []
    cc.reg_sr = []
    cc.reg_ar = []
    cc.reg_sval = []
    cc.reg_aval = []
    cc.reg_reset = []
    for reg in circuit.registers.values():
        cc.reg_names.append(reg.name)
        d_id = index[reg.d]
        cc.reg_d.append(d_id if driven[d_id] else -1)  # undriven D reads X
        cc.reg_q.append(index[reg.q])
        cc.reg_en.append(ctrl_id(reg.en))
        cc.reg_sr.append(ctrl_id(reg.sr))
        cc.reg_ar.append(ctrl_id(reg.ar))
        cc.reg_sval.append(reg.sval)
        cc.reg_aval.append(reg.aval)
    reset = SequentialSimulator.default_reset_state(circuit)
    cc.reg_reset = [reset[name] for name in cc.reg_names]
    cc.n_regs = len(cc.reg_names)
    return cc


# --------------------------------------------------------------------- #
# word-level gate evaluation


def _eval_table_words(
    table: int, m0s: Sequence[int], m1s: Sequence[int], full: int
) -> tuple[int, int]:
    """Exact ternary table evaluation over lane words.

    ``m0s[i]`` / ``m1s[i]`` are the lanes where input *i* can complete
    to 0 / to 1 (an X input appears in both).  Returns ``(v, x)`` lane
    words for the gate output under the exact completion semantics.
    """
    can0, can1 = _cofactor(table, len(m0s), m0s, m1s, full)
    return can1 & ~can0 & full, can1 & can0


def _cofactor(
    table: int, k: int, m0s: Sequence[int], m1s: Sequence[int], full: int
) -> tuple[int, int]:
    """Per-lane ``(can0, can1)`` sets for a ``2^k``-entry truth table."""
    if table == 0:
        return full, 0
    if table == (1 << (1 << k)) - 1:
        return 0, full
    half = 1 << (k - 1)
    t0 = table & ((1 << half) - 1)
    t1 = table >> half
    m0 = m0s[k - 1]
    m1 = m1s[k - 1]
    c00, c01 = _cofactor(t0, k - 1, m0s, m1s, full) if m0 else (0, 0)
    c10, c11 = _cofactor(t1, k - 1, m0s, m1s, full) if m1 else (0, 0)
    return (m0 & c00) | (m1 & c10), (m0 & c01) | (m1 & c11)


def _lanes_over_unknown_limit(
    x_words: Sequence[int], limit: int, full: int
) -> int:
    """Lanes where more than *limit* of the given X-words are set.

    Bit-sliced vertical counter (5 bits saturate well above the 16-pin
    gate-width cap); only consulted for gates wider than the scalar
    evaluator's exact-completion guard, so the cost never shows up on
    mapped 4-LUT netlists.
    """
    c0 = c1 = c2 = c3 = c4 = 0
    for xw in x_words:
        carry = xw
        c0, carry = c0 ^ carry, c0 & carry
        c1, carry = c1 ^ carry, c1 & carry
        c2, carry = c2 ^ carry, c2 & carry
        c3, carry = c3 ^ carry, c3 & carry
        c4 |= carry
    del limit  # fixed at MAX_EXACT_UNKNOWNS == 12: count >= 13 below
    return (c4 | (c3 & c2 & (c1 | c0))) & full


# --------------------------------------------------------------------- #
# lane packing helpers


def pack_lanes(values: Sequence[int]) -> tuple[int, int]:
    """Pack a per-lane list of ternary values into ``(v, x)`` words."""
    v = x = 0
    for i, t in enumerate(values):
        if t == T1:
            v |= 1 << i
        elif t == TX:
            x |= 1 << i
    return v, x


def unpack_lane(words: tuple[int, int], lane: int) -> int:
    """Extract one lane's ternary value from ``(v, x)`` words."""
    v, x = words
    if (x >> lane) & 1:
        return TX
    return T1 if (v >> lane) & 1 else T0


def pack_vectors(
    vectors: Sequence[Mapping[str, int]],
) -> dict[str, tuple[int, int]]:
    """Turn per-lane scalar stimulus dicts into one word-stimulus dict.

    Lane *i* carries ``vectors[i]``; nets missing from a lane's dict are
    X in that lane (matching the scalar simulator's default).
    """
    nets: dict[str, None] = {}
    for vec in vectors:
        for net in vec:
            nets.setdefault(net)
    return {
        net: pack_lanes([vec.get(net, TX) for vec in vectors])
        for net in nets
    }


def broadcast(value: int, full: int) -> tuple[int, int]:
    """All-lanes words for one ternary value."""
    if value == T1:
        return full, 0
    if value == TX:
        return 0, full
    return 0, 0


class BitSimulator:
    """Cycle simulator running ``lanes`` stimulus lanes in parallel.

    Mirrors :class:`~repro.logic.simulate.SequentialSimulator` lane by
    lane: same reset-state convention, same Mealy outputs, same
    generic-register semantics.  ``state`` may override the default
    reset state with a per-register ternary value (broadcast to every
    lane) or with explicit ``(v, x)`` words.
    """

    def __init__(
        self,
        circuit: Circuit | CompiledCircuit,
        lanes: int = DEFAULT_LANES,
        state: Mapping[str, int | tuple[int, int]] | None = None,
    ) -> None:
        cc = circuit if isinstance(circuit, CompiledCircuit) else None
        self.cc = cc or compile_circuit(circuit)
        self.lanes = lanes
        self.full = (1 << lanes) - 1
        self.cycles = 0
        self._v = [0] * self.cc.n_nets
        self._x = [0] * self.cc.n_nets
        # undriven nets read X for gate/D pins; overwritten per sweep
        # for inputs, Q nets, and gate outputs
        for nid in range(2, self.cc.n_nets):
            self._x[nid] = self.full
        self._v[1] = self.full  # CONST1
        self._x[0] = self._x[1] = 0
        self.state: list[tuple[int, int]] = []
        for i, name in enumerate(self.cc.reg_names):
            value: int | tuple[int, int] = self.cc.reg_reset[i]
            if state is not None and name in state:
                value = state[name]
            if isinstance(value, tuple):
                self.state.append(value)
            else:
                self.state.append(broadcast(value, self.full))

    # -- one cycle ------------------------------------------------------

    def _sweep(self, stimulus: Mapping[str, tuple[int, int]]) -> None:
        cc = self.cc
        v, x = self._v, self._x
        full = self.full
        for name, nid in zip(cc.input_names, cc.input_ids):
            words = stimulus.get(name)
            if words is None:
                v[nid], x[nid] = 0, full
            else:
                v[nid], x[nid] = words[0] & full, words[1] & full
        for i in range(cc.n_regs):
            qv, qx = self.state[i]
            q = cc.reg_q[i]
            v[q], x[q] = qv, qx
        tables = cc.gate_table
        outs = cc.gate_out
        wides = cc.gate_wide
        for g, pins in enumerate(cc.gate_pins):
            m0s = []
            m1s = []
            for pid in pins:
                pv = v[pid]
                px = x[pid]
                m0s.append(full & ~pv)
                m1s.append(pv | px)
            can0, can1 = _cofactor(tables[g], len(pins), m0s, m1s, full)
            ov = can1 & ~can0 & full
            ox = can1 & can0
            if wides[g]:
                many = _lanes_over_unknown_limit(
                    [x[pid] for pid in pins], MAX_EXACT_UNKNOWNS, full
                )
                ov &= ~many
                ox |= many
            o = outs[g]
            v[o], x[o] = ov, ox

    def _read(self, nid: int) -> tuple[int, int]:
        return self._v[nid], self._x[nid]

    def step(
        self, stimulus: Mapping[str, tuple[int, int]]
    ) -> list[tuple[int, int]]:
        """Advance one cycle; returns per-output ``(v, x)`` words
        (Mealy view: outputs are sampled before the state update)."""
        cc = self.cc
        self._sweep(stimulus)
        v, x = self._v, self._x
        full = self.full
        outputs = [(v[o], x[o]) for o in cc.output_ids]

        next_state: list[tuple[int, int]] = []
        for i in range(cc.n_regs):
            ar_id = cc.reg_ar[i]
            sr_id = cc.reg_sr[i]
            en_id = cc.reg_en[i]
            arv, arx = (v[ar_id], x[ar_id]) if ar_id >= 0 else (0, 0)
            srv, srx = (v[sr_id], x[sr_id]) if sr_id >= 0 else (0, 0)
            env, enx = (v[en_id], x[en_id]) if en_id >= 0 else (full, 0)
            d_id = cc.reg_d[i]
            dv, dx = (v[d_id], x[d_id]) if d_id >= 0 else (0, full)
            hv, hx = self.state[i]
            av_v, av_x = broadcast(cc.reg_aval[i], full)
            sv_v, sv_x = broadcast(cc.reg_sval[i], full)

            nv = arv & av_v
            nx = (arv & av_x) | arx
            live = full & ~(arv | arx)  # lanes with ar == 0

            m = live & srv
            nv |= m & sv_v
            nx |= (m & sv_x) | (live & srx)
            live &= ~(srv | srx)  # lanes with sr == 0 as well

            m = live & env
            nv |= m & dv
            nx |= m & dx

            m = live & enx  # X enable: keep D only where D == hold
            eq = full & ~((dv ^ hv) | (dx ^ hx))
            nv |= m & eq & dv
            nx |= m & ((full & ~eq) | dx)

            m = live & ~(env | enx)  # enable low: hold
            nv |= m & hv
            nx |= m & hx
            next_state.append((nv & full, nx & full))
        self.state = next_state
        self.cycles += 1
        return outputs

    def run(
        self, stimulus: Sequence[Mapping[str, tuple[int, int]]]
    ) -> list[list[tuple[int, int]]]:
        """Apply a sequence of word-stimulus dicts; per-cycle outputs."""
        return [self.step(words) for words in stimulus]

    # -- scalar interop -------------------------------------------------

    def output_lane(
        self, outputs: list[tuple[int, int]], lane: int
    ) -> dict[str, int]:
        """One lane of a :meth:`step` result as a scalar output dict."""
        return {
            net: unpack_lane(words, lane)
            for net, words in zip(self.cc.output_names, outputs)
        }
