"""Kernel implementation of lazy feasibility and min-period search.

The algorithm is exactly :mod:`repro.retime.minperiod` — same lazy
constraint generation, same binary-search trajectory, same float
arithmetic — rebuilt on the compiled graph/system kernels:

* the graph is compiled once per search and shared by every probe;
* inside a feasibility check, rounds after the first re-solve the
  difference system *incrementally* (only newly added period
  constraints are relaxed, seeded from the previous solution) and
  re-sweep Δ *incrementally* (only the cone of vertices the solve
  actually moved);
* each feasible probe's achieved period is read off the final sweep
  instead of re-deriving it.

Because each round's solve has a unique fixed point and each sweep is
bit-identical to the dict sweep, the generated constraint sets, the
probe trajectory, and the returned retiming all match the dict engine
exactly.
"""

from __future__ import annotations

from .. import obs
from ..graph.retiming_graph import RetimingGraph
from .compiled_graph import CompiledGraph, compile_graph
from .delta import KernelSweep, delta_sweep, refresh
from .diffsys import CompiledSystem

#: Same tolerances/limits as the dict engine (imported lazily to avoid
#: an import cycle with repro.retime.minperiod).
EPS = 1e-9
MAX_LAZY_ROUNDS = 10_000


class KernelFeasibility:
    """Outcome of one kernel lazy feasibility check."""

    __slots__ = ("r", "rounds", "constraints", "sweep")

    def __init__(
        self,
        r: list[int] | None,
        rounds: int,
        constraints: int,
        sweep: KernelSweep | None,
    ) -> None:
        self.r = r
        self.rounds = rounds
        self.constraints = constraints
        #: final Δ sweep for the returned retiming (feasible case only)
        self.sweep = sweep


def check_period_kernel(
    cg: CompiledGraph, phi: float, csys: CompiledSystem
) -> KernelFeasibility:
    """Lazy feasibility of period *phi* over compiled structures.

    Mutates *csys* exactly as the dict engine mutates its system.
    """
    n = cg.n
    is_mirror = cg.is_mirror
    sweep: KernelSweep | None = None
    with obs.span("minperiod.feas", phi=phi, engine="kernel") as span:
        for rounds in range(1, MAX_LAZY_ROUNDS + 1):
            dist = csys.solve()
            if dist is None:
                obs.count("feas.passes", rounds)
                span.set(rounds=rounds, feasible=False)
                return KernelFeasibility(None, rounds, len(csys), None)
            r = csys.normalized(dist)
            rg = r[: n]
            if sweep is None:
                sweep = delta_sweep(cg, rg)
            else:
                sweep = refresh(cg, sweep, rg)
            delta = sweep.delta
            added = False
            limit = phi + EPS
            for v in range(n):
                if delta[v] <= limit or is_mirror[v]:
                    continue
                u = sweep.trace_start(v)
                bound = r[u] - r[v] - 1
                if csys.add(u, v, bound):
                    added = True
            if not added:
                obs.count("feas.passes", rounds)
                span.set(rounds=rounds, feasible=True)
                return KernelFeasibility(r, rounds, len(csys), sweep)
    raise RuntimeError("lazy period-constraint generation did not converge")


def min_period_kernel(
    graph: RetimingGraph,
    bounds: dict[str, tuple[int, int]] | None,
    eps: float,
):
    """Binary-search the minimum feasible period (kernel path).

    Returns a ``MinPeriodResult`` identical to the dict engine's.
    """
    from ..retime.minperiod import MinPeriodResult, base_system

    with obs.span("minperiod.search", engine="kernel") as span:
        cg = compile_graph(graph)
        zero = [0] * cg.n
        start = delta_sweep(cg, zero).period
        lo = max(cg.delay, default=0.0)
        best_phi = start
        best_r = cg.r_dict(zero)
        probes = 0
        rounds = 0
        base = CompiledSystem.from_system(base_system(graph, bounds), cg)
        hi = start
        while hi - lo > eps:
            mid = (lo + hi) / 2.0
            probes += 1
            result = check_period_kernel(cg, mid, base.copy())
            rounds += result.rounds
            if result.r is not None:
                achieved = result.sweep.period
                best_phi = achieved
                best_r = _r_dict(base, result.r)
                hi = min(achieved, mid)
            else:
                lo = mid
        obs.count("minperiod.probes", probes)
        obs.gauge("minperiod.phi", best_phi)
        span.set(phi=best_phi, probes=probes)
    return MinPeriodResult(
        phi=best_phi, r=best_r, achieved=best_phi, probes=probes, rounds=rounds
    )


def _r_dict(csys: CompiledSystem, r: list[int]) -> dict[str, int]:
    """Name-keyed view of a solution, in variable declaration order
    (matching the dict solver's returned dict exactly)."""
    names = csys.names
    return {names[i]: r[i] for i in range(len(r))}
