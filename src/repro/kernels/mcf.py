"""Min-cost flow on integer node ids (the min-area LP dual kernel).

Same successive-shortest-path algorithm as
:class:`repro.retime.mincostflow.MinCostFlow` — heap Dijkstra over
Johnson-potential reduced costs, multi-source from all excess nodes —
but nodes are dense integer ids, there are no name dictionaries, no
public per-arc view objects, and arc storage is preallocated from the
compiled constraint system.  Arc slots are created in the same order as
the dict engine adds them, and Dijkstra's heap keys are the same
``(distance, node-id)`` pairs, so tie-breaking — and therefore the
selected optimal dual solution — is bit-identical to the oracle.
"""

from __future__ import annotations

import heapq

from .. import obs

INF = float("inf")


class FlowInfeasibleError(Exception):
    """Raised when supplies cannot be routed to demands."""


class IntMinCostFlow:
    """Successive-shortest-path min-cost flow over dense int nodes."""

    __slots__ = ("n", "supply", "_to", "_cap", "_cost", "_adj", "potential")

    def __init__(self, n: int) -> None:
        self.n = n
        self.supply = [0] * n
        # forward/backward arc pairs at even/odd slots
        self._to: list[int] = []
        self._cap: list[float] = []
        self._cost: list[int] = []
        self._adj: list[list[int]] = [[] for _ in range(n)]
        self.potential: list[float] = []

    def add_arc(self, u: int, v: int, cost: int, capacity: float = INF) -> None:
        """Create an arc u→v."""
        slot = len(self._to)
        self._to.extend((v, u))
        self._cap.extend((capacity, 0.0))
        self._cost.extend((cost, -cost))
        self._adj[u].append(slot)
        self._adj[v].append(slot + 1)

    def solve(self, initial_potentials: list[float] | None = None) -> None:
        """Route all supplies; potentials are left in ``self.potential``.

        *initial_potentials* must make every reduced cost non-negative
        (the retiming caller passes the negated difference-constraint
        solution).  Raises :class:`FlowInfeasibleError` when supplies
        don't balance or cannot reach the demands.
        """
        n = self.n
        if sum(self.supply) != 0:
            raise FlowInfeasibleError("supplies do not balance")
        excess = list(self.supply)
        potential = (
            list(initial_potentials)
            if initial_potentials is not None
            else [0.0] * n
        )
        to, cap, cost, adj = self._to, self._cap, self._cost, self._adj
        for slot in range(0, len(to), 2):
            if cap[slot] > 0:
                u = to[slot ^ 1]
                v = to[slot]
                if cost[slot] + potential[u] - potential[v] < -1e-9:
                    raise ValueError(
                        "initial potentials leave a negative reduced cost"
                    )
        self.potential = potential

        # Pre-zipped adjacency: one tuple unpack per scanned arc instead
        # of three list index ops (to/cost are fixed for the whole solve;
        # only cap mutates, so it stays a slot lookup).
        arcs = [
            [(slot, to[slot], cost[slot]) for slot in slots] for slots in adj
        ]

        heappush, heappop = heapq.heappush, heapq.heappop
        augmentations = 0
        while True:
            sources = [i for i, e in enumerate(excess) if e > 0]
            if not sources:
                break
            dist = [INF] * n
            prev_arc = [-1] * n
            heap: list[tuple[float, int]] = []
            for s in sources:
                dist[s] = 0.0
                heappush(heap, (0.0, s))
            while heap:
                d, vi = heappop(heap)
                if d > dist[vi]:
                    continue
                pvi = potential[vi]
                for slot, t, c in arcs[vi]:
                    if cap[slot] <= 0:
                        continue
                    # float addition order matches the dict oracle:
                    # ((d + cost) + potential[u]) - potential[v]
                    nd = d + c + pvi - potential[t]
                    if nd < dist[t] - 1e-12:
                        dist[t] = nd
                        prev_arc[t] = slot
                        heappush(heap, (nd, t))
            target = -1
            best = INF
            for i, e in enumerate(excess):
                if e < 0 and dist[i] < best:
                    best = dist[i]
                    target = i
            if target < 0:
                raise FlowInfeasibleError("no augmenting path to a demand")
            for i, di in enumerate(dist):
                potential[i] += di if di < INF else best
            bottleneck = -excess[target]
            node = target
            while prev_arc[node] != -1:
                slot = prev_arc[node]
                if cap[slot] < bottleneck:
                    bottleneck = cap[slot]
                node = to[slot ^ 1]
            if excess[node] < bottleneck:
                bottleneck = excess[node]
            amount = int(bottleneck)
            node = target
            while prev_arc[node] != -1:
                slot = prev_arc[node]
                cap[slot] -= amount
                cap[slot ^ 1] += amount
                node = to[slot ^ 1]
            excess[node] -= amount
            excess[target] += amount
            augmentations += 1
        if obs.enabled():
            obs.count("mcf.augmentations", augmentations)
            # all arcs are INF-capacity forward slots, so routed flow
            # sits entirely on the backward (odd) slots
            total = sum(
                int(cap[slot ^ 1]) * cost[slot]
                for slot in range(0, len(to), 2)
            )
            obs.count("mcf.cost", total)
