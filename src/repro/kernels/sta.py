"""Compiled static timing analysis with a dirty-region incremental mode.

``CompiledSTA`` interns a circuit's nets, snapshots the combinational
topological order once, and evaluates arrivals over integer-indexed
arrays.  The full sweep reproduces :func:`repro.timing.sta.analyze`
bit-for-bit (same pin iteration order, same tie-breaking, same float
addition order: ``(best + gate_delay) + net_delay``).

The incremental mode is for repeated what-if analysis against a fixed
netlist: override source arrivals (register Q pins, primary inputs) and
``update`` re-evaluates only the gates in the transitive fanout cone of
the overridden nets — the dirty region — leaving every other arrival
untouched.  Structural edits require a recompile; the compiled form is
a snapshot, exactly like :class:`~repro.kernels.compiled_graph.
CompiledGraph`.
"""

from __future__ import annotations

from .. import obs
from ..netlist.circuit import Circuit
from ..netlist.signals import is_const
from ..timing.delay_models import DelayModel


class CompiledSTA:
    """Integer-indexed STA engine over a fixed circuit structure."""

    __slots__ = (
        "circuit",
        "model",
        "net_names",
        "net_index",
        "n_nets",
        "source_arrival",
        "gate_order",
        "gate_inputs_start",
        "gate_inputs",
        "gate_output",
        "gate_delay",
        "gate_net_delay",
        "net_fanout_gates",
        "sinks",
        "arrival",
        "pred",
        "_base_arrival",
    )

    def __init__(self, circuit: Circuit, model: DelayModel) -> None:
        self.circuit = circuit
        self.model = model
        names: list[str] = []
        index: dict[str, int] = {}

        def intern(net: str) -> int:
            i = index.get(net)
            if i is None:
                i = len(names)
                index[net] = i
                names.append(net)
            return i

        # sources first, in dict-engine insertion order
        self.source_arrival: list[tuple[int, float]] = []
        for net in circuit.inputs:
            self.source_arrival.append((intern(net), 0.0))
        for reg in circuit.registers.values():
            self.source_arrival.append((intern(reg.q), model.clock_to_q))

        fanout_count = {net: len(circuit.readers(net)) for net in circuit.nets()}
        topo = circuit.topo_gates()
        self.gate_order = [g.name for g in topo]
        gi_start = [0]
        gi: list[int] = []
        g_out: list[int] = []
        g_delay: list[float] = []
        g_net_delay: list[float] = []
        for gate in topo:
            for net in gate.inputs:
                if not is_const(net):
                    gi.append(intern(net))
            gi_start.append(len(gi))
            g_out.append(intern(gate.output))
            g_delay.append(model.gate_delay(gate))
            g_net_delay.append(model.net_delay(fanout_count.get(gate.output, 0)))
        self.gate_inputs_start = gi_start
        self.gate_inputs = gi
        self.gate_output = g_out
        self.gate_delay = g_delay
        self.gate_net_delay = g_net_delay

        # sinks in dict-engine order: outputs, then register D/EN/SR/AR
        sinks: list[tuple[int, float]] = []
        for net in circuit.outputs:
            if not is_const(net):
                sinks.append((intern(net), 0.0))
        for reg in circuit.registers.values():
            for net, extra in (
                (reg.d, model.setup),
                (reg.en, model.setup),
                (reg.sr, model.setup),
                (reg.ar, 0.0),  # async pins: no setup against the clock
            ):
                if net is not None and not is_const(net):
                    sinks.append((intern(net), extra))
        self.sinks = sinks

        self.net_names = names
        self.net_index = index
        self.n_nets = len(names)
        # net -> gate positions reading it (for dirty-cone traversal)
        fanout: list[list[int]] = [[] for _ in range(self.n_nets)]
        for g in range(len(topo)):
            for p in range(gi_start[g], gi_start[g + 1]):
                fanout[gi[p]].append(g)
        self.net_fanout_gates = fanout

        self.arrival: list[float] = [0.0] * self.n_nets
        self.pred: list[int] = [-1] * self.n_nets
        self._base_arrival: dict[int, float] = {}

    # ------------------------------------------------------------------ #
    # evaluation

    def _eval_gate(self, g: int) -> None:
        arrival, pred = self.arrival, self.pred
        gi, gi_start = self.gate_inputs, self.gate_inputs_start
        best_at = 0.0
        best_in = -1
        for p in range(gi_start[g], gi_start[g + 1]):
            net = gi[p]
            at = arrival[net]
            if best_in < 0 or at > best_at:
                best_at = at
                best_in = net
        out = self.gate_output[g]
        arrival[out] = (best_at + self.gate_delay[g]) + self.gate_net_delay[g]
        pred[out] = best_in

    def full_sweep(self, overrides: dict[str, float] | None = None) -> None:
        """Evaluate every arrival from scratch (optionally overriding
        source arrivals by net name)."""
        self.arrival = [0.0] * self.n_nets
        self.pred = [-1] * self.n_nets
        base: dict[int, float] = {}
        for net, at in self.source_arrival:
            base[net] = at
        if overrides:
            for name, at in overrides.items():
                i = self.net_index.get(name)
                if i is not None:
                    base[i] = at
        self._base_arrival = base
        for net, at in base.items():
            self.arrival[net] = at
        for g in range(len(self.gate_output)):
            self._eval_gate(g)

    def update(self, dirty_sources: dict[str, float]) -> int:
        """Incrementally apply new source arrivals; returns the number
        of gates re-evaluated (the dirty region's size)."""
        dirty = bytearray(self.n_nets)
        arrival = self.arrival
        for name, at in dirty_sources.items():
            i = self.net_index.get(name)
            if i is None:
                continue
            self._base_arrival[i] = at
            if arrival[i] != at:
                arrival[i] = at
                dirty[i] = 1
        evaluated = 0
        gi, gi_start = self.gate_inputs, self.gate_inputs_start
        outs = self.gate_output
        for g in range(len(outs)):
            stale = False
            for p in range(gi_start[g], gi_start[g + 1]):
                if dirty[gi[p]]:
                    stale = True
                    break
            if not stale:
                continue
            out = outs[g]
            before = arrival[out]
            self._eval_gate(g)
            evaluated += 1
            if arrival[out] != before:
                dirty[out] = 1
        if obs.enabled():
            obs.count("sta.updates")
            obs.gauge("sta.dirty_gates", evaluated)
        return evaluated

    # ------------------------------------------------------------------ #
    # reporting

    def result(self):
        """Build a :class:`~repro.timing.sta.TimingResult` matching the
        dict engine's output for the current arrivals."""
        from ..timing.sta import TimingResult

        arrival = self.arrival
        max_delay = 0.0
        critical_sink = -1
        for net, extra in self.sinks:
            at = arrival[net] + extra
            if at > max_delay:
                max_delay = at
                critical_sink = net
        path: list[str] = []
        node = critical_sink
        while node >= 0:
            path.append(self.net_names[node])
            node = self.pred[node]
        path.reverse()
        # arrival dict in the dict engine's insertion order: sources
        # first, then gate outputs in topological order
        arr: dict[str, float] = {}
        for net, _ in self.source_arrival:
            arr[self.net_names[net]] = arrival[net]
        for g, out in enumerate(self.gate_output):
            arr[self.net_names[out]] = arrival[out]
        return TimingResult(
            max_delay=max_delay,
            arrival=arr,
            critical_path=path,
            critical_sink=(
                self.net_names[critical_sink] if critical_sink >= 0 else None
            ),
        )


def analyze_kernel(circuit: Circuit, model: DelayModel):
    """One-shot compiled STA (same result as the dict ``analyze``)."""
    sta = CompiledSTA(circuit, model)
    sta.full_sweep()
    return sta.result()
