"""Kernel implementation of min-area retiming (LP dual via flow).

Mirrors :mod:`repro.retime.minarea` on compiled structures: the
difference system solves incrementally between lazy rounds, the LP dual
runs on the integer-node flow kernel, and Δ sweeps run on the compiled
graph.  Two order-sensitivity notes:

* the flow network's arc order determines Dijkstra tie-breaking and
  hence *which* optimal dual solution is returned, so period
  constraints must enter the system in the same order the dict engine
  generates them — the topological order of each round's full sweep.
  Min-area therefore uses full (not incremental) Δ sweeps; they are
  still array-kernel fast, and the lazy rounds here are few.
* node ids follow the system's variable declaration order, exactly like
  ``system.variables()`` in the dict engine.
"""

from __future__ import annotations

from .. import obs
from ..graph.retiming_graph import RetimingGraph
from .compiled_graph import compile_graph
from .delta import delta_sweep
from .diffsys import CompiledSystem
from .mcf import IntMinCostFlow
from .minperiod import EPS, MAX_LAZY_ROUNDS


def min_area_kernel(
    graph: RetimingGraph,
    phi: float,
    bounds: dict[str, tuple[int, int]] | None,
    model,
):
    """Minimum-area retiming achieving period ≤ *phi* (kernel path).

    *model* is a prepared :class:`~repro.retime.sharing_model.
    SharingModel`; returns an ``AreaResult`` identical to the dict
    engine's.  Raises ``InfeasibleError`` when *phi* is infeasible.
    """
    from ..retime.constraints import InfeasibleError
    from ..retime.feas import compute_delta
    from ..retime.minarea import AreaResult
    from ..retime.minperiod import base_system
    from ..retime.sharing_model import shared_register_count

    extended = model.graph
    cg = compile_graph(extended)
    base = base_system(extended, bounds)
    # tags survive only in the dict system; keep (tag, bound) so the
    # negative-cycle certificate raised on infeasibility can name them
    base_tags = {(c.u, c.v): (c.tag, c.bound) for c in base}
    csys = CompiledSystem.from_system(base, cg)

    # dense cost vector in variable order; reject unconstrained costs
    # exactly like the dict engine
    supply = [0] * csys.n
    for name, c in model.cost.items():
        i = csys.index.get(name)
        if i is None:
            raise InfeasibleError(f"cost on unconstrained vertex {name!r}")
        supply[i] = -c

    n = cg.n
    is_mirror = cg.is_mirror
    best: list[int] | None = None
    rounds = 0
    with obs.span("minarea.solve", phi=phi, engine="kernel") as span:
        for rounds in range(1, MAX_LAZY_ROUNDS + 1):
            r = _solve_lp(csys, supply)
            if r is None:
                raise _infeasible(graph, phi, csys, base_tags)
            violations = csys.violated(r)
            if violations:  # numerical/duality bug guard: never expected
                names = csys.names
                shown = [
                    (names[u], names[v], b) for u, v, b in violations[:3]
                ]
                raise RuntimeError(f"LP solution violates {shown}")
            sweep = delta_sweep(cg, r[:n])
            delta = sweep.delta
            added = False
            limit = phi + EPS
            # dict-engine constraint order: topo order.  topo_order()
            # rather than .order — the latter is None on refreshed
            # sweeps, and this loop must stay safe if the sweep above
            # ever becomes incremental.
            for v in sweep.topo_order(cg):
                if delta[v] <= limit or is_mirror[v]:
                    continue
                u = sweep.trace_start(v)
                bound = r[u] - r[v] - 1
                if csys.add(u, v, bound):
                    added = True
            if not added:
                best = r
                break
        if best is None:
            raise RuntimeError(
                "lazy period-constraint generation did not converge"
            )
        obs.count("minarea.rounds", rounds)
        span.set(rounds=rounds)

    index = csys.index
    real_r = {v: best[index[v]] for v in graph.vertices}
    period = compute_delta(graph, real_r).period
    return AreaResult(
        r=real_r,
        registers=shared_register_count(graph, real_r),
        registers_before=shared_register_count(graph),
        period=period,
        rounds=rounds,
        constraints=len(csys),
    )


def _infeasible(graph, phi, csys: CompiledSystem, base_tags: dict):
    """Build the structured infeasibility error with its certificate."""
    from ..retime.constraints import Constraint, InfeasibleConstraints

    names = csys.names
    cycle = []
    for u, v, b in csys.negative_cycle() or ():
        key = (names[u], names[v])
        # pairs added or tightened by the lazy loop are period
        # constraints, matching the dict engine's tag bookkeeping
        tag, base_bound = base_tags.get(key, ("period", None))
        cycle.append(Constraint(*key, b, "period" if b != base_bound else tag))
    return InfeasibleConstraints(
        f"period {phi} infeasible for {graph.name!r}", cycle, period=phi
    )


def _solve_lp(csys: CompiledSystem, supply: list[int]) -> list[int] | None:
    """One LP solve: min Σ c·r subject to *csys*; None if infeasible."""
    dist = csys.solve()
    if dist is None:
        return None
    flow = IntMinCostFlow(csys.n)
    flow.supply = list(supply)
    add_arc = flow.add_arc
    arc_u, arc_v, arc_b = csys.arc_u, csys.arc_v, csys.arc_b
    for slot in range(len(arc_b)):
        add_arc(arc_u[slot], arc_v[slot], arc_b[slot])
    # π = −r0 gives non-negative reduced costs for every constraint arc
    flow.solve(initial_potentials=[-d for d in dist])
    r = [-int(round(p)) for p in flow.potential]
    shift = r[csys.host] if csys.host >= 0 else 0
    if shift:
        r = [val - shift for val in r]
    return r
