"""CP/Δ sweeps over a compiled graph, full and incremental.

``delta_sweep`` is the integer-array replica of
:func:`repro.retime.feas.compute_delta`: identical zero-edge selection
order, identical Kahn queue discipline, identical argmax tie-breaking,
identical float arithmetic — so its Δ/pred output is bit-for-bit the
dict implementation's, and the lazy constraint generators built on it
produce the *same* constraint sets in the *same* order.

``refresh`` is the incremental mode: given the previous sweep and a new
retiming that differs on a subset of vertices, it recomputes Δ only in
the forward cone (over the new zero-weight subgraph) of the vertices
whose zero-edge neighbourhood changed.  Values outside the cone are
provably unchanged, so the refreshed arrays equal a full re-sweep —
the lazy loops in min-period exploit this between rounds, where a solve
typically moves only a few vertices.
"""

from __future__ import annotations

from .. import obs
from ..graph.retiming_graph import GraphError
from .compiled_graph import CompiledGraph

try:  # pragma: no cover
    import numpy as _np
except ImportError:  # pragma: no cover
    _np = None

#: Below this edge count the vectorised zero-edge scan is not worth the
#: ndarray round-trip.
_NUMPY_MIN_EDGES = 64

#: Above this fraction of changed vertices a refresh falls back to a
#: full sweep (the cone walk would visit most of the graph anyway).
_REFRESH_FRACTION = 0.25

#: At or below this vertex count a refresh goes straight to a full
#: sweep: the cone bookkeeping costs as much as sweeping everything,
#: and on tiny graphs the cone usually exceeds the fraction anyway.
_REFRESH_MIN_N = 96


class KernelSweep:
    """Result of a Δ sweep: id-indexed arrays plus the retiming used."""

    __slots__ = ("delta", "pred", "order", "r", "_period")

    def __init__(
        self,
        delta: list[float],
        pred: list[int],
        order: list[int] | None,
        r: list[int],
    ) -> None:
        self.delta = delta
        self.pred = pred
        #: full-sweep Kahn order (None after a refresh — the refresh
        #: does not maintain a global order, only correct values; use
        #: :meth:`topo_order` to recover one on demand)
        self.order = order
        self.r = r
        self._period: float | None = None

    @property
    def period(self) -> float:
        """Max Δ over all vertices (order-independent, refresh-safe)."""
        if self._period is None:
            self._period = max(self.delta, default=0.0)
        return self._period

    def topo_order(
        self, cg: CompiledGraph, through_host: bool | None = None
    ) -> list[int]:
        """Topological order of the zero-weight subgraph at ``self.r``.

        After a :func:`refresh`, ``self.order`` is ``None`` — the cone
        walk does not maintain a global order.  Consumers that iterate
        a topo order (e.g. the min-area constraint builder) call this
        instead of touching ``.order`` directly: it returns the cached
        full-sweep order when present, and otherwise recomputes one
        with the same Kahn queue discipline as :func:`delta_sweep`, so
        the result is bit-identical to the order a full sweep at the
        same retiming would have produced.  The recomputed order is
        cached on the sweep.
        """
        if self.order is None:
            if through_host is None:
                through_host = cg.through_host
            _, _, self.order = _zero_structure(cg, self.r, through_host)
        return self.order

    def trace_start(self, v: int) -> int:
        """Walk predecessors to the start of v's critical path."""
        pred = self.pred
        while pred[v] >= 0:
            v = pred[v]
        return v


def _zero_edges(
    cg: CompiledGraph, r: list[int], through_host: bool
) -> list[int]:
    """Indices of zero-retimed-weight edges, in edge order.

    Raises :class:`GraphError` on the first negative retimed weight,
    matching the dict implementation's error and ordering.
    """
    m = cg.m
    if _np is not None and cg.ew_np is not None and m >= _NUMPY_MIN_EDGES:
        ra = _np.asarray(r, dtype=_np.int64)
        wr = cg.ew_np + ra[cg.ev_np] - ra[cg.eu_np]
        neg = wr < 0
        if neg.any():
            k = int(_np.flatnonzero(neg)[0])
            u, v = cg.names[cg.eu[k]], cg.names[cg.ev[k]]
            raise GraphError(
                f"negative retimed weight on {u}->{v} (w={int(wr[k])})"
            )
        mask = wr == 0
        if not through_host:
            mask &= ~cg.src_host_np
        return _np.flatnonzero(mask).tolist()
    eu, ev, ew, src_host = cg.eu, cg.ev, cg.ew, cg.src_host
    zero: list[int] = []
    for k in range(m):
        w = ew[k] + r[ev[k]] - r[eu[k]]
        if w < 0:
            u, v = cg.names[eu[k]], cg.names[ev[k]]
            raise GraphError(f"negative retimed weight on {u}->{v} (w={w})")
        if w == 0 and (through_host or not src_host[k]):
            zero.append(k)
    return zero


def _zero_structure(
    cg: CompiledGraph, r: list[int], through_host: bool
) -> tuple[list[int], list[int], list[int]]:
    """Zero-in CSR and Kahn topological order of the zero subgraph.

    Returns ``(zin_start, zin, order)``.  The construction mirrors the
    dict implementation exactly (edge-order zero-in lists, id-order
    zero-out build, LIFO Kahn queue) so the order is deterministic and
    shared between :func:`delta_sweep` and
    :meth:`KernelSweep.topo_order`.
    """
    n = cg.n
    eu, ev = cg.eu, cg.ev
    zero = _zero_edges(cg, r, through_host)

    # zero-in CSR, per-vertex lists in edge order (= dict zero_in order)
    zin_count = [0] * n
    for k in zero:
        zin_count[ev[k]] += 1
    zin_start = [0] * (n + 1)
    for i in range(n):
        zin_start[i + 1] = zin_start[i] + zin_count[i]
    zin = [0] * len(zero)
    fill = list(zin_start[:n])
    for k in zero:
        v = ev[k]
        zin[fill[v]] = k
        fill[v] += 1

    # zero-out built exactly like the dict code: iterate vertices in
    # id order, appending each target to its predecessors' out lists —
    # this fixes the Kahn push order, hence the topological order.
    zout: list[list[int]] = [[] for _ in range(n)]
    for v in range(n):
        for p in range(zin_start[v], zin_start[v + 1]):
            zout[eu[zin[p]]].append(v)

    indeg = list(zin_count)
    queue = [i for i in range(n) if indeg[i] == 0]
    order: list[int] = []
    while queue:
        v = queue.pop()
        order.append(v)
        for s in zout[v]:
            indeg[s] -= 1
            if indeg[s] == 0:
                queue.append(s)
    if len(order) != n:
        raise GraphError("zero-weight subgraph is cyclic")
    return zin_start, zin, order


def delta_sweep(
    cg: CompiledGraph, r: list[int], through_host: bool | None = None
) -> KernelSweep:
    """Full CP sweep; bit-identical to the dict ``compute_delta``."""
    obs.count("delta.sweeps")
    if through_host is None:
        through_host = cg.through_host
    n = cg.n
    eu = cg.eu
    zin_start, zin, order = _zero_structure(cg, r, through_host)

    delay = cg.delay
    delta = [0.0] * n
    pred = [-1] * n
    for v in order:
        best = 0.0
        best_pred = -1
        for p in range(zin_start[v], zin_start[v + 1]):
            u = eu[zin[p]]
            if delta[u] > best:
                best = delta[u]
                best_pred = u
        delta[v] = best + delay[v]
        pred[v] = best_pred
    return KernelSweep(delta, pred, order, list(r))


def refresh(
    cg: CompiledGraph,
    sweep: KernelSweep,
    r: list[int],
    through_host: bool | None = None,
    extra_seeds: "set[int] | frozenset[int] | None" = None,
) -> KernelSweep:
    """Incremental re-sweep after a retiming change.

    Recomputes Δ/pred only for vertices in the forward cone (over the
    *new* zero-weight subgraph) of the vertices whose zero-in edge set
    changed; everything else keeps its previous — provably identical —
    value.  Falls back to :func:`delta_sweep` when most of the graph
    moved.  Returns a new :class:`KernelSweep` (``order`` is ``None``:
    consumers needing the global topological order should call
    :meth:`KernelSweep.topo_order`).

    *extra_seeds* forces additional vertices into the recompute cone
    even when their zero-edge neighbourhood did not change.  The ECO
    path uses this after patching vertex *delays* in place: a delay
    change alters Δ at the vertex and everything downstream without
    moving any retiming, which the r-diff seeding alone cannot see.
    """
    if through_host is None:
        through_host = cg.through_host
    r_old = sweep.r
    n = cg.n
    extra = {i for i in extra_seeds if 0 <= i < n} if extra_seeds else set()
    changed = [i for i in range(n) if r[i] != r_old[i]]
    if not changed and not extra:
        return sweep
    obs.count("delta.refreshes")
    if n <= _REFRESH_MIN_N or len(changed) + len(extra) > n * _REFRESH_FRACTION:
        obs.count("delta.refresh_full")
        return delta_sweep(cg, r, through_host)

    eu, ev, ew, src_host = cg.eu, cg.ev, cg.ew, cg.src_host
    in_start, in_edges = cg.in_start, cg.in_edges
    out_start, out_edges = cg.out_start, cg.out_edges

    # seeds: targets of edges whose zero status flipped
    seed: set[int] = set()
    seen_edge = bytearray(cg.m)
    for i in changed:
        for p in range(out_start[i], out_start[i + 1]):
            seen_edge[out_edges[p]] = 1
        for p in range(in_start[i], in_start[i + 1]):
            seen_edge[in_edges[p]] = 1
    for k in range(cg.m):
        if not seen_edge[k]:
            continue
        if not through_host and src_host[k]:
            continue
        ui, vi = eu[k], ev[k]
        w_new = ew[k] + r[vi] - r[ui]
        if w_new < 0:
            u, v = cg.names[ui], cg.names[vi]
            raise GraphError(
                f"negative retimed weight on {u}->{v} (w={w_new})"
            )
        if (w_new == 0) != (ew[k] + r_old[vi] - r_old[ui] == 0):
            seed.add(vi)
    seed |= extra

    if not seed:
        # no zero edge flipped: the zero subgraph is unchanged, so Δ is
        # unchanged (Δ depends only on zero-subgraph structure + delays)
        return KernelSweep(sweep.delta, sweep.pred, sweep.order, list(r))

    # forward closure of the seeds over new zero edges
    in_cone = bytearray(n)
    stack = list(seed)
    for i in stack:
        in_cone[i] = 1
    while stack:
        v = stack.pop()
        for p in range(out_start[v], out_start[v + 1]):
            k = out_edges[p]
            if not through_host and src_host[k]:
                continue
            if ew[k] + r[ev[k]] - r[eu[k]] == 0:
                t = ev[k]
                if not in_cone[t]:
                    in_cone[t] = 1
                    stack.append(t)

    cone = [i for i in range(n) if in_cone[i]]
    if obs.enabled():
        obs.gauge("delta.cone", len(cone))
    if len(cone) > n * _REFRESH_FRACTION:
        obs.count("delta.refresh_full")
        return delta_sweep(cg, r, through_host)

    # restricted Kahn: indegree counts only zero edges from cone vertices
    indeg = {v: 0 for v in cone}
    for v in cone:
        for p in range(in_start[v], in_start[v + 1]):
            k = in_edges[p]
            if not through_host and src_host[k]:
                continue
            if ew[k] + r[ev[k]] - r[eu[k]] == 0 and in_cone[eu[k]]:
                indeg[v] += 1
    queue = [v for v in cone if indeg[v] == 0]

    delta = list(sweep.delta)
    pred = list(sweep.pred)
    delay = cg.delay
    processed = 0
    while queue:
        v = queue.pop()
        processed += 1
        best = 0.0
        best_pred = -1
        for p in range(in_start[v], in_start[v + 1]):
            k = in_edges[p]
            if not through_host and src_host[k]:
                continue
            if ew[k] + r[ev[k]] - r[eu[k]] != 0:
                continue
            u = eu[k]
            if delta[u] > best:
                best = delta[u]
                best_pred = u
        delta[v] = best + delay[v]
        pred[v] = best_pred
        for p in range(out_start[v], out_start[v + 1]):
            k = out_edges[p]
            if not through_host and src_host[k]:
                continue
            if ew[k] + r[ev[k]] - r[eu[k]] == 0:
                t = ev[k]
                if in_cone[t]:
                    indeg[t] -= 1
                    if indeg[t] == 0:
                        queue.append(t)
    if processed != len(cone):
        raise GraphError("zero-weight subgraph is cyclic")
    return KernelSweep(delta, pred, None, list(r))
